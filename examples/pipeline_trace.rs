//! Inspect the multi-accelerator pipeline (Fig. 4) as a text Gantt chart.
//!
//! Builds three frames of a DFR-style pipeline (composition + ATW on the
//! GPU) and of a Q-VR pipeline (UCA), showing how moving composition off
//! the GPU removes the cross-frame contention of Fig. 4-③.
//!
//! ```text
//! cargo run --release --example pipeline_trace
//! ```

use qvr::sim::Engine;

fn build(uca_offload: bool) -> Engine {
    let mut sim = Engine::new();
    let cpu = sim.resource("CPU");
    let gpu = sim.resource("GPU");
    let net = sim.resource("NET");
    let vdec = sim.resource("VDEC");
    let uca = sim.resource("UCA");

    let mut prev_display = None;
    for i in 0..3 {
        let deps: Vec<_> = prev_display.into_iter().collect();
        let cl = sim.submit(&format!("f{i}:CL"), Some(cpu), 0.7, &deps);
        let lr = sim.submit(&format!("f{i}:LR"), Some(gpu), 6.0, &[cl]);
        let tx = sim.submit(&format!("f{i}:RR+net"), Some(net), 7.0, &[cl]);
        let vd = sim.submit(&format!("f{i}:VD"), Some(vdec), 1.0, &[tx]);
        let compose = if uca_offload {
            let early = sim.submit(&format!("f{i}:UCA.outer"), Some(uca), 1.4, &[vd]);
            sim.submit(&format!("f{i}:UCA.border"), Some(uca), 1.0, &[lr, early])
        } else {
            let c = sim.submit(&format!("f{i}:C"), Some(gpu), 2.2, &[lr, vd]);
            sim.submit(&format!("f{i}:ATW"), Some(gpu), 2.6, &[c])
        };
        prev_display = Some(sim.submit(&format!("f{i}:scanout"), None, 5.0, &[compose]));
    }
    sim
}

fn main() {
    for (name, uca) in [
        ("DFR (composition on the GPU)", false),
        ("Q-VR (UCA offload)", true),
    ] {
        let sim = build(uca);
        println!("== {name} ==  makespan {:.1} ms", sim.makespan());
        print!("{}", sim.timeline(32));
        println!();
    }
    println!("With the UCA, each frame's local rendering starts as soon as the");
    println!("GPU is free — composition no longer steals GPU time from frame N+1.");
}
