//! Render, compose, warp, and compress one real foveated frame.
//!
//! Exercises the *functional* half of the substrate end to end:
//! rasterize three layers with the software renderer, compose+timewarp them
//! with both the sequential path and the UCA unified path (verifying the
//! Eq. 4 equivalence numerically), and push the periphery through the DCT
//! transform codec to see real compressed sizes.
//!
//! ```text
//! cargo run --release --example foveated_frame
//! ```

use qvr::core::uca::{FoveatedFrame, Uca, WarpParams};
use qvr::gpu::{Mat4, RasterPipeline, Rgba, Texture, Triangle, Vec3, Vertex};
use qvr::prelude::*;

/// Renders a little textured scene at the given resolution.
fn render_layer(size: u32, detail: f64, tint: [f32; 4]) -> qvr::gpu::Framebuffer {
    let mut rp = RasterPipeline::new(size, size, Rgba::new(0.05, 0.05, 0.1, 1.0), 16);
    let tex = Texture::value_noise(64, 7, detail);
    let mvp = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 0.1, 50.0)
        * Mat4::translate(Vec3::new(0.0, 0.0, -4.0));
    // A fan of overlapping triangles at varying depths.
    let mut tris = Vec::new();
    for k in 0..12 {
        let a = k as f32 * 0.55;
        let z = -1.0 + 0.15 * k as f32;
        let mut t = Triangle::new(
            Vertex::colored(Vec3::new(a.cos() * 2.5, a.sin() * 2.5, z), tint),
            Vertex::colored(
                Vec3::new((a + 0.9).cos() * 2.5, (a + 0.9).sin() * 2.5, z),
                tint,
            ),
            Vertex::colored(Vec3::new(0.0, 0.0, z - 0.5), [1.0, 1.0, 1.0, 1.0]),
        );
        t.vertices[0].uv = [0.0, 0.0];
        t.vertices[1].uv = [1.0, 0.0];
        t.vertices[2].uv = [0.5, 1.0];
        tris.push(t);
    }
    rp.draw_batch(&mvp, &tris, Some(&tex));
    println!("    raster stats: {}", rp.stats());
    rp.into_color()
}

fn main() {
    let size = 256;
    println!("Rendering three layers at {size}x{size} output:");
    println!("  fovea (native), middle (1/2 res), outer (1/4 res)");
    let fovea = render_layer(size, 0.5, [1.0, 0.6, 0.4, 1.0]);
    let middle = render_layer(size / 2, 0.4, [0.4, 1.0, 0.6, 1.0]);
    let outer = render_layer(size / 4, 0.3, [0.4, 0.6, 1.0, 1.0]);

    let frame = FoveatedFrame::new(
        size,
        size,
        (size as f32 / 2.0, size as f32 / 2.0),
        fovea,
        size as f32 / 6.0,
        middle.clone(),
        size as f32 / 3.0,
        outer.clone(),
    );

    // Compare the two composition paths under a realistic warp.
    let warp = WarpParams {
        dx_ndc: 0.02,
        dy_ndc: -0.015,
        ..WarpParams::lens_only()
    };
    let sequential = Uca::compose_then_atw(&frame, &warp);
    let unified = Uca::unified(&frame, &warp);
    println!("\nEq. (4) check — sequential composition∘ATW vs unified trilinear pass:");
    println!("  mean abs diff: {:.5}", sequential.mean_abs_diff(&unified));
    println!("  PSNR:          {:.1} dB", unified.psnr(&sequential));

    let (border, total) = frame.classify_tiles(32);
    println!("  border tiles:  {border}/{total} (trilinear path; rest plain bilinear)");

    // Compress the periphery layers like the server would.
    let codec = TransformCodec::default();
    for (name, layer) in [("middle", &middle), ("outer", &outer)] {
        let enc = codec.encode_intra(layer);
        let raw = layer.len() * 4;
        let decoded = codec.decode(&enc).expect("own bitstream decodes");
        println!(
            "  {name:>6} layer: {} -> {} bytes ({:.1}x), PSNR {:.1} dB",
            raw,
            enc.size_bytes(),
            raw as f64 / enc.size_bytes() as f64,
            decoded.psnr(layer)
        );
    }

    // What the size model predicts for a real HMD frame.
    let sm = SizeModel::default();
    println!(
        "\nClosed-form model: a 1920x2160 background at detail 0.55 ≈ {:.0} KB (Table 1: ~530 KB)",
        sm.frame_bytes(1920 * 2160, 0.55, 1.0) / 1024.0
    );
}
