//! Watch LIWC balance local and remote latency in real time (Fig. 14).
//!
//! Runs Q-VR on two very different games and across the three network
//! technologies, printing the per-frame eccentricity and latency ratio as
//! the controller converges from its cold start at e1 = 5°.
//!
//! ```text
//! cargo run --release --example adaptive_fovea
//! ```

use qvr::prelude::*;

fn sparkline(values: &[f64], lo: f64, hi: f64) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|v| {
            let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            BARS[(t * 7.0).round() as usize]
        })
        .collect()
}

fn main() {
    let frames = 300;

    println!("LIWC convergence from a cold start (e1 = 5°), 300 frames\n");
    for bench in [Benchmark::Doom3L, Benchmark::Grid] {
        println!("== {} ==", bench.label());
        for preset in NetworkPreset::all() {
            let config = SystemConfig::default().with_network(preset);
            let s = SchemeKind::Qvr.run(&config, bench.profile(), frames, 42);
            let e1: Vec<f64> = s.frames.iter().filter_map(|f| f.e1_deg).collect();
            let ratio: Vec<f64> = s.frames.iter().map(|f| f.latency_ratio()).collect();
            let every_5th: Vec<f64> = e1.iter().step_by(5).copied().collect();
            println!(
                "  {:<9} e1 {} (steady {:.1}°)",
                preset.label(),
                sparkline(&every_5th, 0.0, 90.0),
                s.mean_e1_deg(frames / 2).unwrap()
            );
            let ratio_5th: Vec<f64> = ratio.iter().step_by(5).copied().collect();
            println!(
                "  {:<9} T_r/T_l {} (first {:.1} → steady {:.2}, FPS {:.0})",
                "",
                sparkline(&ratio_5th, 0.0, 4.0),
                ratio.first().copied().unwrap_or(0.0),
                ratio[frames - 50..].iter().sum::<f64>() / 50.0,
                s.fps()
            );
        }
        println!();
    }
    println!("Faster downlinks shift work to the server (smaller e1);");
    println!("lighter scenes pull it back to the headset (larger e1).");
}
