//! Span tracing over an 8-session Wi-Fi fleet: dump a Chrome-trace /
//! Perfetto recording of every session's per-stage pipeline spans plus
//! the per-class metrics exposition.
//!
//! ```text
//! cargo run --release --example trace_frames
//! ```
//!
//! Load the emitted `trace_frames.json` at <https://ui.perfetto.dev> (or
//! `chrome://tracing`). Two process groups appear:
//!
//! * **sessions** — one track per session slot, with upload → render →
//!   encode → network → decode → display slices tiling each frame;
//! * **server units** — one track per GPU unit, carrying the render and
//!   encode slices of whichever sessions landed there, so cross-session
//!   queueing on a shared unit reads directly off the timeline.
//!
//! **What to look for — the §7 round-robin skew artifact.** This roster
//! deliberately mixes full-share and quarter-share tenants under
//! round-robin stepping (the golden-pinned default). Round-robin steps
//! every session one frame per round regardless of how far its own
//! virtual clock has advanced, so the quarter-share tenants' tracks fall
//! further and further behind the full-share tracks: scroll right in the
//! trace and watch the same frame index sit at increasingly different
//! virtual times across tracks. That growing horizontal offset is the
//! DESIGN.md §7 "known limitation" — an artifact of the stepping policy,
//! not physics — and rerunning with `SteppingPolicy::VirtualTime`
//! collapses the tracks back into lockstep (`tests/churn.rs` pins
//! exactly that collapse).

use qvr::prelude::*;
use qvr::scene::Benchmark;

fn main() {
    let apps = [
        Benchmark::Hl2H,
        Benchmark::Doom3H,
        Benchmark::Wolf,
        Benchmark::Ut3,
    ];
    let mut config = FleetConfig::uniform(
        SystemConfig::default().with_network(NetworkPreset::WiFi),
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        8,
        60,
        42,
    );
    // Half the roster streams full frames on a quarter link share: the
    // share tilt is what makes the §7 skew visible between tracks.
    config.fairness = FairnessPolicy::Weighted;
    for (i, spec) in config.sessions.iter_mut().enumerate() {
        *spec = if i % 2 == 0 {
            SessionSpec::new(SchemeKind::Qvr, apps[i % apps.len()].profile())
        } else {
            SessionSpec::new(SchemeKind::RemoteOnly, apps[i % apps.len()].profile())
                .with_share(LinkShare::weighted(0.25))
        };
    }
    // Trace every session (sample_one_in = 1), collect the per-class
    // histogram metrics, and arm the health monitor with a generous
    // utilization band so the incident timeline is exercised too.
    config.telemetry = TelemetryConfig::default()
        .with_trace(TraceConfig::default())
        .with_metrics()
        .with_health(HealthRules::new(200.0).with_utilization_band(0.02, 0.98));

    let summary = Fleet::run(config);
    println!("{summary}\n");

    let trace = summary.trace.as_ref().expect("tracing was enabled");
    let json = trace.chrome_trace_json();
    std::fs::write("trace_frames.json", &json).expect("write trace");
    println!(
        "wrote trace_frames.json: {} frames across {} sessions ({} bytes)\n\
         -> open it at https://ui.perfetto.dev and compare the even\n\
         (full-share) and odd (quarter-share) session tracks drifting\n\
         apart — the §7 round-robin skew artifact",
        trace.len(),
        summary.sessions.len(),
        json.len(),
    );

    let exposition = summary.exposition.as_ref().expect("metrics were enabled");
    std::fs::write("trace_frames_exposition.txt", exposition).expect("write exposition");
    println!(
        "\nwrote trace_frames_exposition.txt ({} lines); the adaptive-class\n\
         tail out of the per-class histograms:",
        exposition.lines().count(),
    );
    for line in exposition.lines().filter(|l| l.contains("qvr_mtp_p9")) {
        println!("  {line}");
    }

    if summary.incidents.is_empty() {
        println!("\nhealth: no SLO incidents");
    } else {
        println!("\nhealth incident timeline:");
        for inc in &summary.incidents {
            println!("  {inc}");
        }
    }
}
