//! Sharded cells: route a roster across independent fleet cells, run them
//! on a worker pool, and merge the telemetry into one fleet-identical
//! summary.
//!
//! ```text
//! cargo run --release --example shard_cells
//! ```

use qvr::prelude::*;
use qvr::scene::Benchmark;

fn spec(i: usize) -> SessionSpec {
    let apps = [
        Benchmark::Hl2H,
        Benchmark::Doom3H,
        Benchmark::Wolf,
        Benchmark::Ut3,
    ];
    SessionSpec::new(SchemeKind::Qvr, apps[i % apps.len()].profile())
}

fn main() {
    // The per-cell fleet template: every cell gets its own 4-unit GPU pool
    // and 2-stream link; windowed retirement keeps live schedule state
    // O(window) per cell.
    let mut template = FleetConfig::uniform(
        SystemConfig::default(),
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        1, // the shard routes its own roster
        40,
        42,
    );
    template.server_units = 4;
    template.link_streams = 2;
    template.retire_window_ms = Some(300.0);
    template.telemetry = template.telemetry.with_window_ms(200.0);

    // 256 sessions over 16 cells, admission-controlled: a join probes the
    // least-loaded cells at full share first and spills (or degrades)
    // only when its first choice cannot hold the SLO.
    let mut policy = AdmissionPolicy::default()
        .with_mtp_p95_slo_ms(60.0)
        .with_min_fps_floor(20.0);
    policy.probe_frames = 4;
    let config =
        ShardConfig::new(template, 16, 16, (0..256).map(spec).collect()).with_admission(policy);

    let summary = Shard::run(config);
    println!("{summary}\n");
    println!(
        "cells ran {:?} sessions ({} spilled, {} degraded, {} rejected, {} probes)",
        summary.cell_sessions,
        summary.spilled,
        summary.degraded,
        summary.rejected,
        summary.probes_run
    );
    println!(
        "merged energy {:.0} mJ; peak live schedule state {} tasks \
         (O(cells x window))",
        summary.energy.total_mj(),
        summary.peak_live_tasks
    );
    println!("windowed p95 timeline ({} buckets):", summary.windows.len());
    for (start, frames, p95) in summary.windows.iter().take(6) {
        println!("  {start:>6.0} ms  {frames:>4} frames  p95 {p95:.1} ms");
    }
}
