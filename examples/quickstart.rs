//! Quickstart: compare Q-VR against the commercial baselines on one game.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qvr::prelude::*;

fn main() {
    let config = SystemConfig::default();
    let frames = 300;
    let seed = 42;

    println!("Q-VR quickstart — GRID @ 1920x2160/eye, Mali-G76-class @ 500 MHz, Wi-Fi\n");
    println!(
        "{:<10} {:>9} {:>8} {:>12} {:>12} {:>10}",
        "scheme", "MTP (ms)", "FPS", "TX KB/frame", "energy (mJ)", "mean e1"
    );

    let mut baseline_mtp = None;
    for kind in SchemeKind::all() {
        let summary = kind.run(&config, Benchmark::Grid.profile(), frames, seed);
        let e1 = summary
            .mean_e1_deg(frames / 2)
            .map_or("-".to_owned(), |e| format!("{e:.1}°"));
        println!(
            "{:<10} {:>9.1} {:>8.0} {:>12.0} {:>12.0} {:>10}",
            kind.label(),
            summary.mean_mtp_ms(),
            summary.fps(),
            summary.mean_tx_bytes() / 1024.0,
            summary.energy.total_mj() / frames as f64,
            e1
        );
        if kind == SchemeKind::LocalOnly {
            baseline_mtp = Some(summary.mean_mtp_ms());
        }
        if kind == SchemeKind::Qvr {
            if let Some(base) = baseline_mtp {
                println!(
                    "\nQ-VR end-to-end speedup over the local baseline: {:.1}x",
                    base / summary.mean_mtp_ms()
                );
            }
        }
    }
}
