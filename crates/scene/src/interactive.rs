//! Pre-defined interactive objects for the *static* collaborative baseline.
//!
//! The state-of-the-art static scheme (Sec. 2.2) requires programmers to
//! pre-classify "interactive objects" for local rendering. Table 1 lists
//! them per app with the fraction `f` of frame rendering time they consume —
//! a fraction that swings widely at runtime (Fig. 5: the Nature tree costs
//! 12–26 ms depending on how close the user gets).

use std::fmt;

/// One pre-declared interactive object set for an app.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractiveObject {
    name: String,
    f_min: f64,
    f_max: f64,
}

impl InteractiveObject {
    /// Creates an object set with its workload-fraction range `[f_min,
    /// f_max]` (fractions of whole-frame rendering latency, as in Table 1).
    ///
    /// # Panics
    ///
    /// Panics if the range is not within `[0, 1]` or inverted.
    #[must_use]
    pub fn new(name: impl Into<String>, f_min: f64, f_max: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&f_min) && (0.0..=1.0).contains(&f_max) && f_min <= f_max,
            "fraction range must satisfy 0 <= f_min <= f_max <= 1"
        );
        InteractiveObject {
            name: name.into(),
            f_min,
            f_max,
        }
    }

    /// Display name of the object set (e.g. `"9 Chess"`, `"1 Tree"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Minimum workload fraction.
    #[must_use]
    pub fn f_min(&self) -> f64 {
        self.f_min
    }

    /// Maximum workload fraction.
    #[must_use]
    pub fn f_max(&self) -> f64 {
        self.f_max
    }

    /// The workload fraction at interaction intensity `t ∈ [0, 1]`.
    ///
    /// Interaction drives the object close to the user and animates it
    /// (Fig. 5), which moves `f` from its minimum toward its maximum with a
    /// mildly super-linear response (close-up interaction inflates detail).
    #[must_use]
    pub fn fraction_at(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        self.f_min + (self.f_max - self.f_min) * t.powf(1.1)
    }
}

impl fmt::Display for InteractiveObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (f = {:.0}%–{:.0}%)",
            self.name,
            self.f_min * 100.0,
            self.f_max * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_spans_range() {
        let o = InteractiveObject::new("1 Tree", 0.10, 0.24);
        assert!((o.fraction_at(0.0) - 0.10).abs() < 1e-12);
        assert!((o.fraction_at(1.0) - 0.24).abs() < 1e-12);
    }

    #[test]
    fn fraction_monotone() {
        let o = InteractiveObject::new("chess", 0.16, 0.52);
        let mut last = 0.0;
        for i in 0..=10 {
            let f = o.fraction_at(f64::from(i) / 10.0);
            assert!(f >= last);
            last = f;
        }
    }

    #[test]
    fn fraction_clamps_inputs() {
        let o = InteractiveObject::new("x", 0.1, 0.2);
        assert_eq!(o.fraction_at(-3.0), o.fraction_at(0.0));
        assert_eq!(o.fraction_at(5.0), o.fraction_at(1.0));
    }

    #[test]
    #[should_panic(expected = "fraction range")]
    fn inverted_range_rejected() {
        let _ = InteractiveObject::new("bad", 0.5, 0.2);
    }

    #[test]
    fn display_shows_percentages() {
        let o = InteractiveObject::new("Lion Shield", 0.001, 0.20);
        let s = o.to_string();
        assert!(s.contains("Lion Shield"));
        assert!(s.contains("20%"));
    }
}
