//! Seeded 6-DoF head and gaze motion traces.
//!
//! VR user motion alternates between calm viewing and active phases (head
//! sweeps, gaze saccades, object interaction). LIWC's whole premise
//! (Sec. 4.1) is that these motions correlate with scene-complexity change,
//! so the trace generator produces *correlated* channels: head angular
//! velocity, gaze movement, and an interaction intensity that the scene
//! model turns into workload variation.
//!
//! Traces are generated up-front from a seed and are exactly reproducible.

use qvr_hvs::GazePoint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// How agitated a user is while playing one app.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionProfile {
    /// Overall activity level in `[0, 1]`: scales head velocity, saccade
    /// frequency, and interaction probability.
    pub activity: f64,
    /// Mean length of a calm/active segment, frames.
    pub segment_len: u32,
    /// Peak head angular velocity during active segments, degrees/frame.
    pub peak_head_velocity: f64,
    /// Probability per frame of a gaze saccade during active segments.
    pub saccade_rate: f64,
}

impl MotionProfile {
    /// A seated, slow-viewing profile.
    #[must_use]
    pub fn calm() -> Self {
        MotionProfile {
            activity: 0.25,
            segment_len: 120,
            peak_head_velocity: 0.8,
            saccade_rate: 0.02,
        }
    }

    /// A typical gaming profile (default).
    #[must_use]
    pub fn typical() -> Self {
        MotionProfile {
            activity: 0.5,
            segment_len: 75,
            peak_head_velocity: 1.6,
            saccade_rate: 0.05,
        }
    }

    /// A fast, highly interactive profile (racing, shooters).
    #[must_use]
    pub fn frantic() -> Self {
        MotionProfile {
            activity: 0.8,
            segment_len: 45,
            peak_head_velocity: 2.8,
            saccade_rate: 0.10,
        }
    }
}

impl Default for MotionProfile {
    fn default() -> Self {
        MotionProfile::typical()
    }
}

/// One frame's absolute head pose and gaze.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MotionSample {
    /// Head yaw in degrees.
    pub yaw: f64,
    /// Head pitch in degrees.
    pub pitch: f64,
    /// Head roll in degrees.
    pub roll: f64,
    /// Head position in metres (x, y, z).
    pub position: [f64; 3],
    /// Gaze point on the panel (eye tracker output).
    pub gaze: GazePoint,
    /// Interaction intensity in `[0, 1]` (0 = observing, 1 = manipulating
    /// a nearby object, the Fig. 5 "close to the tree" situation).
    pub interaction: f64,
}

/// Frame-over-frame motion change: what LIWC's motion codec consumes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MotionDelta {
    /// Changes of the six degrees of freedom:
    /// `[Δyaw, Δpitch, Δroll, Δx, Δy, Δz]` (degrees / metres).
    pub dof: [f64; 6],
    /// Gaze movement in NDC units `(Δx, Δy)`.
    pub gaze: (f64, f64),
    /// Change in interaction intensity.
    pub interaction: f64,
}

impl MotionDelta {
    /// The change between two consecutive samples.
    #[must_use]
    pub fn between(prev: &MotionSample, next: &MotionSample) -> Self {
        MotionDelta {
            dof: [
                next.yaw - prev.yaw,
                next.pitch - prev.pitch,
                next.roll - prev.roll,
                next.position[0] - prev.position[0],
                next.position[1] - prev.position[1],
                next.position[2] - prev.position[2],
            ],
            gaze: (next.gaze.x - prev.gaze.x, next.gaze.y - prev.gaze.y),
            interaction: next.interaction - prev.interaction,
        }
    }

    /// Magnitude of the rotational change, degrees.
    #[must_use]
    pub fn rotation_magnitude(&self) -> f64 {
        (self.dof[0].powi(2) + self.dof[1].powi(2) + self.dof[2].powi(2)).sqrt()
    }

    /// Magnitude of the gaze movement, NDC units.
    #[must_use]
    pub fn gaze_magnitude(&self) -> f64 {
        (self.gaze.0.powi(2) + self.gaze.1.powi(2)).sqrt()
    }
}

/// A pre-generated, seed-deterministic sequence of motion samples.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionTrace {
    samples: Vec<MotionSample>,
}

impl MotionTrace {
    /// Generates `frames` samples for a profile and seed.
    #[must_use]
    pub fn generate(profile: &MotionProfile, frames: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(frames);

        let mut sample = MotionSample {
            gaze: GazePoint::center(),
            ..MotionSample::default()
        };
        // Segment state machine: calm <-> active. Starting at zero makes the
        // first frame draw a segment, so traces are stationary from frame 0.
        let mut active = false;
        let mut segment_left = 0u32;
        // Current smooth velocities.
        let mut vel_yaw = 0.0f64;
        let mut vel_pitch = 0.0f64;
        let mut gaze_target = GazePoint::center();
        let mut interaction_target = 0.0f64;

        for _ in 0..frames {
            if segment_left == 0 {
                // Active segments are more likely at higher activity.
                active = rng.gen_bool(profile.activity.clamp(0.05, 0.95));
                let jitter = rng.gen_range(0.6..1.4);
                segment_left = ((f64::from(profile.segment_len) * jitter).round() as u32).max(10);
                if active {
                    vel_yaw = rng.gen_range(-1.0..1.0) * profile.peak_head_velocity;
                    vel_pitch = rng.gen_range(-0.5..0.5) * profile.peak_head_velocity;
                    interaction_target = rng.gen_range(0.45..1.0);
                } else {
                    vel_yaw = rng.gen_range(-0.1..0.1);
                    vel_pitch = rng.gen_range(-0.05..0.05);
                    interaction_target = rng.gen_range(0.05..0.4);
                }
            }
            segment_left -= 1;

            // Head: smooth integration with small noise.
            sample.yaw += vel_yaw + rng.gen_range(-0.05..0.05);
            sample.pitch =
                (sample.pitch + vel_pitch + rng.gen_range(-0.03..0.03)).clamp(-60.0, 60.0);
            sample.roll += rng.gen_range(-0.02..0.02);
            for p in &mut sample.position {
                *p += rng.gen_range(-0.002..0.002) * (1.0 + profile.activity);
            }

            // Gaze: smooth pursuit toward a target; saccades jump the target.
            let saccade_p = if active {
                profile.saccade_rate
            } else {
                profile.saccade_rate * 0.3
            };
            if rng.gen_bool(saccade_p.clamp(0.0, 1.0)) {
                gaze_target =
                    GazePoint::clamped(rng.gen_range(-0.7..0.7), rng.gen_range(-0.6..0.6));
            }
            let pursuit = 0.15;
            sample.gaze = GazePoint::clamped(
                sample.gaze.x + (gaze_target.x - sample.gaze.x) * pursuit,
                sample.gaze.y + (gaze_target.y - sample.gaze.y) * pursuit,
            );

            // Interaction: first-order lag toward the segment target.
            sample.interaction += (interaction_target - sample.interaction) * 0.08;
            sample.interaction = sample.interaction.clamp(0.0, 1.0);

            samples.push(sample);
        }
        MotionTrace { samples }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sample at `frame`, or the last sample if past the end.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn sample(&self, frame: usize) -> MotionSample {
        assert!(!self.samples.is_empty(), "trace must be non-empty");
        self.samples[frame.min(self.samples.len() - 1)]
    }

    /// The motion delta feeding frame `frame` (zero for frame 0).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn delta(&self, frame: usize) -> MotionDelta {
        assert!(!self.samples.is_empty(), "trace must be non-empty");
        if frame == 0 {
            MotionDelta::default()
        } else {
            MotionDelta::between(&self.sample(frame - 1), &self.sample(frame))
        }
    }

    /// Iterator over all samples.
    pub fn iter(&self) -> impl Iterator<Item = &MotionSample> {
        self.samples.iter()
    }
}

impl fmt::Display for MotionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-frame motion trace", self.samples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = MotionProfile::typical();
        let a = MotionTrace::generate(&p, 300, 7);
        let b = MotionTrace::generate(&p, 300, 7);
        assert_eq!(a, b);
        let c = MotionTrace::generate(&p, 300, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn requested_length_produced() {
        let t = MotionTrace::generate(&MotionProfile::calm(), 123, 0);
        assert_eq!(t.len(), 123);
        assert!(!t.is_empty());
    }

    #[test]
    fn sample_clamps_past_end() {
        let t = MotionTrace::generate(&MotionProfile::calm(), 10, 0);
        assert_eq!(t.sample(9), t.sample(1000));
    }

    #[test]
    fn first_delta_is_zero() {
        let t = MotionTrace::generate(&MotionProfile::typical(), 10, 0);
        assert_eq!(t.delta(0), MotionDelta::default());
    }

    #[test]
    fn deltas_link_consecutive_samples() {
        let t = MotionTrace::generate(&MotionProfile::typical(), 50, 3);
        for i in 1..50 {
            let d = t.delta(i);
            let expect = MotionDelta::between(&t.sample(i - 1), &t.sample(i));
            assert_eq!(d, expect);
        }
    }

    #[test]
    fn frantic_moves_more_than_calm() {
        let frames = 600;
        let calm = MotionTrace::generate(&MotionProfile::calm(), frames, 11);
        let frantic = MotionTrace::generate(&MotionProfile::frantic(), frames, 11);
        let total_rotation =
            |t: &MotionTrace| -> f64 { (1..frames).map(|i| t.delta(i).rotation_magnitude()).sum() };
        assert!(
            total_rotation(&frantic) > 1.5 * total_rotation(&calm),
            "frantic {:.1} vs calm {:.1}",
            total_rotation(&frantic),
            total_rotation(&calm)
        );
    }

    #[test]
    fn gaze_stays_in_panel() {
        let t = MotionTrace::generate(&MotionProfile::frantic(), 1000, 5);
        for s in t.iter() {
            assert!(s.gaze.x.abs() <= 1.0 && s.gaze.y.abs() <= 1.0);
        }
    }

    #[test]
    fn interaction_stays_in_unit_range() {
        let t = MotionTrace::generate(&MotionProfile::frantic(), 1000, 5);
        for s in t.iter() {
            assert!((0.0..=1.0).contains(&s.interaction));
        }
    }

    #[test]
    fn interaction_varies_over_time() {
        let t = MotionTrace::generate(&MotionProfile::typical(), 1000, 9);
        let max = t.iter().map(|s| s.interaction).fold(0.0, f64::max);
        let min = t.iter().map(|s| s.interaction).fold(1.0, f64::min);
        assert!(max - min > 0.2, "interaction must vary, got [{min}, {max}]");
    }

    #[test]
    fn pitch_is_clamped() {
        let t = MotionTrace::generate(&MotionProfile::frantic(), 5000, 13);
        for s in t.iter() {
            assert!(s.pitch.abs() <= 60.0);
        }
    }

    #[test]
    fn delta_magnitudes() {
        let d = MotionDelta {
            dof: [3.0, 4.0, 0.0, 0.0, 0.0, 0.0],
            gaze: (0.3, 0.4),
            interaction: 0.0,
        };
        assert!((d.rotation_magnitude() - 5.0).abs() < 1e-12);
        assert!((d.gaze_magnitude() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_trace_sample_panics() {
        let t = MotionTrace { samples: vec![] };
        let _ = t.sample(0);
    }
}
