//! Scene, workload, and motion-trace generation for the Q-VR reproduction.
//!
//! The paper drives its simulator with OpenGL/DirectX API traces of
//! commercial games (Table 3) and characterises five photorealistic VR apps
//! on real hardware (Table 1). Neither the traces nor the game content can
//! be redistributed, so this crate builds the closest synthetic equivalent:
//! **app profiles** whose workload statistics (triangle budget, draw
//! batches, per-fragment cost, overdraw, content detail) are calibrated to
//! the published characteristics, combined with:
//!
//! * [`motion`] — seeded 6-DoF head + gaze motion traces with calm/active
//!   segments, saccades, and interaction bursts (the "unpredictable user
//!   inputs" of Sec. 2.2);
//! * [`complexity`] — a radial scene-complexity field describing how
//!   triangle density concentrates around the gaze point, which governs how
//!   fast local rendering cost grows with the fovea radius `e1`;
//! * [`interactive`] — the pre-defined interactive-object sets the *static*
//!   collaborative baseline renders locally (Table 1's `f` ranges);
//! * [`apps`] — the profiles themselves plus [`apps::AppSession`], a
//!   deterministic per-frame generator of [`apps::FrameState`]s.
//!
//! # Example
//!
//! ```
//! use qvr_scene::{Benchmark, apps::AppSession};
//!
//! let mut session = AppSession::start(Benchmark::Grid.profile(), 42);
//! let frame = session.advance();
//! assert!(frame.triangles > 0);
//! let w = session.profile().full_workload(&frame);
//! assert_eq!(w.width(), 1920);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod complexity;
pub mod interactive;
pub mod motion;

pub use apps::{AppProfile, AppSession, Benchmark, CharacterizationApp, FrameState};
pub use complexity::{ComplexityField, TriangleFractionCache};
pub use interactive::InteractiveObject;
pub use motion::{MotionDelta, MotionProfile, MotionSample, MotionTrace};
