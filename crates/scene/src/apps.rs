//! Application profiles and per-frame workload generation.
//!
//! Two app sets, matching the paper:
//!
//! * [`CharacterizationApp`] — the five photorealistic VR apps of Table 1 /
//!   Fig. 3 (Foveated3D, Viking, Nature, Sponza, San Miguel), profiled on a
//!   Gen9-class platform for the motivation study.
//! * [`Benchmark`] — the seven simulator benchmarks of Table 3 (Doom3-H/L,
//!   HL2-H/L, GRID, UT3, Wolf) evaluated on the Mali-class mobile GPU.
//!
//! Each [`AppProfile`] is calibrated so that the *published* characteristics
//! come out of our substrate models: triangle counts and draw batches match
//! Tables 1 and 3 directly; per-fragment shading cost and overdraw are
//! fitted so baseline local rendering latency lands in the ranges of
//! Fig. 3(a) and Table 1; content detail is fitted so compressed background
//! frames land near Table 1's "Back Size" column.
//!
//! An [`AppSession`] walks a seeded motion trace and emits one
//! [`FrameState`] per frame: the motion sample and delta, this frame's
//! triangle count (complexity varies with user motion and interaction), the
//! interactive-object workload share, and the content detail seen by the
//! codec.

use crate::complexity::{ComplexityField, TriangleFractionCache};
use crate::interactive::InteractiveObject;
use crate::motion::{MotionDelta, MotionProfile, MotionSample, MotionTrace};
use qvr_gpu::FrameWorkload;
use qvr_hvs::DisplayGeometry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A fully calibrated application profile.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Display name (Table 1 / Table 3 spelling).
    pub name: &'static str,
    /// Per-eye display geometry (resolution + FOV).
    pub display: DisplayGeometry,
    /// Scene triangle budget for a typical frame.
    pub base_triangles: u64,
    /// Draw batches per frame (Table 3 `#Batches`).
    pub batches: u64,
    /// ALU cycles per vertex.
    pub vertex_shader_cycles: f64,
    /// ALU cycles per fragment (fitted to published latencies).
    pub fragment_shader_cycles: f64,
    /// Overdraw factor.
    pub overdraw: f64,
    /// Texture samples per fragment.
    pub texture_samples_per_fragment: f64,
    /// Radial complexity concentration around the gaze.
    pub complexity: ComplexityField,
    /// Amplitude of frame-to-frame workload variation, `[0, 1]`.
    pub complexity_variation: f64,
    /// The static baseline's pre-defined interactive objects.
    pub interactive: InteractiveObject,
    /// Baseline image detail for the codec, `[0, 1]` (fitted to Table 1
    /// "Back Size").
    pub content_detail: f64,
    /// User-motion character while playing this app.
    pub motion: MotionProfile,
}

impl AppProfile {
    /// Full-frame per-eye workload for one frame.
    #[must_use]
    pub fn full_workload(&self, frame: &FrameState) -> FrameWorkload {
        FrameWorkload::builder(self.display.width_px(), self.display.height_px())
            .triangles(frame.triangles)
            .coverage(1.0)
            .overdraw(self.overdraw)
            .vertex_shader_cycles(self.vertex_shader_cycles)
            .fragment_shader_cycles(self.fragment_shader_cycles)
            .texture_samples_per_fragment(self.texture_samples_per_fragment)
            .batches(self.batches)
            .build()
    }

    /// The local fovea-layer workload at eccentricity `e1` degrees.
    ///
    /// Screen coverage comes from the clipped disc geometry; the triangle
    /// share from the complexity field around the current gaze.
    #[must_use]
    pub fn fovea_workload(&self, frame: &FrameState, e1_deg: f64) -> FrameWorkload {
        let area = self.display.fovea_area_fraction(e1_deg, frame.sample.gaze);
        let tris = self
            .complexity
            .triangle_fraction(e1_deg, &self.display, frame.sample.gaze);
        self.full_workload(frame).scaled_region(area, tris)
    }

    /// Triangle share inside the fovea disc at `e1` (the `%fovea` of Eq. 2).
    #[must_use]
    pub fn fovea_triangle_fraction(&self, frame: &FrameState, e1_deg: f64) -> f64 {
        self.complexity
            .triangle_fraction(e1_deg, &self.display, frame.sample.gaze)
    }

    /// [`AppProfile::fovea_workload`] through a per-frame triangle-fraction
    /// memo (bit-identical results; the cache belongs to one session's
    /// profile — see [`TriangleFractionCache`]).
    #[must_use]
    pub fn fovea_workload_cached(
        &self,
        frame: &FrameState,
        e1_deg: f64,
        cache: &mut TriangleFractionCache,
    ) -> FrameWorkload {
        let area = self.display.fovea_area_fraction(e1_deg, frame.sample.gaze);
        let tris = self.complexity.triangle_fraction_cached(
            e1_deg,
            &self.display,
            frame.sample.gaze,
            cache,
        );
        self.full_workload(frame).scaled_region(area, tris)
    }

    /// [`AppProfile::fovea_triangle_fraction`] through a per-frame memo
    /// (bit-identical results).
    #[must_use]
    pub fn fovea_triangle_fraction_cached(
        &self,
        frame: &FrameState,
        e1_deg: f64,
        cache: &mut TriangleFractionCache,
    ) -> f64 {
        self.complexity
            .triangle_fraction_cached(e1_deg, &self.display, frame.sample.gaze, cache)
    }

    /// The static baseline's locally rendered interactive-object workload.
    #[must_use]
    pub fn interactive_workload(&self, frame: &FrameState) -> FrameWorkload {
        let f = frame.interactive_fraction;
        self.full_workload(frame).scaled_region(f, f)
    }

    /// The static baseline's remotely rendered background workload.
    #[must_use]
    pub fn background_workload(&self, frame: &FrameState) -> FrameWorkload {
        let f = 1.0 - frame.interactive_fraction;
        self.full_workload(frame).scaled_region(f, f)
    }
}

impl fmt::Display for AppProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}x{}, {}K tris, {} batches)",
            self.name,
            self.display.width_px(),
            self.display.height_px(),
            self.base_triangles / 1_000,
            self.batches
        )
    }
}

/// One frame of application state, as produced by [`AppSession`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameState {
    /// Frame index from session start.
    pub frame_id: u64,
    /// Absolute head pose and gaze this frame.
    pub sample: MotionSample,
    /// Motion change since the previous frame.
    pub delta: MotionDelta,
    /// Scene triangles submitted this frame.
    pub triangles: u64,
    /// Workload multiplier relative to the app's base (diagnostic).
    pub complexity_multiplier: f64,
    /// Share of frame rendering time owed to interactive objects (the
    /// static baseline's `f`).
    pub interactive_fraction: f64,
    /// Image detail seen by the video codec this frame, `[0, 1]`.
    pub content_detail: f64,
}

/// A deterministic per-frame generator for one app run.
#[derive(Debug, Clone)]
pub struct AppSession {
    profile: AppProfile,
    trace: MotionTrace,
    frame: u64,
    rng: StdRng,
    detail_phase: f64,
}

impl AppSession {
    /// Trace length generated up-front; sessions longer than this repeat the
    /// last pose (they rarely should be).
    const TRACE_FRAMES: usize = 4_096;

    /// Starts a session for a profile with a deterministic seed.
    #[must_use]
    pub fn start(profile: AppProfile, seed: u64) -> Self {
        let trace = MotionTrace::generate(&profile.motion, Self::TRACE_FRAMES, seed);
        AppSession {
            profile,
            trace,
            frame: 0,
            rng: StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF),
            detail_phase: (seed % 97) as f64 / 97.0,
        }
    }

    /// The profile being run.
    #[must_use]
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Frames generated so far.
    #[must_use]
    pub fn frames_generated(&self) -> u64 {
        self.frame
    }

    /// Produces the next frame's state.
    pub fn advance(&mut self) -> FrameState {
        let id = self.frame;
        self.frame += 1;
        let idx = id as usize;
        let sample = self.trace.sample(idx);
        let delta = self.trace.delta(idx);

        // Workload variation: slow content drift + motion-coupled change
        // (new geometry streams in as the head turns) + interaction detail.
        let p = &self.profile;
        let slow = (id as f64 / 211.0 * std::f64::consts::TAU + self.detail_phase).sin();
        let fast = (id as f64 / 53.0 * std::f64::consts::TAU).sin();
        let motion_term = (delta.rotation_magnitude() / 2.0).min(1.0);
        let noise: f64 = self.rng.gen_range(-0.1..0.1);
        let mult = 1.0
            + p.complexity_variation
                * (0.45 * slow
                    + 0.2 * fast
                    + 0.45 * motion_term
                    + 0.35 * sample.interaction
                    + noise);
        let mult = mult.clamp(0.6, 1.7);

        let interactive_fraction = p.interactive.fraction_at(sample.interaction);

        let detail = (p.content_detail
            + 0.08 * slow
            + 0.10 * sample.interaction
            + self.rng.gen_range(-0.02..0.02))
        .clamp(0.05, 1.0);

        FrameState {
            frame_id: id,
            sample,
            delta,
            triangles: (p.base_triangles as f64 * mult).round() as u64,
            complexity_multiplier: mult,
            interactive_fraction,
            content_detail: detail,
        }
    }
}

/// The seven simulator benchmarks of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Doom 3 at 1920×2160 per eye (OpenGL, 382 batches).
    Doom3H,
    /// Doom 3 at 1280×1600 per eye.
    Doom3L,
    /// Half-Life 2 at 1920×2160 per eye (DirectX, 656 batches).
    Hl2H,
    /// Half-Life 2 at 1280×1600 per eye.
    Hl2L,
    /// GRID at 1920×2160 per eye (DirectX, 3680 batches).
    Grid,
    /// Unreal Tournament 3 at 1920×2160 per eye (DirectX, 1752 batches).
    Ut3,
    /// Wolfenstein at 1920×2160 per eye (DirectX, 3394 batches).
    Wolf,
}

impl Benchmark {
    /// All seven, in the paper's column order.
    #[must_use]
    pub fn all() -> [Benchmark; 7] {
        [
            Benchmark::Doom3H,
            Benchmark::Doom3L,
            Benchmark::Hl2H,
            Benchmark::Hl2L,
            Benchmark::Grid,
            Benchmark::Ut3,
            Benchmark::Wolf,
        ]
    }

    /// The paper's display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Benchmark::Doom3H => "Doom3-H",
            Benchmark::Doom3L => "Doom3-L",
            Benchmark::Hl2H => "HL2-H",
            Benchmark::Hl2L => "HL2-L",
            Benchmark::Grid => "GRID",
            Benchmark::Ut3 => "UT3",
            Benchmark::Wolf => "Wolf",
        }
    }

    /// The calibrated profile.
    #[must_use]
    pub fn profile(&self) -> AppProfile {
        let hi = DisplayGeometry::vive_pro_class();
        let lo = DisplayGeometry::low_res_class();
        match self {
            Benchmark::Doom3H => AppProfile {
                name: "Doom3-H",
                display: hi,
                base_triangles: 800_000,
                batches: 382,
                vertex_shader_cycles: 12.0,
                fragment_shader_cycles: 48.0,
                overdraw: 1.6,
                texture_samples_per_fragment: 1.6,
                complexity: ComplexityField::new(1.0, 25.0),
                complexity_variation: 0.22,
                interactive: InteractiveObject::new("Weapons, 2 Demons", 0.08, 0.25),
                content_detail: 0.50,
                motion: MotionProfile::typical(),
            },
            Benchmark::Doom3L => AppProfile {
                display: lo,
                name: "Doom3-L",
                base_triangles: 650_000,
                batches: 382,
                fragment_shader_cycles: 38.0,
                overdraw: 1.4,
                complexity: ComplexityField::new(0.5, 30.0),
                content_detail: 0.42,
                ..Benchmark::Doom3H.profile()
            },
            Benchmark::Hl2H => AppProfile {
                name: "HL2-H",
                display: hi,
                base_triangles: 1_200_000,
                batches: 656,
                vertex_shader_cycles: 12.0,
                fragment_shader_cycles: 60.0,
                overdraw: 1.8,
                texture_samples_per_fragment: 1.8,
                complexity: ComplexityField::new(2.5, 18.0),
                complexity_variation: 0.25,
                interactive: InteractiveObject::new("Gravity-gun props", 0.10, 0.30),
                content_detail: 0.55,
                motion: MotionProfile::typical(),
            },
            Benchmark::Hl2L => AppProfile {
                display: lo,
                name: "HL2-L",
                base_triangles: 1_000_000,
                fragment_shader_cycles: 55.0,
                complexity: ComplexityField::new(2.0, 20.0),
                content_detail: 0.48,
                ..Benchmark::Hl2H.profile()
            },
            Benchmark::Grid => AppProfile {
                name: "GRID",
                display: hi,
                base_triangles: 1_500_000,
                batches: 3_680,
                vertex_shader_cycles: 14.0,
                fragment_shader_cycles: 80.0,
                overdraw: 2.4,
                texture_samples_per_fragment: 2.2,
                complexity: ComplexityField::new(6.0, 12.0),
                complexity_variation: 0.30,
                interactive: InteractiveObject::new("Player car", 0.15, 0.45),
                content_detail: 0.70,
                motion: MotionProfile::frantic(),
            },
            Benchmark::Ut3 => AppProfile {
                name: "UT3",
                display: hi,
                base_triangles: 1_000_000,
                batches: 1_752,
                vertex_shader_cycles: 12.0,
                fragment_shader_cycles: 70.0,
                overdraw: 2.0,
                texture_samples_per_fragment: 2.0,
                complexity: ComplexityField::new(2.5, 16.0),
                complexity_variation: 0.28,
                interactive: InteractiveObject::new("Weapons, 3 Bots", 0.10, 0.35),
                content_detail: 0.60,
                motion: MotionProfile::frantic(),
            },
            Benchmark::Wolf => AppProfile {
                name: "Wolf",
                display: hi,
                base_triangles: 1_300_000,
                batches: 3_394,
                vertex_shader_cycles: 12.0,
                fragment_shader_cycles: 68.0,
                overdraw: 2.2,
                texture_samples_per_fragment: 2.0,
                complexity: ComplexityField::new(4.0, 15.0),
                complexity_variation: 0.26,
                interactive: InteractiveObject::new("Weapons, 4 Soldiers", 0.12, 0.40),
                content_detail: 0.65,
                motion: MotionProfile::typical(),
            },
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The five Table 1 / Fig. 3 characterization apps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CharacterizationApp {
    /// Guenter et al.'s chess scene (231 K triangles, 9 chess pieces).
    Foveated3D,
    /// Unity "Viking Village" (2.8 M triangles, 1 carriage).
    Viking,
    /// Unity "Nature" (1.4 M triangles, 1 tree).
    Nature,
    /// Crytek Sponza (282 K triangles, lion shield).
    Sponza,
    /// San Miguel (4.2 M triangles, 4 chairs + 1 table).
    SanMiguel,
}

impl CharacterizationApp {
    /// All five, in Table 1 row order.
    #[must_use]
    pub fn all() -> [CharacterizationApp; 5] {
        [
            CharacterizationApp::Foveated3D,
            CharacterizationApp::Viking,
            CharacterizationApp::Nature,
            CharacterizationApp::Sponza,
            CharacterizationApp::SanMiguel,
        ]
    }

    /// The paper's display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CharacterizationApp::Foveated3D => "Foveated3D",
            CharacterizationApp::Viking => "Viking",
            CharacterizationApp::Nature => "Nature",
            CharacterizationApp::Sponza => "Sponze",
            CharacterizationApp::SanMiguel => "San Miguel",
        }
    }

    /// The calibrated profile (Gen9-class platform, Sec. 2.3).
    #[must_use]
    pub fn profile(&self) -> AppProfile {
        let hi = DisplayGeometry::vive_pro_class();
        match self {
            CharacterizationApp::Foveated3D => AppProfile {
                name: "Foveated3D",
                display: hi,
                base_triangles: 231_000,
                batches: 420,
                vertex_shader_cycles: 12.0,
                fragment_shader_cycles: 200.0,
                overdraw: 2.1,
                texture_samples_per_fragment: 2.5,
                complexity: ComplexityField::new(3.0, 18.0),
                complexity_variation: 0.35,
                interactive: InteractiveObject::new("9 Chess", 0.16, 0.52),
                content_detail: 0.75,
                motion: MotionProfile::typical(),
            },
            CharacterizationApp::Viking => AppProfile {
                name: "Viking",
                display: hi,
                base_triangles: 2_800_000,
                batches: 900,
                vertex_shader_cycles: 12.0,
                fragment_shader_cycles: 170.0,
                overdraw: 2.0,
                texture_samples_per_fragment: 2.0,
                complexity: ComplexityField::new(1.5, 22.0),
                complexity_variation: 0.12,
                interactive: InteractiveObject::new("1 Carriage", 0.10, 0.13),
                content_detail: 0.55,
                motion: MotionProfile::calm(),
            },
            CharacterizationApp::Nature => AppProfile {
                name: "Nature",
                display: hi,
                base_triangles: 1_400_000,
                batches: 700,
                vertex_shader_cycles: 12.0,
                fragment_shader_cycles: 150.0,
                overdraw: 2.0,
                texture_samples_per_fragment: 2.2,
                complexity: ComplexityField::new(2.0, 20.0),
                complexity_variation: 0.25,
                interactive: InteractiveObject::new("1 Tree", 0.10, 0.24),
                content_detail: 0.45,
                motion: MotionProfile::typical(),
            },
            CharacterizationApp::Sponza => AppProfile {
                name: "Sponze",
                display: hi,
                base_triangles: 282_000,
                batches: 380,
                vertex_shader_cycles: 12.0,
                fragment_shader_cycles: 105.0,
                overdraw: 1.9,
                texture_samples_per_fragment: 2.0,
                complexity: ComplexityField::new(1.8, 20.0),
                complexity_variation: 0.30,
                interactive: InteractiveObject::new("Lion Shield", 0.001, 0.20),
                content_detail: 0.57,
                motion: MotionProfile::typical(),
            },
            CharacterizationApp::SanMiguel => AppProfile {
                name: "San Miguel",
                display: hi,
                base_triangles: 4_200_000,
                batches: 1_100,
                vertex_shader_cycles: 12.0,
                fragment_shader_cycles: 135.0,
                overdraw: 2.2,
                texture_samples_per_fragment: 2.4,
                complexity: ComplexityField::new(1.6, 24.0),
                complexity_variation: 0.15,
                interactive: InteractiveObject::new("4 Chairs, 1 Table", 0.06, 0.15),
                content_detail: 0.63,
                motion: MotionProfile::calm(),
            },
        }
    }
}

impl fmt::Display for CharacterizationApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_table3_batches() {
        assert_eq!(Benchmark::Doom3H.profile().batches, 382);
        assert_eq!(Benchmark::Doom3L.profile().batches, 382);
        assert_eq!(Benchmark::Hl2H.profile().batches, 656);
        assert_eq!(Benchmark::Hl2L.profile().batches, 656);
        assert_eq!(Benchmark::Grid.profile().batches, 3_680);
        assert_eq!(Benchmark::Ut3.profile().batches, 1_752);
        assert_eq!(Benchmark::Wolf.profile().batches, 3_394);
    }

    #[test]
    fn resolution_matches_table3() {
        for b in Benchmark::all() {
            let p = b.profile();
            let (w, h) = (p.display.width_px(), p.display.height_px());
            match b {
                Benchmark::Doom3L | Benchmark::Hl2L => assert_eq!((w, h), (1280, 1600)),
                _ => assert_eq!((w, h), (1920, 2160)),
            }
        }
    }

    #[test]
    fn table1_triangle_budgets() {
        assert_eq!(
            CharacterizationApp::Foveated3D.profile().base_triangles,
            231_000
        );
        assert_eq!(
            CharacterizationApp::Viking.profile().base_triangles,
            2_800_000
        );
        assert_eq!(
            CharacterizationApp::Nature.profile().base_triangles,
            1_400_000
        );
        assert_eq!(
            CharacterizationApp::Sponza.profile().base_triangles,
            282_000
        );
        assert_eq!(
            CharacterizationApp::SanMiguel.profile().base_triangles,
            4_200_000
        );
    }

    #[test]
    fn table1_interactive_ranges() {
        let n = CharacterizationApp::Nature.profile();
        assert!((n.interactive.f_min() - 0.10).abs() < 1e-12);
        assert!((n.interactive.f_max() - 0.24).abs() < 1e-12);
    }

    #[test]
    fn session_is_deterministic() {
        let mut a = AppSession::start(Benchmark::Grid.profile(), 17);
        let mut b = AppSession::start(Benchmark::Grid.profile(), 17);
        for _ in 0..100 {
            assert_eq!(a.advance(), b.advance());
        }
    }

    #[test]
    fn session_frames_count_up() {
        let mut s = AppSession::start(Benchmark::Ut3.profile(), 1);
        assert_eq!(s.advance().frame_id, 0);
        assert_eq!(s.advance().frame_id, 1);
        assert_eq!(s.frames_generated(), 2);
    }

    #[test]
    fn triangles_vary_but_stay_bounded() {
        let mut s = AppSession::start(Benchmark::Grid.profile(), 3);
        let base = Benchmark::Grid.profile().base_triangles as f64;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for _ in 0..600 {
            let f = s.advance();
            let t = f.triangles as f64;
            min = min.min(t);
            max = max.max(t);
            assert!(t > 0.5 * base && t < 2.0 * base);
        }
        assert!(max / min > 1.1, "workload must vary across frames");
    }

    #[test]
    fn interactive_fraction_within_profile_range() {
        let p = Benchmark::Grid.profile();
        let (lo, hi) = (p.interactive.f_min(), p.interactive.f_max());
        let mut s = AppSession::start(p, 5);
        for _ in 0..500 {
            let f = s.advance();
            assert!(f.interactive_fraction >= lo - 1e-9);
            assert!(f.interactive_fraction <= hi + 1e-9);
        }
    }

    #[test]
    fn fovea_workload_smaller_than_full() {
        let p = Benchmark::Hl2H.profile();
        let mut s = AppSession::start(p.clone(), 9);
        let frame = s.advance();
        let full = p.full_workload(&frame);
        let fovea = p.fovea_workload(&frame, 15.0);
        assert!(fovea.fragments() < full.fragments());
        assert!(fovea.triangles() < full.triangles());
        assert!(fovea.triangles() > 0);
    }

    #[test]
    fn fovea_triangle_fraction_grows() {
        let p = Benchmark::Grid.profile();
        let mut s = AppSession::start(p.clone(), 9);
        let frame = s.advance();
        let f10 = p.fovea_triangle_fraction(&frame, 10.0);
        let f40 = p.fovea_triangle_fraction(&frame, 40.0);
        assert!(f40 > f10);
    }

    #[test]
    fn interactive_plus_background_partition_frame() {
        let p = CharacterizationApp::Nature.profile();
        let mut s = AppSession::start(p.clone(), 2);
        let frame = s.advance();
        let int = p.interactive_workload(&frame);
        let bg = p.background_workload(&frame);
        let full = p.full_workload(&frame);
        let total = int.fragments() + bg.fragments();
        assert!((total / full.fragments() - 1.0).abs() < 0.01);
    }

    #[test]
    fn content_detail_in_unit_range() {
        let mut s = AppSession::start(Benchmark::Wolf.profile(), 4);
        for _ in 0..300 {
            let f = s.advance();
            assert!((0.0..=1.0).contains(&f.content_detail));
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Benchmark::Grid.to_string(), "GRID");
        assert_eq!(CharacterizationApp::SanMiguel.to_string(), "San Miguel");
    }
}
