//! Radial scene-complexity fields.
//!
//! How much of a scene's geometry lands inside a fovea disc of radius `e1`
//! determines the local rendering cost in Q-VR (Eq. 2's `#triangles ×
//! %fovea`). Game scenes are not uniform: detail concentrates where users
//! look (interactive objects, focal architecture). We model triangle
//! density as a radial profile around the gaze point,
//!
//! ```text
//! density(e) = 1 + k · exp(−e² / 2σ²)
//! ```
//!
//! with `k` the *center concentration* and `σ` its angular extent. The
//! fraction of frame triangles within eccentricity `e1` is the ring-
//! integrated density, where ring weights come from the display's clipped
//! disc geometry (so off-screen parts of the disc never count).

use qvr_hvs::{DisplayGeometry, GazePoint};
use std::fmt;

/// A radial triangle-density field around the gaze point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComplexityField {
    concentration: f64,
    sigma_deg: f64,
}

impl ComplexityField {
    /// Integration step in degrees.
    const STEP: f64 = 0.5;

    /// Creates a field with center concentration `k ≥ 0` and angular extent
    /// `σ > 0` degrees.
    ///
    /// # Panics
    ///
    /// Panics if `concentration` is negative or `sigma_deg` is not positive.
    #[must_use]
    pub fn new(concentration: f64, sigma_deg: f64) -> Self {
        assert!(concentration >= 0.0, "concentration must be non-negative");
        assert!(sigma_deg > 0.0, "sigma must be positive");
        ComplexityField {
            concentration,
            sigma_deg,
        }
    }

    /// A uniform field: triangles spread evenly over the view.
    #[must_use]
    pub fn uniform() -> Self {
        ComplexityField {
            concentration: 0.0,
            sigma_deg: 30.0,
        }
    }

    /// The center concentration `k`.
    #[must_use]
    pub fn concentration(&self) -> f64 {
        self.concentration
    }

    /// The angular extent `σ` in degrees.
    #[must_use]
    pub fn sigma_deg(&self) -> f64 {
        self.sigma_deg
    }

    /// Relative triangle density at eccentricity `e` degrees from gaze.
    #[must_use]
    pub fn density(&self, e_deg: f64) -> f64 {
        1.0 + self.concentration * (-0.5 * (e_deg / self.sigma_deg).powi(2)).exp()
    }

    /// Fraction of the frame's triangles inside the eccentricity disc of
    /// radius `e1` centred at `gaze`, in `[0, 1]`.
    ///
    /// Ring weights are the derivative of the clipped disc area, so gaze
    /// points near the panel edge integrate correctly.
    #[must_use]
    pub fn triangle_fraction(
        &self,
        e1_deg: f64,
        display: &DisplayGeometry,
        gaze: GazePoint,
    ) -> f64 {
        if e1_deg <= 0.0 {
            return 0.0;
        }
        let e_max = display.max_eccentricity().0 * 1.5;
        let num = self.integrate(e1_deg.min(e_max), display, gaze);
        let den = self.integrate(e_max, display, gaze);
        Self::fraction_of(num, den)
    }

    /// `triangle_fraction` through a per-frame memo (see
    /// [`TriangleFractionCache`]): the gaze-wide denominator integral is
    /// computed once per gaze and each distinct `e1` once. Results are
    /// bit-identical to [`ComplexityField::triangle_fraction`] — the cache
    /// only skips recomputing integrals it has already run.
    #[must_use]
    pub fn triangle_fraction_cached(
        &self,
        e1_deg: f64,
        display: &DisplayGeometry,
        gaze: GazePoint,
        cache: &mut TriangleFractionCache,
    ) -> f64 {
        if e1_deg <= 0.0 {
            return 0.0;
        }
        cache.rekey(gaze);
        if let Some(frac) = cache.lookup(e1_deg) {
            return frac;
        }
        let e_max = display.max_eccentricity().0 * 1.5;
        let num = self.integrate(e1_deg.min(e_max), display, gaze);
        let den = match cache.den {
            Some(den) => den,
            None => {
                let den = self.integrate(e_max, display, gaze);
                cache.den = Some(den);
                den
            }
        };
        let frac = Self::fraction_of(num, den);
        cache.insert(e1_deg, frac);
        frac
    }

    fn fraction_of(num: f64, den: f64) -> f64 {
        if den <= 0.0 {
            0.0
        } else {
            (num / den).clamp(0.0, 1.0)
        }
    }

    fn integrate(&self, upto_deg: f64, display: &DisplayGeometry, gaze: GazePoint) -> f64 {
        // Once a grid radius certainly covers the whole clipped panel, every
        // later ring is the difference of two bit-identical saturated areas
        // — exactly 0.0 — so the loop can stop. `saturation_radius` is
        // conservative by a full degree: rings near the boundary still run
        // the real integration.
        let r_sat = display.saturation_radius_deg(gaze) + 1.0;
        let mut sum = 0.0;
        let mut prev_area = 0.0;
        let mut e = Self::STEP;
        while e <= upto_deg + 1e-9 {
            if e - Self::STEP >= r_sat {
                // Previous grid radius was already saturated; this ring and
                // every remaining one (including the partial last ring)
                // would add exactly 0.0.
                return sum;
            }
            let area = display.fovea_area_fraction(e, gaze);
            let ring = (area - prev_area).max(0.0);
            sum += ring * self.density(e - Self::STEP / 2.0);
            prev_area = area;
            e += Self::STEP;
        }
        // Partial last ring.
        let rem = upto_deg - (e - Self::STEP);
        if rem > 1e-9 {
            let area = display.fovea_area_fraction(upto_deg, gaze);
            let ring = (area - prev_area).max(0.0);
            sum += ring * self.density(upto_deg - rem / 2.0);
        }
        sum
    }
}

/// Per-frame memo for [`ComplexityField::triangle_fraction_cached`].
///
/// Keyed by the gaze point's raw bits: a new gaze clears everything. One
/// cache belongs to ONE (field, display) pair — steppers own one per
/// session; sharing across profiles would mix incompatible integrals.
#[derive(Debug, Clone, Default)]
pub struct TriangleFractionCache {
    gaze: Option<(u64, u64)>,
    den: Option<f64>,
    entries: Vec<(u64, f64)>,
}

impl TriangleFractionCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn rekey(&mut self, gaze: GazePoint) {
        let key = (gaze.x.to_bits(), gaze.y.to_bits());
        if self.gaze != Some(key) {
            self.gaze = Some(key);
            self.den = None;
            self.entries.clear();
        }
    }

    fn lookup(&self, e1_deg: f64) -> Option<f64> {
        let key = e1_deg.to_bits();
        self.entries
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, f)| *f)
    }

    fn insert(&mut self, e1_deg: f64, frac: f64) {
        self.entries.push((e1_deg.to_bits(), frac));
    }
}

impl Default for ComplexityField {
    fn default() -> Self {
        ComplexityField::new(3.0, 20.0)
    }
}

impl fmt::Display for ComplexityField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "density(e) = 1 + {:.1}·exp(-e²/2·{:.0}²)",
            self.concentration, self.sigma_deg
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn display() -> DisplayGeometry {
        DisplayGeometry::vive_pro_class()
    }

    #[test]
    fn density_peaks_at_center() {
        let f = ComplexityField::new(4.0, 15.0);
        assert!(f.density(0.0) > f.density(10.0));
        assert!(f.density(10.0) > f.density(40.0));
        assert!((f.density(0.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_density_is_flat() {
        let f = ComplexityField::uniform();
        assert_eq!(f.density(0.0), f.density(50.0));
    }

    #[test]
    fn fraction_monotone_in_radius() {
        let f = ComplexityField::default();
        let d = display();
        let g = GazePoint::center();
        let mut last = 0.0;
        for e in 1..=90 {
            let frac = f.triangle_fraction(f64::from(e), &d, g);
            assert!(frac + 1e-9 >= last, "fraction must grow with e1");
            assert!((0.0..=1.0).contains(&frac));
            last = frac;
        }
    }

    #[test]
    fn full_disc_captures_everything() {
        let f = ComplexityField::default();
        let frac = f.triangle_fraction(120.0, &display(), GazePoint::center());
        assert!(
            frac > 0.999,
            "whole view must contain all triangles, got {frac}"
        );
    }

    #[test]
    fn zero_radius_captures_nothing() {
        let f = ComplexityField::default();
        assert_eq!(
            f.triangle_fraction(0.0, &display(), GazePoint::center()),
            0.0
        );
    }

    #[test]
    fn concentrated_field_front_loads_triangles() {
        let d = display();
        let g = GazePoint::center();
        let uniform = ComplexityField::uniform();
        let concentrated = ComplexityField::new(8.0, 10.0);
        let e1 = 15.0;
        let fu = uniform.triangle_fraction(e1, &d, g);
        let fc = concentrated.triangle_fraction(e1, &d, g);
        assert!(
            fc > 1.5 * fu,
            "concentration must front-load triangles: uniform {fu}, concentrated {fc}"
        );
    }

    #[test]
    fn uniform_fraction_tracks_area() {
        let d = display();
        let g = GazePoint::center();
        let f = ComplexityField::uniform();
        for e1 in [10.0, 25.0, 45.0] {
            let frac = f.triangle_fraction(e1, &d, g);
            // With a flat density, triangle share equals (visible) area
            // share of the whole extended view; compare against the ratio of
            // clipped disc areas.
            let area_ratio = d.fovea_area_fraction(e1, g)
                / d.fovea_area_fraction(d.max_eccentricity().0 * 1.5, g);
            assert!(
                (frac - area_ratio).abs() < 0.02,
                "e1={e1}: {frac} vs {area_ratio}"
            );
        }
    }

    #[test]
    fn off_center_gaze_still_integrates() {
        let f = ComplexityField::default();
        let frac = f.triangle_fraction(20.0, &display(), GazePoint::clamped(0.8, -0.7));
        assert!(frac > 0.0 && frac < 1.0);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn zero_sigma_rejected() {
        let _ = ComplexityField::new(1.0, 0.0);
    }

    #[test]
    fn display_format() {
        let s = ComplexityField::default().to_string();
        assert!(s.contains("density"));
    }
}
