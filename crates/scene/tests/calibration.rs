//! Coarse calibration checks: baseline local rendering latencies of the
//! profiles must land in the bands the paper publishes (Fig. 3a, Table 1).
//!
//! Run with `--nocapture` to see the fitted values.

use qvr_gpu::{GpuConfig, GpuTimingModel};
use qvr_scene::{AppSession, Benchmark, CharacterizationApp};

/// Mean stereo render time over a few hundred frames.
fn mean_stereo_ms(model: &GpuTimingModel, mut session: AppSession, frames: usize) -> f64 {
    let mut sum = 0.0;
    for _ in 0..frames {
        let f = session.advance();
        let w = session.profile().full_workload(&f);
        sum += model.stereo_frame_time(&w).total_ms();
    }
    sum / frames as f64
}

#[test]
fn benchmarks_land_in_mobile_band() {
    let model = GpuTimingModel::new(GpuConfig::mali_g76_class());
    for b in Benchmark::all() {
        let t = mean_stereo_ms(&model, AppSession::start(b.profile(), 42), 200);
        println!("{:10} baseline local stereo render: {t:7.1} ms", b.label());
        // Fig. 3a band: heavy apps run at 8–25 FPS on mobile silicon, i.e.
        // roughly 15–140 ms of GPU time per frame.
        assert!((12.0..150.0).contains(&t), "{b}: {t} ms out of band");
    }
}

#[test]
fn grid_is_the_heaviest_benchmark() {
    let model = GpuTimingModel::new(GpuConfig::mali_g76_class());
    let grid = mean_stereo_ms(
        &model,
        AppSession::start(Benchmark::Grid.profile(), 42),
        200,
    );
    for b in Benchmark::all() {
        if b != Benchmark::Grid {
            let t = mean_stereo_ms(&model, AppSession::start(b.profile(), 42), 200);
            assert!(grid >= t, "{b} ({t} ms) heavier than GRID ({grid} ms)");
        }
    }
}

#[test]
fn low_res_variants_are_lighter() {
    let model = GpuTimingModel::new(GpuConfig::mali_g76_class());
    let d3h = mean_stereo_ms(
        &model,
        AppSession::start(Benchmark::Doom3H.profile(), 1),
        200,
    );
    let d3l = mean_stereo_ms(
        &model,
        AppSession::start(Benchmark::Doom3L.profile(), 1),
        200,
    );
    let h2h = mean_stereo_ms(&model, AppSession::start(Benchmark::Hl2H.profile(), 1), 200);
    let h2l = mean_stereo_ms(&model, AppSession::start(Benchmark::Hl2L.profile(), 1), 200);
    assert!(d3l < d3h);
    assert!(h2l < h2h);
}

#[test]
fn characterization_apps_match_table1_full_frame_times() {
    // Table 1 implies full-frame latencies via T_local / f: Foveated3D
    // ≈ 126 ms, Viking ≈ 113 ms, Nature ≈ 94 ms, Sponza ≈ 58 ms, San Miguel
    // ≈ 105 ms on the Gen9-class platform.
    let model = GpuTimingModel::new(GpuConfig::gen9_class());
    let expect = [
        (CharacterizationApp::Foveated3D, 126.0),
        (CharacterizationApp::Viking, 113.0),
        (CharacterizationApp::Nature, 94.0),
        (CharacterizationApp::Sponza, 58.0),
        (CharacterizationApp::SanMiguel, 105.0),
    ];
    for (app, target) in expect {
        let t = mean_stereo_ms(&model, AppSession::start(app.profile(), 42), 200);
        println!(
            "{:12} full-frame: {t:7.1} ms (target = {target} ms)",
            app.label()
        );
        assert!(
            (t - target).abs() / target < 0.35,
            "{app}: {t:.1} ms vs target {target} ms (>35% off)"
        );
    }
}

#[test]
fn static_interactive_latencies_match_table1() {
    // Table 1's Avg. T_local column: Foveated3D 43 ms, Viking 13 ms,
    // Nature 16 ms, Sponza 5.8 ms, San Miguel 11 ms.
    let model = GpuTimingModel::new(GpuConfig::gen9_class());
    let expect = [
        (CharacterizationApp::Foveated3D, 43.0, 2.0),
        (CharacterizationApp::Viking, 13.0, 2.0),
        (CharacterizationApp::Nature, 16.0, 2.0),
        (CharacterizationApp::Sponza, 5.8, 2.5),
        (CharacterizationApp::SanMiguel, 11.0, 2.0),
    ];
    for (app, target, tolerance_factor) in expect {
        let mut session = AppSession::start(app.profile(), 42);
        let mut sum = 0.0;
        let frames = 300;
        for _ in 0..frames {
            let f = session.advance();
            let w = session.profile().interactive_workload(&f);
            sum += model.stereo_frame_time(&w).total_ms();
        }
        let t = sum / frames as f64;
        println!(
            "{:12} static T_local: {t:6.1} ms (target = {target} ms)",
            app.label()
        );
        assert!(
            t < target * tolerance_factor && t > target / tolerance_factor,
            "{app}: {t:.1} ms vs target {target} ms"
        );
    }
}
