//! Property-based tests for pooled resources: per-unit exclusivity,
//! work-conservation of the least-loaded selector, and exact equivalence of
//! `k = 1` pools with the classic single-resource schedules.

use proptest::prelude::*;
use qvr_sim::{Engine, TaskId};

/// A reproducible pseudo-random workload: `(duration_ms, dep_offset)` pairs.
/// `dep_offset = 0` means no dependency; `d > 0` depends on the task
/// submitted `d` positions earlier (if any).
fn workload_strategy() -> impl Strategy<Value = Vec<(f64, usize)>> {
    collection::vec((0.1f64..12.0, 0usize..4), 48)
}

fn submit_pooled(sim: &mut Engine, k: usize, jobs: &[(f64, usize)]) -> Vec<TaskId> {
    let pool = sim.resource_pool("POOL", k);
    let mut ids: Vec<TaskId> = Vec::new();
    for (i, (dur, dep)) in jobs.iter().enumerate() {
        let deps: Vec<TaskId> = if *dep > 0 && *dep <= i {
            vec![ids[i - dep]]
        } else {
            Vec::new()
        };
        ids.push(sim.submit_to_pool(&format!("t{i}"), pool, *dur, &deps));
    }
    ids
}

proptest! {
    #[test]
    fn pool_units_never_overlap(jobs in workload_strategy(), k in 1usize..9) {
        let mut sim = Engine::new();
        submit_pooled(&mut sim, k, &jobs);
        prop_assert!(sim.verify_exclusivity(), "a pool unit ran two tasks at once");
    }

    #[test]
    fn least_loaded_selection_is_work_conserving(jobs in workload_strategy(), k in 1usize..9) {
        // No unit may sit idle past a task's ready time while that task
        // waits on a busier unit: every pooled task must start at the
        // earliest instant any unit allows.
        let mut sim = Engine::new();
        let pool = sim.resource_pool("POOL", k);
        let units = sim.pool_units(pool).to_vec();
        let mut ids: Vec<TaskId> = Vec::new();
        for (i, (dur, dep)) in jobs.iter().enumerate() {
            let deps: Vec<TaskId> = if *dep > 0 && *dep <= i {
                vec![ids[i - dep]]
            } else {
                Vec::new()
            };
            let ready = sim.deps_ready_ms(&deps);
            let earliest = units
                .iter()
                .map(|u| sim.free_at(*u).max(ready))
                .fold(f64::INFINITY, f64::min);
            let id = sim.submit_to_pool(&format!("t{i}"), pool, *dur, &deps);
            prop_assert!(
                (sim.start_of(id) - earliest).abs() < 1e-9,
                "task {i} started at {} but a unit was free at {earliest}",
                sim.start_of(id)
            );
            ids.push(id);
        }
    }

    #[test]
    fn selection_is_an_exact_total_order(jobs in workload_strategy(), k in 2usize..9) {
        // The chosen unit must be the lexicographic minimum of
        // (start, free_at, index) over all units — computed here by
        // scanning in *reverse* index order, so any iteration-order
        // dependence (the failure mode of the old epsilon tie-break, which
        // was not transitive near 1e-12 boundaries) would be caught.
        let mut sim = Engine::new();
        let pool = sim.resource_pool("POOL", k);
        let units = sim.pool_units(pool).to_vec();
        let mut ids: Vec<TaskId> = Vec::new();
        for (i, (dur, dep)) in jobs.iter().enumerate() {
            let deps: Vec<TaskId> = if *dep > 0 && *dep <= i {
                vec![ids[i - dep]]
            } else {
                Vec::new()
            };
            let ready = sim.deps_ready_ms(&deps);
            let expected = units
                .iter()
                .enumerate()
                .rev()
                .min_by(|(ia, ua), (ib, ub)| {
                    let (fa, fb) = (sim.free_at(**ua), sim.free_at(**ub));
                    fa.max(ready)
                        .total_cmp(&fb.max(ready))
                        .then(fa.total_cmp(&fb))
                        .then(ia.cmp(ib))
                })
                .map(|(i, _)| i)
                .expect("non-empty pool");
            prop_assert_eq!(sim.least_loaded_unit(pool, ready), expected);
            ids.push(sim.submit_to_pool(&format!("t{i}"), pool, *dur, &deps));
        }
    }

    #[test]
    fn restricted_selection_is_work_conserving_within_its_slice(
        jobs in workload_strategy(),
        k in 2usize..9,
        split in 1usize..8,
    ) {
        // Class-aware scheduling: tasks confined to units[lo..k] must start
        // at the earliest instant any unit *of the slice* allows, and must
        // never touch a unit outside it.
        let lo = split.min(k - 1);
        let mut sim = Engine::new();
        let pool = sim.resource_pool("POOL", k);
        let units = sim.pool_units(pool).to_vec();
        let mut ids: Vec<TaskId> = Vec::new();
        for (i, (dur, dep)) in jobs.iter().enumerate() {
            let deps: Vec<TaskId> = if *dep > 0 && *dep <= i {
                vec![ids[i - dep]]
            } else {
                Vec::new()
            };
            let ready = sim.deps_ready_ms(&deps);
            let earliest = units[lo..]
                .iter()
                .map(|u| sim.free_at(*u).max(ready))
                .fold(f64::INFINITY, f64::min);
            let id = sim.submit_to_pool_in(&format!("t{i}"), pool, *dur, &deps, lo..k);
            prop_assert_eq!(sim.start_of(id), earliest);
            ids.push(id);
        }
        for u in &units[..lo] {
            prop_assert_eq!(sim.busy_ms(*u), 0.0, "excluded units must stay idle");
        }
        prop_assert!(sim.verify_exclusivity());
    }

    #[test]
    fn k1_pool_reproduces_single_resource_schedule(jobs in workload_strategy()) {
        // The same submission sequence through a k = 1 pool and through the
        // classic single resource must yield the identical schedule, task
        // by task — the old API is exactly the degenerate pool.
        let mut pooled = Engine::new();
        let pooled_ids = submit_pooled(&mut pooled, 1, &jobs);

        let mut plain = Engine::new();
        let res = plain.resource("POOL");
        let mut plain_ids: Vec<TaskId> = Vec::new();
        for (i, (dur, dep)) in jobs.iter().enumerate() {
            let deps: Vec<TaskId> = if *dep > 0 && *dep <= i {
                vec![plain_ids[i - dep]]
            } else {
                Vec::new()
            };
            plain_ids.push(plain.submit(&format!("t{i}"), Some(res), *dur, &deps));
        }

        for (a, b) in pooled_ids.iter().zip(&plain_ids) {
            prop_assert_eq!(pooled.start_of(*a), plain.start_of(*b));
            prop_assert_eq!(pooled.end_of(*a), plain.end_of(*b));
        }
        prop_assert_eq!(pooled.makespan(), plain.makespan());
        let pool = pooled.resource_pool("POOL", 1);
        prop_assert_eq!(pooled.pool_busy_ms(pool), plain.busy_ms(res));
    }

    #[test]
    fn pool_busy_time_equals_sum_of_durations(jobs in workload_strategy(), k in 1usize..9) {
        let mut sim = Engine::new();
        submit_pooled(&mut sim, k, &jobs);
        let pool = sim.resource_pool("POOL", k);
        let total: f64 = jobs.iter().map(|(d, _)| d).sum();
        prop_assert!((sim.pool_busy_ms(pool) - total).abs() < 1e-6);
        prop_assert!(sim.pool_utilization(pool) <= 1.0 + 1e-12);
    }

    #[test]
    fn wider_pools_never_lengthen_the_schedule(jobs in workload_strategy(), k in 1usize..8) {
        // Adding units can only help a greedy earliest-start scheduler for
        // independent tasks (with dependencies the argument stays true here
        // because chains only serialise on task ends, not unit identity).
        let independent: Vec<(f64, usize)> = jobs.iter().map(|(d, _)| (*d, 0)).collect();
        let mut narrow = Engine::new();
        submit_pooled(&mut narrow, k, &independent);
        let mut wide = Engine::new();
        submit_pooled(&mut wide, k + 1, &independent);
        prop_assert!(wide.makespan() <= narrow.makespan() + 1e-9);
    }
}
