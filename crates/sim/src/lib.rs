//! Discrete-event pipeline engine for multi-accelerator frame simulation.
//!
//! Fig. 4 of the paper draws a VR frame as a task graph spread over
//! accelerators — CPU (control logic, local setup), mobile GPU (local
//! rendering, and composition/ATW when no UCA exists), the network, the
//! video decoder, the remote GPUs, and Q-VR's LIWC and UCA units. Frames
//! overlap: while frame *N* streams its periphery, frame *N+1* already
//! renders locally, and the exact interleaving (including the GPU
//! contention of Fig. 4-③) decides FPS.
//!
//! [`Engine`] models this with *incremental greedy FIFO scheduling*: tasks
//! are submitted in program order; each task starts at the later of (a) its
//! dependencies' completion and (b) its resource becoming free, exactly like
//! work issued to a real in-order accelerator queue. Submission order on a
//! shared resource therefore *is* the arbitration order, which lets scheme
//! code express contention (e.g. composition delaying the next frame's
//! rendering) simply by submitting in pipeline order.
//!
//! Per-resource busy time is tracked for the energy model, and the full
//! task timeline can be dumped as a text Gantt chart for inspection.
//!
//! # Example
//!
//! ```
//! use qvr_sim::Engine;
//!
//! let mut sim = Engine::new();
//! let gpu = sim.resource("GPU");
//! let net = sim.resource("NET");
//! // Frame: render 4 ms in parallel with a 6 ms download, then 1 ms compose.
//! let render = sim.submit("LR", Some(gpu), 4.0, &[]);
//! let fetch = sim.submit("RR+net", Some(net), 6.0, &[]);
//! let compose = sim.submit("C", Some(gpu), 1.0, &[render, fetch]);
//! assert_eq!(sim.end_of(compose), 7.0); // starts when the download lands
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Identifies a resource within one [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(usize);

/// Identifies a submitted task within one [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

#[derive(Debug, Clone)]
struct Resource {
    name: String,
    free_at: f64,
    busy_ms: f64,
    intervals: Vec<(f64, f64)>,
}

/// A scheduled task record.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledTask {
    /// Human-readable label (used by the timeline dump).
    pub label: String,
    /// Executing resource, if any (`None` = pure delay, e.g. sensor wait).
    pub resource: Option<ResourceId>,
    /// Start time, ms.
    pub start: f64,
    /// End time, ms.
    pub end: f64,
}

/// The incremental discrete-event engine.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    resources: Vec<Resource>,
    tasks: Vec<ScheduledTask>,
}

impl Engine {
    /// Creates an empty engine.
    #[must_use]
    pub fn new() -> Self {
        Engine::default()
    }

    /// Returns the resource with this name, creating it if needed.
    pub fn resource(&mut self, name: &str) -> ResourceId {
        if let Some(i) = self.resources.iter().position(|r| r.name == name) {
            return ResourceId(i);
        }
        self.resources.push(Resource {
            name: name.to_owned(),
            free_at: 0.0,
            busy_ms: 0.0,
            intervals: Vec::new(),
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Submits a task and schedules it immediately.
    ///
    /// The task starts at the later of its dependencies' ends and its
    /// resource's free time; the resource is then busy until the task ends.
    /// `duration_ms` must be non-negative.
    ///
    /// # Panics
    ///
    /// Panics if `duration_ms` is negative/NaN or a dependency id is stale.
    pub fn submit(
        &mut self,
        label: &str,
        resource: Option<ResourceId>,
        duration_ms: f64,
        deps: &[TaskId],
    ) -> TaskId {
        assert!(
            duration_ms.is_finite() && duration_ms >= 0.0,
            "duration must be finite and non-negative, got {duration_ms}"
        );
        let deps_ready = deps
            .iter()
            .map(|d| {
                self.tasks
                    .get(d.0)
                    .unwrap_or_else(|| panic!("unknown dependency task id {}", d.0))
                    .end
            })
            .fold(0.0f64, f64::max);
        let start = match resource {
            Some(rid) => deps_ready.max(self.resources[rid.0].free_at),
            None => deps_ready,
        };
        let end = start + duration_ms;
        if let Some(rid) = resource {
            let r = &mut self.resources[rid.0];
            r.free_at = end;
            r.busy_ms += duration_ms;
            r.intervals.push((start, end));
        }
        self.tasks.push(ScheduledTask {
            label: label.to_owned(),
            resource,
            start,
            end,
        });
        TaskId(self.tasks.len() - 1)
    }

    /// Submits a task that becomes ready at an absolute time (e.g. a sensor
    /// sample arriving at the start of a frame interval).
    pub fn submit_at(
        &mut self,
        label: &str,
        resource: Option<ResourceId>,
        ready_at_ms: f64,
        duration_ms: f64,
        deps: &[TaskId],
    ) -> TaskId {
        // Model the release time as a zero-resource delay task.
        let gate = self.submit(&format!("{label}:release"), None, ready_at_ms.max(0.0), &[]);
        let mut all_deps = Vec::with_capacity(deps.len() + 1);
        all_deps.extend_from_slice(deps);
        all_deps.push(gate);
        self.submit(label, resource, duration_ms, &all_deps)
    }

    /// Start time of a task.
    #[must_use]
    pub fn start_of(&self, id: TaskId) -> f64 {
        self.tasks[id.0].start
    }

    /// End time of a task.
    #[must_use]
    pub fn end_of(&self, id: TaskId) -> f64 {
        self.tasks[id.0].end
    }

    /// The time the resource becomes free under the current schedule.
    #[must_use]
    pub fn free_at(&self, id: ResourceId) -> f64 {
        self.resources[id.0].free_at
    }

    /// Accumulated busy time of a resource, ms.
    #[must_use]
    pub fn busy_ms(&self, id: ResourceId) -> f64 {
        self.resources[id.0].busy_ms
    }

    /// Resource name.
    #[must_use]
    pub fn resource_name(&self, id: ResourceId) -> &str {
        &self.resources[id.0].name
    }

    /// Latest task end across the whole schedule (0 when empty).
    #[must_use]
    pub fn makespan(&self) -> f64 {
        self.tasks.iter().map(|t| t.end).fold(0.0, f64::max)
    }

    /// Utilisation of a resource over the makespan, `[0, 1]`.
    #[must_use]
    pub fn utilization(&self, id: ResourceId) -> f64 {
        let span = self.makespan();
        if span <= 0.0 {
            0.0
        } else {
            (self.busy_ms(id) / span).clamp(0.0, 1.0)
        }
    }

    /// All scheduled tasks in submission order.
    #[must_use]
    pub fn tasks(&self) -> &[ScheduledTask] {
        &self.tasks
    }

    /// Verifies that no resource ever runs two tasks at once.
    ///
    /// Exclusivity holds by construction; this is a checkable invariant for
    /// tests and debugging.
    #[must_use]
    pub fn verify_exclusivity(&self) -> bool {
        for r in &self.resources {
            let mut iv = r.intervals.clone();
            iv.sort_by(|a, b| a.0.total_cmp(&b.0));
            for pair in iv.windows(2) {
                if pair[1].0 < pair[0].1 - 1e-9 {
                    return false;
                }
            }
        }
        true
    }

    /// Renders a text Gantt chart of the last `max_tasks` tasks.
    #[must_use]
    pub fn timeline(&self, max_tasks: usize) -> String {
        let span = self.makespan().max(1e-9);
        const COLS: usize = 72;
        let mut out = String::new();
        let skip = self.tasks.len().saturating_sub(max_tasks);
        for t in &self.tasks[skip..] {
            if t.resource.is_none() && t.label.ends_with(":release") {
                continue;
            }
            let s = ((t.start / span) * COLS as f64).floor() as usize;
            let e = (((t.end / span) * COLS as f64).ceil() as usize).clamp(s + 1, COLS);
            let rname = t.resource.map_or("-", |r| self.resource_name(r));
            out.push_str(&format!("{:18} {:8}|", truncate(&t.label, 18), truncate(rname, 8)));
            for c in 0..COLS {
                out.push(if c >= s && c < e { '#' } else { '.' });
            }
            out.push_str(&format!("| {:.2}..{:.2} ms\n", t.start, t.end));
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks over {} resources, makespan {:.2} ms",
            self.tasks.len(),
            self.resources.len(),
            self.makespan()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_tasks_on_distinct_resources_overlap() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let net = sim.resource("NET");
        let a = sim.submit("a", Some(gpu), 5.0, &[]);
        let b = sim.submit("b", Some(net), 3.0, &[]);
        assert_eq!(sim.start_of(a), 0.0);
        assert_eq!(sim.start_of(b), 0.0);
        assert_eq!(sim.makespan(), 5.0);
    }

    #[test]
    fn same_resource_serializes_in_submission_order() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let a = sim.submit("a", Some(gpu), 5.0, &[]);
        let b = sim.submit("b", Some(gpu), 2.0, &[]);
        assert_eq!(sim.end_of(a), 5.0);
        assert_eq!(sim.start_of(b), 5.0);
        assert_eq!(sim.end_of(b), 7.0);
        assert!(sim.verify_exclusivity());
    }

    #[test]
    fn dependencies_gate_start() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let net = sim.resource("NET");
        let render = sim.submit("LR", Some(gpu), 4.0, &[]);
        let fetch = sim.submit("RR", Some(net), 9.0, &[]);
        let compose = sim.submit("C", Some(gpu), 1.0, &[render, fetch]);
        assert_eq!(sim.start_of(compose), 9.0);
        assert_eq!(sim.end_of(compose), 10.0);
    }

    #[test]
    fn delay_tasks_consume_no_resource() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let wait = sim.submit("sensor", None, 2.0, &[]);
        let render = sim.submit("LR", Some(gpu), 3.0, &[wait]);
        assert_eq!(sim.start_of(render), 2.0);
        assert_eq!(sim.busy_ms(gpu), 3.0);
    }

    #[test]
    fn submit_at_releases_at_absolute_time() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let t = sim.submit_at("frame2:LR", Some(gpu), 11.1, 4.0, &[]);
        assert_eq!(sim.start_of(t), 11.1);
        assert_eq!(sim.end_of(t), 15.1);
    }

    #[test]
    fn cross_frame_contention_delays_next_frame() {
        // Fig. 4-(3): composition on the GPU delays the next frame's local
        // rendering; a UCA (separate resource) would not.
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let lr1 = sim.submit("f1:LR", Some(gpu), 6.0, &[]);
        let c1 = sim.submit("f1:C+ATW", Some(gpu), 3.0, &[lr1]);
        let lr2 = sim.submit("f2:LR", Some(gpu), 6.0, &[]);
        assert_eq!(sim.start_of(lr2), sim.end_of(c1), "contention must delay frame 2");

        let mut sim2 = Engine::new();
        let gpu2 = sim2.resource("GPU");
        let uca = sim2.resource("UCA");
        let lr1 = sim2.submit("f1:LR", Some(gpu2), 6.0, &[]);
        let _c1 = sim2.submit("f1:UCA", Some(uca), 3.0, &[lr1]);
        let lr2 = sim2.submit("f2:LR", Some(gpu2), 6.0, &[]);
        assert_eq!(sim2.start_of(lr2), 6.0, "UCA removes the contention");
    }

    #[test]
    fn busy_and_utilization_accumulate() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        sim.submit("a", Some(gpu), 4.0, &[]);
        let wait = sim.submit("idle", None, 6.0, &[]);
        sim.submit("b", Some(gpu), 2.0, &[wait]);
        assert_eq!(sim.busy_ms(gpu), 6.0);
        assert_eq!(sim.makespan(), 8.0);
        assert!((sim.utilization(gpu) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn resource_lookup_is_idempotent() {
        let mut sim = Engine::new();
        let a = sim.resource("GPU");
        let b = sim.resource("GPU");
        assert_eq!(a, b);
        assert_eq!(sim.resource_name(a), "GPU");
    }

    #[test]
    fn empty_engine_is_sane() {
        let sim = Engine::new();
        assert_eq!(sim.makespan(), 0.0);
        assert!(sim.verify_exclusivity());
        assert!(sim.tasks().is_empty());
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn negative_duration_rejected() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        sim.submit("bad", Some(gpu), -1.0, &[]);
    }

    #[test]
    fn timeline_renders_bars() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let a = sim.submit("render", Some(gpu), 5.0, &[]);
        sim.submit("compose", Some(gpu), 5.0, &[a]);
        let chart = sim.timeline(10);
        assert!(chart.contains("render"));
        assert!(chart.contains('#'));
        assert!(chart.contains("GPU"));
    }

    #[test]
    fn long_pipeline_stays_causal() {
        // 100 frames of a 3-stage pipeline over 3 resources; steady-state
        // throughput must be set by the slowest stage.
        let mut sim = Engine::new();
        let cpu = sim.resource("CPU");
        let gpu = sim.resource("GPU");
        let net = sim.resource("NET");
        let mut prev_end = None;
        for i in 0..100 {
            let setup = sim.submit(&format!("f{i}:setup"), Some(cpu), 1.0, &[]);
            let render = sim.submit(&format!("f{i}:render"), Some(gpu), 4.0, &[setup]);
            let deps: Vec<TaskId> = match prev_end {
                Some(p) => vec![render, p],
                None => vec![render],
            };
            let tx = sim.submit(&format!("f{i}:tx"), Some(net), 2.0, &deps);
            prev_end = Some(tx);
        }
        assert!(sim.verify_exclusivity());
        // Slowest stage is the 4 ms GPU stage; 100 frames ≥ ~400 ms.
        let span = sim.makespan();
        assert!((400.0..420.0).contains(&span), "makespan {span}");
    }
}
