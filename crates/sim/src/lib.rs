//! Discrete-event pipeline engine for multi-accelerator frame simulation.
//!
//! Fig. 4 of the paper draws a VR frame as a task graph spread over
//! accelerators — CPU (control logic, local setup), mobile GPU (local
//! rendering, and composition/ATW when no UCA exists), the network, the
//! video decoder, the remote GPUs, and Q-VR's LIWC and UCA units. Frames
//! overlap: while frame *N* streams its periphery, frame *N+1* already
//! renders locally, and the exact interleaving (including the GPU
//! contention of Fig. 4-③) decides FPS.
//!
//! [`Engine`] models this with *incremental greedy FIFO scheduling*: tasks
//! are submitted in program order; each task starts at the later of (a) its
//! dependencies' completion and (b) its resource becoming free, exactly like
//! work issued to a real in-order accelerator queue. Submission order on a
//! shared resource therefore *is* the arbitration order, which lets scheme
//! code express contention (e.g. composition delaying the next frame's
//! rendering) simply by submitting in pipeline order.
//!
//! Per-resource busy time is tracked for the energy model, and the full
//! task timeline can be dumped as a text Gantt chart for inspection.
//!
//! For multi-tenant simulation, [`Engine::resource_pool`] groups `k`
//! schedulable units behind one handle with least-loaded unit selection on
//! [`Engine::submit_to_pool`] (an `mcm_8_gpu` server becomes 8 contended
//! units instead of an analytic constant), and [`SharedEngine`] is a
//! cloneable handle letting several session rigs submit into one schedule.
//!
//! # Example
//!
//! ```
//! use qvr_sim::Engine;
//!
//! let mut sim = Engine::new();
//! let gpu = sim.resource("GPU");
//! let net = sim.resource("NET");
//! // Frame: render 4 ms in parallel with a 6 ms download, then 1 ms compose.
//! let render = sim.submit("LR", Some(gpu), 4.0, &[]);
//! let fetch = sim.submit("RR+net", Some(net), 6.0, &[]);
//! let compose = sim.submit("C", Some(gpu), 1.0, &[render, fetch]);
//! assert_eq!(sim.end_of(compose), 7.0); // starts when the download lands
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checked;

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::fmt::Write as _;
use std::rc::Rc;

/// Identifies a resource within one [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(usize);

/// Identifies a resource pool within one [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolId(usize);

/// Identifies a submitted task within one [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

/// A small inline dependency list for hot-path task submission.
///
/// Per-frame pipeline code builds dependency sets of at most a handful of
/// tasks (pacing gate, previous chunk, previous compose); heap-backed
/// `Vec<TaskId>` lists made that an allocation per frame. A `DepList` holds
/// them inline and derefs to `&[TaskId]`, so it drops into every `deps:
/// &[TaskId]` submission parameter unchanged.
#[derive(Debug, Clone, Copy)]
pub struct DepList {
    buf: [TaskId; Self::CAPACITY],
    len: usize,
}

impl DepList {
    /// Maximum dependencies an inline list holds.
    pub const CAPACITY: usize = 4;

    /// An empty list.
    #[must_use]
    pub fn new() -> Self {
        DepList {
            buf: [TaskId(0); Self::CAPACITY],
            len: 0,
        }
    }

    /// Appends a dependency.
    ///
    /// # Panics
    ///
    /// Panics if the list is full ([`DepList::CAPACITY`] entries).
    pub fn push(&mut self, id: TaskId) {
        assert!(
            self.len < Self::CAPACITY,
            "DepList overflow (capacity {})",
            Self::CAPACITY
        );
        self.buf[self.len] = id;
        self.len += 1;
    }

    /// The dependencies as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[TaskId] {
        &self.buf[..self.len]
    }
}

impl Default for DepList {
    fn default() -> Self {
        DepList::new()
    }
}

impl std::ops::Deref for DepList {
    type Target = [TaskId];

    fn deref(&self) -> &[TaskId] {
        self.as_slice()
    }
}

#[derive(Debug, Clone)]
struct Resource {
    name: String,
    free_at: f64,
    busy_ms: f64,
    intervals: Vec<(f64, f64)>,
    /// Busy time of intervals dropped by [`Engine::retire_before`], folded
    /// into this cumulative counter *before* the prefix drop so
    /// interval-derived accounting (energy attribution, utilization audits)
    /// stays exact no matter how much history has retired.
    retired_busy_ms: f64,
}

#[derive(Debug, Clone)]
struct Pool {
    name: String,
    units: Vec<ResourceId>,
}

/// A scheduled task record.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledTask {
    /// Human-readable label (used by the timeline dump). Interned: tasks
    /// sharing a label share one allocation.
    pub label: Rc<str>,
    /// Executing resource, if any (`None` = pure delay, e.g. sensor wait).
    pub resource: Option<ResourceId>,
    /// Start time, ms.
    pub start: f64,
    /// End time, ms.
    pub end: f64,
}

/// The incremental discrete-event engine.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    resources: Vec<Resource>,
    pools: Vec<Pool>,
    /// Live (unretired) tasks; [`TaskId`] `i` lives at `tasks[i - retired]`.
    tasks: Vec<ScheduledTask>,
    /// Tasks dropped by [`Engine::retire_before`]; the id-space offset of
    /// `tasks[0]`.
    retired: usize,
    /// Latest end time among retired tasks (so [`Engine::makespan`] stays
    /// exact after retirement). 0 while nothing has retired.
    retired_makespan: f64,
    /// Interned task labels: a steady-state frame loop reuses the same
    /// label set every frame, so after warm-up submission allocates nothing
    /// for labels.
    label_pool: HashSet<Rc<str>>,
    /// Scratch for composed labels (release gates) — reused across calls.
    label_scratch: String,
    /// Scratch for [`Engine::verify_exclusivity`] — sorted into in place,
    /// reused across calls instead of cloning each resource's intervals.
    verify_scratch: RefCell<Vec<(f64, f64)>>,
}

impl Engine {
    /// Creates an empty engine.
    #[must_use]
    pub fn new() -> Self {
        Engine::default()
    }

    /// Returns the resource with this name, creating it if needed.
    pub fn resource(&mut self, name: &str) -> ResourceId {
        if let Some(i) = self.resources.iter().position(|r| r.name == name) {
            return ResourceId(i);
        }
        self.resources.push(Resource {
            name: name.to_owned(),
            free_at: 0.0,
            busy_ms: 0.0,
            intervals: Vec::new(),
            retired_busy_ms: 0.0,
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Returns the pool with this name, creating it with `k` schedulable
    /// units if needed. A `k = 1` pool shares its unit with the plain
    /// resource of the same name, so pooled and non-pooled submission paths
    /// produce identical schedules for single units.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero, or if a pool with this name already exists
    /// with a different unit count.
    pub fn resource_pool(&mut self, name: &str, k: usize) -> PoolId {
        assert!(k > 0, "a pool needs at least one unit");
        if let Some(i) = self.pools.iter().position(|p| p.name == name) {
            assert_eq!(
                self.pools[i].units.len(),
                k,
                "pool {name:?} already exists with a different unit count"
            );
            return PoolId(i);
        }
        let units = if k == 1 {
            vec![self.resource(name)]
        } else {
            (0..k)
                .map(|i| self.resource(&format!("{name}[{i}]")))
                .collect()
        };
        self.pools.push(Pool {
            name: name.to_owned(),
            units,
        });
        PoolId(self.pools.len() - 1)
    }

    /// The schedulable units behind a pool, in index order.
    #[must_use]
    pub fn pool_units(&self, pool: PoolId) -> &[ResourceId] {
        &self.pools[pool.0].units
    }

    /// Number of units in a pool.
    #[must_use]
    pub fn pool_size(&self, pool: PoolId) -> usize {
        self.pools[pool.0].units.len()
    }

    /// Pool name.
    #[must_use]
    pub fn pool_name(&self, pool: PoolId) -> &str {
        &self.pools[pool.0].name
    }

    /// Index of the least-loaded unit for work becoming ready at
    /// `ready_at_ms`: the unit that can start it earliest, tie-broken by
    /// earliest free time, then lowest index — the exact lexicographic
    /// total order on `(start, free_at, index)`, so selection is transitive
    /// and independent of unit iteration order (an earlier epsilon-banded
    /// comparison was not). Greedy earliest-start selection is
    /// work-conserving — no unit sits idle past `ready_at_ms` while the
    /// submitted task waits on a busier one.
    #[must_use]
    pub fn least_loaded_unit(&self, pool: PoolId, ready_at_ms: f64) -> usize {
        self.least_loaded_unit_in(pool, ready_at_ms, 0..self.pools[pool.0].units.len())
    }

    /// [`Engine::least_loaded_unit`] restricted to the unit-index subrange
    /// `range` — the substrate of class-aware server scheduling policies
    /// (a tenant class confined to a slice of the pool selects only inside
    /// its slice). Same exact `(start, free_at, index)` total order.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty or out of the pool's bounds.
    #[must_use]
    pub fn least_loaded_unit_in(
        &self,
        pool: PoolId,
        ready_at_ms: f64,
        range: std::ops::Range<usize>,
    ) -> usize {
        let units = &self.pools[pool.0].units;
        assert!(
            range.start < range.end && range.end <= units.len(),
            "unit range {range:?} invalid for a {}-unit pool",
            units.len()
        );
        let mut best = range.start;
        let mut best_start = f64::INFINITY;
        let mut best_free = f64::INFINITY;
        for i in range {
            let free = self.resources[units[i].0].free_at;
            let start = free.max(ready_at_ms);
            if start
                .total_cmp(&best_start)
                .then(free.total_cmp(&best_free))
                .is_lt()
            {
                best = i;
                best_start = start;
                best_free = free;
            }
        }
        best
    }

    /// The *most*-loaded unit of the subrange: the one whose next task
    /// would start latest (maximising `(start, free_at)`, ties to the
    /// lowest index). Packing policies use it to concentrate best-effort
    /// work on already-hot units, keeping the rest of the pool clear for
    /// priority tenants.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty or out of the pool's bounds.
    #[must_use]
    pub fn most_loaded_unit_in(
        &self,
        pool: PoolId,
        ready_at_ms: f64,
        range: std::ops::Range<usize>,
    ) -> usize {
        let units = &self.pools[pool.0].units;
        assert!(
            range.start < range.end && range.end <= units.len(),
            "unit range {range:?} invalid for a {}-unit pool",
            units.len()
        );
        let mut best = range.start;
        let mut best_start = f64::NEG_INFINITY;
        let mut best_free = f64::NEG_INFINITY;
        for i in range {
            let free = self.resources[units[i].0].free_at;
            let start = free.max(ready_at_ms);
            if start
                .total_cmp(&best_start)
                .then(free.total_cmp(&best_free))
                .is_gt()
            {
                best = i;
                best_start = start;
                best_free = free;
            }
        }
        best
    }

    /// Latest end time of a dependency set (0 when empty).
    ///
    /// # Panics
    ///
    /// Panics if a dependency id is stale.
    #[must_use]
    pub fn deps_ready_ms(&self, deps: &[TaskId]) -> f64 {
        deps.iter()
            .map(|d| self.task(*d).end)
            .fold(0.0f64, f64::max)
    }

    /// Looks up a live task record.
    ///
    /// # Panics
    ///
    /// Panics if the id is beyond the submission frontier, or if the task
    /// was dropped by [`Engine::retire_before`] (callers must keep their
    /// dependency horizon inside the retirement window).
    fn task(&self, id: TaskId) -> &ScheduledTask {
        assert!(
            id.0 >= self.retired,
            "task id {} was retired (retirement window too small for the \
             caller's dependency horizon)",
            id.0
        );
        self.tasks
            .get(id.0 - self.retired)
            .unwrap_or_else(|| panic!("unknown task id {}", id.0))
    }

    /// Submits a task to the least-loaded unit of a pool and returns its id.
    ///
    /// Unit choice is greedy earliest-start (see [`Engine::least_loaded_unit`]);
    /// for `k = 1` pools this reduces exactly to [`Engine::submit`] on the
    /// single unit.
    pub fn submit_to_pool(
        &mut self,
        label: &str,
        pool: PoolId,
        duration_ms: f64,
        deps: &[TaskId],
    ) -> TaskId {
        let ready = self.deps_ready_ms(deps);
        let unit = self.pools[pool.0].units[self.least_loaded_unit(pool, ready)];
        self.submit(label, Some(unit), duration_ms, deps)
    }

    /// [`Engine::submit_to_pool`] restricted to the unit-index subrange
    /// `range` (earliest-start selection within the slice only).
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty or out of the pool's bounds.
    pub fn submit_to_pool_in(
        &mut self,
        label: &str,
        pool: PoolId,
        duration_ms: f64,
        deps: &[TaskId],
        range: std::ops::Range<usize>,
    ) -> TaskId {
        let ready = self.deps_ready_ms(deps);
        let unit = self.pools[pool.0].units[self.least_loaded_unit_in(pool, ready, range)];
        self.submit(label, Some(unit), duration_ms, deps)
    }

    /// Accumulated busy time across all units of a pool, ms.
    #[must_use]
    pub fn pool_busy_ms(&self, pool: PoolId) -> f64 {
        self.pools[pool.0]
            .units
            .iter()
            .map(|r| self.resources[r.0].busy_ms)
            .sum()
    }

    /// Utilisation of a pool over the makespan: busy time over
    /// `units × makespan`, in `[0, 1]`.
    #[must_use]
    pub fn pool_utilization(&self, pool: PoolId) -> f64 {
        let span = self.makespan();
        let k = self.pools[pool.0].units.len();
        if span <= 0.0 || k == 0 {
            0.0
        } else {
            (self.pool_busy_ms(pool) / (span * k as f64)).clamp(0.0, 1.0)
        }
    }

    /// Submits a task and schedules it immediately.
    ///
    /// The task starts at the later of its dependencies' ends and its
    /// resource's free time; the resource is then busy until the task ends.
    /// `duration_ms` must be non-negative.
    ///
    /// # Panics
    ///
    /// Panics if `duration_ms` is negative/NaN or a dependency id is stale.
    pub fn submit(
        &mut self,
        label: &str,
        resource: Option<ResourceId>,
        duration_ms: f64,
        deps: &[TaskId],
    ) -> TaskId {
        let deps_ready = self.deps_ready_ms(deps);
        self.submit_ready(label, resource, duration_ms, deps_ready)
    }

    /// [`Engine::submit`] with the dependency frontier already reduced to a
    /// readiness time — the shared tail of every submission path.
    fn submit_ready(
        &mut self,
        label: &str,
        resource: Option<ResourceId>,
        duration_ms: f64,
        deps_ready: f64,
    ) -> TaskId {
        assert!(
            duration_ms.is_finite() && duration_ms >= 0.0,
            "duration must be finite and non-negative, got {duration_ms}"
        );
        let start = match resource {
            Some(rid) => deps_ready.max(self.resources[rid.0].free_at),
            None => deps_ready,
        };
        let end = start + duration_ms;
        if let Some(rid) = resource {
            let r = &mut self.resources[rid.0];
            r.free_at = end;
            r.busy_ms += duration_ms;
            r.intervals.push((start, end));
        }
        let label = self.intern(label);
        self.tasks.push(ScheduledTask {
            label,
            resource,
            start,
            end,
        });
        TaskId(self.retired + self.tasks.len() - 1)
    }

    /// Looks up (or creates) the shared allocation for a task label.
    fn intern(&mut self, label: &str) -> Rc<str> {
        if let Some(l) = self.label_pool.get(label) {
            return Rc::clone(l);
        }
        let l: Rc<str> = Rc::from(label);
        self.label_pool.insert(Rc::clone(&l));
        l
    }

    /// Retires completed history: drops every task (and resource interval)
    /// that ended at or before `t_ms` from the *front* of the schedule, so a
    /// long-running simulation holds O(window) live state per resource
    /// instead of the full task history. Returns how many tasks retired.
    ///
    /// Retirement is prefix-only (ids stay dense), stops at the first task
    /// still ending after `t_ms`, and never touches accumulated busy time,
    /// `free_at` frontiers, or the makespan — aggregates stay exact. Looking
    /// up a retired task afterwards panics, so callers must keep `t_ms` at
    /// least one dependency horizon behind every session's frontier (fleets
    /// use `min(last_display_end) - window`).
    pub fn retire_before(&mut self, t_ms: f64) -> usize {
        let k = self
            .tasks
            .iter()
            .position(|t| t.end > t_ms)
            .unwrap_or(self.tasks.len());
        if k > 0 {
            for t in self.tasks.drain(..k) {
                self.retired_makespan = self.retired_makespan.max(t.end);
            }
            self.retired += k;
        }
        for r in &mut self.resources {
            // Per-resource intervals are non-overlapping and time-ordered,
            // so retired history is a prefix here too. Fold each dropped
            // interval's busy time into the cumulative counter *before* the
            // drop: interval-derived accounting (per-stage energy
            // attribution) must stay exact under windowed retirement.
            let cut = r
                .intervals
                .iter()
                .position(|iv| iv.1 > t_ms)
                .unwrap_or(r.intervals.len());
            for iv in r.intervals.drain(..cut) {
                r.retired_busy_ms += iv.1 - iv.0;
            }
        }
        k
    }

    /// Busy time of a resource reconstructed from its intervals: the
    /// retired-interval counter plus the live intervals' spans, ms. Always
    /// within float-summation error of [`Engine::busy_ms`] (which
    /// accumulates at submission) — the checkable invariant that windowed
    /// retirement never loses busy time.
    #[must_use]
    pub fn interval_busy_ms(&self, id: ResourceId) -> f64 {
        let r = &self.resources[id.0];
        r.retired_busy_ms + r.intervals.iter().map(|iv| iv.1 - iv.0).sum::<f64>()
    }

    /// Tasks currently held live (submitted and not retired).
    #[must_use]
    pub fn live_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Tasks dropped by [`Engine::retire_before`] so far.
    #[must_use]
    pub fn retired_tasks(&self) -> usize {
        self.retired
    }

    /// Live busy intervals currently held for one resource.
    #[must_use]
    pub fn live_intervals(&self, id: ResourceId) -> usize {
        self.resources[id.0].intervals.len()
    }

    /// Number of distinct resources created so far (a churn fleet recycling
    /// its per-session slots keeps this O(peak concurrency)).
    #[must_use]
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// The largest live-interval count across all resources — the
    /// per-resource retained state a bounded-memory run must keep flat.
    #[must_use]
    pub fn max_live_intervals(&self) -> usize {
        self.resources
            .iter()
            .map(|r| r.intervals.len())
            .max()
            .unwrap_or(0)
    }

    /// Submits a task that becomes ready at an absolute time (e.g. a sensor
    /// sample arriving at the start of a frame interval).
    pub fn submit_at(
        &mut self,
        label: &str,
        resource: Option<ResourceId>,
        ready_at_ms: f64,
        duration_ms: f64,
        deps: &[TaskId],
    ) -> TaskId {
        // Model the release time as a zero-resource delay task. The gate
        // label composes in a reused scratch and the gate folds into the
        // readiness frontier directly, so no per-call dep list or label
        // String is built.
        let mut gate_label = std::mem::take(&mut self.label_scratch);
        gate_label.clear();
        let _ = write!(gate_label, "{label}:release");
        let gate = self.submit(&gate_label, None, ready_at_ms.max(0.0), &[]);
        self.label_scratch = gate_label;
        let deps_ready = self.deps_ready_ms(deps).max(self.task(gate).end);
        self.submit_ready(label, resource, duration_ms, deps_ready)
    }

    /// Start time of a (live) task.
    #[must_use]
    pub fn start_of(&self, id: TaskId) -> f64 {
        self.task(id).start
    }

    /// End time of a (live) task.
    #[must_use]
    pub fn end_of(&self, id: TaskId) -> f64 {
        self.task(id).end
    }

    /// The time the resource becomes free under the current schedule.
    #[must_use]
    pub fn free_at(&self, id: ResourceId) -> f64 {
        self.resources[id.0].free_at
    }

    /// Accumulated busy time of a resource, ms.
    #[must_use]
    pub fn busy_ms(&self, id: ResourceId) -> f64 {
        self.resources[id.0].busy_ms
    }

    /// Resource name.
    #[must_use]
    pub fn resource_name(&self, id: ResourceId) -> &str {
        &self.resources[id.0].name
    }

    /// Latest task end across the whole schedule, retired history included
    /// (0 when empty).
    #[must_use]
    pub fn makespan(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.end)
            .fold(self.retired_makespan, f64::max)
    }

    /// Utilisation of a resource over the makespan, `[0, 1]`.
    #[must_use]
    pub fn utilization(&self, id: ResourceId) -> f64 {
        let span = self.makespan();
        if span <= 0.0 {
            0.0
        } else {
            (self.busy_ms(id) / span).clamp(0.0, 1.0)
        }
    }

    /// All *live* scheduled tasks in submission order (retired history is
    /// gone — that is the point of retirement).
    #[must_use]
    pub fn tasks(&self) -> &[ScheduledTask] {
        &self.tasks
    }

    /// Verifies that no resource ever runs two tasks at once.
    ///
    /// Exclusivity holds by construction; this is a checkable invariant for
    /// tests and debugging.
    #[must_use]
    pub fn verify_exclusivity(&self) -> bool {
        // Sort into a reused scratch buffer instead of cloning each
        // resource's interval vector — repeated verification (tests call
        // this after every phase) stays allocation-free once the scratch
        // has grown to the largest interval set.
        let mut iv = self.verify_scratch.borrow_mut();
        for r in &self.resources {
            iv.clear();
            iv.extend_from_slice(&r.intervals);
            iv.sort_by(|a, b| a.0.total_cmp(&b.0));
            for pair in iv.windows(2) {
                if pair[1].0 < pair[0].1 - 1e-9 {
                    return false;
                }
            }
        }
        true
    }

    /// Renders a text Gantt chart of the last `max_tasks` tasks.
    #[must_use]
    pub fn timeline(&self, max_tasks: usize) -> String {
        let span = self.makespan().max(1e-9);
        const COLS: usize = 72;
        let mut out = String::new();
        let skip = self.tasks.len().saturating_sub(max_tasks);
        for t in &self.tasks[skip..] {
            if t.resource.is_none() && t.label.ends_with(":release") {
                continue;
            }
            let s = checked::floor_index((t.start / span) * COLS as f64);
            let e = checked::ceil_index((t.end / span) * COLS as f64).clamp(s + 1, COLS);
            let rname = t.resource.map_or("-", |r| self.resource_name(r));
            out.push_str(&format!(
                "{:18} {:8}|",
                truncate(&t.label, 18),
                truncate(rname, 8)
            ));
            for c in 0..COLS {
                out.push(if c >= s && c < e { '#' } else { '.' });
            }
            out.push_str(&format!("| {:.2}..{:.2} ms\n", t.start, t.end));
        }
        out
    }
}

/// A cloneable shared handle to one [`Engine`], so several sessions (each
/// holding its own rig) can submit into a single schedule — the substrate of
/// multi-tenant fleets. Mirrors the [`Engine`] API; all methods take `&self`
/// and borrow the engine internally.
///
/// # Panics
///
/// Methods panic if called re-entrantly while another borrow is live (not
/// possible through this API's non-reentrant methods).
#[derive(Debug, Clone, Default)]
pub struct SharedEngine(Rc<RefCell<Engine>>);

impl SharedEngine {
    /// Creates a handle to a fresh empty engine.
    #[must_use]
    pub fn new() -> Self {
        SharedEngine::default()
    }

    /// See [`Engine::resource`].
    pub fn resource(&self, name: &str) -> ResourceId {
        self.0.borrow_mut().resource(name)
    }

    /// See [`Engine::resource_pool`].
    pub fn resource_pool(&self, name: &str, k: usize) -> PoolId {
        self.0.borrow_mut().resource_pool(name, k)
    }

    /// See [`Engine::pool_units`] (returns an owned copy).
    #[must_use]
    pub fn pool_units(&self, pool: PoolId) -> Vec<ResourceId> {
        self.0.borrow().pool_units(pool).to_vec()
    }

    /// One unit of a pool by index (no allocation, for hot paths).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn pool_unit(&self, pool: PoolId, idx: usize) -> ResourceId {
        self.0.borrow().pool_units(pool)[idx]
    }

    /// See [`Engine::pool_size`].
    #[must_use]
    pub fn pool_size(&self, pool: PoolId) -> usize {
        self.0.borrow().pool_size(pool)
    }

    /// See [`Engine::least_loaded_unit`].
    #[must_use]
    pub fn least_loaded_unit(&self, pool: PoolId, ready_at_ms: f64) -> usize {
        self.0.borrow().least_loaded_unit(pool, ready_at_ms)
    }

    /// See [`Engine::least_loaded_unit_in`].
    #[must_use]
    pub fn least_loaded_unit_in(
        &self,
        pool: PoolId,
        ready_at_ms: f64,
        range: std::ops::Range<usize>,
    ) -> usize {
        self.0
            .borrow()
            .least_loaded_unit_in(pool, ready_at_ms, range)
    }

    /// See [`Engine::most_loaded_unit_in`].
    #[must_use]
    pub fn most_loaded_unit_in(
        &self,
        pool: PoolId,
        ready_at_ms: f64,
        range: std::ops::Range<usize>,
    ) -> usize {
        self.0
            .borrow()
            .most_loaded_unit_in(pool, ready_at_ms, range)
    }

    /// See [`Engine::deps_ready_ms`].
    #[must_use]
    pub fn deps_ready_ms(&self, deps: &[TaskId]) -> f64 {
        self.0.borrow().deps_ready_ms(deps)
    }

    /// See [`Engine::submit`].
    pub fn submit(
        &self,
        label: &str,
        resource: Option<ResourceId>,
        duration_ms: f64,
        deps: &[TaskId],
    ) -> TaskId {
        self.0
            .borrow_mut()
            .submit(label, resource, duration_ms, deps)
    }

    /// See [`Engine::submit_at`].
    pub fn submit_at(
        &self,
        label: &str,
        resource: Option<ResourceId>,
        ready_at_ms: f64,
        duration_ms: f64,
        deps: &[TaskId],
    ) -> TaskId {
        self.0
            .borrow_mut()
            .submit_at(label, resource, ready_at_ms, duration_ms, deps)
    }

    /// See [`Engine::submit_to_pool`].
    pub fn submit_to_pool(
        &self,
        label: &str,
        pool: PoolId,
        duration_ms: f64,
        deps: &[TaskId],
    ) -> TaskId {
        self.0
            .borrow_mut()
            .submit_to_pool(label, pool, duration_ms, deps)
    }

    /// See [`Engine::submit_to_pool_in`].
    pub fn submit_to_pool_in(
        &self,
        label: &str,
        pool: PoolId,
        duration_ms: f64,
        deps: &[TaskId],
        range: std::ops::Range<usize>,
    ) -> TaskId {
        self.0
            .borrow_mut()
            .submit_to_pool_in(label, pool, duration_ms, deps, range)
    }

    /// See [`Engine::start_of`].
    #[must_use]
    pub fn start_of(&self, id: TaskId) -> f64 {
        self.0.borrow().start_of(id)
    }

    /// See [`Engine::end_of`].
    #[must_use]
    pub fn end_of(&self, id: TaskId) -> f64 {
        self.0.borrow().end_of(id)
    }

    /// See [`Engine::free_at`].
    #[must_use]
    pub fn free_at(&self, id: ResourceId) -> f64 {
        self.0.borrow().free_at(id)
    }

    /// See [`Engine::busy_ms`].
    #[must_use]
    pub fn busy_ms(&self, id: ResourceId) -> f64 {
        self.0.borrow().busy_ms(id)
    }

    /// See [`Engine::pool_busy_ms`].
    #[must_use]
    pub fn pool_busy_ms(&self, pool: PoolId) -> f64 {
        self.0.borrow().pool_busy_ms(pool)
    }

    /// See [`Engine::pool_utilization`].
    #[must_use]
    pub fn pool_utilization(&self, pool: PoolId) -> f64 {
        self.0.borrow().pool_utilization(pool)
    }

    /// See [`Engine::makespan`].
    #[must_use]
    pub fn makespan(&self) -> f64 {
        self.0.borrow().makespan()
    }

    /// See [`Engine::utilization`].
    #[must_use]
    pub fn utilization(&self, id: ResourceId) -> f64 {
        self.0.borrow().utilization(id)
    }

    /// See [`Engine::verify_exclusivity`].
    #[must_use]
    pub fn verify_exclusivity(&self) -> bool {
        self.0.borrow().verify_exclusivity()
    }

    /// See [`Engine::timeline`].
    #[must_use]
    pub fn timeline(&self, max_tasks: usize) -> String {
        self.0.borrow().timeline(max_tasks)
    }

    /// Number of tasks submitted so far (retired history included).
    #[must_use]
    pub fn task_count(&self) -> usize {
        let e = self.0.borrow();
        e.retired_tasks() + e.live_tasks()
    }

    /// See [`Engine::retire_before`].
    pub fn retire_before(&self, t_ms: f64) -> usize {
        self.0.borrow_mut().retire_before(t_ms)
    }

    /// See [`Engine::live_tasks`].
    #[must_use]
    pub fn live_tasks(&self) -> usize {
        self.0.borrow().live_tasks()
    }

    /// See [`Engine::retired_tasks`].
    #[must_use]
    pub fn retired_tasks(&self) -> usize {
        self.0.borrow().retired_tasks()
    }

    /// See [`Engine::live_intervals`].
    #[must_use]
    pub fn live_intervals(&self, id: ResourceId) -> usize {
        self.0.borrow().live_intervals(id)
    }

    /// See [`Engine::interval_busy_ms`].
    #[must_use]
    pub fn interval_busy_ms(&self, id: ResourceId) -> f64 {
        self.0.borrow().interval_busy_ms(id)
    }

    /// See [`Engine::resource_count`].
    #[must_use]
    pub fn resource_count(&self) -> usize {
        self.0.borrow().resource_count()
    }

    /// See [`Engine::max_live_intervals`].
    #[must_use]
    pub fn max_live_intervals(&self) -> usize {
        self.0.borrow().max_live_intervals()
    }

    /// Runs a closure against the underlying engine (escape hatch for
    /// read-only inspection not covered by the mirror methods).
    pub fn with<R>(&self, f: impl FnOnce(&Engine) -> R) -> R {
        f(&self.0.borrow())
    }
}

impl fmt::Display for SharedEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.borrow().fmt(f)
    }
}

/// Runs `f` over `items` on up to `available_parallelism` worker threads,
/// preserving input order. The shared sweep primitive: independent
/// simulations (fleets, figure rows) fan out without oversubscribing the
/// machine or holding every result's engine in flight at once.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism().map_or(4, |w| w.get());
    parallel_map_with(workers, items, f)
}

/// [`parallel_map`] with an explicit worker-thread cap (at least 1 thread
/// runs; the cap is also clamped to the item count). Results are written
/// into input-order slots and work is handed out through one shared
/// counter, so the output — and, for item-local `f`, every byte of it — is
/// independent of the worker count: a sharded sweep can assert bit-equal
/// results across `workers = 1, 2, n`.
pub fn parallel_map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<&mut Option<R>>> = out.iter_mut().map(Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                **slots[i].lock().expect("slot lock") = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks over {} resources, makespan {:.2} ms",
            self.tasks.len(),
            self.resources.len(),
            self.makespan()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_tasks_on_distinct_resources_overlap() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let net = sim.resource("NET");
        let a = sim.submit("a", Some(gpu), 5.0, &[]);
        let b = sim.submit("b", Some(net), 3.0, &[]);
        assert_eq!(sim.start_of(a), 0.0);
        assert_eq!(sim.start_of(b), 0.0);
        assert_eq!(sim.makespan(), 5.0);
    }

    #[test]
    fn same_resource_serializes_in_submission_order() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let a = sim.submit("a", Some(gpu), 5.0, &[]);
        let b = sim.submit("b", Some(gpu), 2.0, &[]);
        assert_eq!(sim.end_of(a), 5.0);
        assert_eq!(sim.start_of(b), 5.0);
        assert_eq!(sim.end_of(b), 7.0);
        assert!(sim.verify_exclusivity());
    }

    #[test]
    fn dependencies_gate_start() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let net = sim.resource("NET");
        let render = sim.submit("LR", Some(gpu), 4.0, &[]);
        let fetch = sim.submit("RR", Some(net), 9.0, &[]);
        let compose = sim.submit("C", Some(gpu), 1.0, &[render, fetch]);
        assert_eq!(sim.start_of(compose), 9.0);
        assert_eq!(sim.end_of(compose), 10.0);
    }

    #[test]
    fn delay_tasks_consume_no_resource() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let wait = sim.submit("sensor", None, 2.0, &[]);
        let render = sim.submit("LR", Some(gpu), 3.0, &[wait]);
        assert_eq!(sim.start_of(render), 2.0);
        assert_eq!(sim.busy_ms(gpu), 3.0);
    }

    #[test]
    fn submit_at_releases_at_absolute_time() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let t = sim.submit_at("frame2:LR", Some(gpu), 11.1, 4.0, &[]);
        assert_eq!(sim.start_of(t), 11.1);
        assert_eq!(sim.end_of(t), 15.1);
    }

    #[test]
    fn cross_frame_contention_delays_next_frame() {
        // Fig. 4-(3): composition on the GPU delays the next frame's local
        // rendering; a UCA (separate resource) would not.
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let lr1 = sim.submit("f1:LR", Some(gpu), 6.0, &[]);
        let c1 = sim.submit("f1:C+ATW", Some(gpu), 3.0, &[lr1]);
        let lr2 = sim.submit("f2:LR", Some(gpu), 6.0, &[]);
        assert_eq!(
            sim.start_of(lr2),
            sim.end_of(c1),
            "contention must delay frame 2"
        );

        let mut sim2 = Engine::new();
        let gpu2 = sim2.resource("GPU");
        let uca = sim2.resource("UCA");
        let lr1 = sim2.submit("f1:LR", Some(gpu2), 6.0, &[]);
        let _c1 = sim2.submit("f1:UCA", Some(uca), 3.0, &[lr1]);
        let lr2 = sim2.submit("f2:LR", Some(gpu2), 6.0, &[]);
        assert_eq!(sim2.start_of(lr2), 6.0, "UCA removes the contention");
    }

    #[test]
    fn busy_and_utilization_accumulate() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        sim.submit("a", Some(gpu), 4.0, &[]);
        let wait = sim.submit("idle", None, 6.0, &[]);
        sim.submit("b", Some(gpu), 2.0, &[wait]);
        assert_eq!(sim.busy_ms(gpu), 6.0);
        assert_eq!(sim.makespan(), 8.0);
        assert!((sim.utilization(gpu) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn resource_lookup_is_idempotent() {
        let mut sim = Engine::new();
        let a = sim.resource("GPU");
        let b = sim.resource("GPU");
        assert_eq!(a, b);
        assert_eq!(sim.resource_name(a), "GPU");
    }

    #[test]
    fn empty_engine_is_sane() {
        let sim = Engine::new();
        assert_eq!(sim.makespan(), 0.0);
        assert!(sim.verify_exclusivity());
        assert!(sim.tasks().is_empty());
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn negative_duration_rejected() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        sim.submit("bad", Some(gpu), -1.0, &[]);
    }

    #[test]
    fn timeline_renders_bars() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let a = sim.submit("render", Some(gpu), 5.0, &[]);
        sim.submit("compose", Some(gpu), 5.0, &[a]);
        let chart = sim.timeline(10);
        assert!(chart.contains("render"));
        assert!(chart.contains('#'));
        assert!(chart.contains("GPU"));
    }

    #[test]
    fn pool_units_run_in_parallel() {
        let mut sim = Engine::new();
        let pool = sim.resource_pool("RGPU", 4);
        for i in 0..4 {
            let t = sim.submit_to_pool(&format!("t{i}"), pool, 5.0, &[]);
            assert_eq!(sim.start_of(t), 0.0, "unit {i} should be free");
        }
        let queued = sim.submit_to_pool("t4", pool, 5.0, &[]);
        assert_eq!(sim.start_of(queued), 5.0, "fifth task must queue");
        assert!(sim.verify_exclusivity());
        assert_eq!(sim.makespan(), 10.0);
    }

    #[test]
    fn restricted_selection_stays_inside_its_slice() {
        let mut sim = Engine::new();
        let pool = sim.resource_pool("P", 4);
        let units = sim.pool_units(pool).to_vec();
        // Unit 2 is the emptiest overall, but a [0, 2) restriction must
        // never pick it.
        sim.submit("l0", Some(units[0]), 9.0, &[]);
        sim.submit("l1", Some(units[1]), 5.0, &[]);
        sim.submit("l3", Some(units[3]), 7.0, &[]);
        assert_eq!(sim.least_loaded_unit(pool, 0.0), 2);
        assert_eq!(sim.least_loaded_unit_in(pool, 0.0, 0..2), 1);
        let t = sim.submit_to_pool_in("confined", pool, 1.0, &[], 0..2);
        assert_eq!(sim.start_of(t), 5.0, "queued on unit 1, not free unit 2");
        assert_eq!(sim.busy_ms(units[2]), 0.0, "the excluded unit stays idle");
    }

    #[test]
    fn selection_total_order_breaks_exact_ties_by_free_then_index() {
        let mut sim = Engine::new();
        let pool = sim.resource_pool("P", 3);
        let units = sim.pool_units(pool).to_vec();
        // Every unit starts a ready-at-6 task at exactly 6.0 (free at 4, 2,
        // and 0) — the start-time tie breaks to the earliest-free unit.
        sim.submit("a", Some(units[0]), 4.0, &[]);
        sim.submit("b", Some(units[1]), 2.0, &[]);
        assert_eq!(sim.least_loaded_unit(pool, 6.0), 2, "lowest free_at wins");
        // All units exactly equal → lowest index.
        let mut e = Engine::new();
        let q = e.resource_pool("Q", 3);
        assert_eq!(e.least_loaded_unit(q, 0.0), 0);
    }

    #[test]
    fn most_loaded_unit_picks_the_latest_start() {
        let mut sim = Engine::new();
        let pool = sim.resource_pool("P", 3);
        let units = sim.pool_units(pool).to_vec();
        sim.submit("a", Some(units[0]), 3.0, &[]);
        sim.submit("b", Some(units[2]), 8.0, &[]);
        assert_eq!(sim.most_loaded_unit_in(pool, 0.0, 0..3), 2);
        assert_eq!(sim.most_loaded_unit_in(pool, 0.0, 0..2), 0);
        // Exact ties break to the lowest index.
        let mut e = Engine::new();
        let q = e.resource_pool("Q", 2);
        assert_eq!(e.most_loaded_unit_in(q, 0.0, 0..2), 0);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn empty_selection_range_rejected() {
        let mut sim = Engine::new();
        let pool = sim.resource_pool("P", 2);
        let _ = sim.least_loaded_unit_in(pool, 0.0, 1..1);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn out_of_bounds_selection_range_rejected() {
        let mut sim = Engine::new();
        let pool = sim.resource_pool("P", 2);
        let _ = sim.most_loaded_unit_in(pool, 0.0, 0..3);
    }

    #[test]
    fn pool_selection_prefers_earliest_start() {
        let mut sim = Engine::new();
        let pool = sim.resource_pool("P", 2);
        let units = sim.pool_units(pool).to_vec();
        // Load unit 0 with 10 ms; a new task must land on unit 1.
        sim.submit("busy", Some(units[0]), 10.0, &[]);
        let t = sim.submit_to_pool("next", pool, 1.0, &[]);
        assert_eq!(sim.start_of(t), 0.0);
        assert_eq!(sim.busy_ms(units[1]), 1.0);
    }

    #[test]
    fn single_unit_pool_matches_plain_resource() {
        // The same submission sequence through a k = 1 pool and through the
        // classic single-resource API must produce identical schedules.
        let mut pooled = Engine::new();
        let pool = pooled.resource_pool("GPU", 1);
        let mut plain = Engine::new();
        let gpu = plain.resource("GPU");
        let durations = [4.0, 2.5, 7.0, 0.5, 3.0];
        for (i, d) in durations.iter().enumerate() {
            let a = pooled.submit_to_pool(&format!("t{i}"), pool, *d, &[]);
            let b = plain.submit(&format!("t{i}"), Some(gpu), *d, &[]);
            assert_eq!(pooled.start_of(a), plain.start_of(b));
            assert_eq!(pooled.end_of(a), plain.end_of(b));
        }
        assert_eq!(pooled.makespan(), plain.makespan());
    }

    #[test]
    fn single_unit_pool_shares_the_plain_resource() {
        let mut sim = Engine::new();
        let pool = sim.resource_pool("SENC", 1);
        let direct = sim.resource("SENC");
        assert_eq!(sim.pool_units(pool), &[direct]);
    }

    #[test]
    fn pool_lookup_is_idempotent() {
        let mut sim = Engine::new();
        let a = sim.resource_pool("RGPU", 3);
        let b = sim.resource_pool("RGPU", 3);
        assert_eq!(a, b);
        assert_eq!(sim.pool_size(a), 3);
        assert_eq!(sim.pool_name(a), "RGPU");
    }

    #[test]
    #[should_panic(expected = "different unit count")]
    fn pool_size_conflict_rejected() {
        let mut sim = Engine::new();
        sim.resource_pool("RGPU", 3);
        sim.resource_pool("RGPU", 4);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn empty_pool_rejected() {
        let mut sim = Engine::new();
        sim.resource_pool("RGPU", 0);
    }

    #[test]
    fn pool_busy_and_utilization_aggregate_units() {
        let mut sim = Engine::new();
        let pool = sim.resource_pool("P", 2);
        sim.submit_to_pool("a", pool, 4.0, &[]);
        sim.submit_to_pool("b", pool, 2.0, &[]);
        assert_eq!(sim.pool_busy_ms(pool), 6.0);
        // Makespan 4, two units: 6 / 8 = 0.75.
        assert!((sim.pool_utilization(pool) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn shared_engine_mirrors_and_aliases() {
        let eng = SharedEngine::new();
        let other = eng.clone();
        let gpu = eng.resource("GPU");
        let a = eng.submit("a", Some(gpu), 5.0, &[]);
        // The clone sees the same schedule and extends it.
        let b = other.submit("b", Some(gpu), 2.0, &[a]);
        assert_eq!(eng.start_of(b), 5.0);
        assert_eq!(eng.makespan(), 7.0);
        assert_eq!(eng.task_count(), 2);
        assert!(eng.verify_exclusivity());
        assert!(eng.to_string().contains("2 tasks"));
        assert_eq!(other.with(|e| e.tasks().len()), 2);
    }

    #[test]
    fn retirement_drops_history_but_keeps_aggregates_exact() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let mut last = None;
        for i in 0..50 {
            let deps: Vec<TaskId> = last.into_iter().collect();
            last = Some(sim.submit(&format!("t{i}"), Some(gpu), 2.0, &deps));
        }
        let makespan_before = sim.makespan();
        let busy_before = sim.busy_ms(gpu);
        let retired = sim.retire_before(60.0);
        assert_eq!(retired, 30, "tasks ending at or before 60 ms retire");
        assert_eq!(sim.retired_tasks(), 30);
        assert_eq!(sim.live_tasks(), 20);
        assert_eq!(sim.live_intervals(gpu), 20);
        assert_eq!(sim.makespan(), makespan_before);
        assert_eq!(sim.busy_ms(gpu), busy_before);
        // Live ids keep working; new submissions keep dense ids.
        assert_eq!(sim.end_of(last.unwrap()), 100.0);
        let next = sim.submit("t50", Some(gpu), 1.0, &[last.unwrap()]);
        assert_eq!(sim.start_of(next), 100.0);
        assert!(sim.verify_exclusivity());
    }

    #[test]
    fn retirement_folds_interval_busy_into_the_cumulative_counter() {
        // The by-construction guarantee behind retirement-proof energy
        // accounting: interval-derived busy time equals the submission-time
        // accumulator before retirement, after a partial retirement, and
        // after everything retired.
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let durations = [3.5, 1.25, 7.0, 0.75, 2.0];
        for (i, d) in durations.iter().enumerate() {
            sim.submit(&format!("t{i}"), Some(gpu), *d, &[]);
        }
        let total: f64 = durations.iter().sum();
        assert!((sim.interval_busy_ms(gpu) - total).abs() < 1e-12);
        sim.retire_before(5.0); // drops the first two intervals
        assert_eq!(sim.live_intervals(gpu), 3);
        assert!((sim.interval_busy_ms(gpu) - sim.busy_ms(gpu)).abs() < 1e-12);
        sim.retire_before(1e9);
        assert_eq!(sim.live_intervals(gpu), 0);
        assert!((sim.interval_busy_ms(gpu) - total).abs() < 1e-12);
        assert!((sim.busy_ms(gpu) - total).abs() < 1e-12);
    }

    #[test]
    fn retirement_is_a_noop_on_future_tasks() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let t = sim.submit("a", Some(gpu), 5.0, &[]);
        assert_eq!(sim.retire_before(4.9), 0);
        assert_eq!(sim.end_of(t), 5.0);
        assert_eq!(sim.retired_tasks(), 0);
    }

    #[test]
    #[should_panic(expected = "retired")]
    fn retired_dependency_lookup_panics() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let old = sim.submit("old", Some(gpu), 1.0, &[]);
        sim.retire_before(1.0);
        let _ = sim.end_of(old);
    }

    #[test]
    fn retirement_keeps_pool_accounting() {
        let mut sim = Engine::new();
        let pool = sim.resource_pool("P", 2);
        for i in 0..8 {
            sim.submit_to_pool(&format!("t{i}"), pool, 3.0, &[]);
        }
        let util_before = sim.pool_utilization(pool);
        sim.retire_before(6.0);
        assert_eq!(sim.pool_utilization(pool), util_before);
        assert_eq!(sim.pool_busy_ms(pool), 24.0);
        assert!(sim.max_live_intervals() <= 2);
    }

    #[test]
    fn repeated_exclusivity_queries_return_identical_results() {
        // The scratch-buffer rewrite must be a pure function of the current
        // schedule: querying many times (with submissions interleaved)
        // returns the same verdict every time, across resources of
        // different interval counts.
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let net = sim.resource("NET");
        for i in 0..20 {
            sim.submit(&format!("g{i}"), Some(gpu), 1.5, &[]);
            let first = sim.verify_exclusivity();
            for _ in 0..3 {
                assert_eq!(sim.verify_exclusivity(), first);
            }
            assert!(first);
        }
        sim.submit("n0", Some(net), 4.0, &[]);
        assert!(sim.verify_exclusivity());
        assert!(sim.verify_exclusivity());
    }

    #[test]
    fn labels_are_interned_across_submissions() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let a = sim.submit("LR", Some(gpu), 1.0, &[]);
        let b = sim.submit("LR", Some(gpu), 2.0, &[a]);
        let tasks = sim.tasks();
        assert!(
            Rc::ptr_eq(&tasks[a.0].label, &tasks[b.0].label),
            "same label must share one allocation"
        );
        assert_eq!(&*tasks[b.0].label, "LR");
    }

    #[test]
    fn dep_list_holds_inline_and_derefs_to_slice() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let a = sim.submit("a", Some(gpu), 2.0, &[]);
        let b = sim.submit("b", Some(gpu), 3.0, &[]);
        let mut deps = DepList::new();
        assert!(deps.is_empty());
        deps.push(a);
        deps.push(b);
        assert_eq!(deps.len(), 2);
        assert_eq!(deps.as_slice(), &[a, b]);
        let c = sim.submit("c", None, 1.0, &deps);
        assert_eq!(sim.start_of(c), 5.0, "gated on the later dependency");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn dep_list_overflow_panics() {
        let mut sim = Engine::new();
        let gpu = sim.resource("GPU");
        let t = sim.submit("t", Some(gpu), 1.0, &[]);
        let mut deps = DepList::new();
        for _ in 0..=DepList::CAPACITY {
            deps.push(t);
        }
    }

    #[test]
    fn long_pipeline_stays_causal() {
        // 100 frames of a 3-stage pipeline over 3 resources; steady-state
        // throughput must be set by the slowest stage.
        let mut sim = Engine::new();
        let cpu = sim.resource("CPU");
        let gpu = sim.resource("GPU");
        let net = sim.resource("NET");
        let mut prev_end = None;
        for i in 0..100 {
            let setup = sim.submit(&format!("f{i}:setup"), Some(cpu), 1.0, &[]);
            let render = sim.submit(&format!("f{i}:render"), Some(gpu), 4.0, &[setup]);
            let deps: Vec<TaskId> = match prev_end {
                Some(p) => vec![render, p],
                None => vec![render],
            };
            let tx = sim.submit(&format!("f{i}:tx"), Some(net), 2.0, &deps);
            prev_end = Some(tx);
        }
        assert!(sim.verify_exclusivity());
        // Slowest stage is the 4 ms GPU stage; 100 frames ≥ ~400 ms.
        let span = sim.makespan();
        assert!((400.0..420.0).contains(&span), "makespan {span}");
    }
}
