//! Checked float→integer conversions for span/bucket index math
//! (lint rule **D6**, DESIGN.md §14).
//!
//! A bare `as` cast from `f64` saturates silently: NaN becomes 0,
//! infinities become the type's extremes. In index math that failure
//! mode is poisonous — a NaN virtual-time frontier would quietly file
//! every sample into bucket 0 and the run would *look* deterministic
//! while aggregating garbage. These helpers are the audited conversion
//! points the D6 rule requires: they assert the value is finite and in
//! range, then perform exactly the rounding-and-cast the call sites
//! used to inline, so every valid input converts bit-identically to
//! the code they replaced (the fleet goldens pin this).

/// `v.floor()` as a bucket/column index.
///
/// # Panics
///
/// Panics if `v` is NaN, infinite, negative, or beyond `usize` range.
#[must_use]
pub fn floor_index(v: f64) -> usize {
    let r = v.floor();
    assert!(
        r.is_finite() && r >= 0.0 && r <= usize::MAX as f64,
        "floor_index: {v} is not a valid index"
    );
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        r as usize
    }
}

/// `v.ceil()` as a bucket/column index.
///
/// # Panics
///
/// Panics if `v` is NaN, infinite, negative, or beyond `usize` range.
#[must_use]
pub fn ceil_index(v: f64) -> usize {
    let r = v.ceil();
    assert!(
        r.is_finite() && r >= 0.0 && r <= usize::MAX as f64,
        "ceil_index: {v} is not a valid index"
    );
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        r as usize
    }
}

/// `v.ceil()` as a nearest-rank position (1-based ranks clamp at the
/// caller).
///
/// # Panics
///
/// Panics if `v` is NaN, infinite, or negative.
#[must_use]
pub fn ceil_rank(v: f64) -> u64 {
    let r = v.ceil();
    assert!(
        r.is_finite() && r >= 0.0 && r <= u64::MAX as f64,
        "ceil_rank: {v} is not a valid rank"
    );
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        r as u64
    }
}

/// `v.ceil()` as a signed log-linear bucket key (histogram keys go
/// negative for sub-unit samples).
///
/// # Panics
///
/// Panics if `v` is NaN, infinite, or outside `i32` range.
#[must_use]
pub fn ceil_key(v: f64) -> i32 {
    let r = v.ceil();
    assert!(
        r.is_finite() && r >= f64::from(i32::MIN) && r <= f64::from(i32::MAX),
        "ceil_key: {v} is not a valid bucket key"
    );
    #[allow(clippy::cast_possible_truncation)]
    {
        r as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_inline_casts_bit_for_bit() {
        for v in [0.0, 0.49, 0.5, 1.0, 7.99, 1234.0, 1e9] {
            // qvr-lint: allow(D6): the bit-identity oracle is the inline cast itself
            assert_eq!(floor_index(v), v.floor() as usize);
            // qvr-lint: allow(D6): the bit-identity oracle is the inline cast itself
            assert_eq!(ceil_index(v), v.ceil() as usize);
            // qvr-lint: allow(D6): the bit-identity oracle is the inline cast itself
            assert_eq!(ceil_rank(v), v.ceil() as u64);
        }
        for v in [-40.9, -1.0, 0.0, 3.2, 88.0] {
            // qvr-lint: allow(D6): the bit-identity oracle is the inline cast itself
            assert_eq!(ceil_key(v), v.ceil() as i32);
        }
    }

    #[test]
    #[should_panic(expected = "not a valid index")]
    fn nan_panics_instead_of_saturating() {
        let _ = floor_index(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "not a valid index")]
    fn negative_index_panics() {
        let _ = ceil_index(-2.0);
    }

    #[test]
    #[should_panic(expected = "not a valid bucket key")]
    fn infinite_key_panics() {
        let _ = ceil_key(f64::INFINITY);
    }
}
