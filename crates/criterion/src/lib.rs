//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses: `Criterion`, benchmark groups, `Bencher::iter`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no registry access, so the real `criterion`
//! cannot be fetched. This shim keeps `cargo bench` working with honest
//! wall-clock timing (warm-up then a fixed measurement window, median of
//! batch means) — without the statistical machinery, HTML reports, or
//! command-line filtering of the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup { _parent: self }
    }

    /// Runs a single named benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, f);
        self
    }
}

/// A named collection of benchmarks printed under one heading.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes batches from the
    /// warm-up rate instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("  {name}"), f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the body.
#[derive(Debug)]
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `body` over a warm-up and a measurement window.
    pub fn iter<O, R>(&mut self, mut body: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run for ~50 ms or at least 5 iterations.
        let warmup_end = Instant::now() + Duration::from_millis(50);
        let mut warmup_iters: u64 = 0;
        while Instant::now() < warmup_end || warmup_iters < 5 {
            black_box(body());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }

        // Measurement: batches sized off the warm-up rate, ~200 ms budget.
        let batch = (warmup_iters / 10).clamp(1, 100_000);
        let mut batch_means: Vec<f64> = Vec::new();
        let budget_end = Instant::now() + Duration::from_millis(200);
        while Instant::now() < budget_end || batch_means.len() < 3 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            batch_means.push(elapsed / batch as f64);
            if batch_means.len() >= 1_000 {
                break;
            }
        }
        batch_means.sort_by(f64::total_cmp);
        self.ns_per_iter = batch_means[batch_means.len() / 2];
    }
}

fn run_benchmark<F>(name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    let ns = b.ns_per_iter;
    let pretty = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    };
    println!("{name:<40} {pretty:>12}/iter");
}

/// Declares a function that runs a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        group.finish();
    }

    #[test]
    fn macros_compile() {
        fn bench_noop(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1u32));
        }
        criterion_group!(benches, bench_noop);
        benches();
    }
}
