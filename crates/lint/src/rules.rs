//! The rule engine: six determinism/merge-law rules (D1–D6) plus the
//! suppression-audit rules (A0 malformed, A1 unused), evaluated over
//! the lexed token stream of one file.
//!
//! Every rule is lexical on purpose: the pass must run offline with no
//! parser dependencies, so rules match token shapes, scoped by file
//! path (from `lint.toml`) and by enclosing-function name (tracked with
//! a brace stack). The corresponding invariants are catalogued in
//! DESIGN.md §14.

use crate::config::Config;
use crate::lexer::{lex, Comment, Tok, TokKind};

/// One finding. `suppressed` findings were matched by an inline
/// `qvr-lint: allow(...)` and do not fail `--check`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
    pub suppressed: bool,
}

/// Rule ids, used in reports and in the suppression grammar.
pub const RULES: &[&str] = &["D1", "D2", "D3", "D4", "D5", "D6"];

/// An inline suppression parsed from a comment.
#[derive(Debug)]
struct Allow {
    line: u32,
    rule: String,
    used: bool,
}

/// Directives parsed from one file's comments.
#[derive(Debug, Default)]
struct Directives {
    allows: Vec<Allow>,
    /// `module(report)` pragma present: the whole file is D3 scope.
    report_module: bool,
    /// A0 findings produced while parsing (malformed directives).
    malformed: Vec<(u32, String)>,
}

/// Analyzes one file and returns its findings (suppressions already
/// applied; sorted by line, then rule).
#[must_use]
pub fn analyze_file(path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let lexed = lex(src);
    let directives = parse_directives(&lexed.comments);
    let scopes = fn_scopes(&lexed.toks);
    let mut raw: Vec<Finding> = Vec::new();

    let mk = |line: u32, rule: &'static str, message: String| Finding {
        path: path.to_string(),
        line,
        rule,
        message,
        suppressed: false,
    };

    let toks = &lexed.toks;
    let d1 = cfg.rule("D1");
    let d2 = cfg.rule("D2");
    let d3 = cfg.rule("D3");
    let d4 = cfg.rule("D4");
    let d5 = cfg.rule("D5");
    let d6 = cfg.rule("D6");
    let float_idents = float_typed_idents(toks, &d4.float_types);

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident && t.text != "+=" {
            continue;
        }

        // D1 — wall-clock reads in simulation/aggregation crates.
        if d1.applies_to(path)
            && (t.text == "Instant" || t.text == "SystemTime")
            && tok_text(toks, i + 1) == "::"
            && tok_text(toks, i + 2) == "now"
        {
            raw.push(mk(
                t.line,
                "D1",
                format!(
                    "wall-clock read `{}::now` in deterministic code — simulated \
                     time must come from the virtual clock",
                    t.text
                ),
            ));
        }

        // D2 — unseeded randomness anywhere in the scan set.
        if d2.applies_to(path)
            && matches!(
                t.text.as_str(),
                "thread_rng" | "from_entropy" | "from_os_rng" | "OsRng"
            )
        {
            raw.push(mk(
                t.line,
                "D2",
                format!(
                    "unseeded RNG `{}` — every generator must derive from the \
                     run's configured seed",
                    t.text
                ),
            ));
        }

        // D3 — unordered-map use in merge/summary/exposition/report code.
        if d3.applies_to(path) && (t.text == "HashMap" || t.text == "HashSet") {
            let scoped_fn = scopes[i]
                .as_deref()
                .filter(|name| fn_in_scope(name, &d3.scope_fns));
            if directives.report_module || scoped_fn.is_some() {
                let ctx = scoped_fn.map_or_else(
                    || "report-pragma module".to_string(),
                    |name| format!("merge-scoped fn `{name}`"),
                );
                raw.push(mk(
                    t.line,
                    "D3",
                    format!(
                        "`{}` in {ctx} — unordered iteration breaks bitwise \
                         reproducibility; use BTreeMap/SortedSamples or an \
                         explicit sort",
                        t.text
                    ),
                ));
            }
        }

        // D4 — f64 accumulation inside merge/absorb functions.
        if d4.applies_to(path) {
            if let Some(name) = scopes[i]
                .as_deref()
                .filter(|n| fn_in_scope(n, &d4.scope_fns))
            {
                let is_add_assign = t.text == "+=";
                let is_sum_call = t.text == "sum"
                    && tok_text(toks, i.wrapping_sub(1)) == "."
                    && matches!(tok_text(toks, i + 1), "(" | "::");
                if (is_add_assign || is_sum_call) && stmt_has_float_evidence(toks, i, &float_idents)
                {
                    let what = if is_add_assign { "`+=`" } else { "`.sum()`" };
                    raw.push(mk(
                        t.line,
                        "D4",
                        format!(
                            "float accumulation {what} in merge fn `{name}` — \
                             merge laws require associative folds; use u64 \
                             bucket adds or an audited allow"
                        ),
                    ));
                }
            }
        }

        // D5 — raw thread primitives outside the sanctioned worker pool.
        if d5.applies_to(path)
            && t.text == "thread"
            && tok_text(toks, i + 1) == "::"
            && matches!(tok_text(toks, i + 2), "spawn" | "scope")
        {
            raw.push(mk(
                t.line,
                "D5",
                format!(
                    "raw `thread::{}` outside qvr_sim — parallelism must go \
                     through qvr_sim::parallel_map_with (worker-count-independent \
                     by construction)",
                    tok_text(toks, i + 2)
                ),
            ));
        }

        // D6 — `as` float→int casts in span/bucket index math.
        if d6.applies_to(path) && t.text == "as" {
            if let Some(int_ty) = toks.get(i + 1).filter(|n| {
                n.kind == TokKind::Ident
                    && matches!(
                        n.text.as_str(),
                        "usize"
                            | "u64"
                            | "u32"
                            | "u16"
                            | "u8"
                            | "isize"
                            | "i64"
                            | "i32"
                            | "i16"
                            | "i8"
                    )
            }) {
                if let Some(rounder) = stmt_rounding_call(toks, i) {
                    raw.push(mk(
                        t.line,
                        "D6",
                        format!(
                            "`as {}` on a `.{rounder}()` result — index math must \
                             use the checked helpers (qvr_sim::checked), which \
                             reject NaN instead of saturating silently",
                            int_ty.text
                        ),
                    ));
                }
            }
        }
    }

    apply_suppressions(path, raw, directives)
}

/// Marks findings suppressed by a same-line or previous-line allow,
/// then appends A0 (malformed directive) and A1 (unused allow) audit
/// findings.
fn apply_suppressions(
    path: &str,
    mut raw: Vec<Finding>,
    mut directives: Directives,
) -> Vec<Finding> {
    for f in &mut raw {
        for a in &mut directives.allows {
            if a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
                f.suppressed = true;
                a.used = true;
            }
        }
    }
    for (line, message) in directives.malformed {
        raw.push(Finding {
            path: path.to_string(),
            line,
            rule: "A0",
            message,
            suppressed: false,
        });
    }
    for a in &directives.allows {
        if !a.used {
            raw.push(Finding {
                path: path.to_string(),
                line: a.line,
                rule: "A1",
                message: format!(
                    "allow({}) suppresses nothing — delete it or move it onto \
                     (or directly above) the finding it audits",
                    a.rule
                ),
                suppressed: false,
            });
        }
    }
    raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    raw
}

/// Parses `qvr-lint:` directives out of the comment stream.
///
/// Grammar (DESIGN.md §14):
///   `// qvr-lint: allow(<rule>): <reason>`   suppress <rule> on this
///                                            line or the next
///   `// qvr-lint: module(report)`            whole file is D3 scope
fn parse_directives(comments: &[Comment]) -> Directives {
    let mut d = Directives::default();
    for c in comments {
        // A directive must open the comment (`// qvr-lint: …`): prose
        // that merely *mentions* the grammar (docs, this file) stays
        // inert. Comment markers `//`, `///`, `//!`, `/*` strip first.
        let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = body.strip_prefix("qvr-lint:") else {
            continue;
        };
        let rest = rest.trim();
        if let Some(body) = rest.strip_prefix("allow(") {
            let Some((rule, after)) = body.split_once(')') else {
                d.malformed.push((
                    c.line,
                    "malformed suppression — expected `qvr-lint: allow(<rule>): <reason>`"
                        .to_string(),
                ));
                continue;
            };
            let rule = rule.trim();
            if !RULES.contains(&rule) {
                d.malformed.push((
                    c.line,
                    format!("unknown rule `{rule}` in allow — known rules: D1…D6"),
                ));
                continue;
            }
            let reason = after.trim().strip_prefix(':').map(str::trim);
            match reason {
                Some(r) if !r.is_empty() => d.allows.push(Allow {
                    line: c.line,
                    rule: rule.to_string(),
                    used: false,
                }),
                _ => d.malformed.push((
                    c.line,
                    format!(
                        "allow({rule}) missing its reason — audited suppressions \
                         must say why (`allow({rule}): <reason>`)"
                    ),
                )),
            }
        } else if let Some(body) = rest.strip_prefix("module(") {
            match body.split_once(')').map(|(v, _)| v.trim()) {
                Some("report") => d.report_module = true,
                Some(other) => d.malformed.push((
                    c.line,
                    format!("unknown module pragma `{other}` — expected module(report)"),
                )),
                None => d.malformed.push((
                    c.line,
                    "malformed pragma — expected `qvr-lint: module(report)`".to_string(),
                )),
            }
        } else {
            d.malformed.push((
                c.line,
                "unrecognized qvr-lint directive — expected allow(<rule>): <reason> \
                 or module(report)"
                    .to_string(),
            ));
        }
    }
    d
}

/// For every token, the name of the innermost enclosing `fn`, tracked
/// with a brace stack. Trait-method declarations (no body) clear the
/// pending name at `;`.
fn fn_scopes(toks: &[Tok]) -> Vec<Option<String>> {
    let mut out = Vec::with_capacity(toks.len());
    let mut stack: Vec<Option<String>> = Vec::new();
    let mut pending: Option<String> = None;
    for (i, t) in toks.iter().enumerate() {
        // The scope a token sees excludes the brace that opens it.
        out.push(stack.iter().rev().flatten().next().cloned());
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "fn") => {
                if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    pending = Some(name.text.clone());
                }
            }
            (TokKind::Punct, "{") => stack.push(pending.take()),
            (TokKind::Punct, "}") => {
                stack.pop();
            }
            // A `;` before the body's `{` closes a bodyless declaration
            // (trait methods); inside bodies `pending` is already None.
            (TokKind::Punct, ";") => pending = None,
            _ => {}
        }
    }
    out
}

/// A function name is in scope when any `_`-separated segment starts
/// with a scope word (`merged_load` → `merged` → scope word `merge`).
fn fn_in_scope(name: &str, scope_fns: &[String]) -> bool {
    name.split('_')
        .any(|seg| scope_fns.iter().any(|w| seg.starts_with(w.as_str())))
}

/// Identifiers declared with a float-carrying type anywhere in the
/// file: matches `name: <float_type>` through an optional `&`/`mut`
/// prefix (struct fields, fn params, annotated lets).
fn float_typed_idents(toks: &[Tok], float_types: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || tok_text(toks, i + 1) != ":" {
            continue;
        }
        let mut j = i + 2;
        while matches!(tok_text(toks, j), "&" | "mut") {
            j += 1;
        }
        if let Some(ty) = toks.get(j) {
            if ty.kind == TokKind::Ident && float_types.iter().any(|f| f == &ty.text) {
                out.push(toks[i].text.clone());
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Statement bounds around token `i`: the exclusive window between the
/// nearest `;`/`{`/`}` on either side.
fn stmt_bounds(toks: &[Tok], i: usize) -> (usize, usize) {
    let stop = |t: &Tok| t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}");
    let mut lo = i;
    while lo > 0 && !stop(&toks[lo - 1]) {
        lo -= 1;
    }
    let mut hi = i;
    while hi + 1 < toks.len() && !stop(&toks[hi + 1]) {
        hi += 1;
    }
    (lo, hi)
}

/// Float evidence inside the statement containing token `i`: a float
/// literal, an `f64`/`f32` token, or an identifier declared with a
/// float-carrying type in this file.
fn stmt_has_float_evidence(toks: &[Tok], i: usize, float_idents: &[String]) -> bool {
    let (lo, hi) = stmt_bounds(toks, i);
    toks[lo..=hi].iter().any(|t| match t.kind {
        TokKind::Num => is_float_literal(&t.text),
        TokKind::Ident => {
            t.text == "f64" || t.text == "f32" || float_idents.binary_search(&t.text).is_ok()
        }
        _ => false,
    })
}

/// Whether the statement containing the `as` at `i` rounds a float
/// first (`.floor()` / `.ceil()` / `.round()` before the cast).
fn stmt_rounding_call(toks: &[Tok], i: usize) -> Option<&'static str> {
    let (lo, _) = stmt_bounds(toks, i);
    for j in (lo..i).rev() {
        if toks[j].kind == TokKind::Ident
            && tok_text(toks, j.wrapping_sub(1)) == "."
            && tok_text(toks, j + 1) == "("
        {
            match toks[j].text.as_str() {
                "floor" => return Some("floor"),
                "ceil" => return Some("ceil"),
                "round" => return Some("round"),
                _ => {}
            }
        }
    }
    None
}

/// Float-literal test on a `Num` token's raw text (hex/octal/binary
/// are integers; `.`/exponent/f-suffix mark floats).
fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.contains('e')
        || text.contains('E')
}

fn tok_text(toks: &[Tok], i: usize) -> &str {
    toks.get(i).map_or("", |t| t.text.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let cfg = Config::parse(
            r#"
            [scan]
            roots = ["."]
            [rules.D3]
            scope_fns = ["merge", "absorb", "finish", "exposition", "summary", "report"]
            [rules.D4]
            scope_fns = ["merge", "absorb"]
            float_types = ["f64", "f32", "FleetEnergy"]
            "#,
        )
        .expect("test config");
        analyze_file("t.rs", src, &cfg)
    }

    fn unsuppressed(src: &str) -> Vec<Finding> {
        run(src).into_iter().filter(|f| !f.suppressed).collect()
    }

    #[test]
    fn d1_matches_only_real_calls() {
        let f = unsuppressed("fn step() { let t = Instant::now(); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D1");
        assert!(unsuppressed("// Instant::now in prose\nlet s = \"Instant::now\";").is_empty());
    }

    #[test]
    fn d3_needs_scope() {
        assert!(unsuppressed("fn step() { let m: HashMap<u32, u32>; }").is_empty());
        let f = unsuppressed("fn merge_cells() { let m: HashMap<u32, u32>; }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D3");
        let via_pragma =
            unsuppressed("// qvr-lint: module(report)\nfn anything() { let m: HashSet<u32>; }");
        assert_eq!(via_pragma.len(), 1);
    }

    #[test]
    fn d4_distinguishes_u64_from_f64() {
        // u64 bucket adds are the sanctioned form: no float evidence.
        assert!(
            unsuppressed("fn absorb(&mut self, other: &H) { self.count += other.count; }")
                .is_empty()
        );
        let f = unsuppressed("fn merge(xs: &[f64]) { let mut acc: f64 = 0.0; acc += xs[0]; }");
        assert!(f.iter().any(|f| f.rule == "D4"));
        let sum = unsuppressed("fn merge(xs: &[f64]) { let t: f64 = xs.iter().sum::<f64>(); }");
        assert!(sum.iter().any(|f| f.rule == "D4"));
    }

    #[test]
    fn d6_requires_a_rounding_call() {
        let f = unsuppressed("fn f(t: f64, w: f64) { let b = (t / w).floor() as usize; }");
        assert_eq!(f.iter().filter(|f| f.rule == "D6").count(), 1);
        assert!(unsuppressed("fn f(n: u64) { let b = n as usize; }").is_empty());
    }

    #[test]
    fn suppression_needs_reason_and_use() {
        let ok = run("fn merge(a: f64) { let mut s: f64 = 0.0;\n    // qvr-lint: allow(D4): audited fold in cell-id order\n    s += a; }");
        assert!(ok.iter().any(|f| f.rule == "D4" && f.suppressed));
        assert!(!ok.iter().any(|f| f.rule == "A0" || f.rule == "A1"));

        let bare = run("fn f() {} // qvr-lint: allow(D4)");
        assert!(bare.iter().any(|f| f.rule == "A0"));

        let unused = run("fn f() { // qvr-lint: allow(D1): nothing here to allow\n }");
        assert!(unused.iter().any(|f| f.rule == "A1"));
    }
}
