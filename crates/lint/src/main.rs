//! CLI for the determinism & merge-law pass.
//!
//! ```text
//! qvr_lint [--check] [--root <dir>] [--config <lint.toml>]
//! ```
//!
//! Prints one line per unsuppressed finding (`file:line: rule-id …`)
//! plus a summary. With `--check`, exits 1 when any unsuppressed
//! finding remains — the CI gate. Exit 2 is reserved for usage or
//! configuration errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage("--config needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "qvr_lint [--check] [--root <dir>] [--config <lint.toml>]\n\
                     Workspace determinism & merge-law static analysis (DESIGN.md §14)."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("qvr_lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match qvr_lint::config::Config::parse(&config_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("qvr_lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match qvr_lint::run_pass(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("qvr_lint: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render());
    println!("{}", report.summary());
    if check && report.count() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("qvr_lint: {msg}\nusage: qvr_lint [--check] [--root <dir>] [--config <lint.toml>]");
    ExitCode::from(2)
}
