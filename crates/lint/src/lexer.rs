//! A lightweight, comment- and string-aware Rust lexer.
//!
//! The rule engine needs exactly three things a regex cannot give it
//! reliably: (1) identifiers that are *code*, not text inside string
//! literals or comments; (2) the line every token sits on; (3) the
//! comments themselves, separated out, so suppression and pragma
//! grammar (DESIGN.md §14) can be parsed from them. No external parser
//! crates — same vendored-shim spirit as `crates/proptest`.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// Token class. Literals keep their raw text but rules never match
/// inside them — that is the point of lexing at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `as`, `HashMap`, …).
    Ident,
    /// Punctuation, with a small set of two-character operators fused
    /// (`::`, `+=`, `->`, …).
    Punct,
    /// Numeric literal, suffix included (`1e-9`, `0xA2`, `3.0f64`).
    Num,
    /// String / raw-string / byte-string literal.
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// One comment, with its line; rules parse suppressions/pragmas out of
/// these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// Lexer output: the token stream plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Two-character operators fused into one `Punct` token. Only the ones
/// a rule inspects need fusing; everything else may split freely.
const TWO_CHAR_OPS: &[&str] = &[
    "::", "->", "=>", "+=", "-=", "*=", "/=", "%=", "==", "!=", "<=", ">=", "&&", "||", "..",
];

/// Lexes one source file. Never fails: unterminated literals consume to
/// end of input (the pass audits code that already compiles, so this is
/// a graceful-degradation path, not a correctness one).
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($s:expr) => {
            line += $s.chars().filter(|&c| c == '\n').count() as u32
        };
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (also doc `///` and `//!`).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Block comment, nesting honoured (Rust allows it).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Raw strings / raw idents / byte strings, all starting at an
        // `r` / `b` prefix.
        if (c == 'r' || c == 'b') && i + 1 < n {
            if let Some((kind, text, advance)) = lex_prefixed_literal(&b[i..]) {
                let start_line = line;
                bump_lines!(text);
                out.toks.push(Tok {
                    kind,
                    text,
                    line: start_line,
                });
                i += advance;
                continue;
            }
        }
        // Plain string literal.
        if c == '"' {
            let start_line = line;
            let (text, advance) = lex_quoted(&b[i..], '"');
            bump_lines!(text);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text,
                line: start_line,
            });
            i += advance;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if is_lifetime(&b[i..]) {
                let start = i;
                i += 1;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line,
                });
            } else {
                let (text, advance) = lex_quoted(&b[i..], '\'');
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                });
                i += advance;
            }
            continue;
        }
        // Identifier / keyword (raw idents handled in the prefix path).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Numeric literal: digits, then a fraction only when `.` is
        // followed by a digit (so `0..n` and `t.0` stay punctuation),
        // exponent signs included (`1e-9`), suffixes consumed.
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < n {
                let d = b[i];
                if d.is_alphanumeric() || d == '_' {
                    // Exponent sign: `1e-9` / `2E+3` are one token.
                    if (d == 'e' || d == 'E')
                        && !b[start..i].iter().collect::<String>().starts_with("0x")
                        && i + 1 < n
                        && (b[i + 1] == '+' || b[i + 1] == '-')
                    {
                        i += 2;
                        continue;
                    }
                    i += 1;
                } else if d == '.' && i + 1 < n && b[i + 1].is_ascii_digit() {
                    i += 1;
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Punctuation, two-char operators fused.
        if i + 1 < n {
            let pair: String = b[i..i + 2].iter().collect();
            if TWO_CHAR_OPS.contains(&pair.as_str()) {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: pair,
                    line,
                });
                i += 2;
                continue;
            }
        }
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// `'` starts a lifetime when the next char opens an identifier and the
/// char after that is not a closing quote (`'a'` is a char, `'a` and
/// `'static` are lifetimes).
fn is_lifetime(b: &[char]) -> bool {
    match b.get(1) {
        Some(&c) if c.is_alphabetic() || c == '_' => b.get(2) != Some(&'\''),
        _ => false,
    }
}

/// Quoted literal with backslash escapes; returns `(text, advance)`.
fn lex_quoted(b: &[char], quote: char) -> (String, usize) {
    let mut i = 1;
    while i < b.len() {
        if b[i] == '\\' {
            i += 2;
            continue;
        }
        if b[i] == quote {
            i += 1;
            break;
        }
        i += 1;
    }
    let i = i.min(b.len());
    (b[..i].iter().collect(), i)
}

/// Handles `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `b'…'`, and raw
/// identifiers `r#ident`. Returns `None` when the prefix is just a
/// plain identifier starting with `r`/`b`.
fn lex_prefixed_literal(b: &[char]) -> Option<(TokKind, String, usize)> {
    let mut i = 1;
    // `br` / `rb` double prefix (only `br` is legal Rust; accept both).
    if i < b.len() && (b[i] == 'r' || b[i] == 'b') && b[0] != b[i] {
        i += 1;
    }
    let hashes_start = i;
    while i < b.len() && b[i] == '#' {
        i += 1;
    }
    let hashes = i - hashes_start;
    match b.get(i) {
        Some(&'"') => {
            // Raw (or plain byte) string: scan for `"` followed by the
            // same number of hashes. Escapes are inert in raw strings;
            // for `b"…"` (zero hashes via this path only when prefixed)
            // escapes still need honouring — route through lex_quoted.
            if hashes == 0 && b[0] == 'b' && b.get(1) == Some(&'"') {
                let (text, adv) = lex_quoted(&b[1..], '"');
                return Some((TokKind::Str, format!("b{text}"), adv + 1));
            }
            let mut j = i + 1;
            while j < b.len() {
                if b[j] == '"'
                    && b[j + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&c| c == '#')
                        .count()
                        == hashes
                {
                    j += 1 + hashes;
                    return Some((TokKind::Str, b[..j].iter().collect(), j));
                }
                j += 1;
            }
            Some((TokKind::Str, b.iter().collect(), b.len()))
        }
        Some(&'\'') if b[0] == 'b' && hashes == 0 => {
            let (text, adv) = lex_quoted(&b[i..], '\'');
            Some((TokKind::Char, format!("b{text}"), adv + i))
        }
        Some(&c) if hashes == 1 && b[0] == 'r' && (c.is_alphabetic() || c == '_') => {
            // Raw identifier `r#ident`: emit as a plain identifier so
            // rules see through the escaping.
            let mut j = i;
            while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            Some((TokKind::Ident, b[i..j].iter().collect(), j))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // thread_rng in a comment
            /* HashMap in /* a nested */ block */
            let s = "thread_rng";
            let r = r#"HashMap"#;
            let real = thread_rng();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "thread_rng").count(), 1);
        assert!(!ids.contains(&"HashMap".to_string()));
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
    }

    #[test]
    fn lifetimes_chars_and_numbers() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let y = 1e-9; let h = 0xA2_u64; }");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "'x'"));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1e-9"));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "0xA2_u64"));
    }

    #[test]
    fn two_char_ops_fuse_and_lines_count() {
        let l = lex("a += b;\nInstant::now()");
        assert!(l.toks.iter().any(|t| t.text == "+=" && t.line == 1));
        assert!(l.toks.iter().any(|t| t.text == "::" && t.line == 2));
        assert!(l.toks.iter().any(|t| t.text == "Instant" && t.line == 2));
    }

    #[test]
    fn raw_idents_lex_as_plain() {
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"type".to_string()));
    }
}
