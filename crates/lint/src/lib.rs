//! `qvr_lint` — the workspace determinism & merge-law static-analysis
//! pass (DESIGN.md §14).
//!
//! Every result this repro reports rests on hand-maintained determinism
//! discipline: golden-pinned fleet configs, shard merges bit-identical
//! to a single `Fleet::run`, worker-count-independent sweeps, and
//! byte-identical metrics expositions. This crate turns that discipline
//! into a machine-checked invariant: a comment/string-aware Rust lexer
//! (no external parser deps — same vendored-shim spirit as
//! `crates/proptest`), a rule engine with spans, and a findings report
//! keyed `file:line: rule-id`, enforced in CI via `qvr_lint --check`.
//!
//! The rule catalogue (scoped by `lint.toml` at the workspace root):
//!
//! | rule | invariant it guards |
//! |------|---------------------|
//! | D1   | no wall-clock reads in `sim`/`core`/`net` (virtual time only) |
//! | D2   | no unseeded RNG anywhere (runs are pure functions of the seed) |
//! | D3   | no `HashMap`/`HashSet` in merge/summary/exposition/report code |
//! | D4   | no f64 `+=`/`sum()` accumulation in merge/absorb fns |
//! | D5   | parallelism only via `qvr_sim::parallel_map_with` |
//! | D6   | no `as` float→int casts in span/bucket index math |
//! | A0   | every `qvr-lint:` directive is well-formed and carries a reason |
//! | A1   | every inline allow suppresses something (no stale audits) |
//!
//! Suppression is inline and auditable:
//! `// qvr-lint: allow(D4): <reason>` on (or directly above) the
//! finding line; `// qvr-lint: module(report)` opts a whole file into
//! D3's report-code scope.

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use config::Config;
use report::Report;
use rules::Finding;
use std::path::{Path, PathBuf};

/// Runs the pass over `root` under `cfg`, returning the full report.
///
/// File discovery is sorted at every directory level, so the report is
/// byte-identical across filesystems and invocations.
///
/// # Errors
///
/// Returns an error message when a scan root cannot be read.
pub fn run_pass(root: &Path, cfg: &Config) -> Result<Report, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for scan_root in &cfg.roots {
        let dir = root.join(scan_root);
        if !dir.exists() {
            return Err(format!(
                "scan root `{scan_root}` does not exist under {root:?}"
            ));
        }
        collect_rs_files(&dir, &mut files)?;
    }
    files.sort();
    files.dedup();

    let mut findings: Vec<Finding> = Vec::new();
    let mut scanned = 0;
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if !cfg.scans(&rel) {
            continue;
        }
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        findings.extend(rules::analyze_file(&rel, &src, cfg));
        scanned += 1;
    }
    Ok(Report::new(findings, scanned))
}

/// Recursively collects `.rs` files, directory entries sorted for a
/// deterministic walk.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
