//! Findings report: deterministic rendering keyed `file:line: rule-id`.

use crate::rules::Finding;

/// The pass's result over a scan set.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, suppressed ones included, sorted by
    /// `(path, line, rule)`.
    pub findings: Vec<Finding>,
    /// Files lexed and analyzed.
    pub files_scanned: usize,
}

impl Report {
    /// Builds a report from per-file findings (re-sorts globally so
    /// output is independent of scan order).
    #[must_use]
    pub fn new(mut findings: Vec<Finding>, files_scanned: usize) -> Report {
        findings.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
        });
        Report {
            findings,
            files_scanned,
        }
    }

    /// Unsuppressed findings — the ones that fail `--check`.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Count of unsuppressed findings.
    #[must_use]
    pub fn count(&self) -> usize {
        self.unsuppressed().count()
    }

    /// Count of suppressed (audited-allow) findings.
    #[must_use]
    pub fn suppressed_count(&self) -> usize {
        self.findings.len() - self.count()
    }

    /// One line per unsuppressed finding: `path:line: RULE message`.
    /// This exact text is golden-pinned by the fixture corpus.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in self.unsuppressed() {
            out.push_str(&format!(
                "{}:{}: {} {}\n",
                f.path, f.line, f.rule, f.message
            ));
        }
        out
    }

    /// The human summary line (not part of the goldens).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "qvr_lint: {} finding(s), {} suppressed by audited allows, {} file(s) scanned",
            self.count(),
            self.suppressed_count(),
            self.files_scanned
        )
    }
}
