//! `lint.toml` — the pass's workspace configuration.
//!
//! A hand-rolled parser for the tiny TOML subset the config needs
//! (sections, string keys, string-array keys); the build environment is
//! offline, so no external TOML crate. Unknown sections or keys are a
//! hard error — a typo in scope configuration must not silently turn a
//! rule off.

use std::collections::BTreeMap;

/// Per-rule scoping knobs. Empty `paths` means "every scanned file".
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// Path prefixes (workspace-relative, `/`-separated) the rule
    /// applies to. Empty = all scanned files.
    pub paths: Vec<String>,
    /// Path prefixes the rule is *exempt* in (checked after `paths`;
    /// D5 uses this to sanction `qvr_sim`'s own worker pool).
    pub exempt: Vec<String>,
    /// Function-name scope words (D3/D4): a function is in scope when
    /// any `_`-separated segment of its name starts with one of these.
    pub scope_fns: Vec<String>,
    /// Type names treated as float evidence for D4 (`f64`, `f32`, and
    /// float-carrying aggregates like `FleetEnergy`).
    pub float_types: Vec<String>,
}

/// The whole config: what to scan, and each rule's scope.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directories (workspace-relative) to walk for `.rs` files.
    pub roots: Vec<String>,
    /// Path prefixes excluded from the scan entirely (vendored shims,
    /// the fixture corpus, build output).
    pub exclude: Vec<String>,
    /// Per-rule scoping, keyed by rule id (`D1` … `D6`).
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// Parses `lint.toml` text.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for anything outside
    /// the supported subset: unknown sections/keys, non-string values,
    /// or syntax errors.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        // Pre-join multi-line arrays: a `key = [` opener absorbs lines
        // until its closing `]`.
        let mut joined: Vec<(usize, String)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let continuing = joined
                .last()
                .is_some_and(|(_, prev)| prev.contains('[') && !prev.contains(']'));
            if continuing {
                let (_, prev) = joined.last_mut().expect("checked non-empty");
                prev.push(' ');
                prev.push_str(&line);
            } else {
                joined.push((idx + 1, line));
            }
        }
        for (lineno, line) in joined {
            if line.starts_with('[') {
                if !line.ends_with(']') {
                    return Err(format!("lint.toml:{lineno}: unterminated section header"));
                }
                section = line[1..line.len() - 1].trim().to_string();
                match section.as_str() {
                    "scan" => {}
                    s if s.strip_prefix("rules.").is_some_and(is_rule_id) => {
                        cfg.rules
                            .entry(s["rules.".len()..].to_string())
                            .or_default();
                    }
                    other => {
                        return Err(format!("lint.toml:{lineno}: unknown section [{other}]"));
                    }
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{lineno}: expected `key = value`"));
            };
            let key = key.trim();
            let values =
                parse_string_array(value.trim()).map_err(|e| format!("lint.toml:{lineno}: {e}"))?;
            match (section.as_str(), key) {
                ("scan", "roots") => cfg.roots = values,
                ("scan", "exclude") => cfg.exclude = values,
                (s, k) if s.starts_with("rules.") => {
                    let rule = cfg
                        .rules
                        .get_mut(&s["rules.".len()..])
                        .expect("section entry created at header");
                    match k {
                        "paths" => rule.paths = values,
                        "exempt" => rule.exempt = values,
                        "scope_fns" => rule.scope_fns = values,
                        "float_types" => rule.float_types = values,
                        other => {
                            return Err(format!(
                                "lint.toml:{lineno}: unknown key `{other}` in [{s}]"
                            ));
                        }
                    }
                }
                (s, k) => {
                    return Err(format!("lint.toml:{lineno}: unknown key `{k}` in [{s}]"));
                }
            }
        }
        if cfg.roots.is_empty() {
            return Err("lint.toml: [scan] roots must name at least one directory".into());
        }
        Ok(cfg)
    }

    /// The scope for `rule`, or a default (all-files) scope when the
    /// config has no section for it.
    #[must_use]
    pub fn rule(&self, rule: &str) -> RuleConfig {
        self.rules.get(rule).cloned().unwrap_or_default()
    }

    /// Whether `path` (workspace-relative, `/`-separated) is inside the
    /// scan set.
    #[must_use]
    pub fn scans(&self, path: &str) -> bool {
        !self.exclude.iter().any(|p| path_has_prefix(path, p))
    }
}

impl RuleConfig {
    /// Whether the rule applies to `path` at all.
    #[must_use]
    pub fn applies_to(&self, path: &str) -> bool {
        let included = self.paths.is_empty() || self.paths.iter().any(|p| path_has_prefix(path, p));
        included && !self.exempt.iter().any(|p| path_has_prefix(path, p))
    }
}

/// Prefix match on whole path components (`crates/sim` matches
/// `crates/sim/src/lib.rs` but not `crates/simulator/x.rs`).
#[must_use]
pub fn path_has_prefix(path: &str, prefix: &str) -> bool {
    let prefix = prefix.trim_end_matches('/');
    path == prefix
        || path
            .strip_prefix(prefix)
            .is_some_and(|rest| rest.starts_with('/'))
}

fn is_rule_id(s: &str) -> bool {
    let mut chars = s.chars();
    chars.next().is_some_and(|c| c.is_ascii_uppercase())
        && s.len() >= 2
        && chars.all(|c| c.is_ascii_alphanumeric())
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `["a", "b"]` or a bare `"a"` into a vec of strings.
fn parse_string_array(v: &str) -> Result<Vec<String>, String> {
    let inner = if v.starts_with('[') {
        let Some(stripped) = v.strip_prefix('[').and_then(|s| s.strip_suffix(']')) else {
            return Err("unterminated array".into());
        };
        stripped
    } else {
        v
    };
    let mut out = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let Some(s) = part.strip_prefix('"').and_then(|p| p.strip_suffix('"')) else {
            return Err(format!("expected a double-quoted string, got `{part}`"));
        };
        out.push(s.to_string());
    }
    Ok(out)
}

/// Splits on commas outside quotes.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_subset() {
        let cfg = Config::parse(
            r#"
            # comment
            [scan]
            roots = ["crates", "src"]
            exclude = ["crates/lint/fixtures"] # trailing comment

            [rules.D1]
            paths = ["crates/sim", "crates/core"]

            [rules.D4]
            scope_fns = ["merge", "absorb"]
            float_types = ["f64", "FleetEnergy"]
            "#,
        )
        .expect("valid config");
        assert_eq!(cfg.roots, vec!["crates", "src"]);
        assert!(cfg.rule("D1").applies_to("crates/sim/src/lib.rs"));
        assert!(!cfg.rule("D1").applies_to("crates/net2/src/lib.rs"));
        assert!(cfg.rule("D2").applies_to("anything/at/all.rs"));
        assert_eq!(cfg.rule("D4").float_types, vec!["f64", "FleetEnergy"]);
        assert!(!cfg.scans("crates/lint/fixtures/d1.rs"));
    }

    #[test]
    fn rejects_unknown_keys() {
        assert!(Config::parse("[scan]\nroots = [\"a\"]\nbogus = [\"b\"]").is_err());
        assert!(Config::parse("[weird]\n").is_err());
        assert!(Config::parse("[rules.D1]\ntypo = [\"x\"]").is_err());
    }

    #[test]
    fn prefix_matching_is_component_wise() {
        assert!(path_has_prefix("crates/sim/src/lib.rs", "crates/sim"));
        assert!(!path_has_prefix("crates/simulator/lib.rs", "crates/sim"));
        assert!(path_has_prefix("crates/sim", "crates/sim"));
    }
}
