//! Lint self-tests: the fixture corpus pins rule behaviour byte for
//! byte, and the workspace itself must run clean.
//!
//! Each `fixtures/<name>.rs` carries a `fixtures/<name>.expected`
//! golden holding exactly the unsuppressed findings the linter must
//! emit for it (empty for the clean and fully-suppressed fixtures).
//! The aggregate render over the whole corpus must equal the goldens
//! concatenated in sorted filename order — the same (path, line, rule)
//! order `Report::new` pins.

use std::fs;
use std::path::{Path, PathBuf};

use qvr_lint::config::Config;
use qvr_lint::run_pass;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

fn fixture_config() -> Config {
    let text = fs::read_to_string(fixtures_dir().join("lint.toml")).expect("fixture lint.toml");
    Config::parse(&text).expect("fixture lint.toml parses")
}

/// Every fixture's findings, byte-identical to its committed golden.
#[test]
fn fixture_corpus_matches_goldens() {
    let dir = fixtures_dir();
    let report = run_pass(&dir, &fixture_config()).expect("fixture pass runs");

    let mut names: Vec<String> = fs::read_dir(&dir)
        .expect("fixtures dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    assert!(names.len() >= 10, "fixture corpus went missing: {names:?}");

    let mut expected = String::new();
    for name in &names {
        let golden = dir.join(format!("{}.expected", name.trim_end_matches(".rs")));
        expected.push_str(
            &fs::read_to_string(&golden)
                .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden.display())),
        );
    }
    assert_eq!(
        report.render(),
        expected,
        "fixture findings diverged from the committed goldens — if the \
         rules changed on purpose, regenerate the .expected files"
    );
}

/// The corpus holds at least two positives per rule, one audited
/// suppression per rule, and misuse findings — so `--check` must fail
/// on it. This is the negated CI check.
#[test]
fn fixture_corpus_fails_check_mode() {
    let report = run_pass(&fixtures_dir(), &fixture_config()).expect("fixture pass runs");
    for rule in ["D1", "D2", "D3", "D4", "D5", "D6", "A0", "A1"] {
        let n = report.unsuppressed().filter(|f| f.rule == rule).count();
        let floor = if rule.starts_with('A') { 1 } else { 2 };
        assert!(
            n >= floor,
            "corpus must keep >= {floor} {rule} positives, found {n}"
        );
    }
    assert_eq!(
        report.suppressed_count(),
        6,
        "allows.rs audits exactly one suppression per rule D1..D6"
    );
    assert!(
        report.count() > 0,
        "--check must exit non-zero on the corpus"
    );
}

/// The workspace itself runs clean under the root `lint.toml`: zero
/// unsuppressed findings, with the audited allows accounted for.
#[test]
fn workspace_runs_clean() {
    let root = repo_root();
    let text = fs::read_to_string(root.join("lint.toml")).expect("workspace lint.toml");
    let cfg = Config::parse(&text).expect("workspace lint.toml parses");
    let report = run_pass(&root, &cfg).expect("workspace pass runs");
    assert_eq!(
        report.render(),
        "",
        "workspace must lint clean — fix the finding or add an audited allow"
    );
    assert!(
        report.suppressed_count() >= 7,
        "the audited allows in shard.rs and checked.rs should register"
    );
    assert!(
        report.files_scanned > 100,
        "the walk should cover the workspace"
    );
}
