//! Directive-misuse fixture: malformed suppressions are findings in
//! their own right (A0), and an allow that matches nothing is dead
//! audit trail (A1). A reasonless allow suppresses nothing, so the
//! underlying finding surfaces too.

fn merge_totals(acc: &mut f64, x: f64) {
    // qvr-lint: allow(D4)
    *acc += x; // finding: D4 (the reasonless allow above is A0, not a suppression)
}

// qvr-lint: allow(D9): there is no rule D9
fn quiet() {}

fn tidy() -> usize {
    // qvr-lint: allow(D3): nothing below uses a hash map, so this is A1
    let v: Vec<u32> = Vec::new();
    v.len()
}
