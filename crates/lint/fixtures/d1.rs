//! D1 fixture: wall-clock reads in simulation code. A simulator's only
//! clock is the virtual one it advances itself.

use std::time::{Instant, SystemTime};

fn step_frame() -> f64 {
    let t0 = Instant::now(); // finding: D1
    t0.elapsed().as_secs_f64()
}

fn stamp_run() -> SystemTime {
    SystemTime::now() // finding: D1
}
