//! D4 fixture: float accumulation in merge/absorb functions. f64
//! addition is not associative, so an unordered float fold makes the
//! merged result depend on merge order. u64 bucket adds are exact and
//! always sanctioned.

fn merge_energy(acc: &mut f64, cells: &[f64]) {
    let delta: f64 = cells.iter().sum(); // finding: D4
    *acc += delta; // finding: D4
}

fn absorb_frames(count: &mut u64, frames: &[u64]) {
    for f in frames {
        // u64 adds are exactly associative: this must NOT flag.
        *count += f;
    }
}
