//! D2 fixture: unseeded randomness. Every RNG must be constructed from
//! an explicit seed so runs replay bit-for-bit.

fn roll_die() -> u32 {
    let mut rng = thread_rng(); // finding: D2
    rng.gen_range(1..=6)
}

fn reseed() -> StdRng {
    StdRng::from_entropy() // finding: D2
}

fn raw_entropy() -> OsRng {
    OsRng // finding: D2
}
