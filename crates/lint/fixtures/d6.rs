//! D6 fixture: bare `as` casts on rounded floats in index math. `as`
//! saturates silently (NaN becomes 0), so a poisoned frontier would
//! quietly file every sample into bucket 0. Index math must use the
//! checked helpers in `qvr_sim::checked`.

fn bucket_of(t_ms: f64, window_ms: f64) -> usize {
    (t_ms / window_ms).floor() as usize // finding: D6
}

fn span_cols(span_ms: f64) -> usize {
    (span_ms / 10.0).ceil() as usize // finding: D6
}

fn exact_width(cols: usize) -> f64 {
    // Integer→float widening never truncates: this must NOT flag.
    cols as f64
}
