//! D3 fixture: iteration-ordered containers on merge/summary paths.
//! `HashMap` iteration order varies run to run; merge and report code
//! must use `BTreeMap`/`BTreeSet` or sorted vectors.

use std::collections::{HashMap, HashSet};

fn merge_cells(ids: &[u32]) -> usize {
    let mut seen = HashMap::new(); // finding: D3
    for id in ids {
        seen.insert(*id, ());
    }
    seen.len()
}

fn summary_rows(ids: &[u32]) -> usize {
    let mut rows = HashSet::new(); // finding: D3
    rows.extend(ids.iter().copied());
    rows.len()
}

fn hot_path_is_fine(ids: &[u32]) -> usize {
    // Outside merge/summary scope a HashMap is legitimate (per-frame
    // lookups never reach an exposition), so this must NOT flag.
    let mut cache = HashMap::new();
    cache.insert(ids.len(), ());
    cache.len()
}
