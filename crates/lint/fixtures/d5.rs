//! D5 fixture: raw thread spawns. All parallelism goes through
//! `qvr_sim::parallel_map_with`, whose input-order result slots keep
//! worker count unobservable.

fn fan_out(jobs: Vec<u64>) -> Vec<u64> {
    let handle = std::thread::spawn(move || jobs); // finding: D5
    handle.join().unwrap()
}

fn scoped_fan_out(jobs: &[u64]) -> u64 {
    std::thread::scope(|s| s.spawn(|| jobs.len() as u64).join().unwrap()) // finding: D5
}
