//! Clean fixture: the sanctioned shape of everything the linter checks.
//! Zero findings expected.

use std::collections::BTreeMap;

fn merge_counts(acc: &mut BTreeMap<u32, u64>, xs: &[(u32, u64)]) {
    for (k, n) in xs {
        // u64 bucket adds in sorted-key order: the merge-law ideal.
        *acc.entry(*k).or_insert(0) += n;
    }
}

fn summary_line(acc: &BTreeMap<u32, u64>) -> String {
    let total: u64 = acc.values().sum();
    format!("{} buckets, {total} frames", acc.len())
}
