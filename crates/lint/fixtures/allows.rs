//! Suppression fixture: one audited `allow` per rule, each with a
//! reason. All findings here are suppressed, so this file renders no
//! output — the self-test asserts the suppressed count instead.

use std::collections::HashMap;
use std::time::Instant;

fn profile_step() -> f64 {
    // qvr-lint: allow(D1): wall-clock feeds a perf report, never sim state
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

fn shuffle_seedless() -> u32 {
    // qvr-lint: allow(D2): fixture demonstrating an audited entropy escape hatch
    let mut rng = thread_rng();
    rng.gen()
}

fn merge_index() -> usize {
    // qvr-lint: allow(D3): insertion order never observed; drained via sorted keys
    let mut by_id = HashMap::new();
    by_id.insert(1u32, 2u32);
    by_id.len()
}

fn absorb_energy(acc: &mut f64, x: f64) {
    // qvr-lint: allow(D4): fixed-order fold, audited against the merge laws
    *acc += x;
}

fn fan_out() {
    // qvr-lint: allow(D5): fixture demonstrating a sanctioned raw-thread escape
    let handle = std::thread::spawn(|| ());
    handle.join().unwrap();
}

fn col_of(x: f64) -> usize {
    // qvr-lint: allow(D6): caller asserts x finite and non-negative
    x.floor() as usize
}
