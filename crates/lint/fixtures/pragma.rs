// qvr-lint: module(report)
//! Module-pragma fixture: the directive above opts the whole file into
//! D3's report scope, so hash containers flag even outside merge-named
//! functions.

fn render_table() -> usize {
    let mut cols = std::collections::HashSet::new(); // finding: D3 (module pragma)
    cols.insert(1u32);
    cols.len()
}
