//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: range and tuple strategies, `prop_map`, `collection::vec`, the
//! `proptest!` test macro, and `prop_assert!`/`prop_assert_eq!`.
//!
//! The build environment has no registry access, so the real `proptest`
//! cannot be fetched. This shim runs each property over a fixed number of
//! deterministically generated cases (seeded from the test name), with no
//! shrinking — a failing case panics with its assertion message directly.
//! The per-property case count defaults to [`test_runner::CASES`] and can
//! be raised via the `QVR_PROPTEST_CASES` environment variable (the
//! release CI job runs every property suite at an elevated count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    // Half-open ranges sample through the rand shim's `SampleUniform`,
    // keeping a single in-workspace copy of the sampling code.
    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::SampleUniform::sample_half_open(rng, self.start, self.end)
                }
            }
        )*};
    }
    impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing `Vec`s of a fixed length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates vectors of exactly `len` elements of `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic case generation for the [`proptest!`] macro.
pub mod test_runner {
    /// Default cases run per property (the debug-mode budget).
    pub const CASES: u32 = 64;

    /// Cases to run per property: the `QVR_PROPTEST_CASES` environment
    /// variable when set to a positive integer, else [`CASES`]. The release
    /// CI job elevates it so slow debug builds don't silently shrink
    /// property coverage.
    #[must_use]
    pub fn cases() -> u32 {
        std::env::var("QVR_PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|n| *n > 0)
            .unwrap_or(CASES)
    }

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic generator seeded from the test name (FNV-1a hash of
    /// the name feeding the workspace rand shim's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeds deterministically from an arbitrary string (the test name).
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs the body over [`test_runner::CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($(#[$meta:meta] fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[$meta]
            fn $name() {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..$crate::test_runner::cases() {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 1.5f64..9.5, n in 3u32..17) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..17).contains(&n));
        }

        #[test]
        fn prop_map_applies(v in (0.0f64..1.0, 2.0f64..3.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((2.0..4.0).contains(&v));
        }

        #[test]
        fn vec_has_fixed_len(v in collection::vec(0.0f32..1.0, 16)) {
            prop_assert_eq!(v.len(), 16);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn case_count_defaults_without_env() {
        // The suite doesn't set QVR_PROPTEST_CASES, so the default applies.
        if std::env::var("QVR_PROPTEST_CASES").is_err() {
            assert_eq!(crate::test_runner::cases(), crate::test_runner::CASES);
        } else {
            assert!(crate::test_runner::cases() > 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        use crate::test_runner::TestRng;
        use rand::RngCore;
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
