//! Simple textures for the functional rasterizer.
//!
//! Scenes in this reproduction are procedural, so textures are too: the
//! generators here produce deterministic contents (checkerboards, value
//! noise, gradients) whose spatial frequency is controllable — that matters
//! because the video codec's compressed size depends on image content.

use crate::framebuffer::Rgba;
use std::fmt;

/// A 2D RGBA texture with bilinear sampling and wrap addressing.
#[derive(Debug, Clone, PartialEq)]
pub struct Texture {
    width: u32,
    height: u32,
    texels: Vec<Rgba>,
}

impl Texture {
    /// Creates a texture from raw texels (row-major).
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or `texels.len() != width * height`.
    #[must_use]
    pub fn from_texels(width: u32, height: u32, texels: Vec<Rgba>) -> Self {
        assert!(
            width > 0 && height > 0,
            "texture dimensions must be non-zero"
        );
        assert_eq!(
            texels.len(),
            (width as usize) * (height as usize),
            "texel count must match dimensions"
        );
        Texture {
            width,
            height,
            texels,
        }
    }

    /// A `size`×`size` checkerboard with `cells` cells per side.
    #[must_use]
    pub fn checkerboard(size: u32, cells: u32, a: Rgba, b: Rgba) -> Self {
        let cells = cells.max(1);
        let cell = (size / cells).max(1);
        let mut texels = Vec::with_capacity((size as usize) * (size as usize));
        for y in 0..size {
            for x in 0..size {
                let parity = (x / cell + y / cell) % 2;
                texels.push(if parity == 0 { a } else { b });
            }
        }
        Texture::from_texels(size, size, texels)
    }

    /// Deterministic value-noise texture; `roughness` in `[0, 1]` controls
    /// high-frequency content (0 = smooth gradient, 1 = per-texel hash).
    #[must_use]
    pub fn value_noise(size: u32, seed: u64, roughness: f64) -> Self {
        let roughness = roughness.clamp(0.0, 1.0);
        let mut texels = Vec::with_capacity((size as usize) * (size as usize));
        for y in 0..size {
            for x in 0..size {
                // Smooth base: a couple of low-frequency sinusoids.
                let fx = f64::from(x) / f64::from(size);
                let fy = f64::from(y) / f64::from(size);
                let base = 0.5
                    + 0.25 * (fx * std::f64::consts::TAU).sin()
                    + 0.25 * (fy * std::f64::consts::TAU * 2.0).cos();
                // High-frequency: integer hash per texel.
                let h = hash3(u64::from(x), u64::from(y), seed);
                let noise = (h % 1_000) as f64 / 999.0;
                let v = (base * (1.0 - roughness) + noise * roughness).clamp(0.0, 1.0) as f32;
                let g = hash3(u64::from(x), u64::from(y), seed ^ 0x9e37) % 1_000;
                let gch = (g as f64 / 999.0 * roughness + base * (1.0 - roughness)).clamp(0.0, 1.0)
                    as f32;
                texels.push(Rgba::new(v, gch, 1.0 - v, 1.0));
            }
        }
        Texture::from_texels(size, size, texels)
    }

    /// Texture width in texels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Texture height in texels.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Nearest-texel fetch with wrap addressing.
    #[must_use]
    pub fn fetch(&self, x: i64, y: i64) -> Rgba {
        let xi = x.rem_euclid(i64::from(self.width)) as usize;
        let yi = y.rem_euclid(i64::from(self.height)) as usize;
        self.texels[yi * self.width as usize + xi]
    }

    /// Bilinear sample with normalized wrap coordinates.
    #[must_use]
    pub fn sample(&self, u: f32, v: f32) -> Rgba {
        let x = f64::from(u) * f64::from(self.width) - 0.5;
        let y = f64::from(v) * f64::from(self.height) - 0.5;
        let x0 = x.floor() as i64;
        let y0 = y.floor() as i64;
        let tx = (x - x0 as f64) as f32;
        let ty = (y - y0 as f64) as f32;
        let top = self.fetch(x0, y0).lerp(self.fetch(x0 + 1, y0), tx);
        let bottom = self.fetch(x0, y0 + 1).lerp(self.fetch(x0 + 1, y0 + 1), tx);
        top.lerp(bottom, ty)
    }
}

impl fmt::Display for Texture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} texture", self.width, self.height)
    }
}

/// A small integer hash for deterministic procedural content.
fn hash3(x: u64, y: u64, seed: u64) -> u64 {
    let mut h = x
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(y.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(seed.wrapping_mul(0x94D0_49BB_1331_11EB));
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkerboard_alternates() {
        let t = Texture::checkerboard(8, 4, Rgba::BLACK, Rgba::WHITE);
        assert_eq!(t.fetch(0, 0), Rgba::BLACK);
        assert_eq!(t.fetch(2, 0), Rgba::WHITE);
        assert_eq!(t.fetch(0, 2), Rgba::WHITE);
        assert_eq!(t.fetch(2, 2), Rgba::BLACK);
    }

    #[test]
    fn fetch_wraps() {
        let t = Texture::checkerboard(8, 4, Rgba::BLACK, Rgba::WHITE);
        assert_eq!(t.fetch(-8, 0), t.fetch(0, 0));
        assert_eq!(t.fetch(8, 8), t.fetch(0, 0));
        assert_eq!(t.fetch(-1, 0), t.fetch(7, 0));
    }

    #[test]
    fn noise_is_deterministic() {
        let a = Texture::value_noise(16, 42, 0.5);
        let b = Texture::value_noise(16, 42, 0.5);
        assert_eq!(a, b);
        let c = Texture::value_noise(16, 43, 0.5);
        assert_ne!(a, c, "different seed must change content");
    }

    #[test]
    fn roughness_increases_local_variation() {
        let smooth = Texture::value_noise(32, 1, 0.0);
        let rough = Texture::value_noise(32, 1, 1.0);
        let variation = |t: &Texture| -> f32 {
            let mut sum = 0.0;
            for y in 0..31 {
                for x in 0..31 {
                    sum += t.fetch(x, y).max_abs_diff(t.fetch(x + 1, y));
                }
            }
            sum
        };
        assert!(variation(&rough) > 2.0 * variation(&smooth));
    }

    #[test]
    fn sample_center_of_texel_matches_fetch() {
        let t = Texture::checkerboard(8, 8, Rgba::BLACK, Rgba::WHITE);
        // Texel centers are at (i + 0.5) / size.
        let c = t.sample(0.5 / 8.0, 0.5 / 8.0);
        assert_eq!(c, t.fetch(0, 0));
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn from_texels_validates_length() {
        let _ = Texture::from_texels(4, 4, vec![Rgba::BLACK; 15]);
    }
}
