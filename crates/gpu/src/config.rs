//! GPU hardware configurations (paper Table 2).

use std::fmt;

/// Configuration of one simulated GPU.
///
/// Defaults reproduce the paper's Table 2 mobile configuration: 500 MHz,
/// 8 unified shaders of SIMD4 ALUs, 16 KB L1 per shader, one texture unit
/// with 4× anisotropic filtering, 16×16 tiled rasterization, 256 KB 8-way
/// L2, and DRAM sustaining 16 bytes/cycle over 8 channels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Core clock in MHz.
    pub frequency_mhz: f64,
    /// Number of unified shader cores.
    pub unified_shaders: u32,
    /// SIMD lanes per shader core.
    pub simd_width: u32,
    /// L1 cache per shader core, bytes.
    pub l1_bytes: u64,
    /// Texture units (shared).
    pub texture_units: u32,
    /// Peak bilinear texture samples per texture unit per cycle.
    pub texels_per_cycle: f64,
    /// Anisotropic filtering tap multiplier (4× AF ⇒ up to 4 extra taps).
    pub anisotropy: f64,
    /// Raster tile edge in pixels (16 ⇒ 16×16 binning tiles).
    pub raster_tile_px: u32,
    /// Total L2 cache, bytes.
    pub l2_bytes: u64,
    /// L2 associativity (ways).
    pub l2_ways: u32,
    /// Sustained DRAM bytes per core cycle (all channels combined).
    pub dram_bytes_per_cycle: f64,
    /// DRAM channel count.
    pub dram_channels: u32,
    /// Triangle setup throughput of the fixed-function rasterizer,
    /// triangles per cycle.
    pub triangles_per_cycle: f64,
    /// Fixed cost per draw batch (state change + kernel issue), cycles.
    pub batch_overhead_cycles: f64,
    /// Fixed per-frame pipeline overhead (flush, swap), cycles.
    pub frame_overhead_cycles: f64,
}

impl GpuConfig {
    /// The paper's Table 2 mobile GPU: an ARM Mali-G76-class part at 500 MHz.
    #[must_use]
    pub fn mali_g76_class() -> Self {
        GpuConfig {
            frequency_mhz: 500.0,
            unified_shaders: 8,
            simd_width: 4,
            l1_bytes: 16 * 1024,
            texture_units: 1,
            texels_per_cycle: 4.0,
            anisotropy: 4.0,
            raster_tile_px: 16,
            l2_bytes: 256 * 1024,
            l2_ways: 8,
            dram_bytes_per_cycle: 16.0,
            dram_channels: 8,
            triangles_per_cycle: 0.5,
            batch_overhead_cycles: 2_000.0,
            frame_overhead_cycles: 50_000.0,
        }
    }

    /// An Intel-Gen9-class integrated GPU, used for the motivation study
    /// (Sec. 2.3: Core i7 + mobile GPU, calibrated against an Apple A10).
    ///
    /// Slightly wider than the Mali config but clocked similarly; the paper
    /// treats both as "wimpy mobile hardware" of comparable class.
    #[must_use]
    pub fn gen9_class() -> Self {
        GpuConfig {
            frequency_mhz: 600.0,
            unified_shaders: 12,
            simd_width: 4,
            l1_bytes: 32 * 1024,
            texture_units: 2,
            ..GpuConfig::mali_g76_class()
        }
    }

    /// One GPU of the remote rendering server: an NVIDIA-Pascal-class
    /// discrete part (Sec. 2.3's "high-performance gaming system").
    #[must_use]
    pub fn pascal_class() -> Self {
        GpuConfig {
            frequency_mhz: 1_400.0,
            unified_shaders: 40,
            simd_width: 8,
            l1_bytes: 48 * 1024,
            texture_units: 8,
            texels_per_cycle: 4.0,
            anisotropy: 4.0,
            raster_tile_px: 16,
            l2_bytes: 2 * 1024 * 1024,
            l2_ways: 16,
            dram_bytes_per_cycle: 256.0,
            dram_channels: 8,
            triangles_per_cycle: 4.0,
            batch_overhead_cycles: 1_000.0,
            frame_overhead_cycles: 30_000.0,
        }
    }

    /// Returns a copy clocked at a different core frequency (the Table 4 /
    /// Fig. 15 sensitivity axis: 500 / 400 / 300 MHz).
    #[must_use]
    pub fn with_frequency_mhz(mut self, mhz: f64) -> Self {
        self.frequency_mhz = mhz;
        self
    }

    /// Total SIMD lanes across all shader cores.
    #[must_use]
    pub fn total_lanes(&self) -> f64 {
        f64::from(self.unified_shaders) * f64::from(self.simd_width)
    }

    /// Core cycles per millisecond at the configured frequency.
    #[must_use]
    pub fn cycles_per_ms(&self) -> f64 {
        self.frequency_mhz * 1_000.0
    }

    /// Converts a cycle count into milliseconds at this clock.
    #[must_use]
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / self.cycles_per_ms()
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::mali_g76_class()
    }
}

impl fmt::Display for GpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} MHz, {} shaders x SIMD{}, {} KB L2, {} B/cyc DRAM",
            self.frequency_mhz,
            self.unified_shaders,
            self.simd_width,
            self.l2_bytes / 1024,
            self.dram_bytes_per_cycle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults() {
        let c = GpuConfig::default();
        assert_eq!(c.frequency_mhz, 500.0);
        assert_eq!(c.unified_shaders, 8);
        assert_eq!(c.simd_width, 4);
        assert_eq!(c.l1_bytes, 16 * 1024);
        assert_eq!(c.l2_bytes, 256 * 1024);
        assert_eq!(c.l2_ways, 8);
        assert_eq!(c.dram_bytes_per_cycle, 16.0);
        assert_eq!(c.dram_channels, 8);
        assert_eq!(c.raster_tile_px, 16);
    }

    #[test]
    fn lanes_and_cycles() {
        let c = GpuConfig::default();
        assert_eq!(c.total_lanes(), 32.0);
        assert_eq!(c.cycles_per_ms(), 500_000.0);
        assert!((c.cycles_to_ms(1_000_000.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_override() {
        let c = GpuConfig::default().with_frequency_mhz(300.0);
        assert_eq!(c.frequency_mhz, 300.0);
        assert_eq!(c.unified_shaders, 8);
    }

    #[test]
    fn pascal_is_much_faster() {
        let mobile = GpuConfig::mali_g76_class();
        let server = GpuConfig::pascal_class();
        let mobile_rate = mobile.total_lanes() * mobile.frequency_mhz;
        let server_rate = server.total_lanes() * server.frequency_mhz;
        assert!(server_rate > 10.0 * mobile_rate);
    }

    #[test]
    fn display_mentions_frequency() {
        assert!(GpuConfig::default().to_string().contains("500"));
    }
}
