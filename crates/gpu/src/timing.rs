//! Cycle-accounting timing model for a tile-based mobile GPU.
//!
//! Mobile GPUs (Mali-G76 included) are tile-based deferred renderers: a
//! **binning pass** transforms geometry and sorts it into screen tiles, then
//! a **fragment pass** shades each tile out of on-chip memory. The two
//! passes are serialized per render target; within the fragment pass, shader
//! ALU work, texture filtering, and external DRAM traffic proceed in
//! parallel, so the pass runs at the speed of its slowest resource — a
//! roofline in the spirit of Gables (Hill & Reddi, 2019), which the paper
//! cites for multi-accelerator SoC modelling.
//!
//! The model charges:
//!
//! * binning: vertex shading (ALU) in parallel with fixed-function triangle
//!   setup/binning throughput;
//! * fragment: max(ALU shading, texture filtering, DRAM traffic);
//! * per-batch driver/state overhead and a fixed per-frame overhead.
//!
//! DRAM traffic counts geometry fetch, texture miss traffic (with an
//! L2-working-set amplification), and the final tile flush. All cycle
//! counts convert to time via the configured core clock.

use crate::config::GpuConfig;
use crate::workload::FrameWorkload;
use std::fmt;

/// Bytes fetched per vertex (position + attributes).
const VERTEX_FETCH_BYTES: f64 = 32.0;
/// Average vertices shaded per triangle after post-transform reuse.
const VERTICES_PER_TRIANGLE: f64 = 1.5;
/// Bytes per texel in memory (RGBA8).
const TEXEL_BYTES: f64 = 4.0;
/// Bytes written per covered pixel at tile flush (RGBA8).
const FLUSH_BYTES_PER_PIXEL: f64 = 4.0;

/// Cycle and time breakdown for one frame on one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrameTime {
    /// Binning-pass cycles (vertex shading ∥ triangle setup).
    pub binning_cycles: f64,
    /// Fragment-pass cycles (max of ALU / texture / DRAM).
    pub fragment_cycles: f64,
    /// Shader ALU cycles inside the fragment pass (informational).
    pub alu_cycles: f64,
    /// Texture-unit cycles inside the fragment pass (informational).
    pub texture_cycles: f64,
    /// DRAM-bound cycles inside the fragment pass (informational).
    pub dram_cycles: f64,
    /// Batch + frame overhead cycles.
    pub overhead_cycles: f64,
    /// Core frequency used for conversion, MHz.
    pub frequency_mhz: f64,
}

impl FrameTime {
    /// Total cycles for the frame.
    #[must_use]
    pub fn total_cycles(&self) -> f64 {
        self.binning_cycles + self.fragment_cycles + self.overhead_cycles
    }

    /// Total frame time in milliseconds.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.total_cycles() / (self.frequency_mhz * 1_000.0)
    }

    /// The fragment-pass resource that bounds this frame.
    #[must_use]
    pub fn bottleneck(&self) -> Bottleneck {
        if self.dram_cycles >= self.alu_cycles && self.dram_cycles >= self.texture_cycles {
            Bottleneck::Memory
        } else if self.alu_cycles >= self.texture_cycles {
            Bottleneck::Shading
        } else {
            Bottleneck::Texturing
        }
    }
}

impl fmt::Display for FrameTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} ms ({:.1}M cycles, {} bound)",
            self.total_ms(),
            self.total_cycles() / 1e6,
            self.bottleneck()
        )
    }
}

/// Which resource bounds the fragment pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Shader ALU throughput.
    Shading,
    /// Texture filtering throughput.
    Texturing,
    /// External memory bandwidth.
    Memory,
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Bottleneck::Shading => "ALU",
            Bottleneck::Texturing => "texture",
            Bottleneck::Memory => "memory",
        };
        f.write_str(s)
    }
}

/// The analytic timing model for one [`GpuConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GpuTimingModel {
    config: GpuConfig,
}

impl GpuTimingModel {
    /// Creates a model over a hardware configuration.
    #[must_use]
    pub fn new(config: GpuConfig) -> Self {
        GpuTimingModel { config }
    }

    /// The underlying hardware configuration.
    #[must_use]
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Times one monoscopic frame.
    #[must_use]
    pub fn frame_time(&self, w: &FrameWorkload) -> FrameTime {
        let c = &self.config;
        let triangles = w.triangles() as f64;
        let vertices = triangles * VERTICES_PER_TRIANGLE;

        // Binning pass: vertex ALU in parallel with fixed-function setup.
        let vertex_alu = vertices * w.vertex_shader_cycles() / c.total_lanes();
        let setup = triangles / c.triangles_per_cycle;
        let geometry_fetch_bytes = vertices * VERTEX_FETCH_BYTES;
        let geometry_dram = geometry_fetch_bytes / c.dram_bytes_per_cycle;
        let binning_cycles = vertex_alu.max(setup).max(geometry_dram);

        // Fragment pass.
        let fragments = w.fragments();
        let alu_cycles = fragments * w.fragment_shader_cycles() / c.total_lanes();

        let samples = w.texture_samples();
        // Each bilinear sample needs one cycle per `texels_per_cycle` quad;
        // anisotropic filtering multiplies taps on a fraction of samples.
        let aniso_tap_factor = 1.0 + (c.anisotropy - 1.0) * 0.25;
        let texture_cycles =
            samples * aniso_tap_factor / (f64::from(c.texture_units) * c.texels_per_cycle);

        // DRAM traffic: texture misses + tile flush. Unique texels scale
        // with *visible* pixels; the miss amplification grows once the
        // texture working set exceeds the L2.
        let visible_pixels = w.target_pixels() * w.coverage();
        let unique_texel_bytes =
            visible_pixels * TEXEL_BYTES * w.texture_samples_per_fragment().min(2.0);
        let l2 = c.l2_bytes as f64;
        let amplification = 1.0 + (unique_texel_bytes / l2).log2().max(0.0) * 0.25;
        let texture_dram_bytes = unique_texel_bytes * amplification;
        let flush_bytes = visible_pixels * FLUSH_BYTES_PER_PIXEL;
        let dram_cycles = (texture_dram_bytes + flush_bytes) / c.dram_bytes_per_cycle;

        let fragment_cycles = alu_cycles.max(texture_cycles).max(dram_cycles);

        let overhead_cycles =
            w.batches() as f64 * c.batch_overhead_cycles + c.frame_overhead_cycles;

        FrameTime {
            binning_cycles,
            fragment_cycles,
            alu_cycles,
            texture_cycles,
            dram_cycles,
            overhead_cycles,
            frequency_mhz: c.frequency_mhz,
        }
    }

    /// Times a stereo frame with simultaneous multi-projection: geometry is
    /// binned once and the fragment pass runs for both eyes (the ATTILA
    /// modification described in Sec. 5).
    #[must_use]
    pub fn stereo_frame_time(&self, per_eye: &FrameWorkload) -> FrameTime {
        let mono = self.frame_time(per_eye);
        FrameTime {
            fragment_cycles: mono.fragment_cycles * 2.0,
            alu_cycles: mono.alu_cycles * 2.0,
            texture_cycles: mono.texture_cycles * 2.0,
            dram_cycles: mono.dram_cycles * 2.0,
            ..mono
        }
    }

    /// Time for a full-screen post-processing pass (composition, ATW, lens
    /// distortion) over `pixels` at `cycles_per_pixel` ALU cost, in ms.
    ///
    /// Such passes are bandwidth-light (streaming reads) and ALU-bound on
    /// mobile GPUs, so only ALU throughput is charged plus the frame
    /// overhead of a kernel launch.
    #[must_use]
    pub fn fullscreen_pass_ms(&self, pixels: f64, cycles_per_pixel: f64) -> f64 {
        let c = &self.config;
        let alu = pixels * cycles_per_pixel / c.total_lanes();
        c.cycles_to_ms(alu + c.frame_overhead_cycles * 0.2)
    }

    /// Initial estimate of the "GPU performance" term `P(GPUₘ)` in the
    /// paper's Eq. (2): triangles processable per millisecond for a typical
    /// fragment-heavy frame. LIWC refines this online.
    #[must_use]
    pub fn triangle_throughput_per_ms(&self, reference: &FrameWorkload) -> f64 {
        let t = self.frame_time(reference).total_ms();
        if t <= 0.0 {
            f64::INFINITY
        } else {
            reference.triangles() as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heavy() -> FrameWorkload {
        FrameWorkload::builder(1920, 2160)
            .triangles(2_000_000)
            .overdraw(2.2)
            .fragment_shader_cycles(48.0)
            .texture_samples_per_fragment(2.0)
            .batches(2_000)
            .build()
    }

    fn light() -> FrameWorkload {
        FrameWorkload::builder(1280, 1600)
            .triangles(200_000)
            .overdraw(1.4)
            .fragment_shader_cycles(16.0)
            .texture_samples_per_fragment(1.0)
            .batches(300)
            .build()
    }

    #[test]
    fn heavy_frame_slower_than_light() {
        let m = GpuTimingModel::new(GpuConfig::mali_g76_class());
        assert!(m.frame_time(&heavy()).total_ms() > 3.0 * m.frame_time(&light()).total_ms());
    }

    #[test]
    fn heavy_frame_in_mobile_vr_range() {
        // The motivation study (Fig. 3a) reports 40–130 ms for high-quality
        // apps on mobile silicon; a heavy single eye should land near half
        // that band.
        let m = GpuTimingModel::new(GpuConfig::mali_g76_class());
        let t = m.stereo_frame_time(&heavy()).total_ms();
        assert!((20.0..200.0).contains(&t), "stereo heavy frame {t} ms");
    }

    #[test]
    fn frequency_scales_time_inversely() {
        let w = heavy();
        let fast = GpuTimingModel::new(GpuConfig::mali_g76_class().with_frequency_mhz(500.0));
        let slow = GpuTimingModel::new(GpuConfig::mali_g76_class().with_frequency_mhz(250.0));
        let ratio = slow.frame_time(&w).total_ms() / fast.frame_time(&w).total_ms();
        assert!(
            (ratio - 2.0).abs() < 1e-9,
            "halving clock doubles time, got {ratio}"
        );
    }

    #[test]
    fn stereo_doubles_fragment_work_only() {
        let m = GpuTimingModel::new(GpuConfig::mali_g76_class());
        let w = heavy();
        let mono = m.frame_time(&w);
        let stereo = m.stereo_frame_time(&w);
        assert_eq!(stereo.binning_cycles, mono.binning_cycles);
        assert_eq!(stereo.fragment_cycles, 2.0 * mono.fragment_cycles);
        assert!(stereo.total_ms() < 2.0 * mono.total_ms());
    }

    #[test]
    fn more_triangles_cost_more() {
        let m = GpuTimingModel::new(GpuConfig::mali_g76_class());
        let base = FrameWorkload::builder(1920, 2160)
            .triangles(100_000)
            .build();
        let more = FrameWorkload::builder(1920, 2160)
            .triangles(4_000_000)
            .build();
        assert!(m.frame_time(&more).total_ms() > m.frame_time(&base).total_ms());
    }

    #[test]
    fn coverage_scales_fragment_pass() {
        let m = GpuTimingModel::new(GpuConfig::mali_g76_class());
        let full = FrameWorkload::builder(1920, 2160).coverage(1.0).build();
        let tenth = FrameWorkload::builder(1920, 2160).coverage(0.1).build();
        let ft_full = m.frame_time(&full);
        let ft_tenth = m.frame_time(&tenth);
        assert!(ft_tenth.fragment_cycles < 0.2 * ft_full.fragment_cycles);
    }

    #[test]
    fn bottleneck_flips_with_workload_character() {
        let m = GpuTimingModel::new(GpuConfig::mali_g76_class());
        let alu_bound = FrameWorkload::builder(1920, 2160)
            .fragment_shader_cycles(100.0)
            .texture_samples_per_fragment(0.1)
            .build();
        let tex_bound = FrameWorkload::builder(1920, 2160)
            .fragment_shader_cycles(2.0)
            .texture_samples_per_fragment(8.0)
            .build();
        assert_eq!(m.frame_time(&alu_bound).bottleneck(), Bottleneck::Shading);
        assert_ne!(m.frame_time(&tex_bound).bottleneck(), Bottleneck::Shading);
    }

    #[test]
    fn fullscreen_pass_is_cheap_but_not_free() {
        let m = GpuTimingModel::new(GpuConfig::mali_g76_class());
        let px = 1920.0 * 2160.0;
        let atw = m.fullscreen_pass_ms(px, 8.0);
        assert!(atw > 0.5 && atw < 10.0, "ATW-class pass {atw} ms");
        assert!(m.fullscreen_pass_ms(px, 16.0) > atw);
    }

    #[test]
    fn pascal_class_much_faster_on_same_frame() {
        let w = heavy();
        let mobile = GpuTimingModel::new(GpuConfig::mali_g76_class());
        let server = GpuTimingModel::new(GpuConfig::pascal_class());
        let speedup = mobile.frame_time(&w).total_ms() / server.frame_time(&w).total_ms();
        assert!(speedup > 8.0, "server speedup {speedup}");
    }

    #[test]
    fn triangle_throughput_positive_and_finite() {
        let m = GpuTimingModel::new(GpuConfig::mali_g76_class());
        let p = m.triangle_throughput_per_ms(&heavy());
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn empty_frame_costs_only_overhead() {
        let m = GpuTimingModel::new(GpuConfig::mali_g76_class());
        let w = FrameWorkload::builder(1920, 2160)
            .triangles(0)
            .coverage(0.0)
            .batches(1)
            .build();
        let t = m.frame_time(&w);
        assert_eq!(t.binning_cycles, 0.0);
        assert_eq!(t.fragment_cycles, 0.0);
        assert!(t.total_cycles() > 0.0, "overhead still charged");
    }

    #[test]
    fn frame_time_display() {
        let m = GpuTimingModel::new(GpuConfig::mali_g76_class());
        let s = m.frame_time(&heavy()).to_string();
        assert!(s.contains("ms"));
    }
}
