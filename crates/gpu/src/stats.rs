//! Ground-truth workload statistics collected by the functional rasterizer.

use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated while rendering one frame (or one draw batch).
///
/// These are the "intermediate hardware data" the paper's LIWC observes:
/// triangle counts are visible at rendering setup, fragments and texture
/// samples during shading. The timing model consumes the same quantities,
/// which lets tests cross-validate analytic estimates against measured
/// counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RenderStats {
    /// Triangles submitted to the pipeline.
    pub triangles_in: u64,
    /// Triangles rejected by back-face or off-screen culling.
    pub triangles_culled: u64,
    /// Triangles rejected because they cross the near plane.
    pub triangles_clipped: u64,
    /// Fragments that passed the depth test and were shaded.
    pub fragments_shaded: u64,
    /// Fragments that failed the depth test (overdraw casualties).
    pub fragments_rejected: u64,
    /// Bilinear texture lookups issued by shaded fragments.
    pub texture_samples: u64,
    /// Distinct raster tiles touched by at least one triangle.
    pub tiles_touched: u64,
    /// Draw batches processed.
    pub batches: u64,
}

impl RenderStats {
    /// Triangles that survived culling and were rasterized.
    #[must_use]
    pub fn triangles_rasterized(&self) -> u64 {
        self.triangles_in
            .saturating_sub(self.triangles_culled)
            .saturating_sub(self.triangles_clipped)
    }

    /// Total fragments generated (shaded + rejected).
    #[must_use]
    pub fn fragments_total(&self) -> u64 {
        self.fragments_shaded + self.fragments_rejected
    }

    /// Overdraw factor: fragments generated per shaded fragment.
    ///
    /// Returns `1.0` when nothing was shaded.
    #[must_use]
    pub fn overdraw(&self) -> f64 {
        if self.fragments_shaded == 0 {
            1.0
        } else {
            self.fragments_total() as f64 / self.fragments_shaded as f64
        }
    }
}

impl AddAssign for RenderStats {
    fn add_assign(&mut self, o: RenderStats) {
        self.triangles_in += o.triangles_in;
        self.triangles_culled += o.triangles_culled;
        self.triangles_clipped += o.triangles_clipped;
        self.fragments_shaded += o.fragments_shaded;
        self.fragments_rejected += o.fragments_rejected;
        self.texture_samples += o.texture_samples;
        self.tiles_touched += o.tiles_touched;
        self.batches += o.batches;
    }
}

impl fmt::Display for RenderStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tris in ({} rasterized), {} frags shaded ({:.2}x overdraw), {} tex samples, {} batches",
            self.triangles_in,
            self.triangles_rasterized(),
            self.fragments_shaded,
            self.overdraw(),
            self.texture_samples,
            self.batches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rasterized_subtracts_rejections() {
        let s = RenderStats {
            triangles_in: 100,
            triangles_culled: 30,
            triangles_clipped: 10,
            ..RenderStats::default()
        };
        assert_eq!(s.triangles_rasterized(), 60);
    }

    #[test]
    fn overdraw_of_empty_frame_is_one() {
        assert_eq!(RenderStats::default().overdraw(), 1.0);
    }

    #[test]
    fn overdraw_counts_rejected() {
        let s = RenderStats {
            fragments_shaded: 100,
            fragments_rejected: 50,
            ..RenderStats::default()
        };
        assert!((s.overdraw() - 1.5).abs() < 1e-12);
        assert_eq!(s.fragments_total(), 150);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = RenderStats {
            triangles_in: 1,
            fragments_shaded: 2,
            ..Default::default()
        };
        let b = RenderStats {
            triangles_in: 10,
            texture_samples: 5,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.triangles_in, 11);
        assert_eq!(a.fragments_shaded, 2);
        assert_eq!(a.texture_samples, 5);
    }

    #[test]
    fn display_is_informative() {
        let s = RenderStats {
            triangles_in: 7,
            ..Default::default()
        };
        assert!(s.to_string().contains("7 tris"));
    }
}
