//! Abstract description of one frame's rendering work.
//!
//! A [`FrameWorkload`] captures what the timing model needs to know about a
//! frame without the actual geometry: triangle count, covered pixels,
//! overdraw, per-fragment shading cost, texture intensity, and draw batch
//! count. App profiles (`qvr-scene`) produce these analytically; the
//! functional rasterizer's [`RenderStats`](crate::stats::RenderStats) can be
//! converted into one for cross-validation.

use crate::stats::RenderStats;
use std::fmt;

/// Per-frame rendering workload for **one eye**.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameWorkload {
    width: u32,
    height: u32,
    triangles: u64,
    coverage: f64,
    overdraw: f64,
    vertex_shader_cycles: f64,
    fragment_shader_cycles: f64,
    texture_samples_per_fragment: f64,
    batches: u64,
}

impl FrameWorkload {
    /// Starts building a workload for a render target of the given size.
    #[must_use]
    pub fn builder(width: u32, height: u32) -> FrameWorkloadBuilder {
        FrameWorkloadBuilder::new(width, height)
    }

    /// Builds a workload from measured rasterizer statistics.
    ///
    /// Shader cost knobs cannot be observed from counters and are taken as
    /// arguments.
    #[must_use]
    pub fn from_stats(
        width: u32,
        height: u32,
        stats: &RenderStats,
        vertex_shader_cycles: f64,
        fragment_shader_cycles: f64,
    ) -> Self {
        let pixels = f64::from(width) * f64::from(height);
        let coverage = if pixels > 0.0 {
            (stats.fragments_shaded as f64 / pixels).min(1.0)
        } else {
            0.0
        };
        let tex_per_frag = if stats.fragments_shaded == 0 {
            0.0
        } else {
            stats.texture_samples as f64 / stats.fragments_shaded as f64
        };
        FrameWorkload {
            width,
            height,
            triangles: stats.triangles_in,
            coverage,
            overdraw: stats.overdraw(),
            vertex_shader_cycles,
            fragment_shader_cycles,
            texture_samples_per_fragment: tex_per_frag,
            batches: stats.batches.max(1),
        }
    }

    /// Render-target width, pixels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Render-target height, pixels.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Render-target pixel count.
    #[must_use]
    pub fn target_pixels(&self) -> f64 {
        f64::from(self.width) * f64::from(self.height)
    }

    /// Triangles submitted this frame.
    #[must_use]
    pub fn triangles(&self) -> u64 {
        self.triangles
    }

    /// Fraction of the target covered by visible geometry, `[0, 1]`.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        self.coverage
    }

    /// Fragments generated per finally-visible fragment (≥ 1).
    #[must_use]
    pub fn overdraw(&self) -> f64 {
        self.overdraw
    }

    /// ALU cycles per vertex.
    #[must_use]
    pub fn vertex_shader_cycles(&self) -> f64 {
        self.vertex_shader_cycles
    }

    /// ALU cycles per fragment.
    #[must_use]
    pub fn fragment_shader_cycles(&self) -> f64 {
        self.fragment_shader_cycles
    }

    /// Bilinear texture lookups per shaded fragment.
    #[must_use]
    pub fn texture_samples_per_fragment(&self) -> f64 {
        self.texture_samples_per_fragment
    }

    /// Draw batches (state changes) this frame.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Total fragments generated (covered pixels × overdraw).
    #[must_use]
    pub fn fragments(&self) -> f64 {
        self.target_pixels() * self.coverage * self.overdraw
    }

    /// Total texture samples issued.
    #[must_use]
    pub fn texture_samples(&self) -> f64 {
        self.fragments() * self.texture_samples_per_fragment
    }

    /// Returns a copy scaled to a sub-region of the frame.
    ///
    /// `area_fraction` scales covered pixels; `triangle_fraction` scales
    /// submitted geometry. This is how foveal layers are derived from the
    /// full-frame workload: a fovea disc covering 10 % of the screen with
    /// 14 % of the scene's triangles is
    /// `full.scaled_region(0.10, 0.14)`.
    #[must_use]
    pub fn scaled_region(&self, area_fraction: f64, triangle_fraction: f64) -> Self {
        let area_fraction = area_fraction.clamp(0.0, 1.0);
        let triangle_fraction = triangle_fraction.clamp(0.0, 1.0);
        FrameWorkload {
            triangles: (self.triangles as f64 * triangle_fraction).round() as u64,
            coverage: self.coverage * area_fraction,
            // Batches shrink with geometry, but a floor of one remains.
            batches: ((self.batches as f64 * triangle_fraction).round() as u64).max(1),
            ..*self
        }
    }

    /// Returns a copy with the render target (and covered pixels) resized by
    /// a linear scale factor, keeping geometry unchanged.
    ///
    /// Used for periphery layers rendered at reduced resolution.
    #[must_use]
    pub fn resized(&self, linear_scale: f64) -> Self {
        let linear_scale = linear_scale.max(1e-3);
        FrameWorkload {
            width: ((f64::from(self.width) * linear_scale).round() as u32).max(1),
            height: ((f64::from(self.height) * linear_scale).round() as u32).max(1),
            ..*self
        }
    }
}

impl fmt::Display for FrameWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}, {} tris, {:.0}% coverage, {:.2}x overdraw, {} batches",
            self.width,
            self.height,
            self.triangles,
            self.coverage * 100.0,
            self.overdraw,
            self.batches
        )
    }
}

/// Builder for [`FrameWorkload`] (see `C-BUILDER`).
#[derive(Debug, Clone)]
pub struct FrameWorkloadBuilder {
    workload: FrameWorkload,
}

impl FrameWorkloadBuilder {
    fn new(width: u32, height: u32) -> Self {
        FrameWorkloadBuilder {
            workload: FrameWorkload {
                width,
                height,
                triangles: 100_000,
                coverage: 1.0,
                overdraw: 1.5,
                vertex_shader_cycles: 12.0,
                fragment_shader_cycles: 24.0,
                texture_samples_per_fragment: 1.0,
                batches: 100,
            },
        }
    }

    /// Sets the triangle count.
    pub fn triangles(&mut self, n: u64) -> &mut Self {
        self.workload.triangles = n;
        self
    }

    /// Sets the covered fraction of the target (clamped to `[0, 1]`).
    pub fn coverage(&mut self, c: f64) -> &mut Self {
        self.workload.coverage = c.clamp(0.0, 1.0);
        self
    }

    /// Sets the overdraw factor (clamped to ≥ 1).
    pub fn overdraw(&mut self, o: f64) -> &mut Self {
        self.workload.overdraw = o.max(1.0);
        self
    }

    /// Sets ALU cycles per vertex.
    pub fn vertex_shader_cycles(&mut self, c: f64) -> &mut Self {
        self.workload.vertex_shader_cycles = c.max(0.0);
        self
    }

    /// Sets ALU cycles per fragment.
    pub fn fragment_shader_cycles(&mut self, c: f64) -> &mut Self {
        self.workload.fragment_shader_cycles = c.max(0.0);
        self
    }

    /// Sets texture samples per fragment.
    pub fn texture_samples_per_fragment(&mut self, t: f64) -> &mut Self {
        self.workload.texture_samples_per_fragment = t.max(0.0);
        self
    }

    /// Sets the draw batch count (floored at 1).
    pub fn batches(&mut self, b: u64) -> &mut Self {
        self.workload.batches = b.max(1);
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(&self) -> FrameWorkload {
        self.workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sane() {
        let w = FrameWorkload::builder(1920, 2160).build();
        assert_eq!(w.width(), 1920);
        assert!(w.coverage() > 0.0 && w.coverage() <= 1.0);
        assert!(w.overdraw() >= 1.0);
        assert!(w.fragments() > 0.0);
    }

    #[test]
    fn builder_clamps() {
        let w = FrameWorkload::builder(100, 100)
            .coverage(3.0)
            .overdraw(0.2)
            .batches(0)
            .build();
        assert_eq!(w.coverage(), 1.0);
        assert_eq!(w.overdraw(), 1.0);
        assert_eq!(w.batches(), 1);
    }

    #[test]
    fn fragments_formula() {
        let w = FrameWorkload::builder(100, 100)
            .coverage(0.5)
            .overdraw(2.0)
            .build();
        assert!((w.fragments() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_region_shrinks_work() {
        let full = FrameWorkload::builder(1000, 1000)
            .triangles(1_000_000)
            .batches(100)
            .build();
        let part = full.scaled_region(0.25, 0.1);
        assert_eq!(part.triangles(), 100_000);
        assert!((part.coverage() - full.coverage() * 0.25).abs() < 1e-12);
        assert_eq!(part.batches(), 10);
        assert_eq!(part.width(), full.width(), "target size unchanged");
    }

    #[test]
    fn scaled_region_keeps_batch_floor() {
        let full = FrameWorkload::builder(100, 100).batches(3).build();
        assert_eq!(full.scaled_region(0.5, 0.0).batches(), 1);
    }

    #[test]
    fn resized_changes_target_only() {
        let full = FrameWorkload::builder(1000, 800).triangles(5).build();
        let half = full.resized(0.5);
        assert_eq!(half.width(), 500);
        assert_eq!(half.height(), 400);
        assert_eq!(half.triangles(), 5);
        // Fragments shrink quadratically with the linear scale.
        assert!((half.fragments() / full.fragments() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn from_stats_roundtrip() {
        let stats = RenderStats {
            triangles_in: 1000,
            fragments_shaded: 5000,
            fragments_rejected: 2500,
            texture_samples: 10_000,
            batches: 7,
            ..Default::default()
        };
        let w = FrameWorkload::from_stats(100, 100, &stats, 10.0, 20.0);
        assert_eq!(w.triangles(), 1000);
        assert!((w.coverage() - 0.5).abs() < 1e-12);
        assert!((w.overdraw() - 1.5).abs() < 1e-12);
        assert!((w.texture_samples_per_fragment() - 2.0).abs() < 1e-12);
        assert_eq!(w.batches(), 7);
        // Derived totals agree with the raw counters.
        assert!((w.fragments() - 7500.0).abs() < 1.0);
        assert!((w.texture_samples() - 15_000.0).abs() < 2.0);
    }

    #[test]
    fn display_mentions_dimensions() {
        let w = FrameWorkload::builder(640, 480).build();
        assert!(w.to_string().contains("640x480"));
    }
}
