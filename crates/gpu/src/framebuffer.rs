//! Color and depth render targets.

use std::fmt;

/// A linear RGBA color with `f32` channels in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rgba(pub [f32; 4]);

impl Rgba {
    /// Opaque black.
    pub const BLACK: Rgba = Rgba([0.0, 0.0, 0.0, 1.0]);
    /// Opaque white.
    pub const WHITE: Rgba = Rgba([1.0, 1.0, 1.0, 1.0]);
    /// Fully transparent.
    pub const TRANSPARENT: Rgba = Rgba([0.0, 0.0, 0.0, 0.0]);

    /// Creates a color from channels.
    #[must_use]
    pub const fn new(r: f32, g: f32, b: f32, a: f32) -> Self {
        Rgba([r, g, b, a])
    }

    /// Red channel.
    #[must_use]
    pub fn r(&self) -> f32 {
        self.0[0]
    }

    /// Green channel.
    #[must_use]
    pub fn g(&self) -> f32 {
        self.0[1]
    }

    /// Blue channel.
    #[must_use]
    pub fn b(&self) -> f32 {
        self.0[2]
    }

    /// Alpha channel.
    #[must_use]
    pub fn a(&self) -> f32 {
        self.0[3]
    }

    /// Channel-wise linear interpolation: `self` at `t = 0`, `o` at `t = 1`.
    #[must_use]
    pub fn lerp(&self, o: Rgba, t: f32) -> Rgba {
        let mut out = [0.0; 4];
        for (i, v) in out.iter_mut().enumerate() {
            *v = self.0[i] + (o.0[i] - self.0[i]) * t;
        }
        Rgba(out)
    }

    /// Channel-wise scaling (does not clamp).
    #[must_use]
    pub fn scaled(&self, s: f32) -> Rgba {
        Rgba([self.0[0] * s, self.0[1] * s, self.0[2] * s, self.0[3] * s])
    }

    /// Channel-wise addition (does not clamp).
    #[must_use]
    pub fn plus(&self, o: Rgba) -> Rgba {
        Rgba([
            self.0[0] + o.0[0],
            self.0[1] + o.0[1],
            self.0[2] + o.0[2],
            self.0[3] + o.0[3],
        ])
    }

    /// Maximum channel-wise absolute difference to another color.
    #[must_use]
    pub fn max_abs_diff(&self, o: Rgba) -> f32 {
        (0..4)
            .map(|i| (self.0[i] - o.0[i]).abs())
            .fold(0.0, f32::max)
    }

    /// Quantizes to 8-bit sRGB-like storage (straight clamp, no gamma).
    #[must_use]
    pub fn to_rgba8(&self) -> [u8; 4] {
        let q = |v: f32| (v.clamp(0.0, 1.0) * 255.0).round() as u8;
        [q(self.0[0]), q(self.0[1]), q(self.0[2]), q(self.0[3])]
    }

    /// Builds a color from 8-bit storage.
    #[must_use]
    pub fn from_rgba8(px: [u8; 4]) -> Self {
        Rgba([
            f32::from(px[0]) / 255.0,
            f32::from(px[1]) / 255.0,
            f32::from(px[2]) / 255.0,
            f32::from(px[3]) / 255.0,
        ])
    }

    /// Perceptual luma (Rec. 601 weights), used by the codec.
    #[must_use]
    pub fn luma(&self) -> f32 {
        0.299 * self.0[0] + 0.587 * self.0[1] + 0.114 * self.0[2]
    }
}

impl fmt::Display for Rgba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rgba({:.3}, {:.3}, {:.3}, {:.3})",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// A rectangular color buffer.
///
/// Row-major storage; `(0, 0)` is the top-left pixel.
#[derive(Debug, Clone, PartialEq)]
pub struct Framebuffer {
    width: u32,
    height: u32,
    pixels: Vec<Rgba>,
}

impl Framebuffer {
    /// Creates a buffer filled with a clear color.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: u32, height: u32, clear: Rgba) -> Self {
        assert!(
            width > 0 && height > 0,
            "framebuffer dimensions must be non-zero"
        );
        Framebuffer {
            width,
            height,
            pixels: vec![clear; (width as usize) * (height as usize)],
        }
    }

    /// Buffer width in pixels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Buffer height in pixels.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total pixel count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    /// Whether the buffer has zero pixels (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }

    /// Reads the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn pixel(&self, x: u32, y: u32) -> Rgba {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x}, {y}) out of bounds"
        );
        self.pixels[(y as usize) * (self.width as usize) + x as usize]
    }

    /// Reads the pixel at `(x, y)` or `None` if out of bounds.
    #[must_use]
    pub fn get(&self, x: i64, y: i64) -> Option<Rgba> {
        if x < 0 || y < 0 || x >= i64::from(self.width) || y >= i64::from(self.height) {
            None
        } else {
            Some(self.pixels[(y as usize) * (self.width as usize) + x as usize])
        }
    }

    /// Writes the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set_pixel(&mut self, x: u32, y: u32, c: Rgba) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x}, {y}) out of bounds"
        );
        self.pixels[(y as usize) * (self.width as usize) + x as usize] = c;
    }

    /// Fills the whole buffer with one color.
    pub fn clear(&mut self, c: Rgba) {
        self.pixels.fill(c);
    }

    /// Bilinearly samples the buffer at fractional pixel coordinates,
    /// clamping to the border.
    #[must_use]
    pub fn sample_bilinear(&self, x: f32, y: f32) -> Rgba {
        let xf = x.clamp(0.0, (self.width - 1) as f32);
        let yf = y.clamp(0.0, (self.height - 1) as f32);
        let x0 = xf.floor() as u32;
        let y0 = yf.floor() as u32;
        let x1 = (x0 + 1).min(self.width - 1);
        let y1 = (y0 + 1).min(self.height - 1);
        let tx = xf - x0 as f32;
        let ty = yf - y0 as f32;
        let top = self.pixel(x0, y0).lerp(self.pixel(x1, y0), tx);
        let bottom = self.pixel(x0, y1).lerp(self.pixel(x1, y1), tx);
        top.lerp(bottom, ty)
    }

    /// Samples with normalized coordinates in `[0, 1]`.
    #[must_use]
    pub fn sample_normalized(&self, u: f32, v: f32) -> Rgba {
        self.sample_bilinear(
            u * (self.width.saturating_sub(1)) as f32,
            v * (self.height.saturating_sub(1)) as f32,
        )
    }

    /// Iterator over all pixels in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = &Rgba> {
        self.pixels.iter()
    }

    /// Raw pixel slice in row-major order.
    #[must_use]
    pub fn as_slice(&self) -> &[Rgba] {
        &self.pixels
    }

    /// Mean per-channel absolute difference to another buffer of the same
    /// dimensions.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn mean_abs_diff(&self, o: &Framebuffer) -> f32 {
        assert_eq!(
            (self.width, self.height),
            (o.width, o.height),
            "buffers must have identical dimensions"
        );
        let sum: f32 = self
            .pixels
            .iter()
            .zip(&o.pixels)
            .map(|(a, b)| (0..4).map(|i| (a.0[i] - b.0[i]).abs()).sum::<f32>() / 4.0)
            .sum();
        sum / self.pixels.len() as f32
    }

    /// Peak signal-to-noise ratio against a reference buffer, in dB
    /// (infinite for identical buffers).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn psnr(&self, reference: &Framebuffer) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (reference.width, reference.height),
            "buffers must have identical dimensions"
        );
        let mse: f64 = self
            .pixels
            .iter()
            .zip(&reference.pixels)
            .map(|(a, b)| {
                (0..3)
                    .map(|i| f64::from(a.0[i] - b.0[i]).powi(2))
                    .sum::<f64>()
                    / 3.0
            })
            .sum::<f64>()
            / self.pixels.len() as f64;
        if mse <= 0.0 {
            f64::INFINITY
        } else {
            10.0 * (1.0 / mse).log10()
        }
    }
}

/// A rectangular depth buffer storing NDC depth (`-1` near … `1` far).
#[derive(Debug, Clone, PartialEq)]
pub struct DepthBuffer {
    width: u32,
    height: u32,
    depth: Vec<f32>,
}

impl DepthBuffer {
    /// Creates a depth buffer cleared to the far plane.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: u32, height: u32) -> Self {
        assert!(
            width > 0 && height > 0,
            "depth buffer dimensions must be non-zero"
        );
        DepthBuffer {
            width,
            height,
            depth: vec![f32::INFINITY; (width as usize) * (height as usize)],
        }
    }

    /// Buffer width in pixels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Buffer height in pixels.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Reads the depth at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn depth(&self, x: u32, y: u32) -> f32 {
        assert!(
            x < self.width && y < self.height,
            "depth ({x}, {y}) out of bounds"
        );
        self.depth[(y as usize) * (self.width as usize) + x as usize]
    }

    /// Depth test and conditional write; returns `true` if `z` passed
    /// (strictly nearer than the stored depth) and was stored.
    pub fn test_and_set(&mut self, x: u32, y: u32, z: f32) -> bool {
        assert!(
            x < self.width && y < self.height,
            "depth ({x}, {y}) out of bounds"
        );
        let idx = (y as usize) * (self.width as usize) + x as usize;
        if z < self.depth[idx] {
            self.depth[idx] = z;
            true
        } else {
            false
        }
    }

    /// Resets all depths to the far plane.
    pub fn clear(&mut self) {
        self.depth.fill(f32::INFINITY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgba_roundtrip_8bit() {
        let c = Rgba::new(0.25, 0.5, 0.75, 1.0);
        let q = Rgba::from_rgba8(c.to_rgba8());
        assert!(c.max_abs_diff(q) < 1.0 / 255.0 + 1e-6);
    }

    #[test]
    fn rgba_lerp_endpoints() {
        let a = Rgba::BLACK;
        let b = Rgba::WHITE;
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Rgba::new(0.5, 0.5, 0.5, 1.0));
    }

    #[test]
    fn rgba_to8_clamps() {
        let c = Rgba::new(2.0, -1.0, 0.5, 1.0);
        assert_eq!(c.to_rgba8(), [255, 0, 128, 255]);
    }

    #[test]
    fn framebuffer_set_get() {
        let mut fb = Framebuffer::new(4, 3, Rgba::BLACK);
        fb.set_pixel(2, 1, Rgba::WHITE);
        assert_eq!(fb.pixel(2, 1), Rgba::WHITE);
        assert_eq!(fb.pixel(0, 0), Rgba::BLACK);
        assert_eq!(fb.len(), 12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn framebuffer_oob_panics() {
        let fb = Framebuffer::new(4, 3, Rgba::BLACK);
        let _ = fb.pixel(4, 0);
    }

    #[test]
    fn framebuffer_get_handles_oob() {
        let fb = Framebuffer::new(4, 3, Rgba::BLACK);
        assert!(fb.get(-1, 0).is_none());
        assert!(fb.get(0, 3).is_none());
        assert!(fb.get(3, 2).is_some());
    }

    #[test]
    fn bilinear_at_integer_coords_is_exact() {
        let mut fb = Framebuffer::new(2, 2, Rgba::BLACK);
        fb.set_pixel(1, 0, Rgba::WHITE);
        assert_eq!(fb.sample_bilinear(1.0, 0.0), Rgba::WHITE);
        assert_eq!(fb.sample_bilinear(0.0, 0.0), Rgba::BLACK);
    }

    #[test]
    fn bilinear_midpoint_averages() {
        let mut fb = Framebuffer::new(2, 1, Rgba::BLACK);
        fb.set_pixel(1, 0, Rgba::WHITE);
        let mid = fb.sample_bilinear(0.5, 0.0);
        assert!((mid.r() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn bilinear_clamps_at_border() {
        let fb = Framebuffer::new(2, 2, Rgba::WHITE);
        assert_eq!(fb.sample_bilinear(-5.0, 10.0), Rgba::WHITE);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let fb = Framebuffer::new(8, 8, Rgba::new(0.2, 0.4, 0.6, 1.0));
        assert!(fb.psnr(&fb).is_infinite());
    }

    #[test]
    fn psnr_degrades_with_noise() {
        let fb = Framebuffer::new(8, 8, Rgba::new(0.5, 0.5, 0.5, 1.0));
        let mut slightly = fb.clone();
        let mut heavily = fb.clone();
        for y in 0..8 {
            for x in 0..8 {
                slightly.set_pixel(x, y, Rgba::new(0.52, 0.5, 0.5, 1.0));
                heavily.set_pixel(x, y, Rgba::new(0.9, 0.1, 0.5, 1.0));
            }
        }
        assert!(slightly.psnr(&fb) > heavily.psnr(&fb));
    }

    #[test]
    fn depth_test_keeps_nearest() {
        let mut db = DepthBuffer::new(2, 2);
        assert!(db.test_and_set(0, 0, 0.5));
        assert!(!db.test_and_set(0, 0, 0.7), "farther fragment must fail");
        assert!(db.test_and_set(0, 0, 0.2), "nearer fragment must pass");
        assert_eq!(db.depth(0, 0), 0.2);
    }

    #[test]
    fn depth_clear_resets() {
        let mut db = DepthBuffer::new(2, 2);
        db.test_and_set(1, 1, 0.1);
        db.clear();
        assert!(db.depth(1, 1).is_infinite());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_framebuffer_panics() {
        let _ = Framebuffer::new(0, 4, Rgba::BLACK);
    }
}
