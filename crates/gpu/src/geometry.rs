//! Minimal 3D math and primitive types for the software rasterizer.
//!
//! Deliberately small: just enough linear algebra (vectors, 4×4 matrices,
//! perspective projection) to drive a correct perspective rasterizer. All
//! types are `f32` — matching GPU-native precision — and `Copy`.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A 3-component vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl Vec3 {
    /// Creates a vector from components.
    #[must_use]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    #[must_use]
    pub const fn zero() -> Self {
        Vec3::new(0.0, 0.0, 0.0)
    }

    /// Dot product.
    #[must_use]
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[must_use]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    #[must_use]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit vector in this direction; returns `self` unchanged if zero.
    #[must_use]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len <= f32::EPSILON {
            self
        } else {
            self * (1.0 / len)
        }
    }

    /// Extends to homogeneous coordinates with the given `w`.
    #[must_use]
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4 {
            x: self.x,
            y: self.y,
            z: self.z,
            w,
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f32) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// A 4-component homogeneous vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W (homogeneous) component.
    pub w: f32,
}

impl Vec4 {
    /// Creates a vector from components.
    #[must_use]
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Vec4 { x, y, z, w }
    }

    /// Perspective division to 3D; `w` must be non-zero.
    #[must_use]
    pub fn project(self) -> Vec3 {
        let inv = 1.0 / self.w;
        Vec3::new(self.x * inv, self.y * inv, self.z * inv)
    }
}

/// A column-major 4×4 matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// Column-major elements: `m[col][row]`.
    pub m: [[f32; 4]; 4],
}

impl Mat4 {
    /// The identity matrix.
    #[must_use]
    pub const fn identity() -> Self {
        let mut m = [[0.0; 4]; 4];
        m[0][0] = 1.0;
        m[1][1] = 1.0;
        m[2][2] = 1.0;
        m[3][3] = 1.0;
        Mat4 { m }
    }

    /// Translation by `t`.
    #[must_use]
    pub fn translate(t: Vec3) -> Self {
        let mut out = Mat4::identity();
        out.m[3][0] = t.x;
        out.m[3][1] = t.y;
        out.m[3][2] = t.z;
        out
    }

    /// Uniform scale.
    #[must_use]
    pub fn scale(s: f32) -> Self {
        let mut out = Mat4::identity();
        out.m[0][0] = s;
        out.m[1][1] = s;
        out.m[2][2] = s;
        out
    }

    /// Rotation about the Y axis by `radians`.
    #[must_use]
    pub fn rotate_y(radians: f32) -> Self {
        let (s, c) = radians.sin_cos();
        let mut out = Mat4::identity();
        out.m[0][0] = c;
        out.m[0][2] = -s;
        out.m[2][0] = s;
        out.m[2][2] = c;
        out
    }

    /// Rotation about the X axis by `radians`.
    #[must_use]
    pub fn rotate_x(radians: f32) -> Self {
        let (s, c) = radians.sin_cos();
        let mut out = Mat4::identity();
        out.m[1][1] = c;
        out.m[1][2] = s;
        out.m[2][1] = -s;
        out.m[2][2] = c;
        out
    }

    /// Right-handed perspective projection.
    ///
    /// `fov_y_rad` is the vertical field of view; depth maps to `[-1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `near >= far` or `fov_y_rad` is not in `(0, π)`.
    #[must_use]
    pub fn perspective(fov_y_rad: f32, aspect: f32, near: f32, far: f32) -> Self {
        assert!(near < far, "near plane must be in front of far plane");
        assert!(
            fov_y_rad > 0.0 && fov_y_rad < std::f32::consts::PI,
            "field of view must be in (0, pi)"
        );
        let f = 1.0 / (fov_y_rad / 2.0).tan();
        let mut m = [[0.0f32; 4]; 4];
        m[0][0] = f / aspect;
        m[1][1] = f;
        m[2][2] = (far + near) / (near - far);
        m[2][3] = -1.0;
        m[3][2] = 2.0 * far * near / (near - far);
        Mat4 { m }
    }

    /// A view matrix looking from `eye` toward `target` with `up` up.
    #[must_use]
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Self {
        let fwd = (target - eye).normalized();
        let right = fwd.cross(up).normalized();
        let true_up = right.cross(fwd);
        let mut m = Mat4::identity();
        m.m[0][0] = right.x;
        m.m[1][0] = right.y;
        m.m[2][0] = right.z;
        m.m[0][1] = true_up.x;
        m.m[1][1] = true_up.y;
        m.m[2][1] = true_up.z;
        m.m[0][2] = -fwd.x;
        m.m[1][2] = -fwd.y;
        m.m[2][2] = -fwd.z;
        m.m[3][0] = -right.dot(eye);
        m.m[3][1] = -true_up.dot(eye);
        m.m[3][2] = fwd.dot(eye);
        m
    }

    /// Matrix–vector product.
    #[must_use]
    pub fn transform(&self, v: Vec4) -> Vec4 {
        let m = &self.m;
        Vec4::new(
            m[0][0] * v.x + m[1][0] * v.y + m[2][0] * v.z + m[3][0] * v.w,
            m[0][1] * v.x + m[1][1] * v.y + m[2][1] * v.z + m[3][1] * v.w,
            m[0][2] * v.x + m[1][2] * v.y + m[2][2] * v.z + m[3][2] * v.w,
            m[0][3] * v.x + m[1][3] * v.y + m[2][3] * v.z + m[3][3] * v.w,
        )
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, rhs: Mat4) -> Mat4 {
        let mut out = [[0.0f32; 4]; 4];
        for (c, out_col) in out.iter_mut().enumerate() {
            for (r, out_cell) in out_col.iter_mut().enumerate() {
                *out_cell = (0..4).map(|k| self.m[k][r] * rhs.m[c][k]).sum();
            }
        }
        Mat4 { m: out }
    }
}

impl Default for Mat4 {
    fn default() -> Self {
        Mat4::identity()
    }
}

/// One vertex of a renderable triangle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vertex {
    /// Object-space position.
    pub position: Vec3,
    /// Per-vertex RGBA color (linear, 0..1 per channel).
    pub color: [f32; 4],
    /// Texture coordinates.
    pub uv: [f32; 2],
}

impl Vertex {
    /// Creates a vertex at a position with a flat color and zero UV.
    #[must_use]
    pub fn colored(position: Vec3, color: [f32; 4]) -> Self {
        Vertex {
            position,
            color,
            uv: [0.0, 0.0],
        }
    }
}

/// A renderable triangle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Triangle {
    /// The three vertices, counter-clockwise front face.
    pub vertices: [Vertex; 3],
}

impl Triangle {
    /// Creates a triangle from three vertices.
    #[must_use]
    pub const fn new(a: Vertex, b: Vertex, c: Vertex) -> Self {
        Triangle {
            vertices: [a, b, c],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f32 = 1e-5;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < EPS
    }

    #[test]
    fn vec3_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -2.0, 0.5);
        assert_eq!(a + b, Vec3::new(5.0, 0.0, 3.5));
        assert_eq!(a - b, Vec3::new(-3.0, 4.0, 2.5));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross_are_orthogonal() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert!(close(a.cross(b).dot(a), 0.0));
        assert!(close(a.cross(b).dot(b), 0.0));
    }

    #[test]
    fn normalize_unit_length() {
        let v = Vec3::new(3.0, 4.0, 0.0).normalized();
        assert!(close(v.length(), 1.0));
        // Zero vector survives normalization.
        assert_eq!(Vec3::zero().normalized(), Vec3::zero());
    }

    #[test]
    fn identity_transform_is_noop() {
        let v = Vec4::new(1.0, -2.0, 3.0, 1.0);
        assert_eq!(Mat4::identity().transform(v), v);
    }

    #[test]
    fn translation_moves_points_not_directions() {
        let t = Mat4::translate(Vec3::new(1.0, 2.0, 3.0));
        let p = t.transform(Vec4::new(0.0, 0.0, 0.0, 1.0));
        assert_eq!(p, Vec4::new(1.0, 2.0, 3.0, 1.0));
        let d = t.transform(Vec4::new(1.0, 0.0, 0.0, 0.0));
        assert_eq!(d, Vec4::new(1.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn matrix_product_composes() {
        let t = Mat4::translate(Vec3::new(1.0, 0.0, 0.0));
        let s = Mat4::scale(2.0);
        // (t * s) applies s first, then t.
        let v = (t * s).transform(Vec4::new(1.0, 1.0, 1.0, 1.0));
        assert_eq!(v, Vec4::new(3.0, 2.0, 2.0, 1.0));
    }

    #[test]
    fn rotation_preserves_length() {
        let r = Mat4::rotate_y(1.2) * Mat4::rotate_x(-0.7);
        let v = Vec4::new(1.0, 2.0, 3.0, 0.0);
        let rv = r.transform(v);
        let len = |v: Vec4| (v.x * v.x + v.y * v.y + v.z * v.z).sqrt();
        assert!(close(len(v), len(rv)));
    }

    #[test]
    fn perspective_maps_center_of_frustum() {
        let p = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 0.1, 100.0);
        // A point straight ahead projects to NDC origin.
        let v = p.transform(Vec4::new(0.0, 0.0, -1.0, 1.0)).project();
        assert!(close(v.x, 0.0) && close(v.y, 0.0));
    }

    #[test]
    fn perspective_depth_ordering() {
        let p = Mat4::perspective(1.0, 1.0, 0.1, 100.0);
        let near = p.transform(Vec4::new(0.0, 0.0, -0.2, 1.0)).project().z;
        let far = p.transform(Vec4::new(0.0, 0.0, -50.0, 1.0)).project().z;
        assert!(near < far, "nearer points must have smaller NDC depth");
    }

    #[test]
    #[should_panic(expected = "near plane")]
    fn perspective_rejects_bad_planes() {
        let _ = Mat4::perspective(1.0, 1.0, 10.0, 1.0);
    }

    #[test]
    fn look_at_centers_target() {
        let view = Mat4::look_at(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let v = view.transform(Vec4::new(0.0, 0.0, 0.0, 1.0));
        assert!(close(v.x, 0.0) && close(v.y, 0.0));
        assert!(v.z < 0.0, "target must be in front of the camera (-z)");
    }
}
