//! A correct, compact perspective software rasterizer.
//!
//! One triangle at a time: viewport transform, back-face + trivial-reject
//! culling, edge-function coverage with perspective-correct attribute
//! interpolation, depth test, Gouraud shading with optional bilinear
//! texturing. Every pass updates [`RenderStats`], the ground truth for the
//! analytic timing model.
//!
//! This is the *functional* half of the GPU substrate — correctness and
//! instrumentation over speed. Tests render at small resolutions; examples
//! use moderate ones.

use crate::framebuffer::{DepthBuffer, Framebuffer, Rgba};
use crate::geometry::{Mat4, Triangle, Vec3};
use crate::stats::RenderStats;
use crate::texture::Texture;
use std::collections::HashSet;

/// A pixel-space viewport (subrectangle of the render target).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Viewport {
    /// Left edge, pixels.
    pub x: u32,
    /// Top edge, pixels.
    pub y: u32,
    /// Width, pixels.
    pub width: u32,
    /// Height, pixels.
    pub height: u32,
}

impl Viewport {
    /// Viewport covering an entire target of the given size.
    #[must_use]
    pub fn full(width: u32, height: u32) -> Self {
        Viewport {
            x: 0,
            y: 0,
            width,
            height,
        }
    }
}

/// Rasterizer state bound to one color + depth target pair.
#[derive(Debug)]
pub struct RasterPipeline {
    color: Framebuffer,
    depth: DepthBuffer,
    viewport: Viewport,
    raster_tile_px: u32,
    stats: RenderStats,
    tiles: HashSet<(u32, u32)>,
}

impl RasterPipeline {
    /// Creates a pipeline with a cleared target of the given size.
    ///
    /// `raster_tile_px` is the binning tile edge used for the
    /// `tiles_touched` statistic (Table 2 uses 16×16).
    ///
    /// # Panics
    ///
    /// Panics if a dimension or the tile size is zero.
    #[must_use]
    pub fn new(width: u32, height: u32, clear: Rgba, raster_tile_px: u32) -> Self {
        assert!(raster_tile_px > 0, "tile size must be non-zero");
        RasterPipeline {
            color: Framebuffer::new(width, height, clear),
            depth: DepthBuffer::new(width, height),
            viewport: Viewport::full(width, height),
            raster_tile_px,
            stats: RenderStats::default(),
            tiles: HashSet::new(),
        }
    }

    /// Restricts rasterization to a subrectangle of the target.
    ///
    /// # Panics
    ///
    /// Panics if the viewport exceeds the target bounds.
    pub fn set_viewport(&mut self, vp: Viewport) {
        assert!(
            vp.x + vp.width <= self.color.width() && vp.y + vp.height <= self.color.height(),
            "viewport exceeds target bounds"
        );
        self.viewport = vp;
    }

    /// The bound color buffer.
    #[must_use]
    pub fn color(&self) -> &Framebuffer {
        &self.color
    }

    /// The bound depth buffer.
    #[must_use]
    pub fn depth(&self) -> &DepthBuffer {
        &self.depth
    }

    /// Consumes the pipeline, returning the color buffer.
    #[must_use]
    pub fn into_color(self) -> Framebuffer {
        self.color
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> RenderStats {
        let mut s = self.stats;
        s.tiles_touched = self.tiles.len() as u64;
        s
    }

    /// Clears color, depth, statistics, and tile tracking.
    pub fn clear(&mut self, clear: Rgba) {
        self.color.clear(clear);
        self.depth.clear();
        self.stats = RenderStats::default();
        self.tiles.clear();
    }

    /// Draws a batch of triangles under a model-view-projection transform,
    /// optionally textured (texture color multiplies vertex color).
    pub fn draw_batch(&mut self, mvp: &Mat4, triangles: &[Triangle], texture: Option<&Texture>) {
        self.stats.batches += 1;
        for tri in triangles {
            self.draw_triangle(mvp, tri, texture);
        }
    }

    fn draw_triangle(&mut self, mvp: &Mat4, tri: &Triangle, texture: Option<&Texture>) {
        self.stats.triangles_in += 1;

        // Transform to clip space.
        let clip = [
            mvp.transform(tri.vertices[0].position.extend(1.0)),
            mvp.transform(tri.vertices[1].position.extend(1.0)),
            mvp.transform(tri.vertices[2].position.extend(1.0)),
        ];
        // Reject triangles touching or behind the near plane (w <= 0).
        // A production pipeline clips; rejection keeps the code compact and
        // only matters for geometry grazing the camera.
        if clip.iter().any(|v| v.w <= 1e-6) {
            self.stats.triangles_clipped += 1;
            return;
        }

        let ndc: Vec<Vec3> = clip.iter().map(|v| v.project()).collect();

        // Viewport transform: NDC [-1,1] to pixel coordinates inside the
        // bound viewport. y flips so +y NDC is up.
        let vw = self.viewport.width as f32;
        let vh = self.viewport.height as f32;
        let vx = self.viewport.x as f32;
        let vy = self.viewport.y as f32;
        let to_screen = |v: &Vec3| -> (f32, f32) {
            (
                vx + (v.x + 1.0) * 0.5 * vw,
                vy + (1.0 - (v.y + 1.0) * 0.5) * vh,
            )
        };
        let p: Vec<(f32, f32)> = ndc.iter().map(to_screen).collect();

        // Signed area for back-face culling. Front faces are counter-
        // clockwise in world space; the viewport y-flip makes them clockwise
        // on screen, i.e. negative area under this edge function.
        let area = edge(p[0], p[1], p[2]);
        if area >= 0.0 {
            self.stats.triangles_culled += 1;
            return;
        }

        // Bounding box clamped to the viewport.
        let min_x = p
            .iter()
            .map(|q| q.0)
            .fold(f32::INFINITY, f32::min)
            .floor()
            .max(vx);
        let max_x = p
            .iter()
            .map(|q| q.0)
            .fold(f32::NEG_INFINITY, f32::max)
            .ceil()
            .min(vx + vw - 1.0);
        let min_y = p
            .iter()
            .map(|q| q.1)
            .fold(f32::INFINITY, f32::min)
            .floor()
            .max(vy);
        let max_y = p
            .iter()
            .map(|q| q.1)
            .fold(f32::NEG_INFINITY, f32::max)
            .ceil()
            .min(vy + vh - 1.0);
        if min_x > max_x || min_y > max_y {
            self.stats.triangles_culled += 1;
            return;
        }

        // Track binning tiles the bounding box overlaps.
        let ts = self.raster_tile_px;
        for ty in (min_y as u32 / ts)..=(max_y as u32 / ts) {
            for tx in (min_x as u32 / ts)..=(max_x as u32 / ts) {
                self.tiles.insert((tx, ty));
            }
        }

        // Perspective-correct interpolation uses attributes pre-divided by w.
        let inv_w = [1.0 / clip[0].w, 1.0 / clip[1].w, 1.0 / clip[2].w];
        let inv_area = 1.0 / area;

        for y in (min_y as u32)..=(max_y as u32) {
            for x in (min_x as u32)..=(max_x as u32) {
                let px = (x as f32 + 0.5, y as f32 + 0.5);
                let w0 = edge(p[1], p[2], px) * inv_area;
                let w1 = edge(p[2], p[0], px) * inv_area;
                let w2 = edge(p[0], p[1], px) * inv_area;
                if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                    continue;
                }
                // Interpolate NDC depth linearly in screen space (standard
                // z-buffer behaviour).
                let z = w0 * ndc[0].z + w1 * ndc[1].z + w2 * ndc[2].z;
                if !self.depth.test_and_set(x, y, z) {
                    self.stats.fragments_rejected += 1;
                    continue;
                }
                self.stats.fragments_shaded += 1;

                // Perspective-correct barycentrics for attributes.
                let pw = w0 * inv_w[0] + w1 * inv_w[1] + w2 * inv_w[2];
                let b0 = w0 * inv_w[0] / pw;
                let b1 = w1 * inv_w[1] / pw;
                let b2 = w2 * inv_w[2] / pw;

                let v = &tri.vertices;
                let mut color = [0.0f32; 4];
                for (i, ch) in color.iter_mut().enumerate() {
                    *ch = b0 * v[0].color[i] + b1 * v[1].color[i] + b2 * v[2].color[i];
                }
                let mut out = Rgba(color);
                if let Some(tex) = texture {
                    let u = b0 * v[0].uv[0] + b1 * v[1].uv[0] + b2 * v[2].uv[0];
                    let vv = b0 * v[0].uv[1] + b1 * v[1].uv[1] + b2 * v[2].uv[1];
                    let texel = tex.sample(u, vv);
                    self.stats.texture_samples += 1;
                    out = Rgba([
                        out.0[0] * texel.0[0],
                        out.0[1] * texel.0[1],
                        out.0[2] * texel.0[2],
                        out.0[3] * texel.0[3],
                    ]);
                }
                self.color.set_pixel(x, y, out);
            }
        }
    }
}

/// Twice the signed area of triangle `(a, b, c)`; positive when counter-
/// clockwise in screen space (y down).
fn edge(a: (f32, f32), b: (f32, f32), c: (f32, f32)) -> f32 {
    (b.0 - a.0) * (c.1 - a.1) - (b.1 - a.1) * (c.0 - a.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Vec3, Vertex};

    const RED: [f32; 4] = [1.0, 0.0, 0.0, 1.0];
    const GREEN: [f32; 4] = [0.0, 1.0, 0.0, 1.0];
    const BLUE: [f32; 4] = [0.0, 0.0, 1.0, 1.0];

    /// A full-viewport counter-clockwise triangle at depth `z` (camera at
    /// origin looking down -z with an identity projection).
    fn big_triangle(z: f32, color: [f32; 4]) -> Triangle {
        Triangle::new(
            Vertex::colored(Vec3::new(-3.0, -3.0, z), color),
            Vertex::colored(Vec3::new(3.0, -3.0, z), color),
            Vertex::colored(Vec3::new(0.0, 3.0, z), color),
        )
    }

    /// An orthographic-like projection: scale down so the big triangle maps
    /// into NDC, keep w = 1 by using identity and pre-scaled coordinates.
    fn identity_mvp() -> Mat4 {
        // Place geometry directly in NDC via w=1: model coords are NDC.
        // Use a perspective with the triangle at z=-1 instead for realism.
        Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 0.1, 10.0)
            * Mat4::translate(Vec3::new(0.0, 0.0, -3.0))
    }

    #[test]
    fn draws_center_pixel() {
        let mut rp = RasterPipeline::new(32, 32, Rgba::BLACK, 16);
        rp.draw_batch(&identity_mvp(), &[big_triangle(0.0, RED)], None);
        let c = rp.color().pixel(16, 16);
        assert!(
            c.r() > 0.9 && c.g() < 0.1,
            "center pixel should be red, got {c}"
        );
        assert!(rp.stats().fragments_shaded > 0);
    }

    #[test]
    fn back_face_is_culled() {
        let mut rp = RasterPipeline::new(32, 32, Rgba::BLACK, 16);
        let t = big_triangle(0.0, RED);
        let flipped = Triangle::new(t.vertices[1], t.vertices[0], t.vertices[2]);
        rp.draw_batch(&identity_mvp(), &[flipped], None);
        assert_eq!(rp.stats().triangles_culled, 1);
        assert_eq!(rp.stats().fragments_shaded, 0);
        assert_eq!(rp.color().pixel(16, 16), Rgba::BLACK);
    }

    #[test]
    fn behind_camera_is_clipped() {
        let mut rp = RasterPipeline::new(32, 32, Rgba::BLACK, 16);
        // Triangle behind the camera: w <= 0 after projection.
        let t = big_triangle(10.0, RED);
        rp.draw_batch(&identity_mvp(), &[t], None);
        assert_eq!(rp.stats().triangles_clipped, 1);
        assert_eq!(rp.stats().fragments_shaded, 0);
    }

    #[test]
    fn depth_test_orders_triangles() {
        let mut rp = RasterPipeline::new(32, 32, Rgba::BLACK, 16);
        let mvp = identity_mvp();
        // Far (red) then near (green): green must win.
        rp.draw_batch(&mvp, &[big_triangle(-1.0, RED)], None);
        rp.draw_batch(&mvp, &[big_triangle(1.0, GREEN)], None);
        let c = rp.color().pixel(16, 16);
        assert!(c.g() > 0.9, "near triangle must overwrite far one, got {c}");
        assert!(
            rp.stats().fragments_rejected == 0,
            "near-after-far never rejects"
        );

        // Drawing the far one again must be rejected by depth.
        rp.draw_batch(&mvp, &[big_triangle(-1.0, BLUE)], None);
        assert!(rp.stats().fragments_rejected > 0);
        assert!(rp.color().pixel(16, 16).g() > 0.9);
    }

    #[test]
    fn overdraw_statistic_reflects_depth_rejections() {
        let mut rp = RasterPipeline::new(32, 32, Rgba::BLACK, 16);
        let mvp = identity_mvp();
        // Same depth twice: the strict depth test rejects the identical
        // footprint of the second pass fragment-for-fragment.
        rp.draw_batch(&mvp, &[big_triangle(0.0, GREEN)], None);
        let shaded_once = rp.stats().fragments_shaded;
        rp.draw_batch(&mvp, &[big_triangle(0.0, RED)], None);
        let s = rp.stats();
        assert_eq!(
            s.fragments_shaded, shaded_once,
            "occluded pass shades nothing"
        );
        assert_eq!(
            s.fragments_rejected, shaded_once,
            "every occluded fragment rejected"
        );
        assert!((s.overdraw() - 2.0).abs() < 1e-9);
        assert!(
            rp.color().pixel(16, 16).g() > 0.9,
            "first write wins at equal depth"
        );
    }

    #[test]
    fn gouraud_interpolates_colors() {
        let mut rp = RasterPipeline::new(64, 64, Rgba::BLACK, 16);
        let tri = Triangle::new(
            Vertex::colored(Vec3::new(-3.0, -3.0, 0.0), RED),
            Vertex::colored(Vec3::new(3.0, -3.0, 0.0), GREEN),
            Vertex::colored(Vec3::new(0.0, 3.0, 0.0), BLUE),
        );
        rp.draw_batch(&identity_mvp(), &[tri], None);
        // Center mixes all three.
        let c = rp.color().pixel(32, 32);
        assert!(
            c.r() > 0.05 && c.g() > 0.05 && c.b() > 0.05,
            "center blends, got {c}"
        );
    }

    #[test]
    fn texture_modulates_output() {
        let mut rp = RasterPipeline::new(64, 64, Rgba::BLACK, 16);
        let tex = Texture::checkerboard(16, 2, Rgba::BLACK, Rgba::WHITE);
        let mut tri = big_triangle(0.0, [1.0, 1.0, 1.0, 1.0]);
        tri.vertices[0].uv = [0.0, 0.0];
        tri.vertices[1].uv = [1.0, 0.0];
        tri.vertices[2].uv = [0.5, 1.0];
        rp.draw_batch(&identity_mvp(), &[tri], Some(&tex));
        assert!(rp.stats().texture_samples > 0);
        // The checkerboard must produce both dark and bright fragments.
        let mut dark = 0;
        let mut bright = 0;
        for px in rp.color().iter() {
            if px.luma() > 0.7 {
                bright += 1;
            } else if px.a() > 0.5 && px.luma() < 0.3 {
                dark += 1;
            }
        }
        assert!(dark > 0 && bright > 0, "dark={dark} bright={bright}");
    }

    #[test]
    fn viewport_restricts_output() {
        let mut rp = RasterPipeline::new(64, 64, Rgba::BLACK, 16);
        rp.set_viewport(Viewport {
            x: 0,
            y: 0,
            width: 32,
            height: 64,
        });
        rp.draw_batch(&identity_mvp(), &[big_triangle(0.0, RED)], None);
        for y in 0..64 {
            for x in 32..64 {
                assert_eq!(
                    rp.color().pixel(x, y),
                    Rgba::BLACK,
                    "({x},{y}) outside viewport"
                );
            }
        }
        // Something was drawn inside the viewport.
        assert!(rp.stats().fragments_shaded > 0);
    }

    #[test]
    #[should_panic(expected = "viewport exceeds")]
    fn oversized_viewport_panics() {
        let mut rp = RasterPipeline::new(32, 32, Rgba::BLACK, 16);
        rp.set_viewport(Viewport {
            x: 16,
            y: 0,
            width: 32,
            height: 32,
        });
    }

    #[test]
    fn tiles_touched_tracks_footprint() {
        let mut rp = RasterPipeline::new(64, 64, Rgba::BLACK, 16);
        rp.draw_batch(&identity_mvp(), &[big_triangle(0.0, RED)], None);
        let tiles = rp.stats().tiles_touched;
        assert!(
            tiles >= 4,
            "full-ish screen triangle touches many tiles, got {tiles}"
        );
        assert!(tiles <= 16, "at most the whole 4x4 tile grid");
    }

    #[test]
    fn clear_resets_everything() {
        let mut rp = RasterPipeline::new(32, 32, Rgba::BLACK, 16);
        rp.draw_batch(&identity_mvp(), &[big_triangle(0.0, RED)], None);
        rp.clear(Rgba::BLACK);
        assert_eq!(rp.stats(), RenderStats::default());
        assert_eq!(rp.color().pixel(16, 16), Rgba::BLACK);
        assert!(rp.depth().depth(16, 16).is_infinite());
    }

    #[test]
    fn batch_counter_increments() {
        let mut rp = RasterPipeline::new(16, 16, Rgba::BLACK, 16);
        rp.draw_batch(&identity_mvp(), &[], None);
        rp.draw_batch(&identity_mvp(), &[], None);
        assert_eq!(rp.stats().batches, 2);
    }
}
