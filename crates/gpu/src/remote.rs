//! The remote rendering server: a chiplet-based multi-GPU system.
//!
//! The paper's server is "a future chiplet based multi-GPU design that can
//! scale up to 8 MCM GPUs (similar to that in [OO-VR])" enabling parallel
//! rendering of the periphery layers. OO-VR reports near-linear scaling for
//! VR parallel rendering thanks to NUMA-friendly object placement; we model
//! per-GPU efficiency with a configurable scaling coefficient.

use crate::config::GpuConfig;
use crate::timing::GpuTimingModel;
use crate::workload::FrameWorkload;
use std::fmt;

/// A multi-GPU remote rendering server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteGpuModel {
    gpu: GpuConfig,
    count: u32,
    scaling: f64,
}

impl RemoteGpuModel {
    /// Creates a server with `count` GPUs of the given configuration.
    ///
    /// `scaling` is the incremental efficiency of each added GPU in
    /// `[0, 1]`: effective parallelism is `1 + scaling × (count − 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `scaling` is outside `[0, 1]`.
    #[must_use]
    pub fn new(gpu: GpuConfig, count: u32, scaling: f64) -> Self {
        assert!(count > 0, "server needs at least one GPU");
        assert!(
            (0.0..=1.0).contains(&scaling),
            "scaling must be within [0, 1]"
        );
        RemoteGpuModel {
            gpu,
            count,
            scaling,
        }
    }

    /// The paper's default: 8 MCM Pascal-class GPUs with OO-VR-like
    /// NUMA-friendly scaling.
    #[must_use]
    pub fn mcm_8_gpu() -> Self {
        RemoteGpuModel::new(GpuConfig::pascal_class(), 8, 0.85)
    }

    /// Number of GPUs.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Per-GPU configuration.
    #[must_use]
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// Effective parallel speedup over one GPU.
    #[must_use]
    pub fn effective_parallelism(&self) -> f64 {
        1.0 + self.scaling * f64::from(self.count - 1)
    }

    /// Stereo render time for a per-eye workload across the GPU array, ms.
    #[must_use]
    pub fn stereo_render_ms(&self, per_eye: &FrameWorkload) -> f64 {
        let single = GpuTimingModel::new(self.gpu)
            .stereo_frame_time(per_eye)
            .total_ms();
        single / self.effective_parallelism()
    }

    /// Stereo render time for a per-eye workload on **one** GPU of the
    /// array, ms — the per-unit cost when the server is scheduled as a pool
    /// of frame-level units (multi-tenant mode) instead of ganging all
    /// chiplets on a single frame.
    #[must_use]
    pub fn per_gpu_stereo_render_ms(&self, per_eye: &FrameWorkload) -> f64 {
        GpuTimingModel::new(self.gpu)
            .stereo_frame_time(per_eye)
            .total_ms()
    }

    /// Monoscopic render time across the GPU array, ms.
    #[must_use]
    pub fn render_ms(&self, workload: &FrameWorkload) -> f64 {
        let single = GpuTimingModel::new(self.gpu)
            .frame_time(workload)
            .total_ms();
        single / self.effective_parallelism()
    }
}

impl Default for RemoteGpuModel {
    fn default() -> Self {
        RemoteGpuModel::mcm_8_gpu()
    }
}

impl fmt::Display for RemoteGpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x MCM GPU ({:.1}x effective), {}",
            self.count,
            self.effective_parallelism(),
            self.gpu
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> FrameWorkload {
        FrameWorkload::builder(1920, 2160)
            .triangles(2_000_000)
            .overdraw(2.0)
            .fragment_shader_cycles(48.0)
            .build()
    }

    #[test]
    fn more_gpus_render_faster() {
        let one = RemoteGpuModel::new(GpuConfig::pascal_class(), 1, 0.85);
        let eight = RemoteGpuModel::mcm_8_gpu();
        assert!(eight.stereo_render_ms(&frame()) < one.stereo_render_ms(&frame()));
    }

    #[test]
    fn effective_parallelism_bounds() {
        let m = RemoteGpuModel::mcm_8_gpu();
        let p = m.effective_parallelism();
        assert!(p > 1.0 && p <= 8.0, "parallelism {p}");
    }

    #[test]
    fn server_renders_full_frame_fast() {
        // The remote side must not be the bottleneck: a heavy stereo frame
        // should render in single-digit milliseconds on the 8-GPU server.
        let m = RemoteGpuModel::mcm_8_gpu();
        let t = m.stereo_render_ms(&frame());
        assert!(t < 10.0, "remote stereo render {t} ms");
    }

    #[test]
    fn per_gpu_time_is_the_unscaled_single_gpu_time() {
        let m = RemoteGpuModel::mcm_8_gpu();
        let pooled = m.per_gpu_stereo_render_ms(&frame());
        let ganged = m.stereo_render_ms(&frame());
        assert!(
            (pooled / ganged - m.effective_parallelism()).abs() < 1e-9,
            "per-GPU time must be the array time times the effective parallelism"
        );
    }

    #[test]
    fn zero_scaling_means_no_speedup() {
        let m = RemoteGpuModel::new(GpuConfig::pascal_class(), 8, 0.0);
        assert_eq!(m.effective_parallelism(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_rejected() {
        let _ = RemoteGpuModel::new(GpuConfig::pascal_class(), 0, 0.5);
    }

    #[test]
    #[should_panic(expected = "scaling")]
    fn bad_scaling_rejected() {
        let _ = RemoteGpuModel::new(GpuConfig::pascal_class(), 4, 1.5);
    }

    #[test]
    fn display_mentions_count() {
        assert!(RemoteGpuModel::mcm_8_gpu().to_string().contains("8x"));
    }
}
