//! Mobile-GPU simulation substrate for the Q-VR reproduction.
//!
//! The paper evaluates on a modified **ATTILA-sim** — a cycle-level
//! rasterization GPU simulator — configured after an ARM Mali-G76 (Table 2).
//! We cannot ship ATTILA, so this crate rebuilds the two capabilities the
//! evaluation actually consumes:
//!
//! 1. **A functional software rasterizer** ([`raster`], [`geometry`],
//!    [`framebuffer`], [`texture`]) that renders real pixels. It validates
//!    the UCA filtering algebra, feeds the video codec with genuine image
//!    content, and produces ground-truth workload statistics
//!    ([`stats::RenderStats`]).
//! 2. **A cycle-accounting timing model** ([`timing`]) for a tile-based
//!    mobile GPU: two-pass (binning + per-tile fragment) execution, shader
//!    ALU throughput, texture filtering, L1/L2/DRAM traffic, and draw-batch
//!    overhead, all scaled by core frequency. A chiplet multi-GPU server
//!    model ([`remote`]) covers the remote rendering side.
//!
//! The timing model consumes a [`workload::FrameWorkload`] — an abstract
//! description of one frame's rendering work — which either comes from an
//! app profile (`qvr-scene`) or from measured rasterizer statistics, so the
//! analytic path can be cross-validated against the functional path.
//!
//! # Example
//!
//! ```
//! use qvr_gpu::{GpuConfig, FrameWorkload, GpuTimingModel};
//!
//! let gpu = GpuConfig::mali_g76_class();
//! let model = GpuTimingModel::new(gpu);
//! let frame = FrameWorkload::builder(1920, 2160)
//!     .triangles(500_000)
//!     .overdraw(1.8)
//!     .fragment_shader_cycles(24.0)
//!     .build();
//! let t = model.frame_time(&frame);
//! assert!(t.total_ms() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod framebuffer;
pub mod geometry;
pub mod raster;
pub mod remote;
pub mod stats;
pub mod texture;
pub mod timing;
pub mod workload;

pub use config::GpuConfig;
pub use framebuffer::{DepthBuffer, Framebuffer, Rgba};
pub use geometry::{Mat4, Triangle, Vec3, Vec4, Vertex};
pub use raster::{RasterPipeline, Viewport};
pub use remote::RemoteGpuModel;
pub use stats::RenderStats;
pub use texture::Texture;
pub use timing::{FrameTime, GpuTimingModel};
pub use workload::{FrameWorkload, FrameWorkloadBuilder};
