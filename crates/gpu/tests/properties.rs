//! Property-based tests for the GPU substrate.

use proptest::prelude::*;
use qvr_gpu::{
    FrameWorkload, Framebuffer, GpuConfig, GpuTimingModel, Mat4, RasterPipeline, Rgba, Triangle,
    Vec3, Vertex,
};

fn workload_strategy() -> impl Strategy<Value = FrameWorkload> {
    (
        640u32..2560,
        640u32..2560,
        0u64..5_000_000,
        0.0f64..1.0,
        1.0f64..4.0,
        1.0f64..128.0,
        0.0f64..8.0,
        1u64..5_000,
    )
        .prop_map(|(w, h, tris, cov, od, fsc, tpf, batches)| {
            FrameWorkload::builder(w, h)
                .triangles(tris)
                .coverage(cov)
                .overdraw(od)
                .fragment_shader_cycles(fsc)
                .texture_samples_per_fragment(tpf)
                .batches(batches)
                .build()
        })
}

proptest! {
    #[test]
    fn frame_time_is_positive_and_finite(w in workload_strategy()) {
        let m = GpuTimingModel::new(GpuConfig::mali_g76_class());
        let t = m.frame_time(&w);
        prop_assert!(t.total_ms().is_finite());
        prop_assert!(t.total_ms() > 0.0);
    }

    #[test]
    fn frequency_scaling_is_exactly_inverse(w in workload_strategy(), f in 100.0f64..2000.0) {
        let base = GpuTimingModel::new(GpuConfig::mali_g76_class().with_frequency_mhz(500.0));
        let other = GpuTimingModel::new(GpuConfig::mali_g76_class().with_frequency_mhz(f));
        let ratio = other.frame_time(&w).total_ms() / base.frame_time(&w).total_ms();
        prop_assert!((ratio - 500.0 / f).abs() < 1e-9);
    }

    #[test]
    fn monotone_in_triangles(w in workload_strategy(), extra in 1u64..1_000_000) {
        let m = GpuTimingModel::new(GpuConfig::mali_g76_class());
        let more = FrameWorkload::builder(w.width(), w.height())
            .triangles(w.triangles() + extra)
            .coverage(w.coverage())
            .overdraw(w.overdraw())
            .fragment_shader_cycles(w.fragment_shader_cycles())
            .texture_samples_per_fragment(w.texture_samples_per_fragment())
            .batches(w.batches())
            .build();
        prop_assert!(m.frame_time(&more).total_cycles() >= m.frame_time(&w).total_cycles());
    }

    #[test]
    fn stereo_never_cheaper_than_mono(w in workload_strategy()) {
        let m = GpuTimingModel::new(GpuConfig::mali_g76_class());
        prop_assert!(m.stereo_frame_time(&w).total_ms() >= m.frame_time(&w).total_ms());
        prop_assert!(m.stereo_frame_time(&w).total_ms() <= 2.0 * m.frame_time(&w).total_ms() + 1e-9);
    }

    #[test]
    fn scaled_region_never_costs_more(w in workload_strategy(), area in 0.0f64..1.0, tris in 0.0f64..1.0) {
        let m = GpuTimingModel::new(GpuConfig::mali_g76_class());
        let sub = w.scaled_region(area, tris);
        prop_assert!(m.frame_time(&sub).total_cycles() <= m.frame_time(&w).total_cycles() + 1e-6);
    }

    #[test]
    fn bilinear_sample_stays_in_hull(
        px in proptest::collection::vec(0.0f32..1.0, 16),
        x in 0.0f32..3.0,
        y in 0.0f32..3.0,
    ) {
        // Build a 4x4 grayscale buffer; bilinear samples must stay within
        // [min, max] of the texel values.
        let mut fb = Framebuffer::new(4, 4, Rgba::BLACK);
        for (i, v) in px.iter().enumerate() {
            fb.set_pixel((i % 4) as u32, (i / 4) as u32, Rgba::new(*v, *v, *v, 1.0));
        }
        let lo = px.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = px.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let s = fb.sample_bilinear(x, y);
        prop_assert!(s.r() >= lo - 1e-5 && s.r() <= hi + 1e-5);
    }

    #[test]
    fn raster_fragments_bounded_by_viewport(
        ax in -2.0f32..2.0, ay in -2.0f32..2.0,
        bx in -2.0f32..2.0, by in -2.0f32..2.0,
        cx in -2.0f32..2.0, cy in -2.0f32..2.0,
        z in -1.5f32..1.5,
    ) {
        let mut rp = RasterPipeline::new(48, 48, Rgba::BLACK, 16);
        let mvp = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 0.1, 10.0)
            * Mat4::translate(Vec3::new(0.0, 0.0, -3.0));
        let tri = Triangle::new(
            Vertex::colored(Vec3::new(ax, ay, z), [1.0, 0.0, 0.0, 1.0]),
            Vertex::colored(Vec3::new(bx, by, z), [0.0, 1.0, 0.0, 1.0]),
            Vertex::colored(Vec3::new(cx, cy, z), [0.0, 0.0, 1.0, 1.0]),
        );
        rp.draw_batch(&mvp, &[tri], None);
        let s = rp.stats();
        // A single triangle can never shade more fragments than the target.
        prop_assert!(s.fragments_shaded <= 48 * 48);
        prop_assert!(s.triangles_in == 1);
        // Conservation: the triangle was either culled, clipped, or rasterized.
        let outcome = s.triangles_culled + s.triangles_clipped;
        prop_assert!(outcome <= 1);
    }

    #[test]
    fn analytic_fragments_match_measured(
        size in 2.0f32..3.0,
        z in -1.0f32..1.0,
    ) {
        // Cross-validation: render a triangle, derive a workload from the
        // measured stats, and check the workload's fragment count equals the
        // measured count.
        let mut rp = RasterPipeline::new(64, 64, Rgba::BLACK, 16);
        let mvp = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 0.1, 10.0)
            * Mat4::translate(Vec3::new(0.0, 0.0, -3.0));
        let tri = Triangle::new(
            Vertex::colored(Vec3::new(-size, -size, z), [1.0, 0.0, 0.0, 1.0]),
            Vertex::colored(Vec3::new(size, -size, z), [0.0, 1.0, 0.0, 1.0]),
            Vertex::colored(Vec3::new(0.0, size, z), [0.0, 0.0, 1.0, 1.0]),
        );
        rp.draw_batch(&mvp, &[tri], None);
        let stats = rp.stats();
        let w = FrameWorkload::from_stats(64, 64, &stats, 12.0, 24.0);
        prop_assert!((w.fragments() - stats.fragments_shaded as f64 * stats.overdraw()).abs() < 2.0);
    }
}
