//! Power, energy, and hardware-overhead models (paper Secs. 4.3 and 6.3).
//!
//! The Fig. 15 energy study normalises Q-VR's *system* energy to the local
//! rendering baseline, counting the mobile GPU, the network radio (power
//! figures from the LTE/Wi-Fi measurement literature the paper cites), the
//! video decoder, and the added LIWC/UCA units (McPAT figures from
//! Sec. 4.3). The display is identical across schemes and excluded, as in
//! the paper.
//!
//! * [`PowerModel`] — active/static power for every component, with a
//!   DVFS-style frequency scaling law for the GPU: dynamic power scales as
//!   `(f/f₀)^2.4` (voltage scales with frequency), static power is
//!   frequency-independent. Energy over a frame therefore has the
//!   non-monotone frequency behaviour the paper observes (lower clocks
//!   stretch static energy).
//! * [`EnergyBreakdown`] — per-component millijoules for a simulated
//!   interval, built from resource busy times.
//! * [`overhead`] — the Sec. 4.3 McPAT area/power/latency numbers for LIWC
//!   and UCA, plus the UCA throughput sufficiency computation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod overhead;

pub use overhead::{LiwcOverhead, UcaOverhead};

use qvr_net::NetworkPreset;
use std::fmt;

/// Component power figures, watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Mobile GPU peak dynamic power at the reference frequency, W.
    pub gpu_dynamic_peak_w: f64,
    /// Mobile GPU static/leakage power, W.
    pub gpu_static_w: f64,
    /// Reference GPU frequency for the dynamic figure, MHz.
    pub gpu_ref_mhz: f64,
    /// DVFS exponent: dynamic power ∝ (f/f₀)^exponent.
    pub gpu_dvfs_exponent: f64,
    /// CPU active power during control logic / setup, W.
    pub cpu_active_w: f64,
    /// Hardware video decoder active power, W.
    pub vdec_active_w: f64,
    /// LIWC active power, W (Sec. 4.3: 25 mW).
    pub liwc_w: f64,
    /// Power of one UCA unit, W (Sec. 4.3: 94 mW).
    pub uca_unit_w: f64,
    /// Number of UCA units (Table 2: 2).
    pub uca_units: u32,
}

impl PowerModel {
    /// Radio power while actively receiving, W (cited 4G-LTE / Wi-Fi power
    /// characterisation studies; early-5G figures from early modem reports).
    #[must_use]
    pub fn radio_active_w(preset: NetworkPreset) -> f64 {
        match preset {
            NetworkPreset::WiFi => 0.9,
            NetworkPreset::Lte4G => 1.4,
            NetworkPreset::Early5G => 1.9,
        }
    }

    /// GPU dynamic power at a frequency, W.
    #[must_use]
    pub fn gpu_dynamic_w(&self, freq_mhz: f64) -> f64 {
        self.gpu_dynamic_peak_w * (freq_mhz / self.gpu_ref_mhz).powf(self.gpu_dvfs_exponent)
    }

    /// GPU energy over an interval, mJ: dynamic while busy, static for the
    /// whole span.
    #[must_use]
    pub fn gpu_energy_mj(&self, freq_mhz: f64, busy_ms: f64, span_ms: f64) -> f64 {
        self.gpu_dynamic_w(freq_mhz) * busy_ms + self.gpu_static_w * span_ms
    }
}

impl Default for PowerModel {
    /// Mobile-SoC figures: ~3 W GPU dynamic peak at 500 MHz + 0.6 W leakage,
    /// 0.8 W CPU active, 0.3 W video decoder, Sec. 4.3's LIWC/UCA numbers.
    fn default() -> Self {
        PowerModel {
            gpu_dynamic_peak_w: 3.0,
            gpu_static_w: 0.6,
            gpu_ref_mhz: 500.0,
            gpu_dvfs_exponent: 2.4,
            cpu_active_w: 0.8,
            vdec_active_w: 0.3,
            liwc_w: 0.025,
            uca_unit_w: 0.094,
            uca_units: 2,
        }
    }
}

impl fmt::Display for PowerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GPU {:.1} W dyn @ {:.0} MHz + {:.1} W static, CPU {:.1} W, VDEC {:.1} W",
            self.gpu_dynamic_peak_w,
            self.gpu_ref_mhz,
            self.gpu_static_w,
            self.cpu_active_w,
            self.vdec_active_w
        )
    }
}

/// Per-component energy for a simulated interval, millijoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Mobile GPU (dynamic + static).
    pub gpu_mj: f64,
    /// Network radio (active reception/transmission).
    pub radio_mj: f64,
    /// Hardware video decoder.
    pub vdec_mj: f64,
    /// CPU control/setup work.
    pub cpu_mj: f64,
    /// LIWC unit.
    pub liwc_mj: f64,
    /// UCA units.
    pub uca_mj: f64,
}

impl EnergyBreakdown {
    /// Total system energy, mJ.
    #[must_use]
    pub fn total_mj(&self) -> f64 {
        self.gpu_mj + self.radio_mj + self.vdec_mj + self.cpu_mj + self.liwc_mj + self.uca_mj
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} mJ (gpu {:.1}, radio {:.1}, vdec {:.1}, cpu {:.1}, liwc {:.2}, uca {:.2})",
            self.total_mj(),
            self.gpu_mj,
            self.radio_mj,
            self.vdec_mj,
            self.cpu_mj,
            self.liwc_mj,
            self.uca_mj
        )
    }
}

/// Power figures for one GPU unit (plus its hardware encoder) of the shared
/// remote server pool, watts. The paper's energy study stops at the headset;
/// a fleet-level deployment also pays for the rack, and per-session server
/// busy time is exactly what the telemetry stream attributes — so the fleet
/// energy loop closes here: `FrameEvent` busy ms × these figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerPowerModel {
    /// One server GPU while rendering, W (datacenter-class part at a
    /// VR-friendly clip).
    pub gpu_active_w: f64,
    /// One server GPU idling at the ready, W.
    pub gpu_idle_w: f64,
    /// One hardware encoder while encoding, W.
    pub enc_active_w: f64,
    /// One hardware encoder idle, W.
    pub enc_idle_w: f64,
}

impl Default for ServerPowerModel {
    /// Mid-range server-GPU figures: 75 W rendering / 15 W idle per unit,
    /// 8 W active / 1 W idle for the paired hardware encoder.
    fn default() -> Self {
        ServerPowerModel {
            gpu_active_w: 75.0,
            gpu_idle_w: 15.0,
            enc_active_w: 8.0,
            enc_idle_w: 1.0,
        }
    }
}

impl ServerPowerModel {
    /// Energy of a `units`-wide GPU+encoder pool over a fleet span, mJ:
    /// active power over the attributed busy times, idle power over the
    /// remaining capacity (`units × span − busy`, floored at zero for
    /// robustness against span rounding).
    #[must_use]
    pub fn pool_energy_mj(
        &self,
        units: usize,
        span_ms: f64,
        render_busy_ms: f64,
        encode_busy_ms: f64,
    ) -> (f64, f64, f64) {
        let capacity = units as f64 * span_ms;
        let render_mj = self.gpu_active_w * render_busy_ms;
        let encode_mj = self.enc_active_w * encode_busy_ms;
        let idle_mj = self.gpu_idle_w * (capacity - render_busy_ms).max(0.0)
            + self.enc_idle_w * (capacity - encode_busy_ms).max(0.0);
        (render_mj, encode_mj, idle_mj)
    }
}

/// Power figures for the access point / base station serving the fleet's
/// shared wireless link, watts. Infrastructure-side counterpart of
/// [`PowerModel::radio_active_w`] (which models the *headset's* radio).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApPowerModel {
    /// Baseline power while the AP is up, W.
    pub idle_w: f64,
    /// Active transmit/receive power as a multiple of the handset-side
    /// [`PowerModel::radio_active_w`] figure for the same preset (the AP
    /// drives more antennas at higher transmit power; LTE/5G figures
    /// amortize a pico-cell).
    pub active_scale: f64,
}

impl Default for ApPowerModel {
    /// A small enterprise AP / pico-cell baseline: 2 W idle, active power
    /// at 2× the handset radio.
    fn default() -> Self {
        ApPowerModel {
            idle_w: 2.0,
            active_scale: 2.0,
        }
    }
}

impl ApPowerModel {
    /// AP transmit/receive power while the link is active, W.
    #[must_use]
    pub fn active_w(&self, preset: NetworkPreset) -> f64 {
        self.active_scale * PowerModel::radio_active_w(preset)
    }

    /// AP energy over a fleet span with `active_ms` of link activity, mJ.
    #[must_use]
    pub fn energy_mj(&self, preset: NetworkPreset, span_ms: f64, active_ms: f64) -> f64 {
        self.active_w(preset) * active_ms + self.idle_w * span_ms
    }
}

/// Fleet-level energy over one run, millijoules: the server pool, the
/// access point, and the sum of every headset's own [`EnergyBreakdown`].
/// Produced by `qvr_core`'s telemetry `EnergyMeter` from the streamed
/// per-frame busy attribution (never re-walked from task history, so it is
/// retirement-proof by construction).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FleetEnergy {
    /// Server GPUs rendering tenants' remote work.
    pub server_render_mj: f64,
    /// Server hardware encoders.
    pub server_encode_mj: f64,
    /// Idle floor of the server pool over the fleet span.
    pub server_idle_mj: f64,
    /// Access point radio (active transfer + idle baseline).
    pub ap_radio_mj: f64,
    /// Sum of all sessions' mobile-side energy.
    pub client_mj: f64,
}

impl FleetEnergy {
    /// Server-side energy (render + encode + idle), mJ.
    #[must_use]
    pub fn server_mj(&self) -> f64 {
        self.server_render_mj + self.server_encode_mj + self.server_idle_mj
    }

    /// Infrastructure energy (server pool + AP), mJ.
    #[must_use]
    pub fn infrastructure_mj(&self) -> f64 {
        self.server_mj() + self.ap_radio_mj
    }

    /// Whole-system energy (infrastructure + every headset), mJ.
    #[must_use]
    pub fn total_mj(&self) -> f64 {
        self.infrastructure_mj() + self.client_mj
    }
}

impl std::ops::Add for FleetEnergy {
    type Output = FleetEnergy;

    /// Component-wise sum: the fleet energy of two disjoint fleets (each
    /// finalised over its own span and pool) is the sum of their parts —
    /// how a sharded run folds per-cell energies into one total.
    fn add(mut self, rhs: FleetEnergy) -> FleetEnergy {
        self += rhs;
        self
    }
}

impl std::ops::AddAssign for FleetEnergy {
    fn add_assign(&mut self, rhs: FleetEnergy) {
        self.server_render_mj += rhs.server_render_mj;
        self.server_encode_mj += rhs.server_encode_mj;
        self.server_idle_mj += rhs.server_idle_mj;
        self.ap_radio_mj += rhs.ap_radio_mj;
        self.client_mj += rhs.client_mj;
    }
}

impl std::iter::Sum for FleetEnergy {
    /// Folds left-to-right from the zero identity, so a deterministic
    /// iteration order yields bit-deterministic totals.
    fn sum<I: Iterator<Item = FleetEnergy>>(iter: I) -> FleetEnergy {
        iter.fold(FleetEnergy::default(), |acc, e| acc + e)
    }
}

impl fmt::Display for FleetEnergy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} mJ (server {:.0}, AP {:.0}, clients {:.0})",
            self.total_mj(),
            self.server_mj(),
            self.ap_radio_mj,
            self.client_mj
        )
    }
}

/// Busy-time inputs for one simulated interval (from the event engine's
/// per-resource accounting).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BusyTimes {
    /// Total wall-clock span of the interval, ms.
    pub span_ms: f64,
    /// GPU busy, ms.
    pub gpu_ms: f64,
    /// Radio active, ms.
    pub radio_ms: f64,
    /// Video decoder busy, ms.
    pub vdec_ms: f64,
    /// CPU busy, ms.
    pub cpu_ms: f64,
    /// LIWC busy, ms.
    pub liwc_ms: f64,
    /// UCA busy (per unit), ms.
    pub uca_ms: f64,
}

impl PowerModel {
    /// Converts busy times into a per-component energy breakdown.
    #[must_use]
    pub fn energy(
        &self,
        busy: &BusyTimes,
        gpu_freq_mhz: f64,
        preset: NetworkPreset,
    ) -> EnergyBreakdown {
        EnergyBreakdown {
            gpu_mj: self.gpu_energy_mj(gpu_freq_mhz, busy.gpu_ms, busy.span_ms),
            radio_mj: Self::radio_active_w(preset) * busy.radio_ms,
            vdec_mj: self.vdec_active_w * busy.vdec_ms,
            cpu_mj: self.cpu_active_w * busy.cpu_ms,
            liwc_mj: self.liwc_w * busy.liwc_ms,
            uca_mj: self.uca_unit_w * f64::from(self.uca_units) * busy.uca_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_power_scales_superlinearly() {
        let p = PowerModel::default();
        let at_500 = p.gpu_dynamic_w(500.0);
        let at_250 = p.gpu_dynamic_w(250.0);
        assert!(
            at_250 < at_500 / 2.0,
            "DVFS must be superlinear: {at_250} vs {at_500}"
        );
        assert!((at_500 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn energy_vs_frequency_is_non_monotone_for_fixed_work() {
        // Fixed work: busy time scales inversely with frequency. Sweeping
        // down in clock, dynamic energy falls but static energy rises — the
        // paper's "reducing GPU frequency will not always increase the
        // energy benefit".
        let p = PowerModel::default();
        let work_cycles_ms500 = 10.0; // 10 ms of busy time at 500 MHz
        let energy_at = |f: f64| {
            let busy = work_cycles_ms500 * 500.0 / f;
            // Frame span set by a 90 Hz deadline floor or the busy time.
            let span = busy.max(11.1);
            p.gpu_energy_mj(f, busy, span)
        };
        let e500 = energy_at(500.0);
        let e300 = energy_at(300.0);
        let e100 = energy_at(100.0);
        assert!(e300 < e500, "300 MHz saves energy vs 500 MHz");
        assert!(e100 > e300, "very low clocks lose to static energy stretch");
    }

    #[test]
    fn radio_power_ordering() {
        assert!(
            PowerModel::radio_active_w(NetworkPreset::Lte4G)
                > PowerModel::radio_active_w(NetworkPreset::WiFi)
        );
        assert!(
            PowerModel::radio_active_w(NetworkPreset::Early5G)
                > PowerModel::radio_active_w(NetworkPreset::Lte4G)
        );
    }

    #[test]
    fn breakdown_totals_add_up() {
        let p = PowerModel::default();
        let busy = BusyTimes {
            span_ms: 11.1,
            gpu_ms: 5.0,
            radio_ms: 8.0,
            vdec_ms: 2.0,
            cpu_ms: 1.0,
            liwc_ms: 11.1,
            uca_ms: 3.0,
        };
        let e = p.energy(&busy, 500.0, NetworkPreset::WiFi);
        let manual = e.gpu_mj + e.radio_mj + e.vdec_mj + e.cpu_mj + e.liwc_mj + e.uca_mj;
        assert!((e.total_mj() - manual).abs() < 1e-12);
        assert!(e.total_mj() > 0.0);
    }

    #[test]
    fn liwc_uca_are_small_overheads() {
        // Sec. 4.3's point: the added units cost milliwatts against a
        // multi-watt GPU. Over a full frame their energy must be <5% of a
        // busy GPU's.
        let p = PowerModel::default();
        let busy = BusyTimes {
            span_ms: 11.1,
            gpu_ms: 8.0,
            liwc_ms: 11.1,
            uca_ms: 4.0,
            ..BusyTimes::default()
        };
        let e = p.energy(&busy, 500.0, NetworkPreset::WiFi);
        assert!((e.liwc_mj + e.uca_mj) < 0.05 * e.gpu_mj);
    }

    #[test]
    fn local_rendering_dominated_by_gpu() {
        // A local-only frame: GPU busy most of a long frame, no radio.
        let p = PowerModel::default();
        let busy = BusyTimes {
            span_ms: 50.0,
            gpu_ms: 45.0,
            cpu_ms: 3.0,
            ..Default::default()
        };
        let e = p.energy(&busy, 500.0, NetworkPreset::WiFi);
        assert!(e.gpu_mj > 0.9 * e.total_mj());
    }

    #[test]
    fn collaborative_saves_energy_vs_local_when_gpu_shrinks() {
        // The Fig. 15 effect: rendering only the fovea slashes GPU busy
        // time; radio/decoder overheads are smaller than the saving.
        let p = PowerModel::default();
        let local = BusyTimes {
            span_ms: 50.0,
            gpu_ms: 45.0,
            cpu_ms: 3.0,
            ..Default::default()
        };
        let qvr = BusyTimes {
            span_ms: 12.0,
            gpu_ms: 6.0,
            radio_ms: 7.0,
            vdec_ms: 2.0,
            cpu_ms: 1.0,
            liwc_ms: 12.0,
            uca_ms: 3.0,
        };
        let e_local = p.energy(&local, 500.0, NetworkPreset::WiFi).total_mj();
        let e_qvr = p.energy(&qvr, 500.0, NetworkPreset::WiFi).total_mj();
        assert!(
            e_qvr < 0.5 * e_local,
            "Q-VR-like frame {e_qvr} mJ vs local {e_local} mJ"
        );
    }

    #[test]
    fn display_formats() {
        assert!(PowerModel::default().to_string().contains("GPU"));
        assert!(EnergyBreakdown::default().to_string().contains("mJ"));
        assert!(FleetEnergy::default().to_string().contains("server"));
    }

    #[test]
    fn server_pool_energy_splits_active_and_idle() {
        let s = ServerPowerModel::default();
        // 2 units over 100 ms: 50 ms rendering, 20 ms encoding.
        let (render, encode, idle) = s.pool_energy_mj(2, 100.0, 50.0, 20.0);
        assert!((render - 75.0 * 50.0).abs() < 1e-9);
        assert!((encode - 8.0 * 20.0).abs() < 1e-9);
        assert!((idle - (15.0 * 150.0 + 1.0 * 180.0)).abs() < 1e-9);
        // Idle never goes negative even if attributed busy overshoots span.
        let (_, _, clamped) = s.pool_energy_mj(1, 10.0, 50.0, 50.0);
        assert_eq!(clamped, 0.0);
    }

    #[test]
    fn ap_power_orders_with_the_handset_radio() {
        let ap = ApPowerModel::default();
        for preset in [
            NetworkPreset::WiFi,
            NetworkPreset::Lte4G,
            NetworkPreset::Early5G,
        ] {
            assert!(ap.active_w(preset) > PowerModel::radio_active_w(preset));
        }
        let quiet = ap.energy_mj(NetworkPreset::WiFi, 100.0, 0.0);
        let busy = ap.energy_mj(NetworkPreset::WiFi, 100.0, 60.0);
        assert!((quiet - 200.0).abs() < 1e-9, "idle floor only");
        assert!(busy > quiet, "active transfer costs extra");
    }

    #[test]
    fn fleet_energy_totals_add_up() {
        let e = FleetEnergy {
            server_render_mj: 100.0,
            server_encode_mj: 10.0,
            server_idle_mj: 40.0,
            ap_radio_mj: 25.0,
            client_mj: 75.0,
        };
        assert!((e.server_mj() - 150.0).abs() < 1e-12);
        assert!((e.infrastructure_mj() - 175.0).abs() < 1e-12);
        assert!((e.total_mj() - 250.0).abs() < 1e-12);
    }
}
