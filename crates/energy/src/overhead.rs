//! Sec. 4.3 hardware-overhead figures (McPAT, 45 nm, 500 MHz).
//!
//! The paper evaluates its two added units with McPAT and reports area,
//! power, and latency. We ship those published figures as data, plus the
//! derived quantities the section argues from: LIWC's table fits in a 64 KB
//! SRAM and its lookup latency hides entirely; two UCA units sustain
//! real-time composition+ATW at 532 cycles per 32×32 tile.

use std::fmt;

/// LIWC implementation figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiwcOverhead {
    /// Mapping-table entries (2¹⁵).
    pub table_depth: u32,
    /// Bits per entry (half-precision float).
    pub entry_bits: u32,
    /// Total SRAM, bytes.
    pub sram_bytes: u64,
    /// Die area, mm² (45 nm).
    pub area_mm2: f64,
    /// Peak power, mW, at 500 MHz.
    pub power_mw: f64,
}

impl LiwcOverhead {
    /// The paper's published figures.
    #[must_use]
    pub fn published() -> Self {
        LiwcOverhead {
            table_depth: 32_768,
            entry_bits: 16,
            sram_bytes: 64 * 1024,
            area_mm2: 0.66,
            power_mw: 25.0,
        }
    }

    /// Consistency check: depth × entry size equals the SRAM size.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        u64::from(self.table_depth) * u64::from(self.entry_bits) / 8 == self.sram_bytes
    }
}

impl fmt::Display for LiwcOverhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LIWC: {} KB SRAM ({} x f16), {:.2} mm2, {:.0} mW",
            self.sram_bytes / 1024,
            self.table_depth,
            self.area_mm2,
            self.power_mw
        )
    }
}

/// UCA implementation figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UcaOverhead {
    /// Cycles to process one tile.
    pub cycles_per_tile: u32,
    /// Tile edge, pixels.
    pub tile_px: u32,
    /// Unit count (Table 2: 2).
    pub units: u32,
    /// Clock, MHz.
    pub frequency_mhz: f64,
    /// Die area per unit, mm².
    pub area_mm2: f64,
    /// Runtime power per unit, mW.
    pub power_mw: f64,
}

impl UcaOverhead {
    /// The paper's published figures.
    #[must_use]
    pub fn published() -> Self {
        UcaOverhead {
            cycles_per_tile: 532,
            tile_px: 32,
            units: 2,
            frequency_mhz: 500.0,
            area_mm2: 1.6,
            power_mw: 94.0,
        }
    }

    /// Tiles needed for a stereo frame at `width`×`height` per eye.
    #[must_use]
    pub fn tiles_per_stereo_frame(&self, width: u32, height: u32) -> u64 {
        let per_eye =
            u64::from(width.div_ceil(self.tile_px)) * u64::from(height.div_ceil(self.tile_px));
        per_eye * 2
    }

    /// Time for all units to process a stereo frame, ms.
    #[must_use]
    pub fn stereo_frame_ms(&self, width: u32, height: u32) -> f64 {
        let tiles = self.tiles_per_stereo_frame(width, height) as f64;
        tiles * f64::from(self.cycles_per_tile)
            / (f64::from(self.units) * self.frequency_mhz * 1_000.0)
    }

    /// Whether the configuration sustains a refresh rate at a resolution.
    #[must_use]
    pub fn sustains(&self, width: u32, height: u32, refresh_hz: f64) -> bool {
        self.stereo_frame_ms(width, height) <= 1_000.0 / refresh_hz
    }
}

impl fmt::Display for UcaOverhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "UCA: {} units @ {:.0} MHz, {} cyc/{}x{} tile, {:.1} mm2, {:.0} mW each",
            self.units,
            self.frequency_mhz,
            self.cycles_per_tile,
            self.tile_px,
            self.tile_px,
            self.area_mm2,
            self.power_mw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liwc_published_figures_are_consistent() {
        let l = LiwcOverhead::published();
        assert!(l.is_consistent(), "2^15 x 16 bit = 64 KB");
        assert_eq!(l.table_depth, 1 << 15);
        assert!((l.area_mm2 - 0.66).abs() < 1e-12);
        assert!((l.power_mw - 25.0).abs() < 1e-12);
    }

    #[test]
    fn uca_sustains_realtime_vr() {
        // Sec. 4.3's claim: "with 2 UCAs operating at 500 MHz, we are able
        // to achieve sufficient performance for realtime VR."
        let u = UcaOverhead::published();
        let t = u.stereo_frame_ms(1920, 2160);
        assert!(
            t < 1_000.0 / 90.0,
            "stereo UCA pass {t} ms exceeds 90 Hz budget"
        );
        assert!(u.sustains(1920, 2160, 90.0));
    }

    #[test]
    fn one_uca_unit_takes_twice_as_long() {
        let two = UcaOverhead::published();
        let one = UcaOverhead { units: 1, ..two };
        let ratio = one.stereo_frame_ms(1920, 2160) / two.stereo_frame_ms(1920, 2160);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tile_count_rounds_up() {
        let u = UcaOverhead::published();
        // 1920/32 = 60 exact; 2160/32 = 67.5 -> 68.
        assert_eq!(u.tiles_per_stereo_frame(1920, 2160), 60 * 68 * 2);
    }

    #[test]
    fn displays_mention_units() {
        assert!(LiwcOverhead::published().to_string().contains("64 KB"));
        assert!(UcaOverhead::published().to_string().contains("532"));
    }
}
