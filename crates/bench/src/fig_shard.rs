//! Sharded-cell sweep: the ≥100k-session regime.
//!
//! Not a paper artefact — the scale-out layer above the fleet engine
//! (DESIGN.md §12). Four views:
//!
//! 1. **Merge identity**: a 1-cell shard over an identical roster must
//!    reproduce `Fleet::run` *bit for bit* — percentiles, FPS statistics,
//!    utilisation, energy, and the windowed timeline all compare with
//!    `==`. This is the merge laws' end-to-end receipt.
//! 2. **Spill admission**: joins route to the least-loaded cell, spill
//!    across cells when a probe fails at full share, and degrade or bounce
//!    only when no cell can hold them.
//! 3. **Worker scaling**: the same shard stepped on 1/2/4 workers — the
//!    merged `ShardSummary` is asserted identical across all of them
//!    (cells only talk through the telemetry seam), and wall-clock rates
//!    are reported per worker count. On a single-core runner the rates are
//!    flat; the determinism assertion is the portable guarantee.
//! 4. **The ≥100k sweep**: one shard stepping >100,000 concurrent
//!    sessions with windowed task retirement — live schedule state stays
//!    O(cells × window) while sessions-stepped/sec holds the single-fleet
//!    rate (near-linear scaling in cell count).

// qvr-lint: module(report)

use crate::{TextTable, SEED};
use qvr::prelude::*;
use qvr::scene::Benchmark;
use std::time::Instant;

/// Cells in the full sweep (a cell is one AP/server "room": ~32 headsets
/// is the occupancy the 300 ms retirement window comfortably covers).
pub const SWEEP_CELLS: usize = 3_200;
/// Sessions per cell in the full sweep (3,200 × 32 = 102,400 sessions).
pub const SWEEP_PER_CELL: usize = 32;
/// Per-session frame budget of the full sweep.
pub const SWEEP_FRAMES: usize = 3;
/// Engine-history retirement window, ms (the O(cells × window) knob).
pub const RETIRE_WINDOW_MS: f64 = 300.0;

/// The sweep's mixed roster: four apps round-robin.
fn spec(i: usize) -> SessionSpec {
    let apps = [
        Benchmark::Hl2H,
        Benchmark::Doom3H,
        Benchmark::Wolf,
        Benchmark::Ut3,
    ];
    SessionSpec::new(SchemeKind::Qvr, apps[i % apps.len()].profile())
}

/// The per-cell fleet template: 4 GPU units + 2 link streams per cell,
/// windowed retirement on.
fn template(frames: usize) -> FleetConfig {
    let mut t = FleetConfig::uniform(
        SystemConfig::default(),
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        1, // placeholder: the shard routes its own roster
        frames,
        SEED,
    );
    t.server_units = 4;
    t.link_streams = 2;
    t.retire_window_ms = Some(RETIRE_WINDOW_MS);
    t
}

/// The sweep's shard config over `cells × per_cell` sessions.
#[must_use]
fn shard_config(cells: usize, per_cell: usize, frames: usize) -> ShardConfig {
    ShardConfig::new(
        template(frames),
        cells,
        per_cell,
        (0..cells * per_cell).map(spec).collect(),
    )
}

/// The 1-cell degeneracy receipt: shard == fleet, bit for bit.
fn identity_report() -> String {
    let mut config = template(30);
    config.sessions = (0..6).map(spec).collect();
    config.telemetry = config.telemetry.with_window_ms(150.0).with_metrics();
    let fleet = Fleet::run(config.clone());
    let shard = Shard::run(ShardConfig::new(config.clone(), 1, 6, config.sessions));
    assert!(
        shard.matches_fleet(&fleet),
        "1-cell shard diverged from the fleet: {shard} vs {fleet}"
    );
    let exposition_lines = shard.exposition.as_deref().map_or(0, |e| e.lines().count());
    assert!(exposition_lines > 0, "metrics exposition must be present");
    format!(
        "Merge identity: a 1-cell shard over the fleet's roster reproduces\n\
         Fleet::run bit for bit (p50/p95/p99 {:.2}/{:.2}/{:.2} ms, util\n\
         {:.3}, energy {:.1} mJ, {} windows, {exposition_lines}-line metrics\n\
         exposition) — asserted with `==`, no tolerance; the exposition text\n\
         itself compares byte-identical.\n\n",
        shard.mtp_p50_ms,
        shard.mtp_p95_ms,
        shard.mtp_p99_ms,
        shard.server_utilization,
        shard.energy.total_mj(),
        shard.windows.len(),
    )
}

/// The spill-admission demo: more joins than any cell holds at full share.
fn spill_report() -> String {
    let policy = AdmissionPolicy {
        probe_frames: 3,
        max_server_utilization: 0.9,
        ..AdmissionPolicy::default()
    };
    let config = ShardConfig::new(template(6), 3, 4, (0..12).map(spec).collect())
        .with_admission(policy)
        .with_workers(1);
    let s = Shard::run(config);
    format!(
        "Spill admission: 12 joins over 3 cells x 4 slots, full-share probes\n\
         in least-loaded order, degraded fallback at the least-loaded cell.\n\
         {} placed {:?} across cells; {} spilled, {} degraded, {} rejected,\n\
         {} probe fleets run.\n\n",
        s.sessions, s.cell_sessions, s.spilled, s.degraded, s.rejected, s.probes_run,
    )
}

/// Runs one shard shape at each worker count, asserting the merged
/// summaries identical and reporting per-count wall-clock rates.
fn scaling_report(cells: usize, per_cell: usize, frames: usize, workers: &[usize]) -> String {
    let mut out = format!(
        "Worker scaling: {cells} cells x {per_cell} sessions x {frames} \
         frames, identical\nmerged summary asserted across worker counts \
         (rates are runner-dependent;\non a 1-core runner they are flat).\n\n",
    );
    let mut t = TextTable::new(vec![
        "workers",
        "sessions",
        "frames",
        "wall",
        "sessions/s",
        "frames/s",
    ]);
    let mut baseline: Option<ShardSummary> = None;
    for &w in workers {
        let t0 = Instant::now();
        let s = Shard::run(shard_config(cells, per_cell, frames).with_workers(w));
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        t.row(vec![
            format!("{w}"),
            format!("{}", s.sessions),
            format!("{}", s.frames),
            format!("{:.0} ms", wall * 1e3),
            format!("{:.0}", s.sessions as f64 / wall),
            format!("{:.0}", s.frames as f64 / wall),
        ]);
        match &baseline {
            None => baseline = Some(s),
            Some(b) => assert_eq!(
                *b, s,
                "shard summary must be identical across worker counts"
            ),
        }
    }
    out.push_str(&t.render());
    out.push('\n');
    out
}

/// The headline run: one shard at full size, rate + memory receipt.
fn sweep_line(cells: usize, per_cell: usize, frames: usize) -> String {
    let t0 = Instant::now();
    let s = Shard::run(shard_config(cells, per_cell, frames));
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    let cap = cells * (8.0 * RETIRE_WINDOW_MS) as usize;
    assert!(
        s.peak_live_tasks < cap,
        "live schedule state must stay O(cells x window): peak {} vs cap {cap}",
        s.peak_live_tasks
    );
    format!(
        "Sweep: {} concurrent sessions over {} cells ({} frames each) in\n\
         {:.1} s — {:.0} sessions-stepped/s, {:.0} frames-stepped/s; MTP\n\
         p50/p95/p99 {:.1}/{:.1}/{:.1} ms, FPS floor {:.0}, util {:.0}%.\n\
         Peak live schedule state {} tasks vs the O(cells x window) cap of\n\
         {cap} ({} cells x 8 tasks/ms x {:.0} ms window) — cells ship sink\n\
         states across the seam, never frame histories.\n",
        s.sessions,
        s.cells,
        frames,
        wall,
        s.sessions as f64 / wall,
        s.frames as f64 / wall,
        s.mtp_p50_ms,
        s.mtp_p95_ms,
        s.mtp_p99_ms,
        s.fps_floor,
        s.server_utilization * 100.0,
        s.peak_live_tasks,
        s.cells,
        RETIRE_WINDOW_MS,
    )
}

/// A stable digest of one shard run at an explicit worker count.
///
/// Hashes the merged `ShardSummary`'s full `Debug` form (every field:
/// percentiles, utilisation, energy, incidents, windowed timeline, and
/// the metrics exposition) with FNV-1a. Wall-clock never enters the
/// summary, so two invocations — at *any* worker counts — must agree bit
/// for bit. The determinism smoke test pins exactly that.
#[must_use]
pub fn determinism_digest(cells: usize, per_cell: usize, frames: usize, workers: usize) -> u64 {
    let s = Shard::run(shard_config(cells, per_cell, frames).with_workers(workers));
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{s:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Regenerates the full sharded-cell sweep (the ≥100k-session run).
#[must_use]
pub fn report() -> String {
    report_with(SWEEP_CELLS, SWEEP_PER_CELL, SWEEP_FRAMES, &[1, 2, 4])
}

/// The sweep at explicit sizes (the CI smoke and unit tests run miniature
/// versions; `report` runs the full 102,400-session shape).
#[must_use]
pub fn report_with(cells: usize, per_cell: usize, frames: usize, workers: &[usize]) -> String {
    let mut out = format!(
        "Sharded fleet cells — {} sessions over {cells} independent cells\n\
         (4 GPU units + 2 link streams each), communicating only through\n\
         the telemetry seam: per-cell sink states merge into one\n\
         fleet-identical ShardSummary (DESIGN.md §12).\n\n",
        cells * per_cell,
    );
    out.push_str(&identity_report());
    out.push_str(&spill_report());
    // Worker scaling on a mid-size shard (the full shape would triple the
    // sweep's runtime for identical rows on a small runner).
    out.push_str(&scaling_report(
        cells.min(64),
        per_cell.min(32),
        frames.max(4),
        workers,
    ));
    out.push_str(&sweep_line(cells, per_cell, frames));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_the_sweep() {
        // Miniature: 6 cells x 8 sessions (the 102,400-session shape
        // belongs to the release binary, not every `cargo test`).
        let r = report_with(6, 8, 3, &[1, 2]);
        assert!(r.contains("48 sessions over 6"));
        assert!(r.contains("bit for bit"));
        assert!(r.contains("Spill admission"));
        assert!(r.contains("sessions-stepped/s"));
        assert!(r.contains("O(cells x window)"));
    }

    #[test]
    fn sweep_shape_counts_every_session_and_frame() {
        let s = Shard::run(shard_config(4, 8, 3));
        assert_eq!(s.sessions, 32);
        assert_eq!(s.frames, 32 * 3);
        assert_eq!(s.cell_sessions, vec![8, 8, 8, 8]);
    }
}
