//! Perf-trajectory harness: raw stepping throughput over the hot shapes.
//!
//! Not a paper artefact — this measures the *simulator itself*. The
//! multi-party collaborative-VR direction in PAPERS.md only raises the
//! session counts a fleet must step per wall-clock second, so
//! **sessions-stepped/sec** and **frames-stepped/sec** are first-class,
//! tracked metrics: every PR records them in a committed `BENCH_<n>.json`
//! (see DESIGN.md §11) and CI diffs new runs against that baseline.
//!
//! Three shape families cover the hot paths:
//!
//! * `fig_fleet` — uniform Q-VR fleets (8/32 sessions × Wi-Fi/early-5G)
//!   under both stepping policies; the pure fleet-stepping hot loop.
//! * `fig_churn` — Poisson arrivals with exponential holds and 300 ms
//!   windowed retirement; exercises join/leave, gating, and retirement.
//! * `fig_sched` — the mixed noisy-neighbour roster under the quota and
//!   measured-load placement policies; exercises the policy directives.
//! * `fig_shard` — an 8-cell × 8-session shard with windowed retirement;
//!   exercises the route → parallel cells → merge path end to end.
//! * `fig_rate` — an 8-session Q-VR fleet with the closed-loop rate
//!   controller on; exercises the entropy-model + controller hot path.
//!
//! A *session-stepped* is one session completing its full frame budget;
//! a *frame-stepped* is one `Session::step` call. Both rates come from the
//! median of `iters` timed full runs after one warm-up run.

// qvr-lint: module(report)

use crate::SEED;
use qvr::prelude::*;
use qvr::scene::Benchmark;
use std::fmt::Write as _;
use std::time::Instant;

/// Version stamp of the emitted JSON document. Bump only when the key
/// layout changes; CI hard-fails on a mismatch (schema drift).
/// v2 added the `peak_live_tasks` schedule-state gauge per measurement.
pub const SCHEMA_VERSION: u32 = 2;

/// Per-session frame budget of the full (committed-baseline) shapes.
pub const FULL_FRAMES: usize = 120;

/// Reduced frame budget for `cargo bench` and the CI smoke diff.
pub const BENCH_FRAMES: usize = 40;

/// Default timed iterations per shape (after one warm-up run).
pub const DEFAULT_ITERS: usize = 3;

/// One benchmarkable workload shape.
pub struct Shape {
    /// Stable identifier, also the JSON key (`family/...` path style).
    pub name: String,
    /// The shape family (`fig_fleet`, `fig_churn`, `fig_sched`, `fig_shard`).
    pub family: &'static str,
    /// Nominal session count (churn shapes count admitted tenants per run).
    pub sessions: usize,
    /// Per-session frame budget (nominal for churn shapes).
    pub frames: usize,
    run: Box<dyn Fn() -> (usize, usize, usize)>,
}

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shape")
            .field("name", &self.name)
            .field("sessions", &self.sessions)
            .field("frames", &self.frames)
            .finish_non_exhaustive()
    }
}

impl Shape {
    /// Runs the workload once; returns `(sessions_stepped, frames_stepped,
    /// peak_live_tasks)` — the last is the run's peak retained schedule
    /// state, the memory-footprint gauge tracked alongside the rates.
    #[must_use]
    pub fn run_once(&self) -> (usize, usize, usize) {
        (self.run)()
    }
}

/// One shape's measured throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Timed iterations (excluding the warm-up run).
    pub iters: usize,
    /// Sessions stepped to completion per iteration.
    pub sessions: usize,
    /// Frames stepped per iteration.
    pub frames: usize,
    /// Median wall-clock per iteration, ms.
    pub median_iter_ms: f64,
    /// Sessions run to completion per wall-clock second.
    pub sessions_stepped_per_sec: f64,
    /// Frames stepped per wall-clock second.
    pub frames_stepped_per_sec: f64,
    /// Peak live task intervals retained by the run's engine(s) — the
    /// schedule-state footprint gauge (O(window) under retirement).
    pub peak_live_tasks: usize,
}

/// Measures one shape: one warm-up run, then `iters` timed runs; rates are
/// computed from the median iteration.
///
/// # Panics
///
/// Panics if `iters` is zero.
#[must_use]
pub fn measure(shape: &Shape, iters: usize) -> Measurement {
    assert!(iters > 0, "need at least one timed iteration");
    let _ = shape.run_once(); // warm-up
    let mut times = Vec::with_capacity(iters);
    let mut counts = (0usize, 0usize, 0usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        counts = shape.run_once();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    let median_s = times[times.len() / 2].max(1e-9);
    Measurement {
        iters,
        sessions: counts.0,
        frames: counts.1,
        median_iter_ms: median_s * 1e3,
        sessions_stepped_per_sec: counts.0 as f64 / median_s,
        frames_stepped_per_sec: counts.1 as f64 / median_s,
        peak_live_tasks: counts.2,
    }
}

/// The full shape roster at a per-session frame budget (`FULL_FRAMES` for
/// the committed baseline, `BENCH_FRAMES` for `cargo bench`/CI smoke).
#[must_use]
pub fn shapes(frames: usize) -> Vec<Shape> {
    shapes_with(&[8, 32], frames)
}

/// The roster over explicit fleet sizes (tests use tiny ones).
#[must_use]
pub fn shapes_with(fleet_sizes: &[usize], frames: usize) -> Vec<Shape> {
    let mut out = Vec::new();
    let presets = [
        (NetworkPreset::WiFi, "wifi"),
        (NetworkPreset::Early5G, "5g"),
    ];
    let steppings = [
        (SteppingPolicy::RoundRobin, "rr"),
        (SteppingPolicy::VirtualTime, "vt"),
    ];
    for &(preset, pname) in &presets {
        for &n in fleet_sizes {
            for &(stepping, sname) in &steppings {
                out.push(Shape {
                    name: format!("fig_fleet/n{n}/{pname}/{sname}"),
                    family: "fig_fleet",
                    sessions: n,
                    frames,
                    run: Box::new(move || {
                        let mut config = FleetConfig::uniform(
                            SystemConfig::default().with_network(preset),
                            SchemeKind::Qvr,
                            Benchmark::Hl2H.profile(),
                            n,
                            frames,
                            SEED,
                        );
                        config.stepping = stepping;
                        let s = Fleet::run(config);
                        let stepped: usize = s.sessions.iter().map(|r| r.frames.len()).sum();
                        (s.len(), stepped, s.peak_live_tasks)
                    }),
                });
            }
        }
    }
    out.push(churn_shape(frames));
    for (policy, label) in [
        (
            ServerPolicy::QuotaPartition {
                reserved: crate::fig_sched::QUOTA_RESERVED,
            },
            "quota",
        ),
        (crate::fig_sched::measured_policy(), "measured"),
    ] {
        out.push(Shape {
            name: format!("fig_sched/mixed/wifi/{label}"),
            family: "fig_sched",
            sessions: crate::fig_sched::mixed_sessions().len(),
            frames,
            run: Box::new(move || {
                let config = crate::fig_sched::mixed_config(NetworkPreset::WiFi, policy, frames);
                let s = Fleet::run(config);
                let stepped: usize = s.sessions.iter().map(|r| r.frames.len()).sum();
                (s.len(), stepped, s.peak_live_tasks)
            }),
        });
    }
    out.push(shard_shape(frames));
    out.push(rate_shape(frames));
    out
}

/// The closed-loop rate-control shape: an 8-session Q-VR fleet with the
/// per-tenant controller on — the fleet hot loop plus the entropy-model
/// evaluation and controller step every frame (the content-true rate
/// path's stepping cost relative to `fig_fleet/n8/wifi/rr`).
fn rate_shape(frames: usize) -> Shape {
    Shape {
        name: "fig_rate/n8/wifi/rc_on".to_owned(),
        family: "fig_rate",
        sessions: 8,
        frames,
        run: Box::new(move || {
            let config = FleetConfig::uniform(
                SystemConfig::default().with_rate_control(RateControlConfig::on()),
                SchemeKind::Qvr,
                Benchmark::Hl2H.profile(),
                8,
                frames,
                SEED,
            );
            let s = Fleet::run(config);
            let stepped: usize = s.sessions.iter().map(|r| r.frames.len()).sum();
            (s.len(), stepped, s.peak_live_tasks)
        }),
    }
}

/// The sharded-cell shape: 8 cells × 8 Q-VR sessions routed, run on the
/// worker pool, and merged through the telemetry seam (the fig_shard
/// sweep's configuration at perf-harness size).
fn shard_shape(frames: usize) -> Shape {
    const CELLS: usize = 8;
    const PER_CELL: usize = 8;
    Shape {
        name: "fig_shard/c8x8/wifi/retire300".to_owned(),
        family: "fig_shard",
        sessions: CELLS * PER_CELL,
        frames,
        run: Box::new(move || {
            let spec = |i: usize| {
                let apps = [
                    Benchmark::Hl2H,
                    Benchmark::Doom3H,
                    Benchmark::Wolf,
                    Benchmark::Ut3,
                ];
                SessionSpec::new(SchemeKind::Qvr, apps[i % apps.len()].profile())
            };
            let mut template = FleetConfig::uniform(
                SystemConfig::default(),
                SchemeKind::Qvr,
                Benchmark::Hl2H.profile(),
                1,
                frames,
                SEED,
            );
            template.server_units = 4;
            template.link_streams = 2;
            template.retire_window_ms = Some(300.0);
            let s = Shard::run(ShardConfig::new(
                template,
                CELLS,
                PER_CELL,
                (0..CELLS * PER_CELL).map(spec).collect(),
            ));
            (s.sessions, s.frames, s.peak_live_tasks)
        }),
    }
}

/// The Poisson-churn shape: adaptive tenants, exponential holds, weighted
/// fairness, and 300 ms windowed retirement (the fig_churn sweep's
/// bounded-memory configuration, minus the admission probes — throughput
/// here should measure stepping, not calibration fleets).
fn churn_shape(frames: usize) -> Shape {
    let horizon_ms = frames as f64 * 20.0;
    Shape {
        name: "fig_churn/poisson/wifi/retire300".to_owned(),
        family: "fig_churn",
        sessions: 2,
        frames,
        run: Box::new(move || {
            let adaptive = |i: usize| {
                let apps = [
                    Benchmark::Hl2H,
                    Benchmark::Doom3H,
                    Benchmark::Wolf,
                    Benchmark::Ut3,
                ];
                SessionSpec::new(SchemeKind::Qvr, apps[i % apps.len()].profile())
            };
            let system = SystemConfig::default();
            let initial = vec![adaptive(0), adaptive(1)];
            let trace = ChurnTrace::poisson(
                SEED,
                6.0,
                0.35 * horizon_ms,
                horizon_ms,
                initial.len(),
                adaptive,
            );
            let mut config = ChurnConfig::new(system, initial, trace, horizon_ms, SEED)
                .with_fairness(FairnessPolicy::Weighted)
                .with_retire_window_ms(300.0);
            config.server_units = 8;
            config.link_streams = 4;
            let s = ChurnFleet::run(config);
            let stepped: usize = s.tenants.iter().map(|t| t.summary.frames.len()).sum();
            (s.len(), stepped, s.peak_live_per_resource)
        }),
    }
}

/// One shape's entry in the JSON document: the current (`after`)
/// measurement, plus the pre-optimization (`before`) measurement when the
/// run was given one to embed.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeReport {
    /// Shape identifier (stable across PRs).
    pub name: String,
    /// Shape family.
    pub family: String,
    /// The current measurement.
    pub after: Measurement,
    /// The embedded pre-optimization measurement, if any.
    pub before: Option<Measurement>,
}

impl ShapeReport {
    /// `after / before` sessions-stepped/sec ratio, when a before exists.
    #[must_use]
    pub fn speedup(&self) -> Option<f64> {
        self.before
            .map(|b| self.after.sessions_stepped_per_sec / b.sessions_stepped_per_sec.max(1e-12))
    }
}

fn write_measurement(out: &mut String, key: &str, m: &Measurement, indent: &str) {
    let _ = writeln!(out, "{indent}\"{key}\": {{");
    let _ = writeln!(out, "{indent}  \"iters\": {},", m.iters);
    let _ = writeln!(out, "{indent}  \"sessions\": {},", m.sessions);
    let _ = writeln!(out, "{indent}  \"frames\": {},", m.frames);
    let _ = writeln!(out, "{indent}  \"peak_live_tasks\": {},", m.peak_live_tasks);
    let _ = writeln!(
        out,
        "{indent}  \"median_iter_ms\": {:.3},",
        m.median_iter_ms
    );
    let _ = writeln!(
        out,
        "{indent}  \"sessions_stepped_per_sec\": {:.3},",
        m.sessions_stepped_per_sec
    );
    let _ = writeln!(
        out,
        "{indent}  \"frames_stepped_per_sec\": {:.3}",
        m.frames_stepped_per_sec
    );
    let _ = write!(out, "{indent}}}");
}

/// Renders the schema-stable JSON document (key order is fixed; the
/// line-based reader in [`parse_reports`] and the CI diff depend on it).
#[must_use]
pub fn to_json(frames: usize, reports: &[ShapeReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
    out.push_str("  \"benchmark\": \"qvr-perf-trajectory\",\n");
    let _ = writeln!(out, "  \"frames_per_session\": {frames},");
    out.push_str("  \"shapes\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(out, "      \"family\": \"{}\",", r.family);
        match &r.before {
            Some(b) => {
                write_measurement(&mut out, "before", b, "      ");
                out.push_str(",\n");
            }
            None => out.push_str("      \"before\": null,\n"),
        }
        write_measurement(&mut out, "after", &r.after, "      ");
        out.push_str(",\n");
        match r.speedup() {
            Some(s) => {
                let _ = writeln!(out, "      \"speedup\": {s:.3}");
            }
            None => out.push_str("      \"speedup\": null\n"),
        }
        out.push_str(if i + 1 < reports.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn parse_key_f64(line: &str) -> Option<f64> {
    line.split(':')
        .nth(1)?
        .trim()
        .trim_end_matches(',')
        .parse()
        .ok()
}

fn parse_key_usize(line: &str) -> Option<usize> {
    line.split(':')
        .nth(1)?
        .trim()
        .trim_end_matches(',')
        .parse()
        .ok()
}

fn parse_key_str(line: &str) -> Option<String> {
    let v = line.split(':').nth(1)?.trim().trim_end_matches(',');
    Some(v.trim_matches('"').to_owned())
}

/// Reads a document produced by [`to_json`] back into shape reports (a
/// line-based reader over the emitter's fixed layout — the build
/// environment has no JSON dependency). Returns the schema version and the
/// reports. `None` when the text doesn't look like a perf-trajectory
/// document at all.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn parse_reports(text: &str) -> Option<(u32, Vec<ShapeReport>)> {
    let mut schema = None;
    let mut reports = Vec::new();
    let mut name: Option<String> = None;
    let mut family = String::new();
    let mut before: Option<Measurement> = None;
    let mut after: Option<Measurement> = None;
    // Which measurement block the cursor is inside, if any.
    let mut block: Option<&str> = None;
    let mut cur = Measurement {
        iters: 0,
        sessions: 0,
        frames: 0,
        median_iter_ms: 0.0,
        sessions_stepped_per_sec: 0.0,
        frames_stepped_per_sec: 0.0,
        peak_live_tasks: 0,
    };
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("\"schema_version\"") {
            schema = parse_key_usize(t).map(|v| v as u32);
        } else if t.starts_with("\"name\"") {
            name = parse_key_str(t);
            family.clear();
            before = None;
            after = None;
        } else if t.starts_with("\"family\"") {
            family = parse_key_str(t).unwrap_or_default();
        } else if t.starts_with("\"before\": {") {
            block = Some("before");
        } else if t.starts_with("\"after\": {") {
            block = Some("after");
        } else if block.is_some() {
            if t.starts_with("\"iters\"") {
                cur.iters = parse_key_usize(t)?;
            } else if t.starts_with("\"sessions_stepped_per_sec\"") {
                cur.sessions_stepped_per_sec = parse_key_f64(t)?;
            } else if t.starts_with("\"frames_stepped_per_sec\"") {
                cur.frames_stepped_per_sec = parse_key_f64(t)?;
            } else if t.starts_with("\"sessions\"") {
                cur.sessions = parse_key_usize(t)?;
            } else if t.starts_with("\"frames\"") {
                cur.frames = parse_key_usize(t)?;
            } else if t.starts_with("\"peak_live_tasks\"") {
                cur.peak_live_tasks = parse_key_usize(t)?;
            } else if t.starts_with("\"median_iter_ms\"") {
                cur.median_iter_ms = parse_key_f64(t)?;
            } else if t.starts_with('}') {
                match block {
                    Some("before") => before = Some(cur),
                    _ => after = Some(cur),
                }
                block = None;
            }
        } else if t.starts_with("\"speedup\"") {
            // The last key of an entry: flush it.
            if let (Some(n), Some(a)) = (name.take(), after.take()) {
                reports.push(ShapeReport {
                    name: n,
                    family: family.clone(),
                    after: a,
                    before: before.take(),
                });
            }
        }
    }
    schema.map(|s| (s, reports))
}

/// Renders the human-readable throughput table for a set of reports.
#[must_use]
pub fn render_table(reports: &[ShapeReport]) -> String {
    let mut t = crate::TextTable::new(vec![
        "shape",
        "sessions",
        "frames",
        "median iter",
        "sessions/s",
        "frames/s",
        "peak live",
        "speedup",
    ]);
    for r in reports {
        t.row(vec![
            r.name.clone(),
            format!("{}", r.after.sessions),
            format!("{}", r.after.frames),
            format!("{:.1} ms", r.after.median_iter_ms),
            format!("{:.2}", r.after.sessions_stepped_per_sec),
            format!("{:.0}", r.after.frames_stepped_per_sec),
            format!("{}", r.after.peak_live_tasks),
            match r.speedup() {
                Some(s) => format!("{s:.2}x"),
                None => "-".to_owned(),
            },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(name: &str, rate: f64, with_before: bool) -> ShapeReport {
        let m = |r: f64| Measurement {
            iters: 3,
            sessions: 8,
            frames: 240,
            median_iter_ms: 125.5,
            sessions_stepped_per_sec: r,
            frames_stepped_per_sec: 30.0 * r,
            peak_live_tasks: 1920,
        };
        ShapeReport {
            name: name.to_owned(),
            family: "fig_fleet".to_owned(),
            after: m(rate),
            before: with_before.then(|| m(rate / 4.0)),
        }
    }

    #[test]
    fn json_round_trips_through_the_line_reader() {
        let reports = vec![
            fake("fig_fleet/n8/wifi/rr", 64.0, true),
            fake("fig_fleet/n8/wifi/vt", 48.0, false),
        ];
        let json = to_json(30, &reports);
        let (schema, parsed) = parse_reports(&json).expect("parses");
        assert_eq!(schema, SCHEMA_VERSION);
        assert_eq!(parsed, reports);
        assert!(json.contains("\"speedup\": 4.000"));
        assert!(json.contains("\"speedup\": null"));
        assert!(json.contains("\"before\": null"));
        assert!(json.contains("\"peak_live_tasks\": 1920"));
    }

    #[test]
    fn garbage_does_not_parse() {
        assert!(parse_reports("not json at all").is_none());
        assert!(parse_reports("").is_none());
    }

    #[test]
    fn tiny_shapes_run_and_measure() {
        // A miniature roster: 2-session fleets, 3 frames. This exercises
        // every family's build path without the full sweep's cost.
        let shapes = shapes_with(&[2], 3);
        // 1 size x 2 networks x 2 stepping policies, + churn, + 2 sched,
        // + shard, + rate control.
        assert_eq!(shapes.len(), 2 * 2 + 1 + 2 + 1 + 1);
        let fleet = &shapes[0];
        assert!(fleet.name.starts_with("fig_fleet/n2/"));
        let m = measure(fleet, 1);
        assert_eq!(m.sessions, 2);
        assert_eq!(m.frames, 6);
        assert!(m.sessions_stepped_per_sec > 0.0);
        assert!(m.frames_stepped_per_sec > 0.0);
        assert!(m.peak_live_tasks > 0, "fleets retain live schedule state");
        let churn = shapes.iter().find(|s| s.family == "fig_churn").unwrap();
        let (sessions, frames, _) = churn.run_once();
        assert!(sessions >= 2, "initial tenants always run");
        assert!(frames > 0);
        let sched = shapes.iter().find(|s| s.family == "fig_sched").unwrap();
        let (sessions, _, peak) = sched.run_once();
        assert_eq!(sessions, 8, "the mixed roster is 8 tenants");
        assert!(peak > 0);
    }

    #[test]
    fn table_renders_rates() {
        let s = render_table(&[fake("fig_fleet/n8/wifi/rr", 64.0, true)]);
        assert!(s.contains("sessions/s"));
        assert!(s.contains("4.00x"));
    }
}
