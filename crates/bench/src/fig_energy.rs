//! Fleet energy sweep: energy per delivered frame across session counts ×
//! networks × server scheduling policies.
//!
//! Closes the ROADMAP's fleet-energy item through the telemetry stack: the
//! `EnergyMeter` sink streams per-frame server busy attribution (render +
//! encode ms × `ServerPowerModel`), access-point activity (`ApPowerModel`),
//! and folds in every headset's own energy at finalisation — reported on
//! `FleetSummary.energy`. This sweep scales a mixed roster 1→32 sessions on
//! the default 8-GPU server over Wi-Fi / 4G LTE / early 5G under three
//! placement policies, and reports millijoules **per delivered frame**
//! (total fleet energy over total frames displayed).
//!
//! Expected shape: per-frame infrastructure energy *falls* with session
//! count while the pool amortises its idle floor (Wi-Fi server mJ/frame:
//! ~1500 at 1 session → ~490 at 4), then *climbs back up* past pool
//! capacity — oversubscription stretches every schedule and the idle
//! floor grows with the makespan (~1050 at 16, ~1430 at 32), so the
//! energy-per-frame sweet spot sits right at pool capacity; total fleet
//! energy grows monotonically with the session count throughout.
//! Placement policies shift the
//! numbers measurably wherever they change queueing — a policy that
//! stretches the fleet's makespan pays for it in idle-floor energy, and
//! adaptive tenants that re-balance under contention shift work (and
//! joules) between the server pool, the link, and their own GPUs.

use crate::fig_sched::measured_policy;
use crate::{TextTable, SEED};
use qvr::prelude::*;
use qvr::scene::Benchmark;

/// Frames per session (shorter than fig_fleet's rows: the 32-session cells
/// dominate the sweep's runtime).
pub const ENERGY_FRAMES: usize = 96;

/// The session counts swept, 1→32 around the 8-unit pool.
pub const ENERGY_SIZES: [usize; 4] = [1, 4, 16, 32];

/// The placement policies compared (the priority policy adds nothing
/// energy-specific over quota; measured-load is the PR 5 addition).
#[must_use]
pub fn policies() -> [ServerPolicy; 3] {
    [
        ServerPolicy::LeastLoaded,
        ServerPolicy::QuotaPartition { reserved: 6 },
        measured_policy(),
    ]
}

/// The first `n` tenants of a repeating mixed pattern (adaptive-heavy,
/// like a real cell: Q-VR majority with a DFR user, an FFR user, and two
/// noisy non-adaptive tenants per 8).
#[must_use]
pub fn roster(n: usize) -> Vec<SessionSpec> {
    let pattern: [(SchemeKind, Benchmark); 8] = [
        (SchemeKind::Qvr, Benchmark::Grid),
        (SchemeKind::Qvr, Benchmark::Doom3L),
        (SchemeKind::Dfr, Benchmark::Hl2H),
        (SchemeKind::Ffr, Benchmark::Hl2L),
        (SchemeKind::Qvr, Benchmark::Ut3),
        (SchemeKind::StaticCollab, Benchmark::Doom3H),
        (SchemeKind::Qvr, Benchmark::Wolf),
        (SchemeKind::RemoteOnly, Benchmark::Wolf),
    ];
    (0..n)
        .map(|i| {
            let (scheme, bench) = pattern[i % pattern.len()];
            SessionSpec::new(scheme, bench.profile())
        })
        .collect()
}

/// The sweep's fleet config for one `(preset, policy, n)` cell.
#[must_use]
pub fn energy_config(
    preset: NetworkPreset,
    policy: ServerPolicy,
    n: usize,
    frames: usize,
) -> FleetConfig {
    let units = SystemConfig::default().remote.count() as usize;
    FleetConfig {
        system: SystemConfig::default().with_network(preset),
        sessions: roster(n),
        frames,
        seed: SEED,
        server_units: units,
        shared_network: true,
        link_streams: units,
        fairness: FairnessPolicy::EqualShare,
        server_policy: policy,
        stepping: SteppingPolicy::RoundRobin,
        retire_window_ms: None,
        telemetry: TelemetryConfig::default(),
    }
}

/// Regenerates the fleet energy sweep.
#[must_use]
pub fn report() -> String {
    report_with(&ENERGY_SIZES, ENERGY_FRAMES)
}

/// The sweep over explicit sizes and frames (the unit test runs a
/// miniature version; `report` and the CI smoke step run the full one).
fn report_with(sizes: &[usize], frames: usize) -> String {
    let mut configs = Vec::new();
    for preset in NetworkPreset::all() {
        for &n in sizes {
            for policy in policies() {
                configs.push(energy_config(preset, policy, n, frames));
            }
        }
    }
    let results = Fleet::run_many(configs);

    let mut out = String::new();
    out.push_str(&format!(
        "Fleet energy — mixed roster × {} sessions × 3 placement policies, mJ per \
         delivered frame\n",
        sizes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join("/"),
    ));
    out.push_str(
        "server = pool render+encode active energy + idle floor; AP = access-point\n\
         radio active + idle; client = every headset's own GPU/radio/decoder/\n\
         accelerators. Per-frame infrastructure energy amortises with the crowd\n\
         (the idle floor splits across more frames) and placement shifts it\n\
         wherever queueing stretches the schedule.\n\n",
    );

    let cells_per_preset = sizes.len() * policies().len();
    for (preset, preset_results) in NetworkPreset::all()
        .iter()
        .zip(results.chunks(cells_per_preset))
    {
        let mut t = TextTable::new(vec![
            "sessions",
            "policy",
            "server mJ/f",
            "AP mJ/f",
            "client mJ/f",
            "total mJ/f",
            "fleet J",
            "p95 MTP",
        ]);
        let mut cell = preset_results.iter();
        for &n in sizes {
            for policy in policies() {
                let s = cell.next().expect("one result per cell");
                let frames_delivered: usize = s.sessions.iter().map(RunSummary::len).sum();
                let per = |mj: f64| mj / frames_delivered as f64;
                t.row(vec![
                    format!("{n}"),
                    policy.label(),
                    format!("{:.1}", per(s.energy.server_mj())),
                    format!("{:.1}", per(s.energy.ap_radio_mj)),
                    format!("{:.1}", per(s.energy.client_mj)),
                    format!("{:.1}", per(s.energy.total_mj())),
                    format!("{:.1}", s.energy.total_mj() / 1_000.0),
                    format!("{:.1} ms", s.mtp_p95_ms),
                ]);
            }
        }
        out.push_str(&format!("{preset}\n"));
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_the_sweep() {
        let r = report_with(&[1, 2], 8);
        assert!(r.contains("Wi-Fi"));
        assert!(r.contains("4G LTE"));
        assert!(r.contains("Early 5G"));
        assert!(r.contains("least-loaded"));
        assert!(r.contains("quota(res=6)"));
        assert!(r.contains("measured(res=6,heavy=8ms)"));
        assert!(r.contains("total mJ/f"));
    }

    #[test]
    fn fleet_energy_grows_with_session_count() {
        // The acceptance shape at miniature scale: total fleet energy must
        // grow with the session count on every preset (more tenants → more
        // server busy, more link activity, more headsets burning).
        for preset in NetworkPreset::all() {
            let small = Fleet::run(energy_config(preset, ServerPolicy::LeastLoaded, 2, 12));
            let big = Fleet::run(energy_config(preset, ServerPolicy::LeastLoaded, 8, 12));
            assert!(
                big.energy.total_mj() > small.energy.total_mj(),
                "{preset}: 8 sessions must burn more than 2: {:.0} vs {:.0} mJ",
                big.energy.total_mj(),
                small.energy.total_mj()
            );
            assert!(big.energy.server_render_mj > small.energy.server_render_mj);
            assert!(big.energy.client_mj > small.energy.client_mj);
        }
    }
}
