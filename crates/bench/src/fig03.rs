//! Fig. 3: the motivation study — latency breakdown and FPS of local-only
//! and remote-only rendering for the five characterization apps.

use crate::{TextTable, FRAMES, SEED};
use qvr::prelude::*;

/// Regenerates both halves of Fig. 3.
#[must_use]
pub fn report() -> String {
    let config = SystemConfig {
        gpu: GpuConfig::gen9_class(),
        ..SystemConfig::default()
    };
    let mut out = String::new();

    out.push_str("Fig. 3(a) — local-only rendering (Gen9-class mobile GPU)\n");
    out.push_str("paper: latencies 40-130 ms, FPS 8-17, GPU is the bottleneck\n\n");
    let mut t = TextTable::new(vec![
        "app", "tracking", "render", "ATW", "display", "total ms", "FPS",
    ]);
    for app in CharacterizationApp::all() {
        let s = SchemeKind::LocalOnly.run(&config, app.profile(), FRAMES, SEED);
        let atw = mean(&s, |f| f.t_local_ms) - render_only(&s, &config);
        t.row(vec![
            app.label().to_owned(),
            format!("{:.1}", config.tracking_ms),
            format!("{:.1}", render_only(&s, &config)),
            format!("{atw:.1}"),
            format!("{:.1}", config.display_ms),
            format!("{:.1}", s.mean_mtp_ms()),
            format!("{:.0}", s.fps()),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nFig. 3(b) — remote-only rendering (8x MCM server, Wi-Fi)\n");
    out.push_str("paper: latencies 40-65 ms, transmission ~63% of total\n\n");
    let mut t = TextTable::new(vec![
        "app",
        "tracking",
        "send+render+transmit+decode",
        "ATW",
        "display",
        "total ms",
        "FPS",
        "remote share",
    ]);
    for app in CharacterizationApp::all() {
        let s = SchemeKind::RemoteOnly.run(&config, app.profile(), FRAMES, SEED);
        let remote = mean(&s, |f| f.t_remote_ms);
        let atw = mean(&s, |f| f.t_local_ms);
        let share = remote / s.mean_mtp_ms();
        t.row(vec![
            app.label().to_owned(),
            format!("{:.1}", config.tracking_ms),
            format!("{remote:.1}"),
            format!("{atw:.1}"),
            format!("{:.1}", config.display_ms),
            format!("{:.1}", s.mean_mtp_ms()),
            format!("{:.0}", s.fps()),
            format!("{:.0}%", share * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out
}

fn mean(s: &RunSummary, f: impl Fn(&FrameRecord) -> f64) -> f64 {
    s.frames.iter().map(f).sum::<f64>() / s.frames.len() as f64
}

fn render_only(s: &RunSummary, config: &SystemConfig) -> f64 {
    // t_local for the local scheme is render + ATW; subtract the modelled
    // ATW pass to split the bar.
    let atw = GpuTimingModel::new(config.gpu).fullscreen_pass_ms(1920.0 * 2160.0 * 2.0, 5.0);
    mean(s, |f| f.t_local_ms) - atw
}
