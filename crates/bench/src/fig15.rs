//! Fig. 15: normalised system energy of Q-VR across GPU frequencies and
//! network technologies.

use crate::{parallel_map, TextTable, FRAMES, SEED};
use qvr::prelude::*;

/// Regenerates Fig. 15.
///
/// Energy is normalised per frame: Q-VR's total system energy divided by
/// the local-rendering baseline's at the same GPU frequency.
#[must_use]
pub fn report() -> String {
    let freqs = [500.0, 400.0, 300.0];
    let presets = NetworkPreset::all();

    // Baselines per frequency.
    let baselines = parallel_map(freqs.to_vec(), |f| {
        let config = SystemConfig::default().with_gpu_frequency_mhz(*f);
        Benchmark::all()
            .map(|b| {
                let s = SchemeKind::LocalOnly.run(&config, b.profile(), FRAMES, SEED);
                s.energy.total_mj() / s.len() as f64
            })
            .to_vec()
    });

    let mut jobs = Vec::new();
    for f in freqs {
        for p in presets {
            for b in Benchmark::all() {
                jobs.push((f, p, b));
            }
        }
    }
    let results = parallel_map(jobs.clone(), |(f, p, b)| {
        let config = SystemConfig::default()
            .with_gpu_frequency_mhz(*f)
            .with_network(*p);
        let s = SchemeKind::Qvr.run(&config, b.profile(), FRAMES, SEED);
        s.energy.total_mj() / s.len() as f64
    });

    let mut out = String::new();
    out.push_str("Fig. 15 — Q-VR system energy normalised to local rendering (same GPU clock)\n");
    out.push_str("paper: avg 73% reduction; higher bandwidth improves efficiency;\n");
    out.push_str("lower clocks do not always help (static energy stretch); some\n");
    out.push_str("300 MHz points exceed 1.0 (paper annotates 1.24 / 1.09)\n\n");

    let mut t = TextTable::new(vec![
        "freq", "network", "D3H", "D3L", "H2H", "H2L", "GD", "UT3", "WF", "avg",
    ]);
    let mut grand_sum = 0.0;
    let mut grand_n = 0.0;
    for (fi, f) in freqs.iter().enumerate() {
        for p in presets {
            let mut cells = vec![format!("{f:.0} MHz"), p.label().to_owned()];
            let mut row_sum = 0.0;
            for (bi, b) in Benchmark::all().iter().enumerate() {
                let idx = jobs
                    .iter()
                    .position(|j| j.0 == *f && j.1 == p && j.2 == *b)
                    .expect("job exists");
                let ratio = results[idx] / baselines[fi][bi];
                row_sum += ratio;
                cells.push(format!("{ratio:.2}"));
            }
            let n = Benchmark::all().len() as f64;
            cells.push(format!("{:.2}", row_sum / n));
            grand_sum += row_sum;
            grand_n += n;
            t.row(cells);
        }
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\noverall mean normalised energy: {:.2} (paper ≈ 0.27, i.e. 73% reduction)\n",
        grand_sum / grand_n
    ));
    out
}
