//! Ablations beyond the paper's headline results (DESIGN.md §6): the
//! design choices Q-VR's sections argue for, each toggled in isolation.

use crate::{parallel_map, TextTable, FRAMES, SEED, WARMUP};
use qvr::prelude::*;

/// Regenerates the ablation suite.
#[must_use]
pub fn report() -> String {
    let mut out = String::new();
    out.push_str(&alpha_sweep());
    out.push('\n');
    out.push_str(&uca_units());
    out.push('\n');
    out.push_str(&prefetch_lookahead());
    out
}

/// LIWC reward-rate α: convergence speed vs steady-state stability.
fn alpha_sweep() -> String {
    let alphas = [0.05, 0.15, 0.3, 0.6, 0.9];
    let results = parallel_map(alphas.to_vec(), |alpha| {
        let config = SystemConfig {
            liwc_reward_alpha: *alpha,
            ..SystemConfig::default()
        };
        let s = SchemeKind::Qvr.run(&config, Benchmark::Hl2H.profile(), FRAMES, SEED);
        // Convergence: first frame whose ratio enters [0.8, 1.25] for good.
        let converged = (0..s.frames.len())
            .find(|&i| {
                s.frames[i..]
                    .iter()
                    .take(20)
                    .all(|f| (0.7..1.4).contains(&f.latency_ratio()))
            })
            .unwrap_or(s.frames.len());
        let tail: Vec<f64> = s
            .frames
            .iter()
            .skip(WARMUP)
            .map(|f| f.latency_ratio())
            .collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let sd = (tail.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / tail.len() as f64).sqrt();
        (converged, mean, sd, s.fps())
    });

    let mut t = TextTable::new(vec![
        "reward α",
        "frames to converge",
        "steady ratio",
        "ratio σ",
        "FPS",
    ]);
    for (alpha, (conv, mean, sd, fps)) in alphas.iter().zip(results) {
        t.row(vec![
            format!("{alpha}"),
            format!("{conv}"),
            format!("{mean:.2}"),
            format!("{sd:.3}"),
            format!("{fps:.0}"),
        ]);
    }
    format!(
        "Ablation — LIWC reward rate α (HL2-H, Wi-Fi)\n\
         low α learns slowly; high α chases noise\n\n{}",
        t.render()
    )
}

/// UCA unit count and the value of the off-GPU offload.
fn uca_units() -> String {
    let configs: Vec<(String, SystemConfig)> = vec![
        ("no UCA (DFR)".into(), SystemConfig::default()),
        ("1 unit".into(), with_uca_units(1)),
        ("2 units (paper)".into(), with_uca_units(2)),
        ("4 units".into(), with_uca_units(4)),
    ];
    let results = parallel_map(configs, |(name, config)| {
        let scheme = if name.starts_with("no UCA") {
            SchemeKind::Dfr
        } else {
            SchemeKind::Qvr
        };
        let s = scheme.run(config, Benchmark::Wolf.profile(), FRAMES, SEED);
        (
            name.clone(),
            s.mean_mtp_ms(),
            s.fps(),
            s.busy.gpu_ms / s.makespan_ms,
        )
    });
    let mut t = TextTable::new(vec!["configuration", "MTP ms", "FPS", "GPU util"]);
    for (name, mtp, fps, util) in results {
        t.row(vec![
            name,
            format!("{mtp:.1}"),
            format!("{fps:.0}"),
            format!("{:.0}%", util * 100.0),
        ]);
    }
    format!(
        "Ablation — UCA unit count (Wolf)\n\
         the second unit halves the pass; beyond that the pass is off the\n\
         critical path and more units stop mattering\n\n{}",
        t.render()
    )
}

fn with_uca_units(units: u32) -> SystemConfig {
    let mut config = SystemConfig::default();
    config.uca_timing.overhead.units = units;
    config
}

/// Static prefetch look-ahead: deeper prediction hides more latency but
/// mispredicts more.
fn prefetch_lookahead() -> String {
    let lookaheads = [1u32, 3, 5, 8];
    let results = parallel_map(lookaheads.to_vec(), |l| {
        let config = SystemConfig {
            prefetch_lookahead: *l,
            ..SystemConfig::default()
        };
        let s = SchemeKind::StaticCollab.run(&config, Benchmark::Ut3.profile(), FRAMES, SEED);
        (s.mean_mtp_ms(), s.misprediction_rate(), s.fps())
    });
    let mut t = TextTable::new(vec!["look-ahead", "MTP ms", "misprediction", "FPS"]);
    for (l, (mtp, miss, fps)) in lookaheads.iter().zip(results) {
        t.row(vec![
            format!("{l} frames"),
            format!("{mtp:.1}"),
            format!("{:.0}%", miss * 100.0),
            format!("{fps:.0}"),
        ]);
    }
    format!(
        "Ablation — static prefetch look-ahead (UT3)\n\
         the paper's Challenge II: predicting >30 ms ahead loses accuracy\n\n{}",
        t.render()
    )
}
