//! Fig. 12: normalised end-to-end performance and frame-rate improvement of
//! every design point over the local-rendering baseline.

use crate::{parallel_map, TextTable, FRAMES, SEED};
use qvr::prelude::*;

/// Regenerates Fig. 12.
#[must_use]
pub fn report() -> String {
    let config = SystemConfig::default();
    let schemes = [
        SchemeKind::StaticCollab,
        SchemeKind::Ffr,
        SchemeKind::Dfr,
        SchemeKind::QvrSw,
        SchemeKind::Qvr,
    ];

    // (benchmark, scheme) matrix, run in parallel.
    let mut jobs = Vec::new();
    for bench in Benchmark::all() {
        jobs.push((bench, SchemeKind::LocalOnly));
        for s in schemes {
            jobs.push((bench, s));
        }
    }
    let results = parallel_map(jobs.clone(), |(bench, scheme)| {
        scheme.run(&config, bench.profile(), FRAMES, SEED)
    });
    let get = |bench: Benchmark, scheme: SchemeKind| -> &RunSummary {
        let idx = jobs
            .iter()
            .position(|j| j.0 == bench && j.1 == scheme)
            .expect("job exists");
        &results[idx]
    };

    let mut out = String::new();
    out.push_str("Fig. 12 — normalised performance over the local baseline\n");
    out.push_str("paper: FFR ~1.75x avg (up to 5.6x), DFR ~1.1x over FFR,\n");
    out.push_str("Q-VR 3.4x avg (up to 6.7x); FPS: Q-VR = 4.1x Static, 2.8x SW\n\n");

    let mut t = TextTable::new(vec![
        "benchmark",
        "Static",
        "FFR",
        "DFR",
        "Q-VR-SW",
        "Q-VR",
        "SW-FPS",
        "Q-VR-FPS",
    ]);
    let mut sums = [0.0f64; 7];
    let mut qvr_max: f64 = 0.0;
    for bench in Benchmark::all() {
        let base = get(bench, SchemeKind::LocalOnly);
        let speedup = |s: SchemeKind| base.mean_mtp_ms() / get(bench, s).mean_mtp_ms();
        let fps_x = |s: SchemeKind| get(bench, s).fps() / base.fps();
        let row = [
            speedup(SchemeKind::StaticCollab),
            speedup(SchemeKind::Ffr),
            speedup(SchemeKind::Dfr),
            speedup(SchemeKind::QvrSw),
            speedup(SchemeKind::Qvr),
            fps_x(SchemeKind::QvrSw),
            fps_x(SchemeKind::Qvr),
        ];
        qvr_max = qvr_max.max(row[4]);
        for (acc, v) in sums.iter_mut().zip(row) {
            *acc += v;
        }
        let mut cells = vec![bench.label().to_owned()];
        cells.extend(row.iter().map(|v| format!("{v:.2}x")));
        t.row(cells);
    }
    let n = Benchmark::all().len() as f64;
    let mut cells = vec!["Avg.".to_owned()];
    cells.extend(sums.iter().map(|v| format!("{:.2}x", v / n)));
    t.row(cells);
    out.push_str(&t.render());

    let qvr_fps_avg = sums[6] / n;
    let sw_fps_avg = sums[5] / n;
    let static_fps_avg: f64 = Benchmark::all()
        .iter()
        .map(|b| get(*b, SchemeKind::StaticCollab).fps() / get(*b, SchemeKind::LocalOnly).fps())
        .sum::<f64>()
        / n;
    out.push_str(&format!(
        "\nQ-VR avg speedup {:.2}x (paper 3.4x), max {:.2}x (paper 6.7x)\n",
        sums[4] / n,
        qvr_max
    ));
    out.push_str(&format!(
        "Q-VR FPS vs Static: {:.1}x (paper 4.1x); vs software impl: {:.1}x (paper 2.8x)\n",
        qvr_fps_avg / static_fps_avg,
        qvr_fps_avg / sw_fps_avg
    ));
    out
}
