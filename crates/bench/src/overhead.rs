//! Sec. 4.3: the hardware overhead analysis for LIWC and UCA.

use qvr::prelude::*;

/// Regenerates the Sec. 4.3 overhead discussion.
#[must_use]
pub fn report() -> String {
    let liwc = LiwcOverhead::published();
    let uca = UcaOverhead::published();
    let mut out = String::new();
    out.push_str("Sec. 4.3 — design overhead analysis (published McPAT figures, 45 nm)\n\n");
    out.push_str(&format!("{liwc}\n"));
    out.push_str(&format!(
        "  table: {} entries x {} bit = {} KB (consistent: {})\n",
        liwc.table_depth,
        liwc.entry_bits,
        liwc.sram_bytes / 1024,
        liwc.is_consistent()
    ));
    out.push_str("  selection latency: table lookup + Eq. (2) arithmetic — nanoseconds,\n");
    out.push_str("  fully hidden behind the CPU setup stage.\n\n");

    out.push_str(&format!("{uca}\n"));
    let stereo_ms = uca.stereo_frame_ms(1920, 2160);
    out.push_str(&format!(
        "  stereo 1920x2160 frame: {} tiles, {:.2} ms with {} units \
         (budget at 90 Hz: 11.1 ms) — sustains 90 Hz: {}\n",
        uca.tiles_per_stereo_frame(1920, 2160),
        stereo_ms,
        uca.units,
        uca.sustains(1920, 2160, 90.0)
    ));

    let power = PowerModel::default();
    out.push_str(&format!(
        "\nsystem-power context: GPU {:.1} W dynamic peak vs LIWC {:.0} mW + UCA 2x{:.0} mW\n",
        power.gpu_dynamic_peak_w,
        power.liwc_w * 1_000.0,
        power.uca_unit_w * 1_000.0,
    ));
    out.push_str(&format!(
        "added area: {:.2} mm² (LIWC) + 2 x {:.1} mm² (UCA) at 45 nm\n",
        liwc.area_mm2, uca.area_mm2
    ));
    out
}
