//! Regenerates the Sec. 4.3 overhead analysis. See qvr_bench::overhead.
fn main() {
    println!("{}", qvr_bench::overhead::report());
}
