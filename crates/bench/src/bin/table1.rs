//! Regenerates the paper's table1 artefact. See qvr_bench::table1.
fn main() {
    println!("{}", qvr_bench::table1::report());
}
