//! Regenerates the paper's fig13 artefact. See qvr_bench::fig13.
fn main() {
    println!("{}", qvr_bench::fig13::report());
}
