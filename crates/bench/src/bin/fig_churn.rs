//! Regenerates the session-churn sweep (dynamic-fleet extension).

fn main() {
    println!("{}", qvr_bench::fig_churn::report());
}
