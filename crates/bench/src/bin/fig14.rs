//! Regenerates the paper's fig14 artefact. See qvr_bench::fig14.
fn main() {
    println!("{}", qvr_bench::fig14::report());
}
