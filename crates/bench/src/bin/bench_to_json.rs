//! Runs the perf-trajectory shapes and emits a schema-stable
//! `BENCH_<n>.json` document (DESIGN.md §11).
//!
//! ```text
//! bench_to_json [--frames N] [--iters K] [--out FILE]
//!               [--before FILE] [--check FILE] [--warn-pct P]
//! ```
//!
//! * `--frames N`    per-session frame budget (default 120; CI uses 40)
//! * `--iters K`     timed iterations per shape after warm-up (default 3)
//! * `--out FILE`    write the JSON there (always printed to stdout too)
//! * `--before FILE` embed the `after` measurements of a previous document
//!   as this document's `before` values (per-shape speedup = after/before
//!   sessions-stepped/sec) — this is how a PR records its pre-optimization
//!   numbers next to its post-optimization ones
//! * `--check FILE`  CI mode: compare against the committed baseline.
//!   Schema drift (version or shape-roster mismatch) exits 2; a shape
//!   slower than `warn-pct`% of the baseline prints a warning but exits 0.
//! * `--warn-pct P`  warn threshold for `--check` (default 50, i.e. warn
//!   below half the baseline rate — CI machines are noisy)

use qvr_bench::perf;
use std::process::ExitCode;

struct Args {
    frames: usize,
    iters: usize,
    out: Option<String>,
    before: Option<String>,
    check: Option<String>,
    warn_pct: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        frames: perf::FULL_FRAMES,
        iters: perf::DEFAULT_ITERS,
        out: None,
        before: None,
        check: None,
        warn_pct: 50.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--frames" => args.frames = value("--frames")?.parse().map_err(|e| format!("{e}"))?,
            "--iters" => args.iters = value("--iters")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = Some(value("--out")?),
            "--before" => args.before = Some(value("--before")?),
            "--check" => args.check = Some(value("--check")?),
            "--warn-pct" => {
                args.warn_pct = value("--warn-pct")?.parse().map_err(|e| format!("{e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.iters == 0 || args.frames == 0 {
        return Err("--frames and --iters must be positive".to_owned());
    }
    Ok(args)
}

fn load_reports(path: &str) -> Result<(u32, Vec<perf::ShapeReport>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    perf::parse_reports(&text).ok_or(format!("{path} is not a perf-trajectory document"))
}

/// Compares a freshly measured document against the committed baseline.
/// Returns `Err` (exit 2) on schema drift, `Ok(warnings)` otherwise.
fn check(
    baseline: &(u32, Vec<perf::ShapeReport>),
    current: &[perf::ShapeReport],
    warn_pct: f64,
) -> Result<Vec<String>, String> {
    let (schema, base) = baseline;
    if *schema != perf::SCHEMA_VERSION {
        return Err(format!(
            "schema drift: baseline version {schema}, binary emits {}",
            perf::SCHEMA_VERSION
        ));
    }
    let base_names: Vec<&str> = base.iter().map(|r| r.name.as_str()).collect();
    let cur_names: Vec<&str> = current.iter().map(|r| r.name.as_str()).collect();
    if base_names != cur_names {
        return Err(format!(
            "schema drift: shape roster changed\n  baseline: {base_names:?}\n  current:  {cur_names:?}"
        ));
    }
    let mut warnings = Vec::new();
    for (b, c) in base.iter().zip(current) {
        let floor = b.after.sessions_stepped_per_sec * warn_pct / 100.0;
        if c.after.sessions_stepped_per_sec < floor {
            warnings.push(format!(
                "{}: {:.2} sessions/s is below {warn_pct}% of the baseline {:.2}",
                c.name, c.after.sessions_stepped_per_sec, b.after.sessions_stepped_per_sec
            ));
        }
    }
    Ok(warnings)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_to_json: {e}");
            return ExitCode::from(1);
        }
    };
    let before = match &args.before {
        Some(path) => match load_reports(path) {
            Ok((_, reports)) => reports,
            Err(e) => {
                eprintln!("bench_to_json: {e}");
                return ExitCode::from(1);
            }
        },
        None => Vec::new(),
    };

    let shapes = perf::shapes(args.frames);
    let mut reports = Vec::with_capacity(shapes.len());
    for shape in &shapes {
        eprintln!("measuring {} ...", shape.name);
        let after = perf::measure(shape, args.iters);
        let prior = before.iter().find(|b| b.name == shape.name);
        reports.push(perf::ShapeReport {
            name: shape.name.clone(),
            family: shape.family.to_owned(),
            after,
            before: prior.map(|b| b.after),
        });
    }

    let json = perf::to_json(args.frames, &reports);
    print!("{json}");
    eprint!("\n{}", perf::render_table(&reports));
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("bench_to_json: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
    }

    if let Some(path) = &args.check {
        let baseline = match load_reports(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_to_json: {e}");
                return ExitCode::from(2);
            }
        };
        match check(&baseline, &reports, args.warn_pct) {
            Err(drift) => {
                eprintln!("bench_to_json: {drift}");
                return ExitCode::from(2);
            }
            Ok(warnings) => {
                for w in &warnings {
                    eprintln!("bench_to_json: WARNING: {w}");
                }
                if warnings.is_empty() {
                    eprintln!("bench_to_json: all shapes within threshold of {path}");
                }
            }
        }
    }
    ExitCode::SUCCESS
}
