//! Regenerates the closed-loop rate-control sweep (content-true rate path).
//!
//! ```text
//! cargo run --release -p qvr-bench --bin fig_rate
//! ```

fn main() {
    println!("{}", qvr_bench::fig_rate::report());
}
