//! Regenerates the paper's fig15 artefact. See qvr_bench::fig15.
fn main() {
    println!("{}", qvr_bench::fig15::report());
}
