//! Regenerates the server scheduling policy sweep (mixed noisy-neighbour
//! fleet × networks × placement policies).

fn main() {
    println!("{}", qvr_bench::fig_sched::report());
}
