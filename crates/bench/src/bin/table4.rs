//! Regenerates the paper's table4 artefact. See qvr_bench::table4.
fn main() {
    println!("{}", qvr_bench::table4::report());
}
