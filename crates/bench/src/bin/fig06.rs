//! Regenerates the paper's fig06 artefact. See qvr_bench::fig06.
fn main() {
    println!("{}", qvr_bench::fig06::report());
}
