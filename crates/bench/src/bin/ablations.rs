//! Regenerates the ablation suite (DESIGN.md §6). See qvr_bench::ablations.
fn main() {
    println!("{}", qvr_bench::ablations::report());
}
