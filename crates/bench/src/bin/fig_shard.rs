//! Regenerates the sharded-cell sweep (the ≥100k-session run).
//!
//! ```text
//! cargo run --release -p qvr-bench --bin fig_shard [cells per_cell frames]
//! ```
//!
//! With no arguments this runs the full 3,200-cell × 32-session shape
//! (102,400 concurrent sessions); the CI smoke passes a miniature shape.

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("usage: fig_shard [cells per_cell frames]"))
        .collect();
    match args[..] {
        [] => println!("{}", qvr_bench::fig_shard::report()),
        [cells, per_cell, frames] => println!(
            "{}",
            qvr_bench::fig_shard::report_with(cells, per_cell, frames, &[1, 2, 4])
        ),
        _ => panic!("usage: fig_shard [cells per_cell frames]"),
    }
}
