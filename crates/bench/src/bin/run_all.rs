//! Regenerates every table and figure in one pass (the EXPERIMENTS.md data).
//!
//! ```text
//! cargo run --release -p qvr-bench --bin run_all
//! ```

type Section = (&'static str, fn() -> String);

fn main() {
    let sections: [Section; 16] = [
        ("Fig. 3 (motivation)", qvr_bench::fig03::report),
        (
            "Table 1 + Fig. 5 (static characterisation)",
            qvr_bench::table1::report,
        ),
        ("Fig. 6 (foveal sizing)", qvr_bench::fig06::report),
        ("Fig. 12 (performance)", qvr_bench::fig12::report),
        ("Fig. 13 (network)", qvr_bench::fig13::report),
        ("Fig. 14 (balance)", qvr_bench::fig14::report),
        ("Table 4 (eccentricity)", qvr_bench::table4::report),
        ("Fig. 15 (energy)", qvr_bench::fig15::report),
        ("Sec. 4.3 (overhead)", qvr_bench::overhead::report),
        (
            "Fleet scaling (multi-tenant extension)",
            qvr_bench::fig_fleet::report,
        ),
        (
            "Server scheduling policies (noisy neighbours x placement)",
            qvr_bench::fig_sched::report,
        ),
        (
            "SLO admission control (fairness x offered load)",
            qvr_bench::fig_admission::report,
        ),
        (
            "Session churn (dynamic fleets, virtual time)",
            qvr_bench::fig_churn::report,
        ),
        (
            "Fleet energy (sessions x network x placement)",
            qvr_bench::fig_energy::report,
        ),
        (
            "Sharded cells (the 100k-session sweep)",
            qvr_bench::fig_shard::report,
        ),
        (
            "Closed-loop rate control (convergence + LIWC equilibrium)",
            qvr_bench::fig_rate::report,
        ),
    ];
    for (name, f) in sections {
        println!("{}", "=".repeat(78));
        println!("== {name}");
        println!("{}", "=".repeat(78));
        println!("{}", f());
    }
}
