//! Regenerates the fleet energy sweep (sessions × network × policy).

fn main() {
    println!("{}", qvr_bench::fig_energy::report());
}
