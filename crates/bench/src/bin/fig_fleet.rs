//! Regenerates the fleet scaling sweep (multi-tenant extension).
//!
//! ```text
//! cargo run --release -p qvr-bench --bin fig_fleet
//! ```

fn main() {
    println!("{}", qvr_bench::fig_fleet::report());
}
