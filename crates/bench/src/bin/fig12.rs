//! Regenerates the paper's fig12 artefact. See qvr_bench::fig12.
fn main() {
    println!("{}", qvr_bench::fig12::report());
}
