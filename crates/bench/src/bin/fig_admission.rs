//! Regenerates the SLO admission-control sweep.

fn main() {
    print!("{}", qvr_bench::fig_admission::report());
}
