//! Runs a small observed fleet (span tracing + mergeable metrics + the
//! streaming health monitor) and dumps the two text artefacts:
//!
//! * the Chrome-trace / Perfetto JSON of the sampled sessions' per-stage
//!   spans — load it at `chrome://tracing` or <https://ui.perfetto.dev>;
//! * the Prometheus-style metrics exposition of the per-class histogram
//!   families.
//!
//! ```text
//! trace_dump [--sessions N] [--frames N] [--sample-one-in K]
//!            [--out-trace FILE] [--out-exposition FILE] [--check]
//! ```
//!
//! * `--sessions N`       fleet size (default 8)
//! * `--frames N`         per-session frame budget (default 40)
//! * `--sample-one-in K`  trace sampling rate (default 1 = every session)
//! * `--out-trace FILE`   where the trace JSON goes (default trace.json)
//! * `--out-exposition FILE` where the exposition goes (default
//!   exposition.txt)
//! * `--check`            CI mode: validate the trace with a standalone
//!   JSON syntax parser, require sampled content on both process groups,
//!   and require the exposition to round-trip byte-identically through
//!   `parse_exposition`. Any failure exits 1.

use qvr::prelude::*;
use qvr::scene::Benchmark;
use std::process::ExitCode;

struct Args {
    sessions: usize,
    frames: usize,
    sample_one_in: u32,
    out_trace: String,
    out_exposition: String,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sessions: 8,
        frames: 40,
        sample_one_in: 1,
        out_trace: "trace.json".to_owned(),
        out_exposition: "exposition.txt".to_owned(),
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--sessions" => {
                args.sessions = value("--sessions")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--frames" => args.frames = value("--frames")?.parse().map_err(|e| format!("{e}"))?,
            "--sample-one-in" => {
                args.sample_one_in = value("--sample-one-in")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--out-trace" => args.out_trace = value("--out-trace")?,
            "--out-exposition" => args.out_exposition = value("--out-exposition")?,
            "--check" => args.check = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.sessions == 0 || args.frames == 0 {
        return Err("--sessions and --frames must be positive".to_owned());
    }
    Ok(args)
}

/// The observed fleet: a mixed-app Wi-Fi roster with every observability
/// sink on. The health ceiling is calibrated off an unobserved run of the
/// same config (1.2× its p95), so the monitor is armed at a meaningful
/// threshold whatever the fleet size.
fn observed_config(args: &Args) -> FleetConfig {
    let apps = [
        Benchmark::Hl2H,
        Benchmark::Doom3H,
        Benchmark::Wolf,
        Benchmark::Ut3,
    ];
    let mut config = FleetConfig::uniform(
        SystemConfig::default().with_network(NetworkPreset::WiFi),
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        args.sessions,
        args.frames,
        7,
    );
    for (i, spec) in config.sessions.iter_mut().enumerate() {
        *spec = SessionSpec::new(SchemeKind::Qvr, apps[i % apps.len()].profile());
    }
    let calibration = Fleet::run(config.clone());
    config.telemetry = TelemetryConfig::default()
        .with_trace(TraceConfig::sampled(7, args.sample_one_in))
        .with_metrics()
        .with_health(
            HealthRules::new(150.0)
                .with_mtp_p95_ceiling_ms(1.2 * calibration.mtp_p95_ms)
                .with_utilization_band(0.01, 0.99),
        );
    config
}

// ---------------------------------------------------------------------------
// A standalone JSON syntax validator (the build environment has no JSON
// dependency, and validating the emitter with the emitter would prove
// nothing).
// ---------------------------------------------------------------------------

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn fail(&self, what: &str) -> String {
        format!("invalid JSON at byte {}: {what}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.fail("expected a value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                                    return Err(self.fail("bad \\u escape"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.fail("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.fail("raw control char in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn digits(&mut self) -> Result<(), String> {
        if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
            return Err(self.fail("expected a digit"));
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        self.digits()?;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{word}'")))
        }
    }
}

/// Validates that `text` is one complete JSON document.
fn validate_json(text: &str) -> Result<(), String> {
    let mut p = JsonParser::new(text);
    p.value()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Ok(())
    } else {
        Err(p.fail("trailing garbage after the document"))
    }
}

/// The `--check` gauntlet over the rendered artefacts.
fn run_checks(trace_json: &str, exposition: &str, summary: &FleetSummary) -> Result<(), String> {
    validate_json(trace_json)?;
    let trace = summary.trace.as_ref().ok_or("no trace recorded")?;
    if trace.is_empty() {
        return Err("the trace sampled no sessions".to_owned());
    }
    for needle in ["\"sessions\"", "\"server units\"", "\"ph\":\"X\""] {
        if !trace_json.contains(needle) {
            return Err(format!("trace JSON is missing {needle}"));
        }
    }
    match parse_exposition(exposition) {
        None => Err("exposition does not parse".to_owned()),
        Some(rendered) if rendered != exposition => {
            Err("exposition round-trip is not byte-identical".to_owned())
        }
        Some(_) => Ok(()),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("trace_dump: {e}");
            return ExitCode::from(1);
        }
    };
    let summary = Fleet::run(observed_config(&args));
    let trace_json = summary
        .trace
        .as_ref()
        .map(TraceSink::chrome_trace_json)
        .unwrap_or_default();
    let exposition = summary.exposition.clone().unwrap_or_default();
    eprintln!(
        "trace_dump: {} sessions x {} frames; {} traced frames, \
         {}-line exposition, {} incidents",
        args.sessions,
        args.frames,
        summary.trace.as_ref().map_or(0, TraceSink::len),
        exposition.lines().count(),
        summary.incidents.len(),
    );
    for inc in &summary.incidents {
        eprintln!("trace_dump: health: {inc}");
    }
    for (path, text) in [
        (&args.out_trace, &trace_json),
        (&args.out_exposition, &exposition),
    ] {
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("trace_dump: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!("trace_dump: wrote {path} ({} bytes)", text.len());
    }
    if args.check {
        if let Err(e) = run_checks(&trace_json, &exposition, &summary) {
            eprintln!("trace_dump: CHECK FAILED: {e}");
            return ExitCode::from(1);
        }
        eprintln!("trace_dump: checks passed (JSON valid, exposition round-trips)");
    }
    ExitCode::SUCCESS
}
