//! Regenerates the paper's fig03 artefact. See qvr_bench::fig03.
fn main() {
    println!("{}", qvr_bench::fig03::report());
}
