//! Fig. 14: per-frame local/remote latency ratio and FPS over 300 frames.

use crate::{parallel_map, FRAMES, SEED};
use qvr::prelude::*;
use std::fmt::Write as _;

const TRACKED: [Benchmark; 5] = [
    Benchmark::Doom3H,
    Benchmark::Hl2H,
    Benchmark::Grid,
    Benchmark::Ut3,
    Benchmark::Wolf,
];

/// Regenerates Fig. 14 (sampled every 10 frames, plus summary statistics).
#[must_use]
pub fn report() -> String {
    let config = SystemConfig::default();
    let runs = parallel_map(TRACKED.to_vec(), |b| {
        SchemeKind::Qvr.run(&config, b.profile(), FRAMES, SEED)
    });

    let mut out = String::new();
    out.push_str("Fig. 14(a) — latency ratio T_remote/T_local per frame (Q-VR, e1 init 5°)\n");
    out.push_str("paper: high initial imbalance, converging to ~1 within tens of frames\n\n");
    out.push_str("frame:   ");
    for f in (0..FRAMES).step_by(30) {
        let _ = write!(out, "{f:>7}");
    }
    out.push('\n');
    for (bench, run) in TRACKED.iter().zip(&runs) {
        let _ = write!(out, "{:<9}", bench.label());
        for f in (0..FRAMES).step_by(30) {
            let _ = write!(out, "{:>7.2}", run.frames[f].latency_ratio());
        }
        out.push('\n');
    }

    out.push_str("\nFig. 14(b) — instantaneous FPS per frame (target 90 Hz)\n\n");
    out.push_str("frame:   ");
    for f in (0..FRAMES).step_by(30) {
        let _ = write!(out, "{f:>7}");
    }
    out.push('\n');
    for (bench, run) in TRACKED.iter().zip(&runs) {
        let _ = write!(out, "{:<9}", bench.label());
        for f in (0..FRAMES).step_by(30) {
            let _ = write!(out, "{:>7.0}", run.frames[f].instantaneous_fps());
        }
        out.push('\n');
    }

    out.push_str("\nsummary (steady state = frames 100..300):\n");
    for (bench, run) in TRACKED.iter().zip(&runs) {
        let tail: Vec<&FrameRecord> = run.frames.iter().skip(100).collect();
        let mean_ratio = tail.iter().map(|f| f.latency_ratio()).sum::<f64>() / tail.len() as f64;
        let min_fps = tail
            .iter()
            .map(|f| f.instantaneous_fps())
            .fold(f64::INFINITY, f64::min);
        let _ = writeln!(
            out,
            "  {:<9} ratio {:.2}, min FPS {:.0}, sustained {:.0} FPS, meets 90 Hz: {}",
            bench.label(),
            mean_ratio,
            min_fps,
            run.fps(),
            run.meets_target_fps(90.0, 100)
        );
    }
    out
}
