//! Table 1: characterisation of static collaborative rendering, plus the
//! Fig. 5 interaction-latency effect.

use crate::{TextTable, FRAMES, SEED};
use qvr::prelude::*;

/// Paper reference rows: (app, f range, avg/min/max T_local ms, back KB,
/// T_remote ms).
const PAPER: [(&str, &str, f64, f64, f64, f64, f64); 5] = [
    ("Foveated3D", "16% - 52%", 43.0, 18.0, 75.0, 646.0, 38.0),
    ("Viking", "10% - 13%", 13.0, 12.0, 16.0, 530.0, 31.0),
    ("Nature", "10% - 24%", 16.0, 12.0, 26.0, 482.0, 28.0),
    ("Sponze", "0.1% - 20%", 5.8, 0.5, 12.0, 537.0, 31.0),
    ("San Miguel", "6% - 15%", 11.0, 5.4, 14.0, 572.0, 33.0),
];

/// Regenerates Table 1 and the Fig. 5 observation.
#[must_use]
pub fn report() -> String {
    let config = SystemConfig {
        gpu: GpuConfig::gen9_class(),
        ..SystemConfig::default()
    };
    let mut out = String::new();
    out.push_str("Table 1 — static collaborative rendering characterisation (90 Hz)\n");
    out.push_str("measured | paper-reference in brackets\n\n");

    let mut t = TextTable::new(vec![
        "app",
        "interactive",
        "f range",
        "avg T_local",
        "min",
        "max",
        "back KB",
        "T_remote",
    ]);
    for (app, paper) in CharacterizationApp::all().iter().zip(PAPER) {
        let profile = app.profile();
        let s = SchemeKind::StaticCollab.run(&config, profile.clone(), FRAMES, SEED);
        let locals: Vec<f64> = s.frames.iter().map(|f| f.t_local_ms).collect();
        let avg = locals.iter().sum::<f64>() / locals.len() as f64;
        let min = locals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = locals.iter().cloned().fold(0.0, f64::max);
        let back_kb = config
            .size_model
            .frame_bytes(1920 * 2160, profile.content_detail, 1.0)
            / 1024.0;
        // Background-fetch latency: average over frames that actually
        // fetched (cache hits put nothing on the wire).
        let fetches: Vec<f64> = s
            .frames
            .iter()
            .filter(|f| f.t_remote_ms > 0.0)
            .map(|f| f.t_remote_ms)
            .collect();
        let t_remote = fetches.iter().sum::<f64>() / fetches.len().max(1) as f64;
        t.row(vec![
            profile.name.to_owned(),
            profile.interactive.name().to_owned(),
            format!(
                "{:.0}%-{:.0}% [{}]",
                profile.interactive.f_min() * 100.0,
                profile.interactive.f_max() * 100.0,
                paper.1
            ),
            format!("{avg:.1} [{:.0}]", paper.2),
            format!("{min:.1} [{:.1}]", paper.3),
            format!("{max:.1} [{:.0}]", paper.4),
            format!("{back_kb:.0} [{:.0}]", paper.5),
            format!("{t_remote:.1} [{:.0}]", paper.6),
        ]);
    }
    out.push_str(&t.render());

    // Fig. 5: the Nature tree's rendering latency under interaction.
    out.push_str("\nFig. 5 — interaction changes single-object latency (Nature tree)\n");
    out.push_str("paper: 12 ms -> 26 ms as the user approaches the tree\n\n");
    let profile = CharacterizationApp::Nature.profile();
    let s = SchemeKind::StaticCollab.run(&config, profile, FRAMES, SEED);
    let calm: Vec<f64> = s
        .frames
        .iter()
        .filter(|f| !f.misprediction)
        .map(|f| f.t_local_ms)
        .collect();
    let lo = calm.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = calm.iter().cloned().fold(0.0, f64::max);
    out.push_str(&format!(
        "measured interactive-object latency range: {lo:.1} ms (far) .. {hi:.1} ms (close-up)\n"
    ));
    out
}
