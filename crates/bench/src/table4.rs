//! Table 4: mean steady-state eccentricity per app × GPU frequency ×
//! network technology; entries that miss 90 Hz are marked with `*`
//! (the paper underlines them).

use crate::{parallel_map, TextTable, FRAMES, SEED, WARMUP};
use qvr::prelude::*;
use std::fmt::Write as _;

/// Paper reference values for 500 MHz (Wi-Fi / LTE / 5G rows).
const PAPER_500: [(&str, [f64; 7]); 3] = [
    ("Wi-Fi", [46.4, 85.3, 27.4, 33.2, 9.9, 27.2, 15.3]),
    ("4G LTE", [74.5, 90.0, 42.2, 44.3, 22.1, 39.1, 25.7]),
    ("Early 5G", [22.4, 45.2, 11.3, 14.3, 5.0, 10.9, 8.6]),
];

/// Regenerates Table 4.
#[must_use]
pub fn report() -> String {
    let freqs = [500.0, 400.0, 300.0];
    let presets = NetworkPreset::all();

    let mut jobs = Vec::new();
    for f in freqs {
        for p in presets {
            for b in Benchmark::all() {
                jobs.push((f, p, b));
            }
        }
    }
    let results = parallel_map(jobs.clone(), |(f, p, b)| {
        let config = SystemConfig::default()
            .with_gpu_frequency_mhz(*f)
            .with_network(*p);
        let s = SchemeKind::Qvr.run(&config, b.profile(), FRAMES, SEED);
        (
            s.mean_e1_deg(WARMUP).unwrap_or(0.0),
            s.meets_target_fps(90.0, WARMUP),
        )
    });

    let mut out = String::new();
    out.push_str("Table 4 — best (steady-state) eccentricity per configuration\n");
    out.push_str("entries marked * miss the 90 Hz target (the paper underlines these)\n\n");

    let mut t = TextTable::new(vec![
        "freq", "network", "D3H", "D3L", "H2H", "H2L", "GD", "UT3", "WF",
    ]);
    for f in freqs {
        for p in presets {
            let mut cells = vec![format!("{f:.0} MHz"), p.label().to_owned()];
            for b in Benchmark::all() {
                let idx = jobs
                    .iter()
                    .position(|j| j.0 == f && j.1 == p && j.2 == b)
                    .expect("job exists");
                let (e1, meets) = results[idx];
                cells.push(format!("{e1:.1}{}", if meets { "" } else { "*" }));
            }
            t.row(cells);
        }
    }
    out.push_str(&t.render());

    out.push_str("\npaper reference @ 500 MHz (NFS column read as UT3; see DESIGN.md):\n");
    for (net, vals) in PAPER_500 {
        let _ = write!(out, "  {net:<9}");
        for v in vals {
            let _ = write!(out, " {v:>6.1}");
        }
        out.push('\n');
    }
    out.push_str(
        "\nshape checks: LTE > Wi-Fi > 5G per app; lighter apps get larger e1;\n\
         lower GPU frequency shrinks e1.\n",
    );
    out
}
