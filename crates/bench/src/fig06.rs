//! Fig. 6: foveal-layer rendering latency vs eccentricity on the Gen9-class
//! platform, for three Foveated3D scene-complexity variants, plus the
//! relative (periphery) frame size curve.

use crate::TextTable;
use qvr::core::FoveationPlan;
use qvr::prelude::*;
use qvr::scene::apps::FrameState;
use qvr::scene::{MotionDelta, MotionSample};

/// The three scene variants annotated in Fig. 6.
const VARIANTS: [(&str, u64, f64); 3] = [
    ("400 obj x 4k tri", 1_600_000, 1.0),
    ("800 obj x 4k tri", 3_200_000, 1.0),
    ("400 obj x 8k tri", 3_200_000, 1.25), // heavier per-object shading
];

fn neutral_frame(triangles: u64) -> FrameState {
    FrameState {
        frame_id: 0,
        sample: MotionSample::default(),
        delta: MotionDelta::default(),
        triangles,
        complexity_multiplier: 1.0,
        interactive_fraction: 0.3,
        content_detail: 0.75,
    }
}

/// Regenerates Fig. 6.
#[must_use]
pub fn report() -> String {
    let gpu = GpuTimingModel::new(GpuConfig::gen9_class());
    let base_profile = CharacterizationApp::Foveated3D.profile();
    let display = base_profile.display;
    let mar = MarModel::default();
    let size_model = SizeModel::default();
    let config = SystemConfig::default();

    let mut out = String::new();
    out.push_str("Fig. 6 — foveal-layer latency vs eccentricity (Foveated3D, Gen9-class)\n");
    out.push_str("paper: all variants fit the 11 ms budget at e1 <= 15 deg;\n");
    out.push_str("relative periphery frame size falls ~40% -> ~22% over e1 = 5..35\n\n");

    let mut t = TextTable::new(vec![
        "e1 (deg)",
        VARIANTS[0].0,
        VARIANTS[1].0,
        VARIANTS[2].0,
        "rel. frame size",
    ]);
    let full_bytes = size_model.frame_bytes(
        u64::from(display.width_px()) * u64::from(display.height_px()),
        0.75,
        1.0,
    );
    for e1 in (5..=35).step_by(5) {
        let mut cells = vec![format!("{e1}")];
        for (_, tris, shade_mult) in VARIANTS {
            let mut profile = base_profile.clone();
            profile.base_triangles = tris;
            profile.fragment_shader_cycles *= shade_mult;
            let frame = neutral_frame(tris);
            let wl = profile.fovea_workload(&frame, f64::from(e1));
            let ms = gpu.stereo_frame_time(&wl).total_ms();
            cells.push(format!("{ms:.1} ms"));
        }
        let plan = FoveationPlan::resolve(f64::from(e1), &display, &mar, GazePoint::center());
        let rel = plan.periphery_bytes(&size_model, 0.75, config.periphery_quality) / full_bytes;
        cells.push(format!("{:.0}%", rel * 100.0));
        t.row(cells);
    }
    out.push_str(&t.render());

    // The paper's (e1, *e2) pairs from the Eq. (1) optimisation.
    out.push_str(
        "\nEq. (1) optimal middle eccentricities (paper annotates e1=10→e2=50, 20→35, 30→30):\n",
    );
    for e1 in [10.0, 20.0, 30.0] {
        let plan = FoveationPlan::resolve(e1, &display, &mar, GazePoint::center());
        out.push_str(&format!(
            "  e1 = {e1:>4.0}°  →  *e2 = {:.1}°\n",
            plan.e2_deg
        ));
    }
    out
}
