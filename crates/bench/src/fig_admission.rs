//! Admission-control sweep: offered load vs. admitted load vs. tail latency
//! under an SLO, for each link-fairness mode on Wi-Fi / 4G LTE / early 5G.
//!
//! Not a paper artefact — the natural operations layer above the fleet
//! engine: an [`AdmissionController`] gates a stream of joining sessions so
//! the tenants already admitted keep their p95 motion-to-photon SLO. The
//! expected shape, per network and fairness mode: everything admits while
//! the offered load fits the server pool and the link, then the
//! degrade/reject rate climbs with offered load while the *admitted* fleet's
//! p95 stays pinned under the SLO (that is the whole point of admission
//! control — fig_fleet shows the tail blowing up without it).
//!
//! The offered population cycles four apps; every third candidate is a
//! cell-edge tenant (half-rate MCS). The fairness modes trade off who pays
//! for those slow stations: byte-fair `weighted` arbitration admits them at
//! full service by billing the whole cell (running the protected class
//! closer to the SLO), while `airtime` fairness shields the cell so
//! cell-edge stations can only come in best-effort (degraded) or not at
//! all. Under `equal-share` a degraded probe differs from a full one only
//! by the candidate's rate cap and its SLO exemption — the joiner's
//! occupancy debit on everyone else cannot be discounted — so degraded
//! admission rarely helps there and the dominant valve is rejection.

use crate::{TextTable, SEED};
use qvr::prelude::*;
use qvr::scene::Benchmark;

/// Sessions offered to each controller.
pub const OFFERED: usize = 32;

/// Frames per admission probe (the controller's look-ahead horizon).
pub const PROBE_FRAMES: usize = 24;

/// Offered-load checkpoints reported per table row.
pub const CHECKPOINTS: [usize; 4] = [8, 16, 24, 32];

/// The candidate stream: four apps round-robin, every third station at
/// half-rate MCS (a cell-edge tenant).
fn candidate(i: usize) -> SessionSpec {
    let apps = [
        Benchmark::Hl2H,
        Benchmark::Doom3H,
        Benchmark::Wolf,
        Benchmark::Ut3,
    ];
    let spec = SessionSpec::new(SchemeKind::Qvr, apps[i % apps.len()].profile());
    if i % 3 == 2 {
        spec.with_share(LinkShare::default().with_mcs_efficiency(0.5))
    } else {
        spec
    }
}

/// The per-preset SLO, self-calibrated off a single-tenant probe so one
/// knob fits all three networks: p95 ≤ 1.5× the solo p95, FPS floor ≥ 0.75×
/// the solo rate.
fn slo_for(system: &SystemConfig) -> AdmissionPolicy {
    let solo = Fleet::run(FleetConfig::uniform(
        *system,
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        1,
        PROBE_FRAMES,
        SEED,
    ));
    let mut policy = AdmissionPolicy::default()
        .with_mtp_p95_slo_ms(1.5 * solo.mtp_p95_ms)
        .with_min_fps_floor(0.75 * solo.fps_floor);
    policy.probe_frames = PROBE_FRAMES;
    policy.degraded =
        Some(LinkShare::weighted(0.5).with_cap_mbps(0.5 * system.network.download_mbps()));
    policy
}

/// Regenerates the admission sweep.
#[must_use]
pub fn report() -> String {
    report_with(&NetworkPreset::all(), OFFERED, PROBE_FRAMES)
}

/// The sweep over explicit presets/offered-load (the unit test runs a
/// miniature version; `report` runs the full one).
fn report_with(presets: &[NetworkPreset], offered: usize, probe_frames: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "SLO admission control — {offered} offered Q-VR sessions (4 apps, every 3rd at \n\
         half-rate MCS), probe horizon {probe_frames} frames, per-preset SLO = 1.5x solo p95\n\
         Admission holds the admitted fleet's p95 under the SLO; the degrade/reject\n\
         rate is the release valve that rises with offered load instead of the tail\n\n",
    ));
    for preset in presets {
        let system = SystemConfig::default().with_network(*preset);
        let mut policy = slo_for(&system);
        policy.probe_frames = probe_frames;
        // p95/floor columns cover the protected class — the SLO
        // constituency; degraded tenants ride best-effort outside it.
        let mut t = TextTable::new(vec![
            "fairness",
            "offered",
            "admitted",
            "degraded",
            "rejected",
            "prot p95",
            "prot floor",
            "pool util",
        ]);
        for fairness in FairnessPolicy::all() {
            let mut controller = AdmissionController::new(system, fairness, policy.clone(), SEED);
            let mut checkpoint_iter = CHECKPOINTS.iter().filter(|c| **c <= offered).peekable();
            for i in 0..offered {
                controller.offer(candidate(i));
                if checkpoint_iter.peek() == Some(&&(i + 1)) {
                    checkpoint_iter.next();
                    // p95/floor over the *protected* class (the SLO
                    // constituency); utilization is fleet-wide.
                    let (p95, floor) = controller.protected_metrics().unwrap_or((0.0, 0.0));
                    let util = controller
                        .accepted_summary()
                        .map_or(0.0, |s| s.server_utilization);
                    t.row(vec![
                        fairness.label().to_owned(),
                        format!("{}", i + 1),
                        format!("{}", controller.count(AdmissionDecision::Admitted)),
                        format!("{}", controller.count(AdmissionDecision::Degraded)),
                        format!("{}", controller.count(AdmissionDecision::Rejected)),
                        format!("{p95:.1} ms"),
                        format!("{floor:.0}"),
                        format!("{:.0}%", util * 100.0),
                    ]);
                }
            }
        }
        out.push_str(&format!(
            "{preset} — SLO: p95 <= {:.1} ms, FPS floor >= {:.0}\n",
            policy.mtp_p95_slo_ms, policy.min_fps_floor
        ));
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_the_sweep_and_respects_the_slo() {
        // Miniature sweep: one preset, few offers, short probes (the full
        // OFFERED x PROBE_FRAMES x 3-preset sweep belongs to the release
        // binary, not every `cargo test`).
        let r = report_with(&[NetworkPreset::WiFi], 8, 6);
        assert!(r.contains("Wi-Fi"));
        assert!(r.contains("equal-share"));
        assert!(r.contains("weighted"));
        assert!(r.contains("airtime"));
        assert!(r.contains("SLO"));
    }

    #[test]
    fn admitted_fleet_meets_the_slo_while_rejections_rise() {
        // The acceptance-shape claim on a small instance: offers keep
        // arriving, some get refused, and the admitted roster's probe p95
        // never breaks the SLO.
        let system = SystemConfig::default();
        let mut policy = slo_for(&system);
        policy.probe_frames = 8;
        let mut c =
            AdmissionController::new(system, FairnessPolicy::Weighted, policy.clone(), SEED);
        for i in 0..12 {
            c.offer(candidate(i));
        }
        let (p95, _) = c.protected_metrics().expect("something must admit");
        assert!(
            p95 <= policy.mtp_p95_slo_ms,
            "protected p95 {p95:.1} ms must hold the SLO {:.1} ms",
            policy.mtp_p95_slo_ms
        );
        assert!(
            c.count(AdmissionDecision::Rejected) + c.count(AdmissionDecision::Degraded) > 0,
            "12 offers on an 8-unit pool must trip the SLO valve"
        );
    }
}
