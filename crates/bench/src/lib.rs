//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation from the simulation substrate.
//!
//! Each module corresponds to one artefact and exposes `report() -> String`
//! printing the same rows/series the paper publishes, side by side with the
//! paper's reference values. Binaries under `src/bin/` are thin wrappers;
//! `run_all` concatenates everything (this is what EXPERIMENTS.md records).
//!
//! Absolute numbers are not expected to match a physical testbed — the
//! *shape* (who wins, by what factor, where crossovers sit) is the
//! reproduction target; see DESIGN.md §2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod fig03;
pub mod fig06;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig_admission;
pub mod fig_churn;
pub mod fig_energy;
pub mod fig_fleet;
pub mod fig_rate;
pub mod fig_sched;
pub mod fig_shard;
pub mod overhead;
pub mod perf;
pub mod table1;
pub mod table4;

use std::fmt::Write as _;

/// Frames per run (the paper's Fig. 14 uses 300).
pub const FRAMES: usize = 300;
/// Warm-up frames excluded from steady-state statistics.
pub const WARMUP: usize = 100;
/// The workspace-wide experiment seed.
pub const SEED: u64 = 42;

/// Runs `f` over `items` on up to `std::thread::available_parallelism`
/// workers, preserving order (thin wrapper over [`qvr::sim::parallel_map`],
/// the workspace's one bounded worker pool).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    qvr::sim::parallel_map(&items, f)
}

/// A minimal fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders with column alignment.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let pad = widths[i] - c.chars().count();
                if i == 0 {
                    let _ = write!(line, "{c}{}", " ".repeat(pad));
                } else {
                    let _ = write!(line, "  {}{c}", " ".repeat(pad));
                }
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u64> = parallel_map(Vec::<u64>::new(), |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1.0"]);
        t.row(vec!["longer", "2.5"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn every_report_is_nonempty_and_mentions_its_artifact() {
        // Smoke-run the fast reports (the heavy sweeps are exercised by the
        // binaries / run_all).
        let o = overhead::report();
        assert!(o.contains("LIWC") && o.contains("UCA"));
    }
}
