//! Server scheduling policy sweep: the mixed noisy-neighbour fleet under
//! class-aware GPU placement.
//!
//! The fig_fleet heterogeneous table shows non-adaptive tenants
//! (StaticCollab ships full colour+depth frames, RemoteOnly streams
//! everything) dragging the adaptive sessions down under least-loaded
//! placement: the slow tenants run whole frame-times ahead of the adaptive
//! class in simulated time, and least-loaded placement spreads their
//! heavy far-future chains over *every* unit's frontier, so the adaptive
//! tenants queue behind them on whichever unit they pick (DESIGN.md
//! §7/§9 — pool frontier coupling). This sweep re-runs exactly that
//! 8-session roster on Wi-Fi / 4G LTE / early 5G under the four
//! [`ServerPolicy`] designs and reports each tenant class's tail latency
//! and FPS floor side by side, with a uniform 8×Q-VR fleet of the same
//! size as the recovery target. Expected shape: under `QuotaPartition`
//! (GPU units 0–5 reserved for the adaptive class) and
//! `AdaptivePriority` (best-effort chains packed onto the hottest unit,
//! 50 ms aging bound), the adaptive tenants' p95 MTP and FPS floor
//! recover toward uniform-fleet levels while the Static/Remote tenants
//! keep paying their own (network-dominated) costs plus the queueing they
//! used to externalise. `MeasuredLoad` (same 6/2 split, membership by the
//! telemetry `LoadTracker` EWMA instead of scheme class) matches the
//! quota row's adaptive recovery while freeing FFR — best-effort by
//! class, light by measurement — from the heavy slice: its frame rate
//! recovers ~7× vs quota on Wi-Fi, and the fleet floor (set by the
//! network-bound Static/Remote tenants either way) stays put.

use crate::{TextTable, SEED};
use qvr::prelude::*;
use qvr::scene::Benchmark;

/// Frames per session (matches fig_fleet's multi-tenant rows).
pub const SCHED_FRAMES: usize = 120;

/// GPU units reserved for the adaptive class under the quota policy
/// (of the default 8-unit pool: 5 adaptive tenants get 6 units, the 3
/// best-effort tenants share the remaining 2).
pub const QUOTA_RESERVED: usize = 6;

/// Aging bound for packed best-effort chains under the priority policy, ms.
pub const PRIORITY_AGING_MS: f64 = 50.0;

/// EWMA server-ms/frame above which `MeasuredLoad` places a tenant on the
/// heavy slice. On the mixed roster the adaptive tenants and FFR measure
/// 0.7–3.9 ms/frame while Static and Remote measure 14–20 ms on every
/// network, so 8 ms splits the two populations with wide margin.
pub const MEASURED_HEAVY_MS: f64 = 8.0;

/// The measured-load policy cell: same 6/2 unit split as the quota row,
/// but membership decided by each tenant's *measured* server time (the
/// telemetry `LoadTracker` EWMA) instead of its scheme class — so FFR,
/// best-effort by class but light by measurement, earns light placement.
#[must_use]
pub fn measured_policy() -> ServerPolicy {
    ServerPolicy::MeasuredLoad {
        reserved: QUOTA_RESERVED,
        heavy_ms: MEASURED_HEAVY_MS,
    }
}

/// The four policies swept, default first.
#[must_use]
pub fn policies() -> [ServerPolicy; 4] {
    [
        ServerPolicy::LeastLoaded,
        ServerPolicy::QuotaPartition {
            reserved: QUOTA_RESERVED,
        },
        ServerPolicy::AdaptivePriority {
            aging_ms: PRIORITY_AGING_MS,
        },
        measured_policy(),
    ]
}

/// The fig_fleet noisy-neighbour roster: 5 adaptive tenants (4 Q-VR + DFR)
/// and 3 best-effort tenants (FFR, Static, Remote).
#[must_use]
pub fn mixed_sessions() -> Vec<SessionSpec> {
    vec![
        SessionSpec::new(SchemeKind::Qvr, Benchmark::Grid.profile()),
        SessionSpec::new(SchemeKind::Qvr, Benchmark::Doom3L.profile()),
        SessionSpec::new(SchemeKind::Qvr, Benchmark::Ut3.profile()),
        SessionSpec::new(SchemeKind::Qvr, Benchmark::Wolf.profile()),
        SessionSpec::new(SchemeKind::Dfr, Benchmark::Hl2H.profile()),
        SessionSpec::new(SchemeKind::Ffr, Benchmark::Hl2L.profile()),
        SessionSpec::new(SchemeKind::StaticCollab, Benchmark::Doom3H.profile()),
        SessionSpec::new(SchemeKind::RemoteOnly, Benchmark::Wolf.profile()),
    ]
}

/// The sweep's fleet config for one network × policy cell — public so the
/// integration tests (`tests/sched.rs`) lock exactly the fleet shape the
/// sweep runs.
#[must_use]
pub fn mixed_config(preset: NetworkPreset, policy: ServerPolicy, frames: usize) -> FleetConfig {
    let units = SystemConfig::default().remote.count() as usize;
    FleetConfig {
        system: SystemConfig::default().with_network(preset),
        sessions: mixed_sessions(),
        frames,
        seed: SEED,
        server_units: units,
        shared_network: true,
        link_streams: units,
        fairness: FairnessPolicy::EqualShare,
        server_policy: policy,
        stepping: SteppingPolicy::RoundRobin,
        retire_window_ms: None,
        telemetry: TelemetryConfig::default(),
    }
}

/// Regenerates the scheduling-policy sweep.
#[must_use]
pub fn report() -> String {
    report_with(SCHED_FRAMES)
}

/// The sweep at an explicit per-session frame count (the unit test runs a
/// miniature version; `report` and the CI smoke step run the full one).
fn report_with(frames: usize) -> String {
    let adaptive: Vec<bool> = mixed_sessions()
        .iter()
        .map(|s| s.scheme.is_adaptive())
        .collect();
    let best_effort: Vec<bool> = adaptive.iter().map(|a| !a).collect();

    let mut configs = Vec::new();
    for preset in NetworkPreset::all() {
        for policy in policies() {
            configs.push(mixed_config(preset, policy, frames));
        }
        // The recovery target: a uniform 8×Q-VR fleet of the same size on
        // the same network (no noisy neighbours to isolate).
        configs.push(FleetConfig::uniform(
            SystemConfig::default().with_network(preset),
            SchemeKind::Qvr,
            Benchmark::Hl2H.profile(),
            mixed_sessions().len(),
            frames,
            SEED,
        ));
    }
    let results = Fleet::run_many(configs);

    let mut out = String::new();
    out.push_str(&format!(
        "Server scheduling policies — the mixed noisy-neighbour fleet ({} adaptive + {} \
         best-effort tenants, 8 GPU units) under {} placement policies\n",
        adaptive.iter().filter(|a| **a).count(),
        best_effort.iter().filter(|b| **b).count(),
        policies().len(),
    ));
    out.push_str(
        "least-loaded spreads the slow tenants' heavy (far-future) chains over every\n\
         unit's frontier, queueing the adaptive class behind them; quota confines them\n\
         to the unreserved slice, priority packs them onto the hottest unit, and\n\
         measured re-derives the quota split from each tenant's *streamed* server\n\
         time (freeing light-by-measurement FFR), so the adaptive tail and FPS floor\n\
         recover toward the uniform reference while the Static/Remote tenants keep\n\
         their own network-dominated latencies\n\n",
    );

    // Per preset: the policy rows plus the uniform reference.
    let rows_per_preset = policies().len() + 1;
    for (preset, preset_results) in NetworkPreset::all()
        .iter()
        .zip(results.chunks(rows_per_preset))
    {
        let mut t = TextTable::new(vec![
            "policy",
            "adaptive p95",
            "adaptive floor",
            "BE p95",
            "BE floor",
            "fleet p95",
            "fleet floor",
            "server util",
        ]);
        for (policy, s) in policies().iter().zip(preset_results) {
            t.row(vec![
                policy.label(),
                format!("{:.1} ms", s.mtp_p95_over(&adaptive)),
                format!("{:.0} FPS", s.fps_floor_over(&adaptive)),
                format!("{:.1} ms", s.mtp_p95_over(&best_effort)),
                format!("{:.0} FPS", s.fps_floor_over(&best_effort)),
                format!("{:.1} ms", s.mtp_p95_ms),
                format!("{:.0} FPS", s.fps_floor),
                format!("{:.0}%", s.server_utilization * 100.0),
            ]);
        }
        let uniform = &preset_results[policies().len()];
        t.row(vec![
            "uniform 8xQ-VR ref".to_owned(),
            format!("{:.1} ms", uniform.mtp_p95_ms),
            format!("{:.0} FPS", uniform.fps_floor),
            "-".to_owned(),
            "-".to_owned(),
            format!("{:.1} ms", uniform.mtp_p95_ms),
            format!("{:.0} FPS", uniform.fps_floor),
            format!("{:.0}%", uniform.server_utilization * 100.0),
        ]);
        out.push_str(&format!("{preset}\n"));
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_the_sweep() {
        // Miniature sweep: same report structure, a fraction of the work
        // (the full SCHED_FRAMES sweep belongs to the release binary and
        // the CI smoke step, not every `cargo test`).
        let r = report_with(10);
        assert!(r.contains("Wi-Fi"));
        assert!(r.contains("4G LTE"));
        assert!(r.contains("Early 5G"));
        assert!(r.contains("least-loaded"));
        assert!(r.contains("quota(res=6)"));
        assert!(r.contains("priority(age=50ms)"));
        assert!(r.contains("measured(res=6,heavy=8ms)"));
        assert!(r.contains("adaptive p95"));
    }
}
