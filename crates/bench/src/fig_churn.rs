//! Session-churn sweep: open fleets with joins, leaves, admission, and
//! reclaim-driven upgrades on Wi-Fi / 4G LTE / early 5G.
//!
//! Not a paper artefact — the dynamics layer above the fleet engine. Two
//! views:
//!
//! 1. **Burst narrative** (per network): a small protected roster absorbs a
//!    join burst mid-run — the windowed p95 motion-to-photon series spikes
//!    while the burst holds (extra tenants come in degraded/best-effort or
//!    bounce off admission), then a leave burst frees headroom and the
//!    admission controller's reclaim pass upgrades best-effort tenants back
//!    to their requested shares, letting the tail recover.
//! 2. **Arrival-rate sweep**: seeded Poisson arrivals with exponential
//!    holding times at increasing offered rates, with windowed task
//!    retirement on — offered load turns into rejects/degrades rather than
//!    unbounded tails, and per-resource retained engine state stays
//!    O(window) no matter how long the run (the bounded-memory claim the
//!    CI smoke job pins at 64 sessions).

use crate::{TextTable, SEED};
use qvr::prelude::*;
use qvr::scene::Benchmark;

/// Virtual-time horizon of the burst narrative, ms.
pub const BURST_HORIZON_MS: f64 = 2_200.0;

/// Virtual-time horizon of the arrival-rate sweep, ms.
pub const SWEEP_HORIZON_MS: f64 = 2_500.0;

/// Windowed-p95 bucket width, ms.
pub const WINDOW_MS: f64 = 275.0;

/// Engine-history retirement window used by the sweep, ms.
pub const RETIRE_WINDOW_MS: f64 = 300.0;

/// A non-adaptive heavy tenant (streams full frames, so its link share —
/// not a controller — decides its latency; churn dynamics show undamped).
fn heavy() -> SessionSpec {
    SessionSpec::new(SchemeKind::RemoteOnly, Benchmark::Hl2H.profile())
}

/// An adaptive Q-VR tenant for the arrival sweep.
fn adaptive(i: usize) -> SessionSpec {
    let apps = [
        Benchmark::Hl2H,
        Benchmark::Doom3H,
        Benchmark::Wolf,
        Benchmark::Ut3,
    ];
    SessionSpec::new(SchemeKind::Qvr, apps[i % apps.len()].profile())
}

/// The burst SLO, calibrated per network off a 2-tenant probe so one knob
/// fits all three presets: p95 ≤ 1.4× the duo's p95, with degraded
/// admission at a quarter weight (the valve the reclaim pass later opens).
fn burst_policy(system: &SystemConfig, probe_frames: usize) -> AdmissionPolicy {
    let duo = Fleet::run(FleetConfig {
        system: *system,
        sessions: vec![heavy(), heavy()],
        frames: probe_frames,
        seed: SEED,
        server_units: 8,
        shared_network: true,
        link_streams: 2,
        fairness: FairnessPolicy::Weighted,
        server_policy: ServerPolicy::default(),
        stepping: SteppingPolicy::RoundRobin,
        retire_window_ms: None,
        telemetry: TelemetryConfig::default(),
    });
    let mut policy = AdmissionPolicy::default()
        .with_mtp_p95_slo_ms(1.4 * duo.mtp_p95_ms)
        .with_min_fps_floor(0.3 * duo.fps_floor);
    policy.probe_frames = probe_frames;
    policy.degraded = Some(LinkShare::weighted(0.25));
    policy
}

/// The scripted burst: 2 initial tenants, a 3-join burst at 600 ms, a
/// 2-leave burst at 1400 ms (both initial members), horizon 2.2 s.
fn burst_config(system: SystemConfig, probe_frames: usize, horizon_ms: f64) -> ChurnConfig {
    let burst_at = 0.27 * horizon_ms;
    let leave_at = 0.64 * horizon_ms;
    let trace = ChurnTrace::script(vec![
        ChurnEvent::join(burst_at, heavy()),
        ChurnEvent::join(burst_at + 1.0, heavy()),
        ChurnEvent::join(burst_at + 2.0, heavy()),
        ChurnEvent::leave(leave_at, 0),
        ChurnEvent::leave(leave_at + 1.0, 1),
    ]);
    let policy = burst_policy(&system, probe_frames);
    // The health monitor watches the same calibrated ceiling the admission
    // controller enforces, so its incident timeline narrates the burst: the
    // p95 breach opens when the 3-join burst lands and closes once the
    // leave burst's reclaim pass restores the tail.
    let rules = HealthRules::new(WINDOW_MS).with_mtp_p95_ceiling_ms(policy.mtp_p95_slo_ms);
    let mut config = ChurnConfig::new(system, vec![heavy(), heavy()], trace, horizon_ms, SEED)
        .with_fairness(FairnessPolicy::Weighted)
        .with_admission(policy);
    config.telemetry = config.telemetry.with_health(rules);
    config.server_units = 8;
    config.link_streams = 2;
    config
}

/// Runs the burst narrative for one preset and renders its window table.
fn burst_report(preset: NetworkPreset, probe_frames: usize, horizon_ms: f64) -> String {
    let system = SystemConfig::default().with_network(preset);
    let summary = ChurnFleet::run(burst_config(system, probe_frames, horizon_ms));
    let mut out = String::new();
    let mut t = TextTable::new(vec!["window", "live", "frames", "p95 MTP"]);
    for (start, frames, p95) in summary.windowed_p95(WINDOW_MS) {
        t.row(vec![
            format!("{:.0}-{:.0} ms", start, start + WINDOW_MS),
            format!("{}", summary.live_at(start + 0.5 * WINDOW_MS)),
            format!("{frames}"),
            format!("{p95:.1} ms"),
        ]);
    }
    out.push_str(&format!("{preset}\n"));
    out.push_str(&t.render());
    out.push_str(&format!(
        "{}: {} rejected / {} degraded at the join burst; {} best-effort \
         upgraded after the leave burst\n",
        summary, summary.rejected, summary.degraded, summary.upgrades,
    ));
    // The streaming health monitor's deterministic incident timeline —
    // the same burst story, told as SLO breaches.
    if summary.incidents.is_empty() {
        out.push_str("health: no SLO incidents\n");
    }
    for inc in &summary.incidents {
        out.push_str(&format!("health: {inc}\n"));
    }
    out.push('\n');
    out
}

/// Runs the Poisson arrival sweep row for one preset × rate.
fn sweep_row(
    preset: NetworkPreset,
    arrivals_per_s: f64,
    probe_frames: usize,
    horizon_ms: f64,
) -> (ChurnSummary, f64) {
    let system = SystemConfig::default().with_network(preset);
    let initial = vec![adaptive(0), adaptive(1)];
    let trace = ChurnTrace::poisson(
        SEED,
        arrivals_per_s,
        0.35 * horizon_ms,
        horizon_ms,
        initial.len(),
        adaptive,
    );
    // Calibrate on a solo fleet of the sweep's own adaptive tenants (like
    // fig_admission) so the valve visibly engages at high rates; same
    // degraded-share valve as the burst policy.
    let solo = Fleet::run(FleetConfig::uniform(
        system,
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        1,
        probe_frames,
        SEED,
    ));
    let mut policy = AdmissionPolicy::default()
        .with_mtp_p95_slo_ms(1.35 * solo.mtp_p95_ms)
        .with_min_fps_floor(0.6 * solo.fps_floor);
    policy.probe_frames = probe_frames;
    policy.degraded = Some(LinkShare::weighted(0.25));
    let mut config = ChurnConfig::new(system, initial, trace, horizon_ms, SEED)
        .with_fairness(FairnessPolicy::Weighted)
        .with_admission(policy)
        .with_retire_window_ms(RETIRE_WINDOW_MS);
    config.server_units = 8;
    config.link_streams = 4;
    let summary = ChurnFleet::run(config);
    let p95 =
        qvr::core::metrics::SortedSamples::new(summary.samples.iter().map(|(_, m)| *m).collect())
            .p95();
    (summary, p95)
}

/// Regenerates the churn sweep.
#[must_use]
pub fn report() -> String {
    report_with(
        &NetworkPreset::all(),
        10,
        BURST_HORIZON_MS,
        SWEEP_HORIZON_MS,
    )
}

/// The sweep over explicit presets/horizons (the unit test runs a
/// miniature version; `report` runs the full one).
fn report_with(
    presets: &[NetworkPreset],
    probe_frames: usize,
    burst_horizon_ms: f64,
    sweep_horizon_ms: f64,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Session churn — open fleets under virtual-time stepping\n\
         Burst narrative: 2 protected tenants, +3 joins at {:.0}% of the run,\n\
         -2 leaves at {:.0}%; SLO = 1.4x duo p95, weighted link, 2 streams.\n\
         p95 spikes while the burst holds and recovers after reclaim-driven\n\
         upgrades return best-effort tenants to their requested shares.\n\n",
        27.0, 64.0,
    ));
    for preset in presets {
        out.push_str(&burst_report(*preset, probe_frames, burst_horizon_ms));
    }

    out.push_str(&format!(
        "Poisson arrival sweep — Q-VR tenants, exponential holds, admission on,\n\
         windowed retirement at {RETIRE_WINDOW_MS:.0} ms (per-resource live engine state\n\
         stays O(window) regardless of run length)\n\n",
    ));
    let mut t = TextTable::new(vec![
        "network",
        "arrivals/s",
        "offered",
        "rejected",
        "degraded",
        "upgraded",
        "peak live",
        "p95 MTP",
        "live tasks/res",
        "retired",
    ]);
    for preset in presets {
        for rate in [2.0, 6.0] {
            let (s, p95) = sweep_row(*preset, rate, probe_frames, sweep_horizon_ms);
            t.row(vec![
                preset.label().to_owned(),
                format!("{rate:.0}"),
                format!("{}", s.len() + s.rejected),
                format!("{}", s.rejected),
                format!("{}", s.degraded),
                format!("{}", s.upgrades),
                format!("{}", s.peak_live()),
                format!("{p95:.1} ms"),
                format!("{}", s.peak_live_per_resource),
                format!("{}", s.retired_tasks),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_the_sweep() {
        // Miniature: one preset, short probes and horizons (the full
        // 3-preset sweep belongs to the release binary, not every
        // `cargo test`).
        let r = report_with(&[NetworkPreset::WiFi], 6, 1_400.0, 900.0);
        assert!(r.contains("Wi-Fi"));
        assert!(r.contains("p95"));
        assert!(r.contains("upgraded after the leave burst"));
        assert!(r.contains("retired"));
    }

    #[test]
    fn burst_degrades_then_reclaim_upgrades() {
        // The acceptance shape: the join burst produces best-effort
        // tenants, and the leave burst's reclaim pass upgrades at least
        // one of them.
        let summary = ChurnFleet::run(burst_config(SystemConfig::default(), 10, BURST_HORIZON_MS));
        assert!(
            summary.degraded > 0,
            "the join burst must push someone into best-effort: {summary}"
        );
        assert!(
            summary.upgrades > 0,
            "the leave burst must upgrade a best-effort tenant: {summary}"
        );
        // And the tail spikes during the burst relative to the pre-burst
        // window, visible in the windowed series.
        let windows = summary.windowed_p95(WINDOW_MS);
        let p95_at = |t: f64| {
            windows
                .iter()
                .rfind(|(s, _, _)| *s <= t)
                .map(|(_, _, p)| *p)
                .expect("window exists")
        };
        let calm = p95_at(0.15 * BURST_HORIZON_MS);
        let burst = p95_at(0.45 * BURST_HORIZON_MS);
        assert!(
            burst > calm,
            "the join burst must lift the tail: {burst:.1} vs {calm:.1} ms"
        );
    }

    #[test]
    fn burst_incident_timeline_is_deterministic_and_tracks_the_burst() {
        // The observability acceptance shape: the health monitor's
        // incident timeline is identical across reruns, non-empty, and its
        // p95-MTP breach opens while the 3-join burst holds and closes
        // after the leave burst's reclaim pass restores the tail.
        let run = || ChurnFleet::run(burst_config(SystemConfig::default(), 10, BURST_HORIZON_MS));
        let (a, b) = (run(), run());
        assert_eq!(
            a.incidents, b.incidents,
            "the incident timeline must be deterministic across reruns"
        );
        let burst_at = 0.27 * BURST_HORIZON_MS;
        let leave_at = 0.64 * BURST_HORIZON_MS;
        let breach = a
            .incidents
            .iter()
            .find(|i| i.rule == HealthRuleKind::MtpP95)
            .expect("the join burst must open a p95-MTP incident");
        assert!(
            breach.open_ms >= burst_at - WINDOW_MS && breach.open_ms <= leave_at,
            "the breach opens at the join burst: open @{:.0} ms vs burst @{burst_at:.0} ms",
            breach.open_ms
        );
        let close = breach
            .close_ms
            .expect("the leave burst's upgrades must close the breach");
        assert!(
            close > leave_at,
            "the breach closes after the leave burst: close @{close:.0} ms vs leave @{leave_at:.0} ms"
        );
    }
}
