//! Closed-loop rate control: convergence + LIWC equilibrium contrast.
//!
//! Not a paper artefact — the paper ships closed-form frame sizes — but the
//! acceptance sweep for the content-true rate path (DESIGN.md §15): each
//! tenant's [`RateController`] steers the entropy-modeled periphery stream
//! toward its allocated link share. Two tables:
//!
//! 1. **Convergence** — uniform Q-VR fleets (Wi-Fi, equal share) across a
//!    sweep of per-tenant allocations (uncapped / capped / contended):
//!    steady-state bytes/frame must settle within ±10% of the per-tenant
//!    allocation (`share × 1e6 / 8 / target_fps`).
//! 2. **LIWC equilibrium at 1:8 weights** — with strongly unequal shares,
//!    rate control off ships the same closed-form bytes regardless of
//!    share (only latency differs), while rate control on bends each
//!    tenant's quality until its stream fits its allocation — shifting the
//!    LIWC fovea equilibrium the paper's single-user controller never sees.

use crate::{TextTable, SEED};
use qvr::prelude::*;
use qvr::scene::Benchmark;

/// Frames per session: enough for the controller (gain 0.6, deadband 4%)
/// to settle plus a steady-state window.
pub const RATE_FRAMES: usize = 160;

/// Convergence rows: (sessions, per-tenant cap in Mbps). Wi-Fi serves 8
/// MU-MIMO streams, so 8 uncapped tenants each get the full 200 Mbps; the
/// capped rows sweep the allocation down through the entropy plant's range,
/// and the 16-session row halves the share through contention instead.
pub const RATE_ROWS: [(usize, Option<f64>); 4] =
    [(8, None), (8, Some(140.0)), (8, Some(90.0)), (16, None)];

/// Regenerates the rate-control sweep.
#[must_use]
pub fn report() -> String {
    report_with(&RATE_ROWS, RATE_FRAMES)
}

/// A stable digest of a rate-controlled shard run at an explicit worker
/// count: the dynamic determinism receipt that per-tenant controller state
/// stays inside its cell (slot-namespaced, reset on recycle) and never
/// leaks across the telemetry seam. Hashes the merged `ShardSummary`'s
/// full `Debug` form with FNV-1a, like `fig_shard::determinism_digest`.
#[must_use]
pub fn determinism_digest(cells: usize, per_cell: usize, frames: usize, workers: usize) -> u64 {
    let mut template = FleetConfig::uniform(
        SystemConfig::default().with_rate_control(RateControlConfig::on()),
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        1, // placeholder: the shard routes its own roster
        frames,
        SEED,
    );
    template.server_units = 4;
    template.link_streams = 2;
    let roster = (0..cells * per_cell)
        .map(|_| SessionSpec::new(SchemeKind::Qvr, Benchmark::Hl2H.profile()))
        .collect();
    let s = Shard::run(ShardConfig::new(template, cells, per_cell, roster).with_workers(workers));
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{s:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Steady-state mean of per-frame transmitted bytes (second half of the run).
fn steady_bytes(s: &RunSummary) -> f64 {
    let skip = s.frames.len() / 2;
    let tail = &s.frames[skip..];
    tail.iter().map(|f| f.tx_bytes).sum::<f64>() / tail.len().max(1) as f64
}

/// Steady-state mean of the controller's chosen quality, if it ran.
fn steady_quality(s: &RunSummary) -> Option<f64> {
    let skip = s.frames.len() / 2;
    let qs: Vec<f64> = s.frames[skip..].iter().filter_map(|f| f.quality).collect();
    if qs.is_empty() {
        None
    } else {
        Some(qs.iter().sum::<f64>() / qs.len() as f64)
    }
}

/// The sweep over explicit fleet sizes and per-session frames (the unit
/// test runs a miniature version; `report` runs the full one).
fn report_with(rows: &[(usize, Option<f64>)], frames: usize) -> String {
    let bench = Benchmark::Hl2H;
    let system = || SystemConfig::default().with_rate_control(RateControlConfig::on());
    let capacity = NetworkPreset::WiFi.download_mbps();
    let streams = SystemConfig::default().remote.count() as usize;
    let fps = SystemConfig::default().target_fps;

    let share_for = |cap: Option<f64>| match cap {
        Some(c) => LinkShare::default().with_cap_mbps(c),
        None => LinkShare::default(),
    };
    let configs: Vec<FleetConfig> = rows
        .iter()
        .map(|&(n, cap)| {
            let mut cfg =
                FleetConfig::uniform(system(), SchemeKind::Qvr, bench.profile(), n, frames, SEED);
            for spec in &mut cfg.sessions {
                spec.share = share_for(cap);
            }
            cfg
        })
        .collect();
    let results = Fleet::run_many(configs);

    let mut out = String::new();
    out.push_str(&format!(
        "Closed-loop rate control — {} × Q-VR, Wi-Fi, equal share, controller on\n",
        bench.label()
    ));
    out.push_str("Each tenant steers its entropy-coded periphery stream toward the link's\n");
    out.push_str("allocated share; steady-state bytes/frame settle within ±10%\n\n");

    let mut t = TextTable::new(vec![
        "sessions",
        "cap",
        "alloc Mbps",
        "target KB",
        "mean KB",
        "worst err",
        "quality",
        "mean e1",
    ]);
    for (&(n, cap), s) in rows.iter().zip(&results) {
        // The exact allocation the channel gives each (identical) member —
        // the same pure function the fairness layer resolves transfers with.
        let alloc = qvr::net::allocate_mbps(
            FairnessPolicy::EqualShare,
            capacity,
            streams,
            &vec![share_for(cap); n],
        )[0];
        let target = RateController::target_bytes(alloc, fps);
        let per: Vec<f64> = s.sessions.iter().map(steady_bytes).collect();
        let worst_err = per
            .iter()
            .map(|b| (b - target).abs() / target)
            .fold(0.0f64, f64::max);
        let mean_kb = per.iter().sum::<f64>() / per.len() as f64 / 1024.0;
        let quality = {
            let qs: Vec<f64> = s.sessions.iter().filter_map(steady_quality).collect();
            qs.iter().sum::<f64>() / qs.len().max(1) as f64
        };
        let mean_e1 = {
            let es: Vec<f64> = s
                .sessions
                .iter()
                .filter_map(|r| r.mean_e1_deg(frames / 2))
                .collect();
            es.iter().sum::<f64>() / es.len().max(1) as f64
        };
        t.row(vec![
            format!("{n}"),
            cap.map_or_else(|| "-".into(), |c| format!("{c:.0}")),
            format!("{alloc:.0}"),
            format!("{:.0}", target / 1024.0),
            format!("{mean_kb:.0}"),
            format!("{:.1}%", worst_err * 100.0),
            format!("{quality:.2}"),
            format!("{mean_e1:.1}°"),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // LIWC equilibrium contrast: two Q-VR tenants at 8:1 link weights, rate
    // control off vs on. Off, the closed-form size model ships identical
    // bytes for both (share only moves latency, and LIWC's e1 with it); on,
    // the starved tenant's controller compresses harder until its stream
    // fits ~1/9 of the link, and the LIWC equilibrium follows the true
    // cost of each candidate eccentricity.
    let weighted = |rc: bool| {
        let sys = if rc {
            system()
        } else {
            SystemConfig::default()
        };
        Fleet::run(FleetConfig {
            system: sys,
            sessions: vec![
                SessionSpec::new(SchemeKind::Qvr, bench.profile())
                    .with_share(LinkShare::weighted(8.0)),
                SessionSpec::new(SchemeKind::Qvr, bench.profile()),
            ],
            frames,
            seed: SEED,
            server_units: 8,
            shared_network: true,
            link_streams: 2,
            fairness: FairnessPolicy::Weighted,
            server_policy: ServerPolicy::default(),
            stepping: SteppingPolicy::RoundRobin,
            retire_window_ms: None,
            telemetry: TelemetryConfig::default(),
        })
    };
    let off = weighted(false);
    let on = weighted(true);
    out.push_str("Weighted fairness at 8:1 shares — LIWC equilibrium, controller off vs on\n");
    let mut t = TextTable::new(vec![
        "tenant",
        "alloc Mbps",
        "KB off",
        "KB on",
        "target KB",
        "e1 off",
        "e1 on",
        "quality on",
    ]);
    let allocs = qvr::net::allocate_mbps(
        FairnessPolicy::Weighted,
        capacity,
        2,
        &[LinkShare::weighted(8.0), LinkShare::default()],
    );
    for (i, weight) in [8.0f64, 1.0].iter().enumerate() {
        let alloc = allocs[i];
        let target = RateController::target_bytes(alloc, fps);
        let e1 = |s: &FleetSummary| {
            s.sessions[i]
                .mean_e1_deg(frames / 2)
                .map_or_else(|| "-".into(), |e| format!("{e:.1}°"))
        };
        t.row(vec![
            format!("{i} (w={weight:.0})"),
            format!("{alloc:.0}"),
            format!("{:.0}", steady_bytes(&off.sessions[i]) / 1024.0),
            format!("{:.0}", steady_bytes(&on.sessions[i]) / 1024.0),
            format!("{:.0}", target / 1024.0),
            e1(&off),
            e1(&on),
            steady_quality(&on.sessions[i]).map_or_else(|| "-".into(), |q| format!("{q:.2}")),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_the_sweep() {
        // Miniature sweep: same report structure, a fraction of the work.
        let r = report_with(&[(1, None), (2, Some(120.0))], 24);
        assert!(r.contains("Closed-loop rate control"));
        assert!(r.contains("Weighted fairness at 8:1 shares"));
        assert!(r.contains("worst err"));
    }

    #[test]
    fn controller_converges_to_each_tenants_allocation() {
        // Two Q-VR tenants under equal-share fairness, one hard-capped at
        // 60 Mbps: each controller must settle its steady-state bytes per
        // frame within ±10% of what the link actually allocates it.
        let shares = [
            LinkShare::default().with_cap_mbps(60.0),
            LinkShare::default(),
        ];
        let fleet = Fleet::run(FleetConfig {
            system: SystemConfig::default().with_rate_control(RateControlConfig::on()),
            sessions: shares
                .iter()
                .map(|s| {
                    SessionSpec::new(SchemeKind::Qvr, Benchmark::Hl2H.profile()).with_share(*s)
                })
                .collect(),
            frames: 80,
            seed: SEED,
            server_units: 8,
            shared_network: true,
            link_streams: 2,
            fairness: FairnessPolicy::EqualShare,
            server_policy: ServerPolicy::default(),
            stepping: SteppingPolicy::RoundRobin,
            retire_window_ms: None,
            telemetry: TelemetryConfig::default(),
        });
        let allocs = qvr::net::allocate_mbps(
            FairnessPolicy::EqualShare,
            NetworkPreset::WiFi.download_mbps(),
            2,
            &shares,
        );
        let fps = SystemConfig::default().target_fps;
        for (i, alloc) in allocs.iter().enumerate() {
            let target = RateController::target_bytes(*alloc, fps);
            let got = steady_bytes(&fleet.sessions[i]);
            assert!(
                (got - target).abs() / target < 0.10,
                "tenant {i}: {got:.0} B/frame vs {target:.0} allocated",
            );
        }
    }
}
