//! Fleet scaling sweep: multi-tenant sessions on one server + one link.
//!
//! Not a paper artefact — the paper evaluates one user — but the natural
//! extension its title promises: *collaborative* VR. We sweep 1→32 Q-VR
//! sessions sharing the default 8-GPU MCM server and one wireless channel
//! (Wi-Fi / 4G LTE / early 5G), and report fleet tail latency, the FPS
//! fairness floor, server-pool utilisation, and the per-session transmit
//! budget. The expected shape: flat tails while the session count stays
//! within the server pool and the per-session bandwidth share stays
//! workable, then measurable degradation once oversubscribed — with each
//! session's LIWC independently growing its fovea (shrinking its periphery
//! stream) to absorb the crowd.

use crate::{TextTable, SEED};
use qvr::prelude::*;
use qvr::scene::Benchmark;

/// Frames per session (shorter than the single-user artefacts: a 32-session
/// fleet simulates 32× the frames per row).
pub const FLEET_FRAMES: usize = 120;

/// The session counts swept (the default server pool has 8 units).
pub const FLEET_SIZES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Regenerates the fleet scaling sweep.
#[must_use]
pub fn report() -> String {
    report_with(&FLEET_SIZES, FLEET_FRAMES)
}

/// The sweep over explicit session counts and per-session frames (the unit
/// test runs a miniature version; `report` runs the full one).
fn report_with(sizes: &[usize], frames: usize) -> String {
    let bench = Benchmark::Hl2H;
    let mut configs = Vec::new();
    for preset in NetworkPreset::all() {
        for &n in sizes {
            configs.push(FleetConfig::uniform(
                SystemConfig::default().with_network(preset),
                SchemeKind::Qvr,
                bench.profile(),
                n,
                frames,
                SEED,
            ));
        }
    }
    let results = Fleet::run_many(configs);

    let mut out = String::new();
    out.push_str(&format!(
        "Fleet scaling — {} × Q-VR on {} sessions/server-pool sweep, shared link\n",
        bench.label(),
        sizes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join("/"),
    ));
    out.push_str("8 server units (mcm_8_gpu): tails stay flat while sessions fit the pool\n");
    out.push_str("and the per-session link share; oversubscription degrades p95/p99 and\n");
    out.push_str("the FPS floor while mean e1 grows (LIWC pulling work back on-device)\n\n");

    // Pairing is structural: run_many preserves input order, so chunking
    // the results by the inner (sizes) loop length re-yields the
    // preset-major nesting the configs were built with.
    for (preset, preset_results) in NetworkPreset::all().iter().zip(results.chunks(sizes.len())) {
        let mut t = TextTable::new(vec![
            "sessions",
            "p50 MTP",
            "p95 MTP",
            "p99 MTP",
            "FPS floor",
            "server util",
            "KB/frame",
            "mean e1",
        ]);
        for (&n, s) in sizes.iter().zip(preset_results) {
            let mean_e1 = {
                let es: Vec<f64> = s
                    .sessions
                    .iter()
                    .filter_map(|r| r.mean_e1_deg(frames / 2))
                    .collect();
                es.iter().sum::<f64>() / es.len().max(1) as f64
            };
            t.row(vec![
                format!("{n}"),
                format!("{:.1} ms", s.mtp_p50_ms),
                format!("{:.1} ms", s.mtp_p95_ms),
                format!("{:.1} ms", s.mtp_p99_ms),
                format!("{:.0}", s.fps_floor),
                format!("{:.0}%", s.server_utilization * 100.0),
                format!("{:.0}", s.mean_tx_bytes() / 1024.0),
                format!("{mean_e1:.1}°"),
            ]);
        }
        out.push_str(&format!("{preset}\n"));
        out.push_str(&t.render());
        out.push('\n');
    }

    // One heterogeneous fleet: mixed apps and schemes on Wi-Fi. This is the
    // noisy-neighbour demonstration — the non-adaptive tenants (Static ships
    // color+depth full frames, Remote streams everything) saturate the
    // server pool and drag the whole fleet down, where a uniform Q-VR fleet
    // of the same size runs near private-rate latencies (tables above).
    let mixed = Fleet::run(FleetConfig {
        system: SystemConfig::default(),
        // The canonical noisy-neighbour roster (shared with the fig_sched
        // policy sweep, which shows how to fix what this table exposes).
        sessions: crate::fig_sched::mixed_sessions(),
        frames,
        seed: SEED,
        server_units: SystemConfig::default().remote.count() as usize,
        shared_network: true,
        link_streams: SystemConfig::default().remote.count() as usize,
        fairness: FairnessPolicy::EqualShare,
        server_policy: ServerPolicy::default(),
        stepping: SteppingPolicy::RoundRobin,
        retire_window_ms: None,
        telemetry: TelemetryConfig::default(),
    });
    out.push_str(
        "Heterogeneous 8-session fleet (mixed apps + schemes, Wi-Fi) — noisy neighbours\n",
    );
    let mut t = TextTable::new(vec!["session", "scheme", "app", "MTP", "FPS", "KB/frame"]);
    for (i, s) in mixed.sessions.iter().enumerate() {
        t.row(vec![
            format!("{i}"),
            s.scheme.clone(),
            s.app.clone(),
            format!("{:.1} ms", s.mean_mtp_ms()),
            format!("{:.0}", s.fps()),
            format!("{:.0}", s.mean_tx_bytes() / 1024.0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!("fleet: {mixed}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_the_sweep() {
        // Miniature sweep: same report structure, a fraction of the work
        // (the full FLEET_SIZES x FLEET_FRAMES sweep belongs to the
        // release binary, not every `cargo test`).
        let r = report_with(&[1, 2], 10);
        assert!(r.contains("Wi-Fi"));
        assert!(r.contains("4G LTE"));
        assert!(r.contains("Early 5G"));
        assert!(r.contains("1/2"));
        assert!(r.contains("Heterogeneous"));
        assert!(r.contains("noisy neighbours"));
    }
}
