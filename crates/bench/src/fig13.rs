//! Fig. 13: normalised transmitted data size and resolution reduction.

use crate::{parallel_map, TextTable, FRAMES, SEED};
use qvr::prelude::*;

/// Regenerates Fig. 13.
#[must_use]
pub fn report() -> String {
    let config = SystemConfig::default();
    let schemes = [
        SchemeKind::RemoteOnly,
        SchemeKind::StaticCollab,
        SchemeKind::Ffr,
        SchemeKind::Qvr,
    ];
    let mut jobs = Vec::new();
    for bench in Benchmark::all() {
        for s in schemes {
            jobs.push((bench, s));
        }
    }
    let results = parallel_map(jobs.clone(), |(bench, scheme)| {
        scheme.run(&config, bench.profile(), FRAMES, SEED)
    });
    let get = |bench: Benchmark, scheme: SchemeKind| -> &RunSummary {
        let idx = jobs
            .iter()
            .position(|j| j.0 == bench && j.1 == scheme)
            .expect("job exists");
        &results[idx]
    };

    let mut out = String::new();
    out.push_str("Fig. 13 — transmitted data (normalised to remote-only) + resolution reduction\n");
    out.push_str("paper: Static ~1.0 (prefetch, no reduction), Q-VR avg 0.15 (85% cut),\n");
    out.push_str("overall resolution reduction avg 41%; Doom3-L: 96% data cut, 7% res cut\n\n");

    let mut t = TextTable::new(vec![
        "benchmark",
        "Static",
        "FFR",
        "Q-VR",
        "Q-VR res. reduction",
        "mean e1",
    ]);
    let mut static_sum = 0.0;
    let mut ffr_sum = 0.0;
    let mut qvr_sum = 0.0;
    let mut res_sum = 0.0;
    for bench in Benchmark::all() {
        let remote = get(bench, SchemeKind::RemoteOnly).mean_tx_bytes();
        let st = get(bench, SchemeKind::StaticCollab).mean_tx_bytes() / remote;
        let ffr = get(bench, SchemeKind::Ffr).mean_tx_bytes() / remote;
        let qvr_run = get(bench, SchemeKind::Qvr);
        let qvr = qvr_run.mean_tx_bytes() / remote;
        let res = qvr_run.mean_resolution_reduction();
        static_sum += st;
        ffr_sum += ffr;
        qvr_sum += qvr;
        res_sum += res;
        t.row(vec![
            bench.label().to_owned(),
            format!("{st:.2}"),
            format!("{ffr:.2}"),
            format!("{qvr:.2}"),
            format!("{:.0}%", res * 100.0),
            format!("{:.1}°", qvr_run.mean_e1_deg(FRAMES / 2).unwrap_or(0.0)),
        ]);
    }
    let n = Benchmark::all().len() as f64;
    t.row(vec![
        "Avg.".to_owned(),
        format!("{:.2}", static_sum / n),
        format!("{:.2}", ffr_sum / n),
        format!("{:.2}", qvr_sum / n),
        format!("{:.0}%", res_sum / n * 100.0),
        String::new(),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nQ-VR average transmitted-data reduction: {:.0}% (paper 85%)\n",
        (1.0 - qvr_sum / n) * 100.0
    ));
    out
}
