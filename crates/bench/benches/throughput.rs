//! Stepping-throughput benchmarks over the perf-trajectory shapes
//! (DESIGN.md §11): fig_fleet fleets, Poisson churn with windowed
//! retirement, and the mixed scheduling roster. Each benchmark times one
//! full run of the shape at the reduced `BENCH_FRAMES` budget; the
//! committed `BENCH_<n>.json` trajectory uses the `bench_to_json` binary
//! (full budget, explicit sessions/frames-per-second rates) instead.

use criterion::{criterion_group, criterion_main, Criterion};
use qvr_bench::perf;

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group(&format!(
        "stepping throughput ({} frames/session per iter)",
        perf::BENCH_FRAMES
    ));
    for shape in perf::shapes(perf::BENCH_FRAMES) {
        group.bench_function(&shape.name, |b| b.iter(|| shape.run_once()));
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
