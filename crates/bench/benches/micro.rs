//! Criterion microbenchmarks backing the latency-overhead claims of
//! Secs. 4.1–4.3: LIWC's selection must be negligible, UCA's filtering
//! cheap, and the substrate fast enough for full parameter sweeps.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qvr::core::liwc::{LatencyPredictor, Liwc, MotionCodec};
use qvr::core::uca::{FoveatedFrame, Uca, WarpParams};
use qvr::core::FoveationPlan;
use qvr::gpu::{Framebuffer, Mat4, RasterPipeline, Rgba, Triangle, Vec3, Vertex};
use qvr::prelude::*;
use qvr::scene::MotionDelta;

fn bench_liwc(c: &mut Criterion) {
    let mut group = c.benchmark_group("liwc");
    let codec = MotionCodec::default();
    let delta = MotionDelta {
        dof: [1.2, 0.3, 0.0, 0.01, 0.0, 0.002],
        gaze: (0.15, -0.08),
        interaction: 0.2,
    };
    group.bench_function("motion_codec_encode", |b| {
        b.iter(|| black_box(codec.encode(black_box(&delta))))
    });

    let display = DisplayGeometry::vive_pro_class();
    let mar = MarModel::default();
    group.bench_function("select_plus_observe", |b| {
        let mut liwc = Liwc::new(15.0, -1.0, 0.3, LatencyPredictor::new(50_000.0, 0.3, 0.7));
        b.iter(|| {
            let d = liwc.select(
                &delta,
                1_500_000,
                |e| (e / 90.0).powi(2),
                |e| 500_000.0 * (1.0 - e / 100.0),
                200.0,
                2.0,
            );
            liwc.observe(
                1_500_000,
                0.2,
                d.predicted_local_ms,
                d.predicted_remote_ms,
                100_000.0,
                200.0,
                2.0,
            );
            black_box(d.e1_deg)
        })
    });

    group.bench_function("foveation_plan_resolve", |b| {
        b.iter(|| {
            black_box(FoveationPlan::resolve(
                black_box(22.0),
                &display,
                &mar,
                GazePoint::center(),
            ))
        })
    });
    group.finish();
}

fn test_frame(size: u32) -> FoveatedFrame {
    let fovea = Framebuffer::new(size, size, Rgba::new(0.5, 0.3, 0.2, 1.0));
    let middle = Framebuffer::new(size / 2, size / 2, Rgba::new(0.2, 0.5, 0.3, 1.0));
    let outer = Framebuffer::new(size / 4, size / 4, Rgba::new(0.3, 0.2, 0.5, 1.0));
    FoveatedFrame::new(
        size,
        size,
        (size as f32 / 2.0, size as f32 / 2.0),
        fovea,
        size as f32 / 6.0,
        middle,
        size as f32 / 3.0,
        outer,
    )
}

fn bench_uca(c: &mut Criterion) {
    let mut group = c.benchmark_group("uca");
    group.sample_size(20);
    let frame = test_frame(128);
    let warp = WarpParams::lens_only();
    group.bench_function("sequential_compose_then_atw_128", |b| {
        b.iter(|| black_box(Uca::compose_then_atw(black_box(&frame), &warp)))
    });
    group.bench_function("unified_trilinear_128", |b| {
        b.iter(|| black_box(Uca::unified(black_box(&frame), &warp)))
    });
    group.bench_function("classify_tiles_128", |b| {
        b.iter(|| black_box(frame.classify_tiles(32)))
    });
    group.finish();
}

fn bench_rasterizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("rasterizer");
    group.sample_size(20);
    let mvp = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 0.1, 50.0)
        * Mat4::translate(Vec3::new(0.0, 0.0, -3.0));
    let tris: Vec<Triangle> = (0..64)
        .map(|k| {
            let a = k as f32 * 0.4;
            Triangle::new(
                Vertex::colored(Vec3::new(a.cos(), a.sin(), -0.5), [1.0, 0.0, 0.0, 1.0]),
                Vertex::colored(
                    Vec3::new((a + 1.0).cos(), (a + 1.0).sin(), 0.0),
                    [0.0, 1.0, 0.0, 1.0],
                ),
                Vertex::colored(Vec3::new(0.0, 0.0, 0.5), [0.0, 0.0, 1.0, 1.0]),
            )
        })
        .collect();
    group.bench_function("draw_64_triangles_128px", |b| {
        b.iter(|| {
            let mut rp = RasterPipeline::new(128, 128, Rgba::BLACK, 16);
            rp.draw_batch(&mvp, black_box(&tris), None);
            black_box(rp.stats().fragments_shaded)
        })
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group.sample_size(20);
    let tex = qvr::gpu::Texture::value_noise(128, 5, 0.4);
    let mut fb = Framebuffer::new(128, 128, Rgba::BLACK);
    for y in 0..128 {
        for x in 0..128 {
            let v = tex.fetch(i64::from(x), i64::from(y)).r();
            fb.set_pixel(x, y, Rgba::new(v, v * 0.7, 1.0 - v, 1.0));
        }
    }
    let codec = TransformCodec::default();
    let encoded = codec.encode_intra(&fb);
    group.bench_function("encode_intra_128", |b| {
        b.iter(|| black_box(codec.encode_intra(black_box(&fb))))
    });
    group.bench_function("decode_128", |b| {
        b.iter(|| black_box(codec.decode(black_box(&encoded)).unwrap()))
    });
    group.bench_function("size_model_frame_bytes", |b| {
        let sm = SizeModel::default();
        b.iter(|| black_box(sm.frame_bytes(black_box(1920 * 2160), 0.55, 0.5)))
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let config = SystemConfig::default();
    group.bench_function("qvr_30_frames_grid", |b| {
        b.iter(|| black_box(SchemeKind::Qvr.run(&config, Benchmark::Grid.profile(), 30, 42)))
    });
    group.bench_function("baseline_30_frames_grid", |b| {
        b.iter(|| black_box(SchemeKind::LocalOnly.run(&config, Benchmark::Grid.profile(), 30, 42)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_liwc,
    bench_uca,
    bench_rasterizer,
    bench_codec,
    bench_pipeline
);
criterion_main!(benches);
