//! Property tests for the shared-link fairness invariants, over random
//! occupancy/weight/cap/MCS vectors (vendored `proptest` shim; raise the
//! case count with `QVR_PROPTEST_CASES`, as the release CI job does).
//!
//! The invariants locked down here are what Q-VR's LIWC controllers rely
//! on fleet-wide: allocated rates are non-negative and finite, the link
//! never hands out more than its aggregate capacity once oversubscribed,
//! weighted shares are proportional to weights while unclamped, and
//! per-member caps are never exceeded in any mode.

use proptest::prelude::*;
use qvr_net::{allocate_mbps, FairnessPolicy, LinkShare};

/// Builds a valid membership from raw generated vectors, truncated to `n`.
fn members(n: usize, weights: &[f64], cap_raw: &[f64], effs: &[f64]) -> Vec<LinkShare> {
    (0..n)
        .map(|i| LinkShare {
            weight: weights[i],
            // Map the raw draw onto "usually uncapped, sometimes capped":
            // draws above 300 mean no cap, the rest cap in [1, 301) Mbps.
            cap_mbps: (cap_raw[i] <= 300.0).then_some(cap_raw[i].max(1.0)),
            mcs_efficiency: effs[i],
        })
        .collect()
}

/// Max members any generated case uses (generated vectors have this length).
const MAX_N: usize = 24;

proptest! {
    #[test]
    fn rates_are_nonnegative_finite_and_bounded_by_nominal(
        n in 1usize..MAX_N,
        streams in 1usize..12,
        nominal in 10.0f64..1_000.0,
        weights in proptest::collection::vec(0.05f64..20.0, MAX_N),
        cap_raw in proptest::collection::vec(0.0f64..600.0, MAX_N),
        effs in proptest::collection::vec(0.05f64..1.0, MAX_N),
    ) {
        let shares = members(n, &weights, &cap_raw, &effs);
        for policy in FairnessPolicy::all() {
            let rates = allocate_mbps(policy, nominal, streams, &shares);
            prop_assert_eq!(rates.len(), n);
            for (rate, share) in rates.iter().zip(&shares) {
                prop_assert!(rate.is_finite(), "{policy}: rate must be finite");
                prop_assert!(*rate >= 0.0, "{policy}: rate must be non-negative");
                prop_assert!(
                    *rate <= nominal + 1e-9,
                    "{policy}: no member can beat the single-stream rate"
                );
                if policy == FairnessPolicy::Airtime {
                    prop_assert!(
                        *rate <= nominal * share.mcs_efficiency + 1e-9,
                        "airtime: a station cannot beat its own MCS rate"
                    );
                }
            }
        }
    }

    #[test]
    fn oversubscribed_links_never_allocate_past_capacity(
        n in 1usize..MAX_N,
        streams in 1usize..12,
        nominal in 10.0f64..1_000.0,
        weights in proptest::collection::vec(0.05f64..20.0, MAX_N),
        cap_raw in proptest::collection::vec(0.0f64..600.0, MAX_N),
        effs in proptest::collection::vec(0.05f64..1.0, MAX_N),
    ) {
        let shares = members(n, &weights, &cap_raw, &effs);
        // Aggregate capacity: `streams` full-rate spatial streams, of which
        // the membership can occupy at most `n`.
        let capacity = nominal * streams.min(n) as f64;
        for policy in FairnessPolicy::all() {
            let sum: f64 = allocate_mbps(policy, nominal, streams, &shares)
                .iter()
                .sum();
            prop_assert!(
                sum <= capacity * (1.0 + 1e-12),
                "{policy}: allocated {sum} Mbps exceeds capacity {capacity} Mbps \
                 (n={n}, streams={streams})"
            );
        }
    }

    #[test]
    fn weighted_shares_are_proportional_while_unclamped(
        n in 2usize..MAX_N,
        streams in 1usize..12,
        nominal in 10.0f64..1_000.0,
        weights in proptest::collection::vec(0.05f64..20.0, MAX_N),
        cap_raw in proptest::collection::vec(0.0f64..600.0, MAX_N),
        effs in proptest::collection::vec(0.05f64..1.0, MAX_N),
    ) {
        let shares = members(n, &weights, &cap_raw, &effs);
        let rates = allocate_mbps(FairnessPolicy::Weighted, nominal, streams, &shares);
        // Proportionality must hold between members whose allocation is not
        // clamped by their MCS ceiling or their cap.
        let unclamped: Vec<usize> = (0..n)
            .filter(|&i| {
                let ceiling = shares[i]
                    .cap_mbps
                    .map_or(nominal * shares[i].mcs_efficiency, |c| {
                        c.min(nominal * shares[i].mcs_efficiency)
                    });
                rates[i] < ceiling * (1.0 - 1e-9)
            })
            .collect();
        for pair in unclamped.windows(2) {
            let (i, j) = (pair[0], pair[1]);
            let per_weight_i = rates[i] / shares[i].weight;
            let per_weight_j = rates[j] / shares[j].weight;
            prop_assert!(
                (per_weight_i - per_weight_j).abs() <= 1e-9 * per_weight_i.max(per_weight_j),
                "weighted: unclamped members must get equal rate-per-weight, \
                 got {per_weight_i} vs {per_weight_j}"
            );
        }
    }

    #[test]
    fn caps_are_never_exceeded(
        n in 1usize..MAX_N,
        streams in 1usize..12,
        nominal in 10.0f64..1_000.0,
        weights in proptest::collection::vec(0.05f64..20.0, MAX_N),
        cap_raw in proptest::collection::vec(0.0f64..300.0, MAX_N),
        effs in proptest::collection::vec(0.05f64..1.0, MAX_N),
    ) {
        // cap_raw drawn entirely below 300: every member is capped.
        let shares = members(n, &weights, &cap_raw, &effs);
        for policy in FairnessPolicy::all() {
            let rates = allocate_mbps(policy, nominal, streams, &shares);
            for (rate, share) in rates.iter().zip(&shares) {
                let cap = share.cap_mbps.expect("every member is capped here");
                prop_assert!(
                    *rate <= cap * (1.0 + 1e-12),
                    "{policy}: rate {rate} exceeds cap {cap}"
                );
            }
        }
    }

    #[test]
    fn unit_members_reduce_every_policy_to_equal_share(
        n in 1usize..MAX_N,
        streams in 1usize..12,
        nominal in 10.0f64..1_000.0,
    ) {
        // With unit weights, full-rate MCS and no caps, all three policies
        // agree with the classic `occupancy / streams` time-share.
        let shares = vec![LinkShare::default(); n];
        let legacy = nominal / (n as f64 / streams as f64).max(1.0);
        for policy in FairnessPolicy::all() {
            for rate in allocate_mbps(policy, nominal, streams, &shares) {
                prop_assert!(
                    (rate - legacy).abs() <= 1e-9 * legacy,
                    "{policy}: unit members must see the legacy share \
                     ({rate} vs {legacy} Mbps)"
                );
            }
        }
    }
}
