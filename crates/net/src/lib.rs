//! Wireless network channel models for the Q-VR reproduction.
//!
//! The paper computes network latency by dividing compressed frame size by
//! downlink bandwidth, inserts white noise at 20 dB SNR "to better reflect
//! reality", and validates against netcat channels (Sec. 5). Table 2 lists
//! the three technologies: Wi-Fi 200 Mbps, 4G LTE 100 Mbps, early 5G
//! 500 Mbps. This crate implements exactly that model, plus the ACK-derived
//! throughput observability that LIWC's latency predictor reads (Sec. 4.1).
//!
//! # Example
//!
//! ```
//! use qvr_net::{NetworkChannel, NetworkPreset};
//!
//! let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 42);
//! // A 550 KB compressed background at ~200 Mbps takes ~22 ms.
//! let t = ch.download_ms(550.0 * 1024.0);
//! assert!((15.0..35.0).contains(&t));
//! // LIWC reads a smoothed throughput estimate off the ACK stream.
//! assert!(ch.observed_download_mbps() > 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The network technologies of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkPreset {
    /// Wi-Fi: 200 Mbps downlink.
    WiFi,
    /// 4G LTE: 100 Mbps downlink.
    Lte4G,
    /// Early 5G: 500 Mbps downlink.
    Early5G,
}

impl NetworkPreset {
    /// All presets in Table 2 order.
    #[must_use]
    pub fn all() -> [NetworkPreset; 3] {
        [
            NetworkPreset::WiFi,
            NetworkPreset::Lte4G,
            NetworkPreset::Early5G,
        ]
    }

    /// Downlink (download) bandwidth in Mbps (Table 2).
    #[must_use]
    pub fn download_mbps(&self) -> f64 {
        match self {
            NetworkPreset::WiFi => 200.0,
            NetworkPreset::Lte4G => 100.0,
            NetworkPreset::Early5G => 500.0,
        }
    }

    /// Uplink bandwidth in Mbps (pose/input upload; small traffic).
    #[must_use]
    pub fn upload_mbps(&self) -> f64 {
        match self {
            NetworkPreset::WiFi => 80.0,
            NetworkPreset::Lte4G => 30.0,
            NetworkPreset::Early5G => 150.0,
        }
    }

    /// One-way base propagation + queueing latency, ms.
    #[must_use]
    pub fn base_latency_ms(&self) -> f64 {
        match self {
            NetworkPreset::WiFi => 2.0,
            NetworkPreset::Lte4G => 8.0,
            NetworkPreset::Early5G => 1.5,
        }
    }

    /// The paper's display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            NetworkPreset::WiFi => "Wi-Fi",
            NetworkPreset::Lte4G => "4G LTE",
            NetworkPreset::Early5G => "Early 5G",
        }
    }
}

impl fmt::Display for NetworkPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A stateful, seeded channel with SNR-derived throughput jitter and
/// ACK-based throughput observation.
#[derive(Debug, Clone)]
pub struct NetworkChannel {
    preset: NetworkPreset,
    snr_db: f64,
    rng: StdRng,
    /// EMA of effective downlink throughput, Mbps (the "ACK monitor").
    observed_mbps: f64,
    /// EMA smoothing factor.
    alpha: f64,
    transfers: u64,
    /// Concurrent sessions drawing from this channel's bandwidth budget.
    /// The default of 1 is the classic private-channel behaviour; fleets
    /// raise it so every transfer sees the shared rate.
    occupancy: usize,
    /// Concurrent full-rate streams the link can serve (MU-MIMO/OFDMA
    /// spatial capacity). Sharing degrades rates only once `occupancy`
    /// exceeds this; the default of 1 is classic single-stream sharing.
    streams: usize,
}

impl NetworkChannel {
    /// Creates a channel at the paper's default 20 dB SNR.
    #[must_use]
    pub fn new(preset: NetworkPreset, seed: u64) -> Self {
        Self::with_snr(preset, 20.0, seed)
    }

    /// Creates a channel with an explicit SNR in dB.
    ///
    /// # Panics
    ///
    /// Panics if `snr_db` is non-finite.
    #[must_use]
    pub fn with_snr(preset: NetworkPreset, snr_db: f64, seed: u64) -> Self {
        assert!(snr_db.is_finite(), "SNR must be finite");
        NetworkChannel {
            preset,
            snr_db,
            rng: StdRng::seed_from_u64(seed),
            observed_mbps: preset.download_mbps(),
            alpha: 0.25,
            transfers: 0,
            occupancy: 1,
            streams: 1,
        }
    }

    /// Switches the channel into shared mode: `n` concurrent sessions draw
    /// from one bandwidth budget. Every transfer's effective rate is the
    /// nominal rate divided by the contention factor
    /// `max(1, occupancy / streams)` — a fair-share MAC that serves up to
    /// [`NetworkChannel::set_concurrent_streams`] stations at full rate and
    /// time-shares beyond that. The ACK monitor observes the shared rate,
    /// which is what lets each session's LIWC adapt its fovea to the crowd.
    /// `n = 1` restores the private behaviour exactly.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn set_occupancy(&mut self, n: usize) {
        assert!(n > 0, "occupancy must be at least 1");
        self.occupancy = n;
        // Re-anchor the ACK estimate so planning reflects the new share
        // immediately instead of after the EMA warms up.
        self.observed_mbps = self.preset.download_mbps() / self.contention_divisor();
    }

    /// Sets the number of concurrent full-rate streams the link serves
    /// (MU-MIMO/OFDMA spatial capacity). With `k` streams, up to `k`
    /// sharers see private-rate transfers; beyond that the per-transfer
    /// rate scales down by `occupancy / k`. The default of 1 degrades with
    /// the very first extra sharer (classic single-stream MAC).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn set_concurrent_streams(&mut self, k: usize) {
        assert!(k > 0, "a link needs at least one stream");
        self.streams = k;
        self.observed_mbps = self.preset.download_mbps() / self.contention_divisor();
    }

    /// Concurrent sessions sharing this channel.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Concurrent full-rate streams the link can serve.
    #[must_use]
    pub fn concurrent_streams(&self) -> usize {
        self.streams
    }

    /// The rate divisor implied by occupancy over stream capacity, `≥ 1`.
    #[must_use]
    pub fn contention_divisor(&self) -> f64 {
        (self.occupancy as f64 / self.streams as f64).max(1.0)
    }

    /// The configured preset.
    #[must_use]
    pub fn preset(&self) -> NetworkPreset {
        self.preset
    }

    /// Number of downlink transfers performed.
    #[must_use]
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Relative throughput jitter (σ of the multiplicative factor) implied
    /// by the SNR: noise amplitude is `10^(−SNR/20)` of the signal.
    #[must_use]
    pub fn jitter_sigma(&self) -> f64 {
        10f64.powf(-self.snr_db / 20.0)
    }

    /// Samples this transfer's effective throughput factor in `(0.5, 1.0]`-
    /// ish territory: AWGN reduces effective capacity; deep fades hurt more
    /// than lucky frames help.
    fn throughput_factor(&mut self) -> f64 {
        let sigma = self.jitter_sigma();
        // Two-sided Gaussian jitter with a slight downward bias (noise can
        // only destroy capacity on average).
        let g: f64 = {
            // Box-Muller from two uniforms (StdRng has no normal sampler
            // without rand_distr; this keeps dependencies lean).
            let u1: f64 = self.rng.gen_range(1e-9..1.0);
            let u2: f64 = self.rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        (1.0 - sigma * (0.5 + 0.8 * g).abs()).clamp(0.3, 1.0)
    }

    /// Downloads `bytes` over the channel; returns latency in ms and updates
    /// the ACK-observed throughput estimate.
    pub fn download_ms(&mut self, bytes: f64) -> f64 {
        self.preset.base_latency_ms() + self.transfer_only_ms(bytes)
    }

    /// Pure transfer time for `bytes` with throughput jitter but **without**
    /// the base propagation latency — for follow-on chunks of an already
    /// open stream (the connection pays its RTT once).
    pub fn transfer_only_ms(&mut self, bytes: f64) -> f64 {
        let factor = self.throughput_factor();
        let mbps = self.preset.download_mbps() * factor / self.contention_divisor();
        let transfer = bytes.max(0.0) * 8.0 / (mbps * 1_000.0);
        self.observed_mbps = (1.0 - self.alpha) * self.observed_mbps + self.alpha * mbps;
        self.transfers += 1;
        transfer
    }

    /// Uploads `bytes` (pose/input stream); returns latency in ms.
    pub fn upload_ms(&mut self, bytes: f64) -> f64 {
        let factor = self.throughput_factor();
        let mbps = self.preset.upload_mbps() * factor / self.contention_divisor();
        self.preset.base_latency_ms() + bytes.max(0.0) * 8.0 / (mbps * 1_000.0)
    }

    /// The ACK-monitor's smoothed downlink throughput estimate, Mbps.
    ///
    /// This is the "network's ACK packets" channel LIWC taps to assess
    /// remote latency without waiting for software counters.
    #[must_use]
    pub fn observed_download_mbps(&self) -> f64 {
        self.observed_mbps
    }

    /// Deterministic latency estimate (no noise sampling, no state change)
    /// for planning: `bytes` at the observed throughput.
    #[must_use]
    pub fn predict_download_ms(&self, bytes: f64) -> f64 {
        self.preset.base_latency_ms() + bytes.max(0.0) * 8.0 / (self.observed_mbps * 1_000.0)
    }
}

/// A cloneable shared handle to one [`NetworkChannel`], so several sessions
/// can draw from a single bandwidth budget (the multi-tenant shared-link
/// mode). Mirrors the channel API; all methods take `&self` and borrow
/// internally. Sampling order across sharers is whatever order they call
/// in — deterministic under deterministic session scheduling.
#[derive(Debug, Clone)]
pub struct SharedChannel(Rc<RefCell<NetworkChannel>>);

impl SharedChannel {
    /// Wraps a channel in a shareable handle.
    #[must_use]
    pub fn new(channel: NetworkChannel) -> Self {
        SharedChannel(Rc::new(RefCell::new(channel)))
    }

    /// See [`NetworkChannel::set_occupancy`].
    pub fn set_occupancy(&self, n: usize) {
        self.0.borrow_mut().set_occupancy(n);
    }

    /// See [`NetworkChannel::occupancy`].
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.0.borrow().occupancy()
    }

    /// See [`NetworkChannel::set_concurrent_streams`].
    pub fn set_concurrent_streams(&self, k: usize) {
        self.0.borrow_mut().set_concurrent_streams(k);
    }

    /// See [`NetworkChannel::concurrent_streams`].
    #[must_use]
    pub fn concurrent_streams(&self) -> usize {
        self.0.borrow().concurrent_streams()
    }

    /// See [`NetworkChannel::preset`].
    #[must_use]
    pub fn preset(&self) -> NetworkPreset {
        self.0.borrow().preset()
    }

    /// See [`NetworkChannel::transfers`].
    #[must_use]
    pub fn transfers(&self) -> u64 {
        self.0.borrow().transfers()
    }

    /// See [`NetworkChannel::download_ms`].
    pub fn download_ms(&self, bytes: f64) -> f64 {
        self.0.borrow_mut().download_ms(bytes)
    }

    /// See [`NetworkChannel::transfer_only_ms`].
    pub fn transfer_only_ms(&self, bytes: f64) -> f64 {
        self.0.borrow_mut().transfer_only_ms(bytes)
    }

    /// See [`NetworkChannel::upload_ms`].
    pub fn upload_ms(&self, bytes: f64) -> f64 {
        self.0.borrow_mut().upload_ms(bytes)
    }

    /// See [`NetworkChannel::observed_download_mbps`].
    #[must_use]
    pub fn observed_download_mbps(&self) -> f64 {
        self.0.borrow().observed_download_mbps()
    }

    /// See [`NetworkChannel::predict_download_ms`].
    #[must_use]
    pub fn predict_download_ms(&self, bytes: f64) -> f64 {
        self.0.borrow().predict_download_ms(bytes)
    }
}

impl fmt::Display for SharedChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.borrow().fmt(f)
    }
}

impl fmt::Display for NetworkChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} Mbps nominal, {:.0} Mbps observed, {:.0} dB SNR)",
            self.preset,
            self.preset.download_mbps(),
            self.observed_mbps,
            self.snr_db
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_bandwidths() {
        assert_eq!(NetworkPreset::WiFi.download_mbps(), 200.0);
        assert_eq!(NetworkPreset::Lte4G.download_mbps(), 100.0);
        assert_eq!(NetworkPreset::Early5G.download_mbps(), 500.0);
    }

    #[test]
    fn full_background_latency_matches_table1() {
        // Table 1: ~530-650 KB backgrounds cost ~28-38 ms over Wi-Fi.
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 1);
        let mut sum = 0.0;
        let n = 100;
        for _ in 0..n {
            sum += ch.download_ms(590.0 * 1024.0);
        }
        let avg = sum / f64::from(n);
        assert!(
            (24.0..40.0).contains(&avg),
            "avg Wi-Fi background fetch {avg} ms"
        );
    }

    #[test]
    fn faster_preset_is_faster() {
        let bytes = 500_000.0;
        let mut wifi = NetworkChannel::new(NetworkPreset::WiFi, 2);
        let mut lte = NetworkChannel::new(NetworkPreset::Lte4G, 2);
        let mut five_g = NetworkChannel::new(NetworkPreset::Early5G, 2);
        let avg = |ch: &mut NetworkChannel| -> f64 {
            (0..50).map(|_| ch.download_ms(bytes)).sum::<f64>() / 50.0
        };
        let (w, l, g) = (avg(&mut wifi), avg(&mut lte), avg(&mut five_g));
        assert!(g < w && w < l, "5G {g} < WiFi {w} < LTE {l}");
    }

    #[test]
    fn channel_is_deterministic_per_seed() {
        let mut a = NetworkChannel::new(NetworkPreset::WiFi, 9);
        let mut b = NetworkChannel::new(NetworkPreset::WiFi, 9);
        for _ in 0..20 {
            assert_eq!(a.download_ms(123_456.0), b.download_ms(123_456.0));
        }
    }

    #[test]
    fn noise_produces_jitter_but_not_chaos() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 3);
        let times: Vec<f64> = (0..200).map(|_| ch.download_ms(400_000.0)).collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "jitter must exist");
        assert!(max < 2.0 * mean, "20 dB SNR must not double latency");
        assert!(min > 0.5 * mean);
    }

    #[test]
    fn higher_snr_means_less_jitter() {
        let spread = |snr: f64| -> f64 {
            let mut ch = NetworkChannel::with_snr(NetworkPreset::WiFi, snr, 4);
            let times: Vec<f64> = (0..300).map(|_| ch.download_ms(400_000.0)).collect();
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            let var = times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64;
            var.sqrt() / mean
        };
        assert!(spread(40.0) < spread(10.0));
    }

    #[test]
    fn observed_throughput_tracks_nominal() {
        let mut ch = NetworkChannel::new(NetworkPreset::Early5G, 5);
        for _ in 0..50 {
            ch.download_ms(1_000_000.0);
        }
        let obs = ch.observed_download_mbps();
        assert!(
            (0.6..=1.01).contains(&(obs / 500.0)),
            "observed {obs} Mbps should sit near (below) nominal"
        );
    }

    #[test]
    fn prediction_close_to_measurement_mean() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 6);
        for _ in 0..30 {
            ch.download_ms(500_000.0);
        }
        let predicted = ch.predict_download_ms(500_000.0);
        let mut sum = 0.0;
        for _ in 0..50 {
            sum += ch.download_ms(500_000.0);
        }
        let measured = sum / 50.0;
        assert!(
            (predicted - measured).abs() / measured < 0.15,
            "predicted {predicted} vs measured {measured}"
        );
    }

    #[test]
    fn upload_is_cheap_for_pose_data() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 7);
        // A pose + input packet is well under 2 KB.
        let t = ch.upload_ms(2_048.0);
        assert!(t < 5.0, "pose upload {t} ms");
    }

    #[test]
    fn zero_bytes_costs_base_latency() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 8);
        let t = ch.download_ms(0.0);
        assert!((t - NetworkPreset::WiFi.base_latency_ms()).abs() < 1e-9);
    }

    #[test]
    fn transfer_counter_increments() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 10);
        ch.download_ms(1.0);
        ch.download_ms(1.0);
        assert_eq!(ch.transfers(), 2);
    }

    #[test]
    fn display_mentions_preset() {
        let ch = NetworkChannel::new(NetworkPreset::Lte4G, 11);
        assert!(ch.to_string().contains("4G LTE"));
    }

    #[test]
    fn occupancy_divides_effective_bandwidth() {
        let avg = |occ: usize| -> f64 {
            let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 12);
            ch.set_occupancy(occ);
            (0..100)
                .map(|_| ch.transfer_only_ms(400_000.0))
                .sum::<f64>()
                / 100.0
        };
        let solo = avg(1);
        let four = avg(4);
        let ratio = four / solo;
        assert!(
            (3.9..4.1).contains(&ratio),
            "4 sharers should ~4x transfers, got {ratio:.2}"
        );
    }

    #[test]
    fn occupancy_one_is_the_default_private_behaviour() {
        let mut private = NetworkChannel::new(NetworkPreset::Early5G, 13);
        let mut explicit = NetworkChannel::new(NetworkPreset::Early5G, 13);
        explicit.set_occupancy(1);
        for _ in 0..20 {
            assert_eq!(
                private.download_ms(250_000.0),
                explicit.download_ms(250_000.0)
            );
        }
        assert_eq!(private.occupancy(), 1);
    }

    #[test]
    fn ack_monitor_sees_the_shared_rate() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 14);
        ch.set_occupancy(8);
        for _ in 0..50 {
            ch.transfer_only_ms(400_000.0);
        }
        let obs = ch.observed_download_mbps();
        assert!(
            obs < 200.0 / 8.0 * 1.05,
            "observed {obs} Mbps must reflect the 1/8 share"
        );
    }

    #[test]
    #[should_panic(expected = "occupancy")]
    fn zero_occupancy_rejected() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 15);
        ch.set_occupancy(0);
    }

    #[test]
    fn streams_absorb_contention_until_oversubscribed() {
        let avg = |occ: usize, streams: usize| -> f64 {
            let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 17);
            ch.set_concurrent_streams(streams);
            ch.set_occupancy(occ);
            (0..100)
                .map(|_| ch.transfer_only_ms(400_000.0))
                .sum::<f64>()
                / 100.0
        };
        let solo = avg(1, 8);
        let full = avg(8, 8);
        let over = avg(16, 8);
        assert!(
            (full / solo - 1.0).abs() < 1e-9,
            "8 sharers on 8 streams must see private rates"
        );
        let ratio = over / solo;
        assert!(
            (1.9..2.1).contains(&ratio),
            "16 sharers on 8 streams ~2x, got {ratio:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_rejected() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 18);
        ch.set_concurrent_streams(0);
    }

    #[test]
    fn shared_handle_aliases_one_budget() {
        let a = SharedChannel::new(NetworkChannel::new(NetworkPreset::WiFi, 16));
        let b = a.clone();
        a.set_occupancy(2);
        assert_eq!(b.occupancy(), 2);
        a.download_ms(1_000.0);
        b.download_ms(1_000.0);
        assert_eq!(a.transfers(), 2, "both handles hit the same channel");
        assert_eq!(a.preset(), NetworkPreset::WiFi);
        assert!(b.observed_download_mbps() > 0.0);
        assert!(b.predict_download_ms(1_000.0) > 0.0);
        assert!(a.to_string().contains("Wi-Fi"));
    }
}
