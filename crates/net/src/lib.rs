//! Wireless network channel models for the Q-VR reproduction.
//!
//! The paper computes network latency by dividing compressed frame size by
//! downlink bandwidth, inserts white noise at 20 dB SNR "to better reflect
//! reality", and validates against netcat channels (Sec. 5). Table 2 lists
//! the three technologies: Wi-Fi 200 Mbps, 4G LTE 100 Mbps, early 5G
//! 500 Mbps. This crate implements exactly that model, plus the ACK-derived
//! throughput observability that LIWC's latency predictor reads (Sec. 4.1).
//!
//! # Shared links and fairness
//!
//! A multi-tenant link arbitrates its budget with a pluggable
//! [`FairnessPolicy`]. Tenants register a [`LinkShare`] via
//! [`SharedChannel::join`] and get back a member-bound handle whose
//! transfers (and ACK observations) resolve through the policy:
//!
//! * [`FairnessPolicy::EqualShare`] — the classic MAC: every active member
//!   time-shares identically (`occupancy / concurrent_streams`). The
//!   default, and bit-identical to the pre-policy engine.
//! * [`FairnessPolicy::Weighted`] — byte-fair WFQ: allocated rates are
//!   proportional to member weights. Each byte a slow-MCS member receives
//!   costs `1 / mcs_efficiency` airtime, so a cell-edge tenant drags the
//!   whole cell (the classic 802.11 rate-anomaly).
//! * [`FairnessPolicy::Airtime`] — airtime-fair: members get *airtime*
//!   proportional to weight and slow-MCS tenants pay for their own
//!   modulation rate instead of billing the cell.
//!
//! Per-member rate caps apply last in every mode.
//!
//! # Example
//!
//! ```
//! use qvr_net::{NetworkChannel, NetworkPreset};
//!
//! let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 42);
//! // A 550 KB compressed background at ~200 Mbps takes ~22 ms.
//! let t = ch.download_ms(550.0 * 1024.0);
//! assert!((15.0..35.0).contains(&t));
//! // LIWC reads a smoothed throughput estimate off the ACK stream.
//! assert!(ch.observed_download_mbps() > 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The network technologies of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkPreset {
    /// Wi-Fi: 200 Mbps downlink.
    WiFi,
    /// 4G LTE: 100 Mbps downlink.
    Lte4G,
    /// Early 5G: 500 Mbps downlink.
    Early5G,
}

impl NetworkPreset {
    /// All presets in Table 2 order.
    #[must_use]
    pub fn all() -> [NetworkPreset; 3] {
        [
            NetworkPreset::WiFi,
            NetworkPreset::Lte4G,
            NetworkPreset::Early5G,
        ]
    }

    /// Downlink (download) bandwidth in Mbps (Table 2).
    #[must_use]
    pub fn download_mbps(&self) -> f64 {
        match self {
            NetworkPreset::WiFi => 200.0,
            NetworkPreset::Lte4G => 100.0,
            NetworkPreset::Early5G => 500.0,
        }
    }

    /// Uplink bandwidth in Mbps (pose/input upload; small traffic).
    #[must_use]
    pub fn upload_mbps(&self) -> f64 {
        match self {
            NetworkPreset::WiFi => 80.0,
            NetworkPreset::Lte4G => 30.0,
            NetworkPreset::Early5G => 150.0,
        }
    }

    /// One-way base propagation + queueing latency, ms.
    #[must_use]
    pub fn base_latency_ms(&self) -> f64 {
        match self {
            NetworkPreset::WiFi => 2.0,
            NetworkPreset::Lte4G => 8.0,
            NetworkPreset::Early5G => 1.5,
        }
    }

    /// The paper's display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            NetworkPreset::WiFi => "Wi-Fi",
            NetworkPreset::Lte4G => "4G LTE",
            NetworkPreset::Early5G => "Early 5G",
        }
    }
}

impl fmt::Display for NetworkPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How a shared link splits its bandwidth budget between members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FairnessPolicy {
    /// Equal time-share for every active member (the classic MAC and the
    /// pre-policy behaviour): each transfer runs at
    /// `nominal / max(1, occupancy / streams)`. Member weights and MCS
    /// efficiencies are ignored; per-member caps still clamp.
    #[default]
    EqualShare,
    /// Byte-fair weighted queueing: allocated *byte* rates are proportional
    /// to member weights. Receiving a byte at a reduced modulation rate
    /// costs proportionally more airtime, so one slow-MCS member shrinks
    /// everyone's share (the 802.11 performance anomaly, reproduced on
    /// purpose as the foil for [`FairnessPolicy::Airtime`]).
    Weighted,
    /// Airtime-fair scheduling: members get link *time* proportional to
    /// weight, and a slow-MCS member's byte rate is discounted by its own
    /// `mcs_efficiency` instead of being subsidised by the cell.
    Airtime,
}

impl FairnessPolicy {
    /// All policies, default first.
    #[must_use]
    pub fn all() -> [FairnessPolicy; 3] {
        [
            FairnessPolicy::EqualShare,
            FairnessPolicy::Weighted,
            FairnessPolicy::Airtime,
        ]
    }

    /// Display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FairnessPolicy::EqualShare => "equal-share",
            FairnessPolicy::Weighted => "weighted",
            FairnessPolicy::Airtime => "airtime",
        }
    }
}

impl fmt::Display for FairnessPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One member's claim on a shared link, consumed by the link's
/// [`FairnessPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkShare {
    /// Relative share weight, `> 0` and finite. Unit weight is the default;
    /// under [`FairnessPolicy::EqualShare`] weights are ignored.
    pub weight: f64,
    /// Hard cap on this member's allocated downlink rate, Mbps. Applied
    /// last in every policy mode.
    pub cap_mbps: Option<f64>,
    /// Fraction of the nominal PHY rate this station's modulation scheme
    /// achieves, in `(0, 1]` (1.0 = full-rate MCS near the AP; 0.5 = a
    /// cell-edge tenant). [`FairnessPolicy::Weighted`] charges the *cell*
    /// for a low efficiency; [`FairnessPolicy::Airtime`] charges the member.
    pub mcs_efficiency: f64,
}

impl Default for LinkShare {
    fn default() -> Self {
        LinkShare {
            weight: 1.0,
            cap_mbps: None,
            mcs_efficiency: 1.0,
        }
    }
}

impl LinkShare {
    /// A share with an explicit weight and defaults elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite and positive.
    #[must_use]
    pub fn weighted(weight: f64) -> Self {
        let s = LinkShare {
            weight,
            ..LinkShare::default()
        };
        s.validate();
        s
    }

    /// Returns a copy with a hard downlink rate cap in Mbps.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is not finite and positive.
    #[must_use]
    pub fn with_cap_mbps(mut self, cap: f64) -> Self {
        self.cap_mbps = Some(cap);
        self.validate();
        self
    }

    /// Returns a copy with an MCS efficiency in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `eff` is outside `(0, 1]`.
    #[must_use]
    pub fn with_mcs_efficiency(mut self, eff: f64) -> Self {
        self.mcs_efficiency = eff;
        self.validate();
        self
    }

    /// Checks the share's invariants.
    ///
    /// # Panics
    ///
    /// Panics if the weight is not finite-positive, the cap (when present)
    /// is not finite-positive, or the MCS efficiency is outside `(0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.weight.is_finite() && self.weight > 0.0,
            "link share weight must be finite and positive"
        );
        if let Some(cap) = self.cap_mbps {
            assert!(
                cap.is_finite() && cap > 0.0,
                "link rate cap must be finite and positive"
            );
        }
        assert!(
            self.mcs_efficiency > 0.0 && self.mcs_efficiency <= 1.0,
            "MCS efficiency must be in (0, 1]"
        );
    }
}

/// Resolves every member's allocated downlink rate (Mbps, pre-jitter) on a
/// link with `nominal_mbps` per-stream bandwidth and `streams` concurrent
/// full-rate streams (MU-MIMO/OFDMA spatial capacity).
///
/// The link's aggregate budget is `nominal · min(members, streams)`
/// stream-seconds of airtime per second; no member can exceed the
/// single-stream rate `nominal · mcs_efficiency`, and per-member caps apply
/// last. This is a pure function so fairness invariants (non-negativity,
/// capacity conservation, weight proportionality, cap respect) can be
/// property-tested in isolation; the stateful [`NetworkChannel`] resolves
/// every member transfer through it.
#[must_use]
pub fn allocate_mbps(
    policy: FairnessPolicy,
    nominal_mbps: f64,
    streams: usize,
    members: &[LinkShare],
) -> Vec<f64> {
    let n = members.len();
    if n == 0 {
        return Vec::new();
    }
    let k = streams.max(1);
    // Stream-slots the membership can actually occupy.
    let slots = n.min(k) as f64;
    let clamp_cap = |rate: f64, m: &LinkShare| m.cap_mbps.map_or(rate, |c| rate.min(c));
    match policy {
        FairnessPolicy::EqualShare => {
            let share = nominal_mbps / (n as f64 / k as f64).max(1.0);
            members.iter().map(|m| clamp_cap(share, m)).collect()
        }
        FairnessPolicy::Weighted => {
            // Byte-fair: equalised bytes-per-weight, with each byte costing
            // `1 / mcs_efficiency` airtime out of the shared `slots` budget.
            let airtime_weight: f64 = members.iter().map(|m| m.weight / m.mcs_efficiency).sum();
            members
                .iter()
                .map(|m| {
                    let r = (slots * nominal_mbps * m.weight / airtime_weight)
                        .min(nominal_mbps * m.mcs_efficiency);
                    clamp_cap(r, m)
                })
                .collect()
        }
        FairnessPolicy::Airtime => {
            // Airtime-fair: weight buys link *time*; the member's own MCS
            // converts time to bytes.
            let total_weight: f64 = members.iter().map(|m| m.weight).sum();
            members
                .iter()
                .map(|m| {
                    let airtime = (slots * m.weight / total_weight).min(1.0);
                    clamp_cap(nominal_mbps * m.mcs_efficiency * airtime, m)
                })
                .collect()
        }
    }
}

/// Per-member state on a shared channel: the registered share, a
/// member-local ACK monitor (each tenant observes its *own* ACK stream),
/// and the allocation cache. Allocations only change on join / policy /
/// share / stream mutations — exactly the `reanchor` call sites — so the
/// per-transfer hot path reads the cache instead of re-running the
/// allocator over every member.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Member {
    share: LinkShare,
    observed_mbps: f64,
    /// Policy-allocated downlink rate, Mbps (pre-jitter), caps applied.
    allocated_mbps: f64,
    /// The same allocation with per-member caps ignored — the basis for
    /// the uplink share fraction (caps are downlink-only).
    allocated_uncapped_mbps: f64,
    /// Whether the member currently occupies the link. Leavers keep their
    /// slot (ids stay stable) but stop counting toward occupancy and drop
    /// out of the allocation, so the remaining members' shares renormalize.
    active: bool,
}

/// A stateful, seeded channel with SNR-derived throughput jitter and
/// ACK-based throughput observation.
#[derive(Debug, Clone)]
pub struct NetworkChannel {
    preset: NetworkPreset,
    snr_db: f64,
    rng: StdRng,
    /// EMA of effective downlink throughput, Mbps (the "ACK monitor").
    observed_mbps: f64,
    /// EMA smoothing factor.
    alpha: f64,
    transfers: u64,
    /// Concurrent sessions drawing from this channel's bandwidth budget.
    /// The default of 1 is the classic private-channel behaviour; fleets
    /// raise it so every transfer sees the shared rate.
    occupancy: usize,
    /// Concurrent full-rate streams the link can serve (MU-MIMO/OFDMA
    /// spatial capacity). Sharing degrades rates only once `occupancy`
    /// exceeds this; the default of 1 is classic single-stream sharing.
    streams: usize,
    /// How the budget splits between registered members.
    policy: FairnessPolicy,
    /// Registered members (weights, caps, MCS, per-member ACK monitors).
    /// Empty for anonymous sharing driven by [`NetworkChannel::set_occupancy`].
    members: Vec<Member>,
}

impl NetworkChannel {
    /// Creates a channel at the paper's default 20 dB SNR.
    #[must_use]
    pub fn new(preset: NetworkPreset, seed: u64) -> Self {
        Self::with_snr(preset, 20.0, seed)
    }

    /// Creates a channel with an explicit SNR in dB.
    ///
    /// # Panics
    ///
    /// Panics if `snr_db` is non-finite.
    #[must_use]
    pub fn with_snr(preset: NetworkPreset, snr_db: f64, seed: u64) -> Self {
        assert!(snr_db.is_finite(), "SNR must be finite");
        NetworkChannel {
            preset,
            snr_db,
            rng: StdRng::seed_from_u64(seed),
            observed_mbps: preset.download_mbps(),
            alpha: 0.25,
            transfers: 0,
            occupancy: 1,
            streams: 1,
            policy: FairnessPolicy::EqualShare,
            members: Vec::new(),
        }
    }

    /// Switches the channel into shared mode: `n` concurrent sessions draw
    /// from one bandwidth budget. Every transfer's effective rate is the
    /// nominal rate divided by the contention factor
    /// `max(1, occupancy / streams)` — a fair-share MAC that serves up to
    /// [`NetworkChannel::set_concurrent_streams`] stations at full rate and
    /// time-shares beyond that. The ACK monitor observes the shared rate,
    /// which is what lets each session's LIWC adapt its fovea to the crowd.
    /// `n = 1` restores the private behaviour exactly.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, or if members have already joined (their
    /// count *is* the occupancy then — see [`NetworkChannel::join`]).
    pub fn set_occupancy(&mut self, n: usize) {
        assert!(n > 0, "occupancy must be at least 1");
        assert!(
            self.members.is_empty(),
            "occupancy is derived from membership once members have joined"
        );
        self.occupancy = n;
        // Re-anchor the ACK estimate so planning reflects the new share
        // immediately instead of after the EMA warms up.
        self.observed_mbps = self.preset.download_mbps() / self.contention_divisor();
    }

    /// Sets the fairness policy arbitrating this link's budget.
    pub fn set_policy(&mut self, policy: FairnessPolicy) {
        self.policy = policy;
        self.reanchor();
    }

    /// The fairness policy in force.
    #[must_use]
    pub fn policy(&self) -> FairnessPolicy {
        self.policy
    }

    /// Registers a member with the given share and returns its id. The
    /// link's occupancy becomes the member count, and every member's ACK
    /// monitor is re-anchored to its new allocated rate (shares shift when
    /// the membership grows).
    ///
    /// # Panics
    ///
    /// Panics if the share is invalid (see [`LinkShare::validate`]).
    pub fn join(&mut self, share: LinkShare) -> usize {
        share.validate();
        self.members.push(Member {
            share,
            observed_mbps: 0.0,
            allocated_mbps: 0.0,
            allocated_uncapped_mbps: 0.0,
            active: true,
        });
        self.occupancy = self.active_members();
        self.reanchor();
        self.members.len() - 1
    }

    /// Deregisters member `id` from the link (a session leaving mid-run):
    /// its [`LinkShare`] drops out of the allocation, occupancy falls, and
    /// every remaining member's rate renormalizes over the survivors. The
    /// slot stays reserved so ids remain stable and the member can
    /// [`NetworkChannel::rejoin`] later.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a registered member or has already left.
    pub fn leave(&mut self, id: usize) {
        assert!(id < self.members.len(), "unknown link member {id}");
        assert!(self.members[id].active, "link member {id} already left");
        self.members[id].active = false;
        self.occupancy = self.active_members();
        self.reanchor();
    }

    /// Re-registers a departed member with a (possibly new) share.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown, still active, or the share is invalid.
    pub fn rejoin(&mut self, id: usize, share: LinkShare) {
        share.validate();
        assert!(id < self.members.len(), "unknown link member {id}");
        assert!(!self.members[id].active, "link member {id} is still active");
        self.members[id].share = share;
        self.members[id].active = true;
        self.occupancy = self.active_members();
        self.reanchor();
    }

    /// Whether member `id` currently occupies the link.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a registered member.
    #[must_use]
    pub fn member_active(&self, id: usize) -> bool {
        self.members[id].active
    }

    /// Number of registered members (departed slots included).
    #[must_use]
    pub fn members(&self) -> usize {
        self.members.len()
    }

    /// Number of members currently occupying the link.
    #[must_use]
    pub fn active_members(&self) -> usize {
        self.members.iter().filter(|m| m.active).count()
    }

    /// The share member `id` registered with.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a registered member.
    #[must_use]
    pub fn member_share(&self, id: usize) -> LinkShare {
        self.members[id].share
    }

    /// Replaces member `id`'s share (admission-control degrade/upgrade) and
    /// re-anchors every member's ACK monitor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a registered member or the share is invalid.
    pub fn set_member_share(&mut self, id: usize, share: LinkShare) {
        share.validate();
        self.members[id].share = share;
        self.reanchor();
    }

    /// Recomputes the allocation cache and re-anchors the channel-level
    /// and per-member ACK estimates to the policy-allocated rates, so
    /// planning reflects a membership/policy/stream change immediately
    /// instead of after the EMA warms up. Every mutation that can move an
    /// allocation funnels through here; the per-transfer hot path only
    /// reads the cache.
    fn reanchor(&mut self) {
        self.observed_mbps = self.preset.download_mbps() / self.contention_divisor();
        // Only active members occupy the link: the allocator runs over the
        // survivors, so a leave renormalizes everyone else's share.
        let shares: Vec<LinkShare> = self
            .members
            .iter()
            .filter(|m| m.active)
            .map(|m| m.share)
            .collect();
        let capped = allocate_mbps(
            self.policy,
            self.preset.download_mbps(),
            self.streams,
            &shares,
        );
        // Caps are downlink-only; the uplink mirrors the cap-free share.
        let uncapped_shares: Vec<LinkShare> = shares
            .iter()
            .map(|s| LinkShare {
                cap_mbps: None,
                ..*s
            })
            .collect();
        let uncapped = allocate_mbps(
            self.policy,
            self.preset.download_mbps(),
            self.streams,
            &uncapped_shares,
        );
        let mut rates = capped.into_iter().zip(uncapped);
        for member in &mut self.members {
            if member.active {
                let (rate, base) = rates.next().expect("one rate per active member");
                member.observed_mbps = rate;
                member.allocated_mbps = rate;
                member.allocated_uncapped_mbps = base;
            } else {
                member.observed_mbps = 0.0;
                member.allocated_mbps = 0.0;
                member.allocated_uncapped_mbps = 0.0;
            }
        }
    }

    /// The downlink rate (Mbps, pre-jitter) the fairness policy allocates:
    /// for a registered member, its policy share; anonymously (`None`), the
    /// plain equal time-share.
    ///
    /// # Panics
    ///
    /// Panics if `member` is not a registered member id.
    #[must_use]
    pub fn allocated_download_mbps(&self, member: Option<usize>) -> f64 {
        match member {
            None => self.preset.download_mbps() / self.contention_divisor(),
            Some(id) => {
                assert!(id < self.members.len(), "unknown link member {id}");
                self.members[id].allocated_mbps
            }
        }
    }

    /// Sets the number of concurrent full-rate streams the link serves
    /// (MU-MIMO/OFDMA spatial capacity). With `k` streams, up to `k`
    /// sharers see private-rate transfers; beyond that the per-transfer
    /// rate scales down by `occupancy / k`. The default of 1 degrades with
    /// the very first extra sharer (classic single-stream MAC).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn set_concurrent_streams(&mut self, k: usize) {
        assert!(k > 0, "a link needs at least one stream");
        self.streams = k;
        self.reanchor();
    }

    /// Concurrent sessions sharing this channel.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Concurrent full-rate streams the link can serve.
    #[must_use]
    pub fn concurrent_streams(&self) -> usize {
        self.streams
    }

    /// The rate divisor implied by occupancy over stream capacity, `≥ 1`.
    #[must_use]
    pub fn contention_divisor(&self) -> f64 {
        (self.occupancy as f64 / self.streams as f64).max(1.0)
    }

    /// The configured preset.
    #[must_use]
    pub fn preset(&self) -> NetworkPreset {
        self.preset
    }

    /// Number of downlink transfers performed.
    #[must_use]
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Relative throughput jitter (σ of the multiplicative factor) implied
    /// by the SNR: noise amplitude is `10^(−SNR/20)` of the signal.
    #[must_use]
    pub fn jitter_sigma(&self) -> f64 {
        10f64.powf(-self.snr_db / 20.0)
    }

    /// Samples this transfer's effective throughput factor in `(0.5, 1.0]`-
    /// ish territory: AWGN reduces effective capacity; deep fades hurt more
    /// than lucky frames help.
    fn throughput_factor(&mut self) -> f64 {
        let sigma = self.jitter_sigma();
        // Two-sided Gaussian jitter with a slight downward bias (noise can
        // only destroy capacity on average).
        let g: f64 = {
            // Box-Muller from two uniforms (StdRng has no normal sampler
            // without rand_distr; this keeps dependencies lean).
            let u1: f64 = self.rng.gen_range(1e-9..1.0);
            let u2: f64 = self.rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        (1.0 - sigma * (0.5 + 0.8 * g).abs()).clamp(0.3, 1.0)
    }

    /// This transfer's effective downlink rate for `member` after applying
    /// the fairness policy and the sampled jitter `factor`.
    ///
    /// The anonymous equal-share arm keeps the pre-policy expression
    /// verbatim (multiply-then-divide) so the default mode stays
    /// bit-identical to the original engine.
    fn effective_download_mbps(&self, member: Option<usize>, factor: f64) -> f64 {
        match (self.policy, member) {
            (FairnessPolicy::EqualShare, m) => {
                let mut mbps = self.preset.download_mbps() * factor / self.contention_divisor();
                if let Some(cap) = m.and_then(|id| self.members[id].share.cap_mbps) {
                    mbps = mbps.min(cap * factor);
                }
                mbps
            }
            (_, None) => self.preset.download_mbps() * factor / self.contention_divisor(),
            (_, Some(id)) => self.allocated_download_mbps(Some(id)) * factor,
        }
    }

    /// Downloads `bytes` over the channel; returns latency in ms and updates
    /// the ACK-observed throughput estimate.
    pub fn download_ms(&mut self, bytes: f64) -> f64 {
        self.download_ms_for(None, bytes)
    }

    /// [`NetworkChannel::download_ms`] as a registered member (or
    /// anonymously with `None`): the transfer's rate resolves through the
    /// fairness policy for that member.
    pub fn download_ms_for(&mut self, member: Option<usize>, bytes: f64) -> f64 {
        self.preset.base_latency_ms() + self.transfer_only_ms_for(member, bytes)
    }

    /// Pure transfer time for `bytes` with throughput jitter but **without**
    /// the base propagation latency — for follow-on chunks of an already
    /// open stream (the connection pays its RTT once).
    pub fn transfer_only_ms(&mut self, bytes: f64) -> f64 {
        self.transfer_only_ms_for(None, bytes)
    }

    /// [`NetworkChannel::transfer_only_ms`] as a registered member.
    ///
    /// # Panics
    ///
    /// Panics if `member` names a slot that has left the link.
    pub fn transfer_only_ms_for(&mut self, member: Option<usize>, bytes: f64) -> f64 {
        if let Some(id) = member {
            assert!(
                self.members[id].active,
                "link member {id} has left and cannot transfer"
            );
        }
        let factor = self.throughput_factor();
        let mbps = self.effective_download_mbps(member, factor);
        let transfer = bytes.max(0.0) * 8.0 / (mbps * 1_000.0);
        self.observed_mbps = (1.0 - self.alpha) * self.observed_mbps + self.alpha * mbps;
        if let Some(id) = member {
            let m = &mut self.members[id];
            m.observed_mbps = (1.0 - self.alpha) * m.observed_mbps + self.alpha * mbps;
        }
        self.transfers += 1;
        transfer
    }

    /// Uploads `bytes` (pose/input stream); returns latency in ms.
    pub fn upload_ms(&mut self, bytes: f64) -> f64 {
        self.upload_ms_for(None, bytes)
    }

    /// [`NetworkChannel::upload_ms`] as a registered member: the uplink
    /// mirrors the member's downlink share *fraction* (weights and MCS
    /// shape both directions; caps are downlink-only).
    pub fn upload_ms_for(&mut self, member: Option<usize>, bytes: f64) -> f64 {
        if let Some(id) = member {
            assert!(
                self.members[id].active,
                "link member {id} has left and cannot transfer"
            );
        }
        let factor = self.throughput_factor();
        let mbps = match (self.policy, member) {
            (FairnessPolicy::EqualShare, _) | (_, None) => {
                self.preset.upload_mbps() * factor / self.contention_divisor()
            }
            (_, Some(id)) => {
                // Cap-free basis: a downlink rate cap must not throttle the
                // (tiny) pose/input uplink.
                let fraction =
                    self.members[id].allocated_uncapped_mbps / self.preset.download_mbps();
                self.preset.upload_mbps() * fraction * factor
            }
        };
        self.preset.base_latency_ms() + bytes.max(0.0) * 8.0 / (mbps * 1_000.0)
    }

    /// The ACK-monitor's smoothed downlink throughput estimate, Mbps.
    ///
    /// This is the "network's ACK packets" channel LIWC taps to assess
    /// remote latency without waiting for software counters.
    #[must_use]
    pub fn observed_download_mbps(&self) -> f64 {
        self.observed_mbps
    }

    /// The ACK estimate a member's own monitor sees. Under
    /// [`FairnessPolicy::EqualShare`] every station observes the common
    /// time-share, so this is the channel-level estimate (bit-identical to
    /// the pre-policy engine); under weighted/airtime policies each member
    /// tracks its own allocated rate.
    ///
    /// # Panics
    ///
    /// Panics if `member` is not a registered member id.
    #[must_use]
    pub fn observed_download_mbps_for(&self, member: Option<usize>) -> f64 {
        match (self.policy, member) {
            (FairnessPolicy::EqualShare, _) | (_, None) => self.observed_mbps,
            (_, Some(id)) => self.members[id].observed_mbps,
        }
    }

    /// Deterministic latency estimate (no noise sampling, no state change)
    /// for planning: `bytes` at the observed throughput.
    #[must_use]
    pub fn predict_download_ms(&self, bytes: f64) -> f64 {
        self.predict_download_ms_for(None, bytes)
    }

    /// [`NetworkChannel::predict_download_ms`] using a member's own ACK
    /// estimate.
    #[must_use]
    pub fn predict_download_ms_for(&self, member: Option<usize>, bytes: f64) -> f64 {
        let observed = self.observed_download_mbps_for(member);
        self.preset.base_latency_ms() + bytes.max(0.0) * 8.0 / (observed * 1_000.0)
    }
}

/// A cloneable shared handle to one [`NetworkChannel`], so several sessions
/// can draw from a single bandwidth budget (the multi-tenant shared-link
/// mode). Mirrors the channel API; all methods take `&self` and borrow
/// internally. Sampling order across sharers is whatever order they call
/// in — deterministic under deterministic session scheduling.
///
/// A handle is either **unbound** (anonymous equal time-share, the
/// [`SharedChannel::new`] default) or **member-bound** (returned by
/// [`SharedChannel::join`]): a bound handle's transfers, ACK observations,
/// and predictions all resolve through the link's [`FairnessPolicy`] for
/// that member. Cloning preserves the binding.
#[derive(Debug, Clone)]
pub struct SharedChannel {
    channel: Rc<RefCell<NetworkChannel>>,
    member: Option<usize>,
}

impl SharedChannel {
    /// Wraps a channel in a shareable, unbound handle.
    #[must_use]
    pub fn new(channel: NetworkChannel) -> Self {
        SharedChannel {
            channel: Rc::new(RefCell::new(channel)),
            member: None,
        }
    }

    /// Registers a member with the link (see [`NetworkChannel::join`]) and
    /// returns a handle bound to it, aliasing the same budget.
    #[must_use]
    pub fn join(&self, share: LinkShare) -> SharedChannel {
        let member = self.channel.borrow_mut().join(share);
        SharedChannel {
            channel: Rc::clone(&self.channel),
            member: Some(member),
        }
    }

    /// The member this handle is bound to, if any.
    #[must_use]
    pub fn member(&self) -> Option<usize> {
        self.member
    }

    /// Deregisters this handle's member from the link (see
    /// [`NetworkChannel::leave`]): the departed share is released and the
    /// remaining members' allocations renormalize.
    ///
    /// # Panics
    ///
    /// Panics if the handle is unbound or its member already left.
    pub fn leave(&self) {
        let member = self.member.expect("cannot leave with an unbound handle");
        self.channel.borrow_mut().leave(member);
    }

    /// Re-registers this handle's departed member (see
    /// [`NetworkChannel::rejoin`]).
    ///
    /// # Panics
    ///
    /// Panics if the handle is unbound, the member is still active, or the
    /// share is invalid.
    pub fn rejoin(&self, share: LinkShare) {
        let member = self.member.expect("cannot rejoin with an unbound handle");
        self.channel.borrow_mut().rejoin(member, share);
    }

    /// Whether this handle's member currently occupies the link (unbound
    /// handles are never active members).
    #[must_use]
    pub fn member_is_active(&self) -> bool {
        self.member
            .is_some_and(|id| self.channel.borrow().member_active(id))
    }

    /// See [`NetworkChannel::active_members`].
    #[must_use]
    pub fn active_members(&self) -> usize {
        self.channel.borrow().active_members()
    }

    /// See [`NetworkChannel::set_policy`].
    pub fn set_policy(&self, policy: FairnessPolicy) {
        self.channel.borrow_mut().set_policy(policy);
    }

    /// See [`NetworkChannel::policy`].
    #[must_use]
    pub fn policy(&self) -> FairnessPolicy {
        self.channel.borrow().policy()
    }

    /// See [`NetworkChannel::members`].
    #[must_use]
    pub fn members(&self) -> usize {
        self.channel.borrow().members()
    }

    /// This handle's allocated downlink rate (Mbps, pre-jitter) under the
    /// link's fairness policy.
    #[must_use]
    pub fn allocated_download_mbps(&self) -> f64 {
        self.channel.borrow().allocated_download_mbps(self.member)
    }

    /// Replaces this handle's member share (see
    /// [`NetworkChannel::set_member_share`]).
    ///
    /// # Panics
    ///
    /// Panics if the handle is unbound.
    pub fn set_share(&self, share: LinkShare) {
        let member = self
            .member
            .expect("cannot set the share of an unbound handle");
        self.channel.borrow_mut().set_member_share(member, share);
    }

    /// See [`NetworkChannel::set_occupancy`].
    pub fn set_occupancy(&self, n: usize) {
        self.channel.borrow_mut().set_occupancy(n);
    }

    /// See [`NetworkChannel::occupancy`].
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.channel.borrow().occupancy()
    }

    /// See [`NetworkChannel::set_concurrent_streams`].
    pub fn set_concurrent_streams(&self, k: usize) {
        self.channel.borrow_mut().set_concurrent_streams(k);
    }

    /// See [`NetworkChannel::concurrent_streams`].
    #[must_use]
    pub fn concurrent_streams(&self) -> usize {
        self.channel.borrow().concurrent_streams()
    }

    /// See [`NetworkChannel::preset`].
    #[must_use]
    pub fn preset(&self) -> NetworkPreset {
        self.channel.borrow().preset()
    }

    /// See [`NetworkChannel::transfers`].
    #[must_use]
    pub fn transfers(&self) -> u64 {
        self.channel.borrow().transfers()
    }

    /// See [`NetworkChannel::download_ms_for`] (as this handle's member).
    pub fn download_ms(&self, bytes: f64) -> f64 {
        self.channel
            .borrow_mut()
            .download_ms_for(self.member, bytes)
    }

    /// See [`NetworkChannel::transfer_only_ms_for`] (as this handle's
    /// member).
    pub fn transfer_only_ms(&self, bytes: f64) -> f64 {
        self.channel
            .borrow_mut()
            .transfer_only_ms_for(self.member, bytes)
    }

    /// See [`NetworkChannel::upload_ms_for`] (as this handle's member).
    pub fn upload_ms(&self, bytes: f64) -> f64 {
        self.channel.borrow_mut().upload_ms_for(self.member, bytes)
    }

    /// See [`NetworkChannel::observed_download_mbps_for`] (as this handle's
    /// member).
    #[must_use]
    pub fn observed_download_mbps(&self) -> f64 {
        self.channel
            .borrow()
            .observed_download_mbps_for(self.member)
    }

    /// See [`NetworkChannel::predict_download_ms_for`] (as this handle's
    /// member).
    #[must_use]
    pub fn predict_download_ms(&self, bytes: f64) -> f64 {
        self.channel
            .borrow()
            .predict_download_ms_for(self.member, bytes)
    }
}

impl fmt::Display for SharedChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.channel.borrow().fmt(f)
    }
}

impl fmt::Display for NetworkChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} Mbps nominal, {:.0} Mbps observed, {:.0} dB SNR)",
            self.preset,
            self.preset.download_mbps(),
            self.observed_mbps,
            self.snr_db
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_bandwidths() {
        assert_eq!(NetworkPreset::WiFi.download_mbps(), 200.0);
        assert_eq!(NetworkPreset::Lte4G.download_mbps(), 100.0);
        assert_eq!(NetworkPreset::Early5G.download_mbps(), 500.0);
    }

    #[test]
    fn full_background_latency_matches_table1() {
        // Table 1: ~530-650 KB backgrounds cost ~28-38 ms over Wi-Fi.
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 1);
        let mut sum = 0.0;
        let n = 100;
        for _ in 0..n {
            sum += ch.download_ms(590.0 * 1024.0);
        }
        let avg = sum / f64::from(n);
        assert!(
            (24.0..40.0).contains(&avg),
            "avg Wi-Fi background fetch {avg} ms"
        );
    }

    #[test]
    fn faster_preset_is_faster() {
        let bytes = 500_000.0;
        let mut wifi = NetworkChannel::new(NetworkPreset::WiFi, 2);
        let mut lte = NetworkChannel::new(NetworkPreset::Lte4G, 2);
        let mut five_g = NetworkChannel::new(NetworkPreset::Early5G, 2);
        let avg = |ch: &mut NetworkChannel| -> f64 {
            (0..50).map(|_| ch.download_ms(bytes)).sum::<f64>() / 50.0
        };
        let (w, l, g) = (avg(&mut wifi), avg(&mut lte), avg(&mut five_g));
        assert!(g < w && w < l, "5G {g} < WiFi {w} < LTE {l}");
    }

    #[test]
    fn channel_is_deterministic_per_seed() {
        let mut a = NetworkChannel::new(NetworkPreset::WiFi, 9);
        let mut b = NetworkChannel::new(NetworkPreset::WiFi, 9);
        for _ in 0..20 {
            assert_eq!(a.download_ms(123_456.0), b.download_ms(123_456.0));
        }
    }

    #[test]
    fn noise_produces_jitter_but_not_chaos() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 3);
        let times: Vec<f64> = (0..200).map(|_| ch.download_ms(400_000.0)).collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "jitter must exist");
        assert!(max < 2.0 * mean, "20 dB SNR must not double latency");
        assert!(min > 0.5 * mean);
    }

    #[test]
    fn higher_snr_means_less_jitter() {
        let spread = |snr: f64| -> f64 {
            let mut ch = NetworkChannel::with_snr(NetworkPreset::WiFi, snr, 4);
            let times: Vec<f64> = (0..300).map(|_| ch.download_ms(400_000.0)).collect();
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            let var = times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64;
            var.sqrt() / mean
        };
        assert!(spread(40.0) < spread(10.0));
    }

    #[test]
    fn observed_throughput_tracks_nominal() {
        let mut ch = NetworkChannel::new(NetworkPreset::Early5G, 5);
        for _ in 0..50 {
            ch.download_ms(1_000_000.0);
        }
        let obs = ch.observed_download_mbps();
        assert!(
            (0.6..=1.01).contains(&(obs / 500.0)),
            "observed {obs} Mbps should sit near (below) nominal"
        );
    }

    #[test]
    fn prediction_close_to_measurement_mean() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 6);
        for _ in 0..30 {
            ch.download_ms(500_000.0);
        }
        let predicted = ch.predict_download_ms(500_000.0);
        let mut sum = 0.0;
        for _ in 0..50 {
            sum += ch.download_ms(500_000.0);
        }
        let measured = sum / 50.0;
        assert!(
            (predicted - measured).abs() / measured < 0.15,
            "predicted {predicted} vs measured {measured}"
        );
    }

    #[test]
    fn upload_is_cheap_for_pose_data() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 7);
        // A pose + input packet is well under 2 KB.
        let t = ch.upload_ms(2_048.0);
        assert!(t < 5.0, "pose upload {t} ms");
    }

    #[test]
    fn zero_bytes_costs_base_latency() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 8);
        let t = ch.download_ms(0.0);
        assert!((t - NetworkPreset::WiFi.base_latency_ms()).abs() < 1e-9);
    }

    #[test]
    fn transfer_counter_increments() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 10);
        ch.download_ms(1.0);
        ch.download_ms(1.0);
        assert_eq!(ch.transfers(), 2);
    }

    #[test]
    fn display_mentions_preset() {
        let ch = NetworkChannel::new(NetworkPreset::Lte4G, 11);
        assert!(ch.to_string().contains("4G LTE"));
    }

    #[test]
    fn occupancy_divides_effective_bandwidth() {
        let avg = |occ: usize| -> f64 {
            let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 12);
            ch.set_occupancy(occ);
            (0..100)
                .map(|_| ch.transfer_only_ms(400_000.0))
                .sum::<f64>()
                / 100.0
        };
        let solo = avg(1);
        let four = avg(4);
        let ratio = four / solo;
        assert!(
            (3.9..4.1).contains(&ratio),
            "4 sharers should ~4x transfers, got {ratio:.2}"
        );
    }

    #[test]
    fn occupancy_one_is_the_default_private_behaviour() {
        let mut private = NetworkChannel::new(NetworkPreset::Early5G, 13);
        let mut explicit = NetworkChannel::new(NetworkPreset::Early5G, 13);
        explicit.set_occupancy(1);
        for _ in 0..20 {
            assert_eq!(
                private.download_ms(250_000.0),
                explicit.download_ms(250_000.0)
            );
        }
        assert_eq!(private.occupancy(), 1);
    }

    #[test]
    fn ack_monitor_sees_the_shared_rate() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 14);
        ch.set_occupancy(8);
        for _ in 0..50 {
            ch.transfer_only_ms(400_000.0);
        }
        let obs = ch.observed_download_mbps();
        assert!(
            obs < 200.0 / 8.0 * 1.05,
            "observed {obs} Mbps must reflect the 1/8 share"
        );
    }

    #[test]
    #[should_panic(expected = "occupancy")]
    fn zero_occupancy_rejected() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 15);
        ch.set_occupancy(0);
    }

    #[test]
    fn streams_share_contention_until_oversubscribed() {
        let avg = |occ: usize, streams: usize| -> f64 {
            let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 17);
            ch.set_concurrent_streams(streams);
            ch.set_occupancy(occ);
            (0..100)
                .map(|_| ch.transfer_only_ms(400_000.0))
                .sum::<f64>()
                / 100.0
        };
        let solo = avg(1, 8);
        let full = avg(8, 8);
        let over = avg(16, 8);
        assert!(
            (full / solo - 1.0).abs() < 1e-9,
            "8 sharers on 8 streams must see private rates"
        );
        let ratio = over / solo;
        assert!(
            (1.9..2.1).contains(&ratio),
            "16 sharers on 8 streams ~2x, got {ratio:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_rejected() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 18);
        ch.set_concurrent_streams(0);
    }

    #[test]
    fn equal_share_members_match_anonymous_sharing_exactly() {
        // The golden-compat contract at channel level: a member-bound
        // transfer under EqualShare with a default share draws the same
        // bits as the pre-policy anonymous path.
        let mut legacy = NetworkChannel::new(NetworkPreset::WiFi, 21);
        legacy.set_concurrent_streams(2);
        legacy.set_occupancy(3);
        let mut member = NetworkChannel::new(NetworkPreset::WiFi, 21);
        member.set_concurrent_streams(2);
        let ids: Vec<usize> = (0..3).map(|_| member.join(LinkShare::default())).collect();
        assert_eq!(member.occupancy(), 3);
        assert_eq!(
            legacy.observed_download_mbps(),
            member.observed_download_mbps_for(Some(ids[0]))
        );
        for i in 0..30 {
            let id = ids[i % 3];
            assert_eq!(
                legacy.transfer_only_ms(300_000.0),
                member.transfer_only_ms_for(Some(id), 300_000.0)
            );
            assert_eq!(
                legacy.upload_ms(2_000.0),
                member.upload_ms_for(Some(id), 2_000.0)
            );
            assert_eq!(
                legacy.observed_download_mbps(),
                member.observed_download_mbps_for(Some(id))
            );
        }
    }

    #[test]
    fn weighted_rates_are_proportional_to_weights() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 22);
        ch.set_policy(FairnessPolicy::Weighted);
        let heavy = ch.join(LinkShare::weighted(3.0));
        let light = ch.join(LinkShare::weighted(1.0));
        // 2 members on 1 stream, weights 3:1 over the 200 Mbps budget.
        let h = ch.allocated_download_mbps(Some(heavy));
        let l = ch.allocated_download_mbps(Some(light));
        assert!((h / l - 3.0).abs() < 1e-9, "3:1 weights, got {h}/{l}");
        assert!((h + l - 200.0).abs() < 1e-9, "shares must fill the budget");
    }

    #[test]
    fn caps_clamp_in_every_mode() {
        for policy in FairnessPolicy::all() {
            let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 23);
            ch.set_policy(policy);
            let capped = ch.join(LinkShare::default().with_cap_mbps(10.0));
            let free = ch.join(LinkShare::default());
            assert!(
                ch.allocated_download_mbps(Some(capped)) <= 10.0 + 1e-12,
                "{policy}: cap exceeded"
            );
            assert!(ch.allocated_download_mbps(Some(free)) > 10.0);
            // Transfer time reflects the cap: ~80x slower than the free
            // member's full share would be at 10 vs ~100 Mbps.
            let t_capped = ch.transfer_only_ms_for(Some(capped), 100_000.0);
            let t_free = ch.transfer_only_ms_for(Some(free), 100_000.0);
            assert!(
                t_capped > 2.0 * t_free,
                "{policy}: capped member must run much slower"
            );
        }
    }

    #[test]
    fn download_caps_do_not_throttle_the_uplink() {
        // A hard 5 Mbps downlink cap must leave the (tiny) pose uplink at
        // the member's cap-free share — caps are downlink-only.
        let mean_upload = |cap: Option<f64>| {
            let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 31);
            ch.set_policy(FairnessPolicy::Weighted);
            let share = cap.map_or(LinkShare::default(), |c| {
                LinkShare::default().with_cap_mbps(c)
            });
            let capped = ch.join(share);
            let _other = ch.join(LinkShare::default());
            (0..50)
                .map(|_| ch.upload_ms_for(Some(capped), 2_048.0))
                .sum::<f64>()
                / 50.0
        };
        let with_cap = mean_upload(Some(5.0));
        let without = mean_upload(None);
        assert!(
            (with_cap / without - 1.0).abs() < 0.05,
            "a downlink cap must not slow uploads: {with_cap:.3} vs {without:.3} ms"
        );
    }

    #[test]
    fn airtime_charges_the_slow_station_weighted_charges_the_cell() {
        // One full-rate member + one half-rate (cell-edge) member. Byte-fair
        // weighted queueing drags the fast member below its fair half;
        // airtime fairness preserves the fast member's half and halves the
        // slow one's bytes.
        let rate_of_fast = |policy: FairnessPolicy| {
            let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 24);
            ch.set_policy(policy);
            let fast = ch.join(LinkShare::default());
            let _slow = ch.join(LinkShare::default().with_mcs_efficiency(0.5));
            ch.allocated_download_mbps(Some(fast))
        };
        let fair_half = 100.0;
        assert!(
            rate_of_fast(FairnessPolicy::Weighted) < 0.75 * fair_half,
            "byte-fairness must tax the fast member for the slow one"
        );
        assert!(
            (rate_of_fast(FairnessPolicy::Airtime) - fair_half).abs() < 1e-9,
            "airtime fairness must not tax the fast member"
        );
    }

    #[test]
    fn member_ack_monitor_tracks_its_own_share() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 25);
        ch.set_policy(FairnessPolicy::Weighted);
        let heavy = ch.join(LinkShare::weighted(4.0));
        let light = ch.join(LinkShare::weighted(1.0));
        for _ in 0..40 {
            ch.transfer_only_ms_for(Some(heavy), 200_000.0);
            ch.transfer_only_ms_for(Some(light), 200_000.0);
        }
        let h = ch.observed_download_mbps_for(Some(heavy));
        let l = ch.observed_download_mbps_for(Some(light));
        assert!(
            h > 2.5 * l,
            "heavy member must observe a much larger share: {h} vs {l} Mbps"
        );
    }

    #[test]
    fn joining_members_drives_occupancy() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 26);
        assert_eq!(ch.members(), 0);
        let a = ch.join(LinkShare::default());
        let b = ch.join(LinkShare::default());
        assert_eq!((a, b), (0, 1));
        assert_eq!(ch.members(), 2);
        assert_eq!(ch.occupancy(), 2);
        assert_eq!(ch.member_share(b), LinkShare::default());
    }

    #[test]
    #[should_panic(expected = "derived from membership")]
    fn manual_occupancy_rejected_after_joins() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 27);
        ch.join(LinkShare::default());
        ch.set_occupancy(4);
    }

    #[test]
    fn set_member_share_reanchors_the_allocation() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 28);
        ch.set_policy(FairnessPolicy::Weighted);
        let a = ch.join(LinkShare::default());
        let _b = ch.join(LinkShare::default());
        assert!((ch.allocated_download_mbps(Some(a)) - 100.0).abs() < 1e-9);
        ch.set_member_share(a, LinkShare::weighted(1.0).with_cap_mbps(25.0));
        assert!((ch.allocated_download_mbps(Some(a)) - 25.0).abs() < 1e-9);
        assert!((ch.observed_download_mbps_for(Some(a)) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn allocate_mbps_empty_membership_is_empty() {
        assert!(allocate_mbps(FairnessPolicy::Weighted, 200.0, 4, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "weight must be finite and positive")]
    fn invalid_share_rejected_at_join() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 29);
        ch.join(LinkShare::weighted(1.0));
        ch.set_member_share(
            0,
            LinkShare {
                weight: 0.0,
                cap_mbps: None,
                mcs_efficiency: 1.0,
            },
        );
    }

    #[test]
    fn bound_handles_resolve_their_member() {
        let base = SharedChannel::new(NetworkChannel::new(NetworkPreset::WiFi, 30));
        base.set_policy(FairnessPolicy::Weighted);
        assert_eq!(base.policy(), FairnessPolicy::Weighted);
        let heavy = base.join(LinkShare::weighted(3.0));
        let light = base.join(LinkShare::weighted(1.0));
        assert_eq!(base.member(), None);
        assert_eq!(heavy.member(), Some(0));
        assert_eq!(light.member(), Some(1));
        assert_eq!(base.members(), 2);
        let h = heavy.allocated_download_mbps();
        let l = light.allocated_download_mbps();
        assert!((h / l - 3.0).abs() < 1e-9);
        // Transfers through either handle debit the one shared budget.
        heavy.download_ms(10_000.0);
        light.download_ms(10_000.0);
        assert_eq!(base.transfers(), 2);
        // Degrading through the handle re-resolves immediately.
        light.set_share(LinkShare::weighted(1.0).with_cap_mbps(5.0));
        assert!((light.allocated_download_mbps() - 5.0).abs() < 1e-9);
        assert!(light.predict_download_ms(10_000.0) > heavy.predict_download_ms(10_000.0));
    }

    #[test]
    fn leave_renormalizes_allocations_over_remaining_members() {
        // The post-leave allocation-sum regression: in every policy mode,
        // after a member leaves the survivors' allocated rates must sum back
        // to the full single-stream budget (no stranded share), and
        // occupancy must fall so equal-share transfers speed up.
        for policy in FairnessPolicy::all() {
            let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 40);
            ch.set_policy(policy);
            let a = ch.join(LinkShare::weighted(2.0));
            let b = ch.join(LinkShare::default());
            let c = ch.join(LinkShare::default());
            assert_eq!(ch.occupancy(), 3);
            ch.leave(b);
            assert_eq!(ch.occupancy(), 2, "{policy}: occupancy must fall");
            assert_eq!(ch.active_members(), 2);
            assert!(!ch.member_active(b));
            assert_eq!(ch.allocated_download_mbps(Some(b)), 0.0);
            let sum = ch.allocated_download_mbps(Some(a)) + ch.allocated_download_mbps(Some(c));
            if policy == FairnessPolicy::EqualShare {
                // Equal share ignores weights; with 2 active on 1 stream
                // each sees the halved time-share via the divisor.
                assert!((ch.contention_divisor() - 2.0).abs() < 1e-12);
            } else {
                assert!(
                    (sum - 200.0).abs() < 1e-9,
                    "{policy}: survivors must reclaim the full budget, got {sum}"
                );
            }
        }
    }

    #[test]
    fn leave_and_rejoin_round_trip() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 41);
        ch.set_policy(FairnessPolicy::Weighted);
        let a = ch.join(LinkShare::default());
        let b = ch.join(LinkShare::default());
        let before = ch.allocated_download_mbps(Some(a));
        ch.leave(b);
        assert!(ch.allocated_download_mbps(Some(a)) > before);
        ch.rejoin(b, LinkShare::weighted(3.0));
        assert!(ch.member_active(b));
        assert_eq!(ch.occupancy(), 2);
        let (ra, rb) = (
            ch.allocated_download_mbps(Some(a)),
            ch.allocated_download_mbps(Some(b)),
        );
        assert!(
            (rb / ra - 3.0).abs() < 1e-9,
            "rejoin share applies: {rb}/{ra}"
        );
    }

    #[test]
    #[should_panic(expected = "already left")]
    fn double_leave_rejected() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 42);
        let a = ch.join(LinkShare::default());
        ch.leave(a);
        ch.leave(a);
    }

    #[test]
    #[should_panic(expected = "cannot transfer")]
    fn departed_member_cannot_transfer() {
        let mut ch = NetworkChannel::new(NetworkPreset::WiFi, 43);
        ch.set_policy(FairnessPolicy::Airtime);
        let a = ch.join(LinkShare::default());
        ch.leave(a);
        let _ = ch.transfer_only_ms_for(Some(a), 1_000.0);
    }

    #[test]
    fn bound_handles_leave_through_the_shared_link() {
        let base = SharedChannel::new(NetworkChannel::new(NetworkPreset::WiFi, 44));
        let a = base.join(LinkShare::default());
        let b = base.join(LinkShare::default());
        assert!(a.member_is_active() && b.member_is_active());
        assert_eq!(base.active_members(), 2);
        b.leave();
        assert!(!b.member_is_active());
        assert_eq!(base.active_members(), 1);
        assert_eq!(base.occupancy(), 1);
        // The survivor's equal time-share is back to private rate.
        assert!((a.allocated_download_mbps() - 200.0).abs() < 1e-9);
        b.rejoin(LinkShare::default());
        assert_eq!(base.active_members(), 2);
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(FairnessPolicy::EqualShare.to_string(), "equal-share");
        assert_eq!(FairnessPolicy::Weighted.to_string(), "weighted");
        assert_eq!(FairnessPolicy::Airtime.to_string(), "airtime");
        assert_eq!(FairnessPolicy::default(), FairnessPolicy::EqualShare);
    }

    #[test]
    fn shared_handle_aliases_one_budget() {
        let a = SharedChannel::new(NetworkChannel::new(NetworkPreset::WiFi, 16));
        let b = a.clone();
        a.set_occupancy(2);
        assert_eq!(b.occupancy(), 2);
        a.download_ms(1_000.0);
        b.download_ms(1_000.0);
        assert_eq!(a.transfers(), 2, "both handles hit the same channel");
        assert_eq!(a.preset(), NetworkPreset::WiFi);
        assert!(b.observed_download_mbps() > 0.0);
        assert!(b.predict_download_ms(1_000.0) > 0.0);
        assert!(a.to_string().contains("Wi-Fi"));
    }
}
