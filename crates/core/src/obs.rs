//! Observability over the telemetry seam: span tracing, mergeable
//! metrics, and a streaming SLO health monitor (DESIGN.md §13).
//!
//! PR 5's sinks made fleet statistics *streamable* and PR 7 made them
//! *mergeable*; this module makes them *explainable*. Three parts, all
//! ordinary [`TelemetrySink`]s riding the existing fan-out so they
//! inherit batching and shard-cell merge semantics for free:
//!
//! * [`TraceSink`] — records the per-stage span breakdown
//!   ([`crate::telemetry::FrameSpans`]) of deterministically *sampled*
//!   sessions and exports Chrome-trace / Perfetto JSON: one track per
//!   session, one per server GPU unit, so the §7 coupling artifacts (a
//!   best-effort tenant's chain pinning a unit's frontier while an
//!   adaptive tenant's network span stretches) are visible instead of
//!   inferred from percentiles.
//! * [`MetricsSink`] — per-tenant-class MTP / tx / stage-busy
//!   [`Histogram`]s plus exact integer counters, with a Prometheus-style
//!   text [exposition](MetricsSink::exposition). Histogram buckets merge
//!   by `u64` addition, so `ShardSummary::merge` folds cell expositions
//!   shard-wide bit-identically to one sink over the concatenated stream
//!   — the monitoring path that replaces O(run) sample retention at
//!   fleet scale (the exact `SortedSamples` path stays the default for
//!   the golden numbers).
//! * [`HealthMonitor`] — evaluates SLO rules ([`HealthRules`]: p95-MTP
//!   ceiling, FPS floor, energy-per-frame budget, utilization band) over
//!   sliding histogram windows as the fleet's closing frontier advances,
//!   emitting a deterministic timestamped [`Incident`] timeline (breach
//!   open/close, severity, offending class). Churn fleets may opt in to
//!   a degrade trigger: joins arriving during an open critical incident
//!   enter best-effort.
//!
//! Everything here observes and never steers (the churn degrade trigger
//! is an explicit opt-in, like `MeasuredLoad` placement): at default
//! configuration none of these sinks run, and when they do run they only
//! consume the event stream, so schedules, RNG draws, and the fig_fleet
//! goldens stay bit-identical.

use crate::metrics::Histogram;
use crate::sched::TenantClass;
use crate::telemetry::{FrameEvent, StageSpan, TelemetrySink};
use qvr_energy::ServerPowerModel;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fmt::Write as _;

/// Dense index for the two tenant classes (per-class metric arrays).
fn class_index(class: TenantClass) -> usize {
    match class {
        TenantClass::Adaptive => 0,
        TenantClass::BestEffort => 1,
    }
}

/// The two classes in index order (exposition renders both, always, so
/// the line set is fixed and merge-stable).
const CLASSES: [TenantClass; 2] = [TenantClass::Adaptive, TenantClass::BestEffort];

// ---------------------------------------------------------------------------
// (a) Span tracing
// ---------------------------------------------------------------------------

/// Which sessions a [`TraceSink`] records: a seeded, deterministic
/// 1-in-N hash sample over session slots. The same `(seed,
/// sample_one_in)` pair picks the same slots on every run, every worker
/// count, and every rerun — sampling is a pure function of the slot id,
/// never of arrival order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Sampling seed (mixed with the slot id; independent of the fleet's
    /// simulation seed so tracing cannot perturb schedules).
    pub seed: u64,
    /// Record one session in this many (1 = trace everything).
    pub sample_one_in: u32,
}

impl Default for TraceConfig {
    /// Trace every session (the small-fleet debugging default).
    fn default() -> Self {
        TraceConfig {
            seed: 0,
            sample_one_in: 1,
        }
    }
}

impl TraceConfig {
    /// A config sampling one session in `sample_one_in` under `seed`.
    #[must_use]
    pub fn sampled(seed: u64, sample_one_in: u32) -> Self {
        TraceConfig {
            seed,
            sample_one_in: sample_one_in.max(1),
        }
    }

    /// Whether this configuration records session slot `session` — the
    /// public sampling predicate (tests pick seeds with known sampled
    /// slots through it).
    #[must_use]
    pub fn samples_session(&self, session: usize) -> bool {
        if self.sample_one_in <= 1 {
            return true;
        }
        splitmix64(self.seed ^ (session as u64)).is_multiple_of(u64::from(self.sample_one_in))
    }
}

/// SplitMix64 finaliser — a well-mixed stateless hash for the sampling
/// predicate.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Records sampled sessions' frame events (each carrying its
/// [`crate::telemetry::FrameSpans`]) and exports them as Chrome-trace /
/// Perfetto JSON — load the dump at `chrome://tracing` or
/// <https://ui.perfetto.dev>.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSink {
    config: TraceConfig,
    events: Vec<FrameEvent>,
}

impl TraceSink {
    /// An empty sink recording under `config`.
    #[must_use]
    pub fn new(config: TraceConfig) -> Self {
        TraceSink {
            config,
            events: Vec::new(),
        }
    }

    /// The sampling configuration.
    #[must_use]
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Recorded events, in stream order.
    #[must_use]
    pub fn events(&self) -> &[FrameEvent] {
        &self.events
    }

    /// Number of recorded frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the recording as Chrome-trace JSON (the "JSON Array
    /// Format" with complete `ph:"X"` slices). Two process groups:
    /// pid 1 is *sessions* (one track per sampled slot, all six pipeline
    /// stages), pid 2 is *server units* (one track per GPU unit, carrying
    /// the server-side render/encode slices of every sampled session that
    /// landed there — cross-session unit coupling reads directly off this
    /// group). Timestamps are virtual-time microseconds (`ts = ms ×
    /// 1000`). Deterministic: stream order plus Rust's shortest-roundtrip
    /// float formatting.
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut first = true;
        let meta =
            |out: &mut String, first: &mut bool, pid: usize, tid: usize, kind: &str, name: &str| {
                sep(out, first);
                let _ = write!(
                    out,
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{kind}\",\
                 \"args\":{{\"name\":\"{name}\"}}}}"
                );
            };
        meta(&mut out, &mut first, 1, 0, "process_name", "sessions");
        meta(&mut out, &mut first, 2, 0, "process_name", "server units");
        let sessions: BTreeSet<usize> = self.events.iter().map(|e| e.session).collect();
        for &s in &sessions {
            let label = format!("session {s}");
            meta(&mut out, &mut first, 1, s, "thread_name", &label);
        }
        let units: BTreeSet<usize> = self.events.iter().filter_map(|e| e.unit).collect();
        for &u in &units {
            let label = format!("unit {u}");
            meta(&mut out, &mut first, 2, u, "thread_name", &label);
        }
        for e in &self.events {
            let stages: [(&str, StageSpan); 6] = [
                ("upload", e.spans.upload),
                ("render", e.spans.render),
                ("encode", e.spans.encode),
                ("network", e.spans.network),
                ("decode", e.spans.decode),
                ("display", e.spans.display),
            ];
            for (name, span) in stages {
                if span.is_empty() {
                    continue;
                }
                sep(&mut out, &mut first);
                slice(&mut out, name, span, 1, e.session, e);
                // Server-side stages repeat on the serving unit's track.
                if let (Some(u), "render" | "encode") = (e.unit, name) {
                    sep(&mut out, &mut first);
                    slice(&mut out, name, span, 2, u, e);
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Writes the separator between JSON array elements.
fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

/// Writes one complete-slice trace event.
fn slice(out: &mut String, name: &str, span: StageSpan, pid: usize, tid: usize, e: &FrameEvent) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":{pid},\"tid\":{tid},\"args\":{{\"session\":{},\"frame\":{},\
         \"mtp_ms\":{},\"class\":\"{}\"}}}}",
        span.start_ms * 1_000.0,
        span.duration_ms() * 1_000.0,
        e.session,
        e.frame,
        e.mtp_ms,
        e.class.label(),
    );
}

impl TelemetrySink for TraceSink {
    fn on_frame(&mut self, event: &FrameEvent) {
        if self.config.samples_session(event.session) {
            self.events.push(*event);
        }
    }
}

// ---------------------------------------------------------------------------
// (b) Mergeable metrics
// ---------------------------------------------------------------------------

/// One tenant class's metric state: exact integer counters plus bounded
/// log-linear histograms. Everything merges exactly (`u64` adds and
/// bucket-wise histogram absorption), which is what lets a shard fold
/// cell snapshots into a fleet-identical exposition.
#[derive(Debug, Clone, Default, PartialEq)]
struct ClassMetrics {
    /// Frames displayed.
    frames: u64,
    /// Frames whose remote chain touched the server pool.
    server_frames: u64,
    /// Motion-to-photon latency, ms.
    mtp_ms: Histogram,
    /// Downlink bytes per frame.
    tx_bytes: Histogram,
    /// Attributed per-frame busy across server + radio stages, ms.
    stage_busy_ms: Histogram,
    /// Rate-controller codec quality per frame (recorded only when a
    /// tenant's controller is on; empty otherwise).
    quality: Histogram,
}

impl ClassMetrics {
    fn absorb(&mut self, other: &ClassMetrics) {
        self.frames += other.frames;
        self.server_frames += other.server_frames;
        self.mtp_ms.absorb(&other.mtp_ms);
        self.tx_bytes.absorb(&other.tx_bytes);
        self.stage_busy_ms.absorb(&other.stage_busy_ms);
        self.quality.absorb(&other.quality);
    }
}

/// Per-class mergeable metrics over the event stream: MTP / tx /
/// stage-busy [`Histogram`]s (1% relative error) and exact counters,
/// rendered as a Prometheus-style text [`MetricsSink::exposition`].
///
/// The merge law (DESIGN.md §12) holds bit-exactly: counters are `u64`
/// sums and histogram merges are bucket-wise `u64` adds, so K cells'
/// sinks absorbed in any order equal one sink over the concatenated
/// stream — and therefore a 1-cell shard's exposition equals the
/// fleet's, *bitwise* (asserted by `fig_shard`'s identity receipt).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSink {
    classes: [ClassMetrics; 2],
}

impl MetricsSink {
    /// An empty sink at the default 1% histogram accuracy.
    #[must_use]
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// Total frames observed across classes.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.classes.iter().map(|c| c.frames).sum()
    }

    /// The MTP histogram for one class.
    #[must_use]
    pub fn mtp_histogram(&self, class: TenantClass) -> &Histogram {
        &self.classes[class_index(class)].mtp_ms
    }

    /// Folds another sink's state into this one — exact, order- and
    /// association-independent (see the type docs).
    pub fn absorb(&mut self, other: &MetricsSink) {
        for (mine, theirs) in self.classes.iter_mut().zip(&other.classes) {
            mine.absorb(theirs);
        }
    }

    /// Renders the Prometheus-style text exposition: counters, derived
    /// percentile gauges, and cumulative `_bucket{le=...}` histograms per
    /// class. Deterministic by construction — fixed metric/class order,
    /// ascending bucket iteration, integer counts, and Rust's
    /// shortest-roundtrip float formatting — so equal sink states render
    /// byte-identical text.
    #[must_use]
    pub fn exposition(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE qvr_frames_total counter\n");
        for class in CLASSES {
            let c = &self.classes[class_index(class)];
            let _ = writeln!(
                out,
                "qvr_frames_total{{class=\"{}\"}} {}",
                class.label(),
                c.frames
            );
        }
        out.push_str("# TYPE qvr_server_frames_total counter\n");
        for class in CLASSES {
            let c = &self.classes[class_index(class)];
            let _ = writeln!(
                out,
                "qvr_server_frames_total{{class=\"{}\"}} {}",
                class.label(),
                c.server_frames
            );
        }
        for (gauge, q) in [
            ("qvr_mtp_p50_ms", 50.0),
            ("qvr_mtp_p95_ms", 95.0),
            ("qvr_mtp_p99_ms", 99.0),
        ] {
            let _ = writeln!(out, "# TYPE {gauge} gauge");
            for class in CLASSES {
                let c = &self.classes[class_index(class)];
                let _ = writeln!(
                    out,
                    "{gauge}{{class=\"{}\"}} {}",
                    class.label(),
                    c.mtp_ms.percentile(q)
                );
            }
        }
        for (name, pick) in [
            ("qvr_mtp_ms", 0usize),
            ("qvr_tx_bytes", 1),
            ("qvr_stage_busy_ms", 2),
            ("qvr_quality", 3),
        ] {
            let _ = writeln!(out, "# TYPE {name} histogram");
            for class in CLASSES {
                let c = &self.classes[class_index(class)];
                let h = match pick {
                    0 => &c.mtp_ms,
                    1 => &c.tx_bytes,
                    2 => &c.stage_busy_ms,
                    _ => &c.quality,
                };
                for (le, cumulative) in h.cumulative_buckets() {
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{class=\"{}\",le=\"{le}\"}} {cumulative}",
                        class.label()
                    );
                }
                let _ = writeln!(
                    out,
                    "{name}_bucket{{class=\"{}\",le=\"+Inf\"}} {}",
                    class.label(),
                    h.count()
                );
                let _ = writeln!(
                    out,
                    "{name}_count{{class=\"{}\"}} {}",
                    class.label(),
                    h.count()
                );
            }
        }
        out
    }
}

impl TelemetrySink for MetricsSink {
    fn on_frame(&mut self, event: &FrameEvent) {
        let c = &mut self.classes[class_index(event.class)];
        c.frames += 1;
        if event.unit.is_some() {
            c.server_frames += 1;
        }
        c.mtp_ms.record(event.mtp_ms);
        c.tx_bytes.record(event.tx_bytes);
        c.stage_busy_ms
            .record(event.server_render_ms + event.server_encode_ms + event.radio_ms);
        if let Some(q) = event.quality {
            c.quality.record(q);
        }
    }
}

/// Parses a Prometheus-style text exposition and re-renders it
/// canonically: `Some(text)` with the reconstructed lines when every line
/// is grammatical (`# TYPE name kind` comments or
/// `name{label="v",...} number` samples, numbers finite), `None`
/// otherwise. For text produced by [`MetricsSink::exposition`] the
/// reconstruction is byte-identical — the round-trip the CI smoke
/// asserts.
#[must_use]
pub fn parse_exposition(text: &str) -> Option<String> {
    let mut out = String::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next()?;
            let kind = parts.next()?;
            if name.is_empty() || parts.next().is_some() {
                return None;
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return None;
            }
            let _ = writeln!(out, "# TYPE {name} {kind}");
            continue;
        }
        let (series, value) = line.rsplit_once(' ')?;
        if !value.parse::<f64>().is_ok_and(f64::is_finite) && value != "+Inf" {
            return None;
        }
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => (name, Some(rest.strip_suffix('}')?)),
            None => (series, None),
        };
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return None;
        }
        if let Some(labels) = labels {
            for pair in labels.split(',') {
                let (k, v) = pair.split_once('=')?;
                let v = v.strip_prefix('"')?.strip_suffix('"')?;
                if k.is_empty() || v.contains('"') {
                    return None;
                }
            }
        }
        let _ = writeln!(out, "{series} {value}");
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// (c) Health monitoring
// ---------------------------------------------------------------------------

/// The SLO rule set a [`HealthMonitor`] evaluates per sliding window.
/// `None` rules are skipped; every threshold is over the window, not the
/// run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthRules {
    /// Evaluation window width, virtual ms (half-open buckets
    /// `[k·w, (k+1)·w)` keyed on frame display end, like the windowed
    /// stats sink).
    pub window_ms: f64,
    /// Windows with fewer frames than this are skipped — no evidence
    /// either way, so incident state holds across them.
    pub min_frames: u64,
    /// Breach when the window's p95 MTP exceeds this ceiling, ms.
    pub mtp_p95_ceiling_ms: Option<f64>,
    /// Breach when any session's in-window frame rate falls below this
    /// floor, FPS.
    pub fps_floor: Option<f64>,
    /// Breach when active server energy per displayed frame exceeds this
    /// budget, mJ/frame.
    pub energy_per_frame_mj: Option<f64>,
    /// Breach when server GPU utilization leaves `(low, high)`.
    pub utilization_band: Option<(f64, f64)>,
}

impl HealthRules {
    /// Rules with the given window and nothing to evaluate yet.
    ///
    /// # Panics
    /// If `window_ms` is not positive-finite.
    #[must_use]
    pub fn new(window_ms: f64) -> Self {
        assert!(
            window_ms.is_finite() && window_ms > 0.0,
            "health window must be positive"
        );
        HealthRules {
            window_ms,
            min_frames: 1,
            mtp_p95_ceiling_ms: None,
            fps_floor: None,
            energy_per_frame_mj: None,
            utilization_band: None,
        }
    }

    /// Returns a copy with a p95-MTP ceiling rule.
    #[must_use]
    pub fn with_mtp_p95_ceiling_ms(mut self, ceiling: f64) -> Self {
        self.mtp_p95_ceiling_ms = Some(ceiling);
        self
    }

    /// Returns a copy with a per-session FPS-floor rule.
    #[must_use]
    pub fn with_fps_floor(mut self, floor: f64) -> Self {
        self.fps_floor = Some(floor);
        self
    }

    /// Returns a copy with an active-server-energy-per-frame budget rule.
    #[must_use]
    pub fn with_energy_per_frame_mj(mut self, budget: f64) -> Self {
        self.energy_per_frame_mj = Some(budget);
        self
    }

    /// Returns a copy with a GPU-utilization band rule.
    #[must_use]
    pub fn with_utilization_band(mut self, low: f64, high: f64) -> Self {
        self.utilization_band = Some((low, high));
        self
    }

    /// Returns a copy with a minimum per-window frame count for
    /// evaluation.
    #[must_use]
    pub fn with_min_frames(mut self, min_frames: u64) -> Self {
        self.min_frames = min_frames;
        self
    }
}

/// Which SLO rule an [`Incident`] breached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthRuleKind {
    /// The windowed p95 MTP exceeded its ceiling.
    MtpP95,
    /// Some session's windowed frame rate fell under the floor.
    FpsFloor,
    /// Active server energy per frame exceeded its budget.
    EnergyPerFrame,
    /// Server GPU utilization left its band.
    Utilization,
}

impl HealthRuleKind {
    /// Stable display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            HealthRuleKind::MtpP95 => "p95-mtp",
            HealthRuleKind::FpsFloor => "fps-floor",
            HealthRuleKind::EnergyPerFrame => "energy/frame",
            HealthRuleKind::Utilization => "utilization",
        }
    }

    fn index(self) -> usize {
        match self {
            HealthRuleKind::MtpP95 => 0,
            HealthRuleKind::FpsFloor => 1,
            HealthRuleKind::EnergyPerFrame => 2,
            HealthRuleKind::Utilization => 3,
        }
    }
}

/// Incident severity, ordered so an escalating breach upgrades with
/// `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Breached by less than 2× the threshold magnitude.
    Warning,
    /// Breached by 2× or worse.
    Critical,
}

impl Severity {
    /// Stable display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One entry of the deterministic incident timeline: a breach that opened
/// at some window and either closed at a later one or was still open at
/// finish.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// The breached rule.
    pub rule: HealthRuleKind,
    /// Worst severity observed while open.
    pub severity: Severity,
    /// Start of the first breaching window, virtual ms.
    pub open_ms: f64,
    /// Start of the first clear window after the breach; `None` when the
    /// run ended with the incident open.
    pub close_ms: Option<f64>,
    /// The rule's threshold (the band edge nearest the breach, for the
    /// utilization rule).
    pub threshold: f64,
    /// Worst observed value while open (highest for ceiling rules, lowest
    /// for floor rules).
    pub peak_value: f64,
    /// The tenant class driving the breach at its worst window.
    pub class: TenantClass,
    /// The shard cell the incident occurred in; `None` for a plain fleet,
    /// stamped by `ShardSummary::merge`.
    pub cell: Option<usize>,
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} breach ({}, {}): open @{:.0} ms",
            self.rule.label(),
            self.severity.label(),
            self.class.label(),
            self.open_ms,
        )?;
        match self.close_ms {
            Some(t) => write!(f, ", close @{t:.0} ms")?,
            None => write!(f, ", open at finish")?,
        }
        if let Some(cell) = self.cell {
            write!(f, " [cell {cell}]")?;
        }
        write!(
            f,
            " (peak {:.3} vs threshold {:.3})",
            self.peak_value, self.threshold
        )
    }
}

/// Per-window accumulators the monitor evaluates once the frontier passes
/// the window's end.
#[derive(Debug, Clone, Default)]
struct WindowAccum {
    frames: u64,
    mtp: Histogram,
    /// Per-class counts of samples over the p95 ceiling (offender
    /// attribution for the MTP rule).
    over_ceiling: [u64; 2],
    /// Per-class attributed server busy (render + encode), ms.
    class_busy_ms: [f64; 2],
    /// In-window frame count and last-seen class per session slot (FPS
    /// floor rule).
    per_slot: BTreeMap<usize, (u64, TenantClass)>,
    render_ms: f64,
    encode_ms: f64,
}

/// Streaming SLO monitor: buckets events into half-open windows, and as
/// the caller's closing frontier guarantees a window complete, evaluates
/// every configured [`HealthRules`] rule against it, driving a per-rule
/// breach state machine that opens, escalates, and closes [`Incident`]s.
///
/// Determinism: windows are evaluated strictly in time order, each cell's
/// monitor sees only its own single-threaded stream, and incident
/// timestamps are window boundaries — so the timeline is identical across
/// reruns, and a shard's per-cell timelines concatenate (in cell-id
/// order) identically across worker counts.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    rules: HealthRules,
    server: ServerPowerModel,
    units: usize,
    open: BTreeMap<usize, WindowAccum>,
    /// First window index not yet evaluated.
    frontier: usize,
    /// Open incident per rule, as an index into `incidents`.
    active: [Option<usize>; 4],
    incidents: Vec<Incident>,
}

impl HealthMonitor {
    /// A monitor over `units` server GPUs under `server` power figures
    /// (the energy-per-frame rule's model).
    #[must_use]
    pub fn new(rules: HealthRules, server: ServerPowerModel, units: usize) -> Self {
        HealthMonitor {
            rules,
            server,
            units: units.max(1),
            open: BTreeMap::new(),
            frontier: 0,
            active: [None; 4],
            incidents: Vec::new(),
        }
    }

    /// The rule set being evaluated.
    #[must_use]
    pub fn rules(&self) -> HealthRules {
        self.rules
    }

    /// Incidents fully recorded so far (open ones included once opened).
    #[must_use]
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Whether any rule currently holds an open critical-severity
    /// incident — the churn degrade trigger's input.
    #[must_use]
    pub fn has_open_critical(&self) -> bool {
        self.active
            .iter()
            .flatten()
            .any(|&i| self.incidents[i].severity == Severity::Critical)
    }

    /// Evaluates every window that ends at or before `t_ms` (callers pass
    /// the same frontier that drives windowed-stats closing: a time no
    /// future frame can precede).
    pub fn close_before(&mut self, t_ms: f64) {
        let first_open = qvr_sim::checked::floor_index((t_ms / self.rules.window_ms).max(0.0));
        while self.frontier < first_open {
            let window = self.frontier;
            self.evaluate(window);
            self.frontier += 1;
            // Quiet stretches hold no evidence: jump the frontier to the
            // next occupied window (or the target) instead of ticking
            // empty windows one by one.
            if self.open.is_empty() {
                self.frontier = first_open;
            } else if let Some((&lo, _)) = self.open.iter().next() {
                self.frontier = self.frontier.max(lo.min(first_open));
            }
        }
    }

    /// Evaluates all remaining windows and returns the completed
    /// timeline; incidents still open keep `close_ms: None`.
    #[must_use]
    pub fn finish(mut self) -> Vec<Incident> {
        while let Some((&b, _)) = self.open.iter().next() {
            self.evaluate(b);
            self.frontier = b + 1;
        }
        self.incidents
    }

    /// Evaluates one window through the breach state machines.
    fn evaluate(&mut self, window: usize) {
        let Some(accum) = self.open.remove(&window) else {
            return;
        };
        if accum.frames < self.rules.min_frames {
            return;
        }
        let start_ms = window as f64 * self.rules.window_ms;
        let rules = self.rules;
        if let Some(ceiling) = rules.mtp_p95_ceiling_ms {
            let p95 = accum.mtp.p95();
            let offender = if accum.over_ceiling[1] > accum.over_ceiling[0] {
                TenantClass::BestEffort
            } else {
                TenantClass::Adaptive
            };
            self.step_rule(
                HealthRuleKind::MtpP95,
                start_ms,
                p95 > ceiling,
                p95,
                ceiling,
                p95 / ceiling,
                true,
                offender,
            );
        }
        if let Some(floor) = rules.fps_floor {
            let mut worst: Option<(f64, TenantClass)> = None;
            for &(frames, class) in accum.per_slot.values() {
                let fps = frames as f64 * 1_000.0 / rules.window_ms;
                if worst.is_none_or(|(w, _)| fps < w) {
                    worst = Some((fps, class));
                }
            }
            if let Some((fps, class)) = worst {
                self.step_rule(
                    HealthRuleKind::FpsFloor,
                    start_ms,
                    fps < floor,
                    fps,
                    floor,
                    floor / fps.max(1e-9),
                    false,
                    class,
                );
            }
        }
        if let Some(budget) = rules.energy_per_frame_mj {
            let active_mj = self.server.gpu_active_w * accum.render_ms
                + self.server.enc_active_w * accum.encode_ms;
            let per_frame = active_mj / accum.frames as f64;
            let offender = if accum.class_busy_ms[1] > accum.class_busy_ms[0] {
                TenantClass::BestEffort
            } else {
                TenantClass::Adaptive
            };
            self.step_rule(
                HealthRuleKind::EnergyPerFrame,
                start_ms,
                per_frame > budget,
                per_frame,
                budget,
                per_frame / budget,
                true,
                offender,
            );
        }
        if let Some((low, high)) = rules.utilization_band {
            let util = accum.render_ms / (self.units as f64 * rules.window_ms);
            let offender = if accum.class_busy_ms[1] > accum.class_busy_ms[0] {
                TenantClass::BestEffort
            } else {
                TenantClass::Adaptive
            };
            let (breach, threshold, magnitude, high_side) = if util > high {
                (true, high, util / high.max(1e-9), true)
            } else if util < low {
                (true, low, low / util.max(1e-9), false)
            } else {
                (false, high, 1.0, true)
            };
            self.step_rule(
                HealthRuleKind::Utilization,
                start_ms,
                breach,
                util,
                threshold,
                magnitude,
                high_side,
                offender,
            );
        }
    }

    /// One rule's breach state machine for one window: open on a fresh
    /// breach (severity from the breach magnitude — ≥2× is critical),
    /// escalate/track the worst value while breaching, close at the first
    /// clear window.
    #[allow(clippy::too_many_arguments)]
    fn step_rule(
        &mut self,
        rule: HealthRuleKind,
        window_start_ms: f64,
        breach: bool,
        value: f64,
        threshold: f64,
        magnitude: f64,
        worst_is_max: bool,
        offender: TenantClass,
    ) {
        let slot = rule.index();
        match (breach, self.active[slot]) {
            (true, None) => {
                self.active[slot] = Some(self.incidents.len());
                self.incidents.push(Incident {
                    rule,
                    severity: severity_of(magnitude),
                    open_ms: window_start_ms,
                    close_ms: None,
                    threshold,
                    peak_value: value,
                    class: offender,
                    cell: None,
                });
            }
            (true, Some(i)) => {
                let incident = &mut self.incidents[i];
                let worse = if worst_is_max {
                    value > incident.peak_value
                } else {
                    value < incident.peak_value
                };
                if worse {
                    incident.peak_value = value;
                    incident.class = offender;
                }
                incident.severity = incident.severity.max(severity_of(magnitude));
            }
            (false, Some(i)) => {
                self.incidents[i].close_ms = Some(window_start_ms);
                self.active[slot] = None;
            }
            (false, None) => {}
        }
    }
}

/// Severity from a breach magnitude (threshold-relative).
fn severity_of(magnitude: f64) -> Severity {
    if magnitude >= 2.0 {
        Severity::Critical
    } else {
        Severity::Warning
    }
}

impl TelemetrySink for HealthMonitor {
    fn on_frame(&mut self, event: &FrameEvent) {
        let mut b = qvr_sim::checked::floor_index((event.end_ms / self.rules.window_ms).max(0.0));
        if b < self.frontier {
            // Mirror of the windowed sink's frontier promise: simulations
            // never deliver below the closing frontier (debug asserts),
            // and release builds degrade into the earliest open window.
            debug_assert!(
                false,
                "frame at {:.3} ms arrived below the evaluated frontier {:.3} ms",
                event.end_ms,
                self.frontier as f64 * self.rules.window_ms
            );
            b = self.frontier;
        }
        let idx = class_index(event.class);
        let rules = self.rules;
        let accum = self.open.entry(b).or_default();
        accum.frames += 1;
        accum.mtp.record(event.mtp_ms);
        if let Some(ceiling) = rules.mtp_p95_ceiling_ms {
            if event.mtp_ms > ceiling {
                accum.over_ceiling[idx] += 1;
            }
        }
        let busy = event.server_render_ms + event.server_encode_ms;
        accum.class_busy_ms[idx] += busy;
        accum.render_ms += event.server_render_ms;
        accum.encode_ms += event.server_encode_ms;
        let slot = accum
            .per_slot
            .entry(event.session)
            .or_insert((0, event.class));
        slot.0 += 1;
        slot.1 = event.class;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::FrameSpans;

    fn ev(session: usize, end: f64, mtp: f64, class: TenantClass) -> FrameEvent {
        let mut spans = FrameSpans::default();
        spans.render.widen(end - 8.0, end - 5.0);
        spans.network.widen(end - 5.0, end - 1.0);
        spans.display.widen(end - 1.0, end);
        FrameEvent {
            session,
            frame: 0,
            span_start_ms: end - 10.0,
            end_ms: end,
            mtp_ms: mtp,
            tx_bytes: 10_000.0,
            quality: if session.is_multiple_of(2) {
                Some(0.6)
            } else {
                None
            },
            server_render_ms: 3.0,
            server_encode_ms: 1.0,
            radio_ms: 2.0,
            unit: Some(session % 2),
            class,
            spans,
        }
    }

    #[test]
    fn sampling_is_deterministic_and_hits_the_rate() {
        let all = TraceConfig::default();
        assert!((0..64).all(|s| all.samples_session(s)));
        let sparse = TraceConfig::sampled(7, 32);
        let picked: Vec<usize> = (0..4_096).filter(|&s| sparse.samples_session(s)).collect();
        // Same predicate on a rerun, and roughly 1/32 of the population.
        let again: Vec<usize> = (0..4_096).filter(|&s| sparse.samples_session(s)).collect();
        assert_eq!(picked, again);
        assert!(
            (64..=256).contains(&picked.len()),
            "1-in-32 sampling over 4096 slots picked {}",
            picked.len()
        );
    }

    #[test]
    fn trace_sink_records_only_sampled_sessions() {
        // Pick a seed under which slot 0 is sampled and slot 1 is not.
        let config = (0..u64::MAX)
            .map(|seed| TraceConfig::sampled(seed, 32))
            .find(|c| c.samples_session(0) && !c.samples_session(1))
            .unwrap();
        let mut sink = TraceSink::new(config);
        sink.on_frame(&ev(0, 10.0, 15.0, TenantClass::Adaptive));
        sink.on_frame(&ev(1, 11.0, 16.0, TenantClass::BestEffort));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events()[0].session, 0);
    }

    #[test]
    fn chrome_trace_has_both_process_groups_and_all_stages() {
        let mut sink = TraceSink::new(TraceConfig::default());
        sink.on_frame(&ev(3, 20.0, 15.0, TenantClass::Adaptive));
        let json = sink.chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"sessions\""));
        assert!(json.contains("\"name\":\"server units\""));
        assert!(json.contains("\"name\":\"session 3\""));
        assert!(json.contains("\"name\":\"unit 1\""));
        assert!(json.contains("\"name\":\"render\""));
        assert!(json.contains("\"name\":\"network\""));
        assert!(json.contains("\"name\":\"display\""));
        // The render slice appears on both the session and the unit track.
        assert_eq!(json.matches("\"name\":\"render\"").count(), 2);
        // An empty stage (no upload span in `ev`) renders no slice.
        assert!(!json.contains("\"name\":\"upload\""));
    }

    #[test]
    fn metrics_merge_matches_concatenated_stream_bitwise() {
        let streams: [Vec<FrameEvent>; 3] = [
            (0..20)
                .map(|i| ev(i % 4, i as f64 * 10.0 + 5.0, 12.0, TenantClass::Adaptive))
                .collect(),
            (0..15)
                .map(|i| ev(i % 3, i as f64 * 9.0 + 4.0, 48.0, TenantClass::BestEffort))
                .collect(),
            (0..7)
                .map(|i| ev(0, i as f64 * 11.0 + 3.0, 90.0, TenantClass::Adaptive))
                .collect(),
        ];
        let mut merged = MetricsSink::new();
        let mut whole = MetricsSink::new();
        for stream in &streams {
            let mut cell = MetricsSink::new();
            for e in stream {
                cell.on_frame(e);
                whole.on_frame(e);
            }
            merged.absorb(&cell);
        }
        assert_eq!(merged, whole);
        assert_eq!(merged.exposition(), whole.exposition());
        assert_eq!(merged.frames(), 42);
    }

    #[test]
    fn exposition_round_trips_and_has_fixed_shape() {
        let mut sink = MetricsSink::new();
        for i in 0..30 {
            let class = if i % 3 == 0 {
                TenantClass::BestEffort
            } else {
                TenantClass::Adaptive
            };
            sink.on_frame(&ev(i % 5, i as f64 * 12.0 + 6.0, 10.0 + i as f64, class));
        }
        let text = sink.exposition();
        assert!(text.contains("qvr_frames_total{class=\"adaptive\"} 20"));
        assert!(text.contains("qvr_frames_total{class=\"best-effort\"} 10"));
        assert!(text.contains("# TYPE qvr_mtp_ms histogram"));
        assert!(text.contains("# TYPE qvr_quality histogram"));
        assert!(text.contains("le=\"+Inf\""));
        assert_eq!(
            parse_exposition(&text).as_deref(),
            Some(text.as_str()),
            "exposition must round-trip byte-identically"
        );
        // The empty sink still renders every family (fixed line set).
        let empty = MetricsSink::new().exposition();
        assert!(empty.contains("qvr_frames_total{class=\"adaptive\"} 0"));
        assert_eq!(parse_exposition(&empty).as_deref(), Some(empty.as_str()));
        // Garbage does not parse.
        assert_eq!(parse_exposition("not a metric line"), None);
        assert_eq!(parse_exposition("name{class=\"a\"} not-a-number"), None);
    }

    fn rules(window: f64) -> HealthRules {
        HealthRules::new(window).with_mtp_p95_ceiling_ms(30.0)
    }

    #[test]
    fn health_monitor_opens_and_closes_incidents_at_window_boundaries() {
        let mut m = HealthMonitor::new(rules(100.0), ServerPowerModel::default(), 4);
        // Window 0: healthy. Windows 1–2: breaching. Window 3: recovered.
        for i in 0..8 {
            m.on_frame(&ev(0, 10.0 + f64::from(i), 12.0, TenantClass::Adaptive));
        }
        for i in 0..8 {
            m.on_frame(&ev(0, 110.0 + f64::from(i), 80.0, TenantClass::BestEffort));
        }
        for i in 0..8 {
            m.on_frame(&ev(0, 210.0 + f64::from(i), 45.0, TenantClass::BestEffort));
        }
        for i in 0..8 {
            m.on_frame(&ev(0, 310.0 + f64::from(i), 11.0, TenantClass::Adaptive));
        }
        m.close_before(250.0);
        assert_eq!(m.incidents().len(), 1, "breach opened while streaming");
        assert!(m.has_open_critical(), "80 ms vs 30 ms ceiling is critical");
        let incidents = m.finish();
        assert_eq!(incidents.len(), 1);
        let i = &incidents[0];
        assert_eq!(i.rule, HealthRuleKind::MtpP95);
        assert_eq!(i.severity, Severity::Critical);
        assert_eq!(i.open_ms, 100.0);
        assert_eq!(i.close_ms, Some(300.0));
        assert_eq!(i.class, TenantClass::BestEffort);
        // The window histogram reports its bucket representative: within
        // the configured 1% relative error of the true 80 ms p95.
        assert!(
            (i.peak_value - 80.0).abs() <= 0.0101 * 80.0,
            "peak {} strays past the error bound",
            i.peak_value
        );
        assert!(i.to_string().contains("p95-mtp breach (critical"));
    }

    #[test]
    fn health_monitor_is_deterministic_across_reruns() {
        let run = || {
            let mut m = HealthMonitor::new(
                rules(50.0)
                    .with_fps_floor(30.0)
                    .with_utilization_band(0.0, 0.9),
                ServerPowerModel::default(),
                2,
            );
            for i in 0..200u32 {
                let mtp = if (60..120).contains(&i) { 70.0 } else { 14.0 };
                m.on_frame(&ev(
                    (i % 3) as usize,
                    f64::from(i) * 2.0 + 1.0,
                    mtp,
                    TenantClass::Adaptive,
                ));
            }
            m.finish()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn sparse_windows_hold_incident_state() {
        // Below-min windows are no evidence: an open incident must not
        // close on a window with a single stray frame.
        let mut m = HealthMonitor::new(
            rules(100.0).with_min_frames(4),
            ServerPowerModel::default(),
            4,
        );
        for i in 0..8 {
            m.on_frame(&ev(0, 10.0 + f64::from(i), 90.0, TenantClass::Adaptive));
        }
        m.on_frame(&ev(0, 150.0, 5.0, TenantClass::Adaptive)); // 1 frame < min
        for i in 0..8 {
            m.on_frame(&ev(0, 210.0 + f64::from(i), 91.0, TenantClass::Adaptive));
        }
        let incidents = m.finish();
        assert_eq!(
            incidents.len(),
            1,
            "the sparse middle window must not split the incident: {incidents:?}"
        );
        assert_eq!(incidents[0].close_ms, None, "still open at finish");
    }
}
