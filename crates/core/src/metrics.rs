//! Per-frame records and run summaries for scheme evaluations.

use qvr_energy::{BusyTimes, EnergyBreakdown};
use std::fmt;

/// Everything recorded about one simulated frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameRecord {
    /// Frame index.
    pub frame_id: u64,
    /// Fovea eccentricity used (degrees); `None` for non-foveated schemes.
    pub e1_deg: Option<f64>,
    /// Local GPU rendering latency, ms.
    pub t_local_ms: f64,
    /// Remote chain latency (render/transmit/decode critical part), ms.
    pub t_remote_ms: f64,
    /// Motion-to-photon latency of this frame, ms.
    pub mtp_ms: f64,
    /// Interval between this frame's display and the previous one's, ms.
    pub frame_interval_ms: f64,
    /// Bytes transmitted over the downlink for this frame.
    pub tx_bytes: f64,
    /// Codec quality the rate controller chose for this frame's streams;
    /// `None` when rate control is off (closed-form byte path) or the
    /// scheme never transmits.
    pub quality: Option<f64>,
    /// Fraction by which rendered resolution was reduced vs native, `[0,1]`.
    pub resolution_reduction: f64,
    /// Whether a prefetch misprediction forced a blocking re-fetch
    /// (static collaborative scheme only).
    pub misprediction: bool,
}

impl FrameRecord {
    /// Instantaneous achievable FPS from the pipeline's two rate limiters
    /// (the paper's `FPS = min(1/T_GPU, 1/T_network)`).
    #[must_use]
    pub fn instantaneous_fps(&self) -> f64 {
        let limiter = self.t_local_ms.max(self.t_remote_ms).max(1e-3);
        1_000.0 / limiter
    }

    /// The local/remote balance ratio `T_remote / T_local` (Fig. 14a).
    #[must_use]
    pub fn latency_ratio(&self) -> f64 {
        self.t_remote_ms / self.t_local_ms.max(1e-3)
    }
}

/// The outcome of one scheme × app × condition run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Scheme label.
    pub scheme: String,
    /// App label.
    pub app: String,
    /// Per-frame records.
    pub frames: Vec<FrameRecord>,
    /// Total simulated wall-clock, ms.
    pub makespan_ms: f64,
    /// Per-resource busy times (for energy).
    pub busy: BusyTimes,
    /// Per-component energy over the run.
    pub energy: EnergyBreakdown,
}

impl RunSummary {
    /// Number of frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the run recorded no frames.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Mean motion-to-photon latency, ms.
    #[must_use]
    pub fn mean_mtp_ms(&self) -> f64 {
        mean(self.frames.iter().map(|f| f.mtp_ms))
    }

    /// Steady-state frame rate: frames displayed per second of makespan.
    #[must_use]
    pub fn fps(&self) -> f64 {
        if self.makespan_ms <= 0.0 {
            0.0
        } else {
            self.frames.len() as f64 * 1_000.0 / self.makespan_ms
        }
    }

    /// Mean downlink bytes per frame.
    #[must_use]
    pub fn mean_tx_bytes(&self) -> f64 {
        mean(self.frames.iter().map(|f| f.tx_bytes))
    }

    /// Mean resolution reduction.
    #[must_use]
    pub fn mean_resolution_reduction(&self) -> f64 {
        mean(self.frames.iter().map(|f| f.resolution_reduction))
    }

    /// Mean eccentricity over frames that have one, after skipping the
    /// first `warmup` frames (Table 4 averages steady state only).
    #[must_use]
    pub fn mean_e1_deg(&self, warmup: usize) -> Option<f64> {
        let vals: Vec<f64> = self
            .frames
            .iter()
            .skip(warmup)
            .filter_map(|f| f.e1_deg)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Fraction of frames whose instantaneous FPS meets a target.
    #[must_use]
    pub fn fraction_meeting_fps(&self, target_fps: f64, warmup: usize) -> f64 {
        let total = self.frames.len().saturating_sub(warmup);
        if total == 0 {
            return 0.0;
        }
        let ok = self
            .frames
            .iter()
            .skip(warmup)
            .filter(|f| f.instantaneous_fps() >= target_fps)
            .count();
        ok as f64 / total as f64
    }

    /// Whether the run sustains a target frame rate in steady state
    /// (Table 4's underline criterion, inverted).
    #[must_use]
    pub fn meets_target_fps(&self, target_fps: f64, warmup: usize) -> bool {
        self.fraction_meeting_fps(target_fps, warmup) >= 0.9
    }

    /// Misprediction rate (static collaborative runs).
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.frames.is_empty() {
            0.0
        } else {
            self.frames.iter().filter(|f| f.misprediction).count() as f64 / self.frames.len() as f64
        }
    }
}

/// A latency sample set sorted **once** at construction, serving any number
/// of nearest-rank percentile queries without re-sorting per call (the
/// fleet aggregator asks for p50/p95/p99 of the same vector; admission
/// control asks again per probe).
#[derive(Debug, Clone, PartialEq)]
pub struct SortedSamples {
    sorted: Vec<f64>,
}

impl SortedSamples {
    /// Sorts the samples (total order, so NaNs cannot poison comparisons).
    #[must_use]
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.sort_by(f64::total_cmp);
        SortedSamples { sorted: samples }
    }

    /// Nearest-rank percentile, `q` in `[0, 100]`; 0.0 for an empty set.
    #[must_use]
    pub fn percentile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let rank = qvr_sim::checked::ceil_index(q / 100.0 * self.sorted.len() as f64);
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Median (nearest-rank p50).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// A log-linear bucketed latency histogram with a bounded *relative*
/// quantile error, built for the telemetry seam's merge laws (DESIGN.md
/// §12–13): bucket counts are integers, merging is bucket-wise `u64`
/// addition, so a K-way merge is **bit-identical** to one histogram fed
/// the concatenated stream — no f64 accumulation order to worry about.
///
/// Layout (the DDSketch family): with accuracy `α`, `γ = (1+α)/(1−α)`,
/// a positive value `v` lands in bucket `k = ⌈ln v / ln γ⌉` (so bucket
/// `k` covers `(γ^(k−1), γ^k]`), and the bucket's representative value
/// `2γ^k/(γ+1)` is within `α·v` of every value it absorbs. Zero and
/// negative values share a dedicated zero bucket. Memory is O(occupied
/// buckets) — ~`ln(max/min)/ln γ` ≈ 700 buckets across twelve decades at
/// the default 1% accuracy — which is what lets the monitoring path drop
/// the O(run) `SortedSamples` retention.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Relative-error bound `α` (construction parameter).
    accuracy: f64,
    /// Cached `ln γ` — the only value `record` needs per sample.
    ln_gamma: f64,
    /// Count of samples `≤ 0` (latencies land here only degenerately).
    zero: u64,
    /// Occupied buckets, keyed by index `k` — `BTreeMap` so iteration is
    /// ascending-value and every derived rendering is deterministic.
    buckets: std::collections::BTreeMap<i32, u64>,
    /// Total samples recorded (including the zero bucket).
    count: u64,
}

impl Default for Histogram {
    /// The monitoring default: 1% relative error.
    fn default() -> Self {
        Histogram::new(0.01)
    }
}

impl Histogram {
    /// A histogram with relative-error bound `accuracy` in `(0, 1)`.
    ///
    /// # Panics
    /// If `accuracy` is outside `(0, 1)`.
    #[must_use]
    pub fn new(accuracy: f64) -> Self {
        assert!(
            accuracy > 0.0 && accuracy < 1.0,
            "histogram accuracy must lie in (0, 1), got {accuracy}"
        );
        let gamma = (1.0 + accuracy) / (1.0 - accuracy);
        Histogram {
            accuracy,
            ln_gamma: gamma.ln(),
            zero: 0,
            buckets: std::collections::BTreeMap::new(),
            count: 0,
        }
    }

    /// The relative-error bound this histogram was built with.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// Records one sample. Non-positive and non-finite-negative values go
    /// to the zero bucket; everything else to its log-linear bucket.
    pub fn record(&mut self, v: f64) {
        if v > 0.0 {
            let k = qvr_sim::checked::ceil_key(v.ln() / self.ln_gamma);
            *self.buckets.entry(k).or_insert(0) += 1;
        } else {
            self.zero += 1;
        }
        self.count += 1;
    }

    /// Folds another histogram in by bucket-wise `u64` addition — the
    /// merge half of the seam's merge laws: `a.absorb(&b)` is
    /// bit-identical to one histogram that recorded both streams, in any
    /// order and any association.
    ///
    /// # Panics
    /// If the accuracies differ (buckets would not line up).
    pub fn absorb(&mut self, other: &Histogram) {
        assert!(
            self.accuracy.to_bits() == other.accuracy.to_bits(),
            "histogram merge requires identical accuracy ({} vs {})",
            self.accuracy,
            other.accuracy
        );
        self.zero += other.zero;
        self.count += other.count;
        for (&k, &n) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += n;
        }
    }

    /// Nearest-rank percentile over the bucketed distribution, `q` in
    /// `[0, 100]`; 0.0 for an empty histogram. The returned value is a
    /// bucket representative, within `accuracy × true-value` of the exact
    /// [`SortedSamples`] nearest-rank answer for positive samples.
    #[must_use]
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = qvr_sim::checked::ceil_rank(q / 100.0 * self.count as f64).clamp(1, self.count);
        if rank <= self.zero {
            return 0.0;
        }
        let mut seen = self.zero;
        for (&k, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return self.representative(k);
            }
        }
        // Unreachable: bucket counts sum to `count`.
        self.buckets
            .last_key_value()
            .map_or(0.0, |(&k, _)| self.representative(k))
    }

    /// Median (nearest-rank p50).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the histogram has recorded nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Occupied buckets in ascending value order as
    /// `(upper_bound, cumulative_count)` pairs, the zero bucket first when
    /// occupied — exactly the shape a Prometheus-style cumulative
    /// `_bucket{le=...}` rendering wants.
    pub fn cumulative_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let mut running = 0u64;
        std::iter::once((0.0, self.zero))
            .filter(|&(_, z)| z > 0)
            .chain(
                self.buckets
                    .iter()
                    .map(move |(&k, &n)| (self.upper_bound(k), n)),
            )
            .map(move |(le, n)| {
                running += n;
                (le, running)
            })
    }

    /// The representative value reported for bucket `k` (the point
    /// minimising worst-case relative error over the bucket's range).
    fn representative(&self, k: i32) -> f64 {
        let gamma_k = (f64::from(k) * self.ln_gamma).exp();
        let gamma = (1.0 + self.accuracy) / (1.0 - self.accuracy);
        2.0 * gamma_k / (gamma + 1.0)
    }

    /// Bucket `k`'s inclusive upper bound `γ^k`.
    fn upper_bound(&self, k: i32) -> f64 {
        (f64::from(k) * self.ln_gamma).exp()
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in iter {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

impl fmt::Display for RunSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {} frames, MTP {:.1} ms, {:.0} FPS, {:.0} KB/frame",
            self.scheme,
            self.app,
            self.frames.len(),
            self.mean_mtp_ms(),
            self.fps(),
            self.mean_tx_bytes() / 1024.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t_local: f64, t_remote: f64, mtp: f64) -> FrameRecord {
        FrameRecord {
            frame_id: 0,
            e1_deg: Some(20.0),
            t_local_ms: t_local,
            t_remote_ms: t_remote,
            mtp_ms: mtp,
            frame_interval_ms: 11.0,
            tx_bytes: 100_000.0,
            quality: None,
            resolution_reduction: 0.4,
            misprediction: false,
        }
    }

    fn summary(frames: Vec<FrameRecord>, makespan: f64) -> RunSummary {
        RunSummary {
            scheme: "test".into(),
            app: "app".into(),
            frames,
            makespan_ms: makespan,
            busy: BusyTimes::default(),
            energy: EnergyBreakdown::default(),
        }
    }

    #[test]
    fn instantaneous_fps_uses_slowest_limiter() {
        let r = record(5.0, 10.0, 20.0);
        assert!((r.instantaneous_fps() - 100.0).abs() < 1e-9);
        assert!((r.latency_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fps_from_makespan() {
        let s = summary(vec![record(5.0, 5.0, 15.0); 90], 1_000.0);
        assert!((s.fps() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn mean_mtp() {
        let s = summary(vec![record(1.0, 1.0, 10.0), record(1.0, 1.0, 20.0)], 100.0);
        assert!((s.mean_mtp_ms() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = summary(vec![], 0.0);
        assert_eq!(s.fps(), 0.0);
        assert_eq!(s.mean_mtp_ms(), 0.0);
        assert!(s.mean_e1_deg(0).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn warmup_skipped_in_mean_e1() {
        let mut frames = vec![record(1.0, 1.0, 10.0); 10];
        for f in frames.iter_mut().take(5) {
            f.e1_deg = Some(5.0);
        }
        let s = summary(frames, 100.0);
        assert_eq!(s.mean_e1_deg(5), Some(20.0));
    }

    #[test]
    fn target_fps_criterion() {
        // 10 ms limiter = 100 FPS instantaneous: meets 90, misses 120.
        let s = summary(vec![record(10.0, 8.0, 20.0); 50], 500.0);
        assert!(s.meets_target_fps(90.0, 5));
        assert!(!s.meets_target_fps(120.0, 5));
    }

    #[test]
    fn misprediction_rate_counts() {
        let mut frames = vec![record(1.0, 1.0, 10.0); 4];
        frames[1].misprediction = true;
        let s = summary(frames, 100.0);
        assert!((s.misprediction_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_scheme() {
        let s = summary(vec![record(1.0, 1.0, 10.0)], 11.0);
        assert!(s.to_string().contains("test"));
    }

    #[test]
    fn sorted_samples_percentiles_on_known_inputs() {
        // p50/p95/p99 of a fixed 1..=100 vector under nearest-rank, fed in
        // shuffled order to prove the single up-front sort does its job.
        let mut values: Vec<f64> = (1..=100).map(f64::from).collect();
        values.reverse();
        values.swap(3, 77);
        let s = SortedSamples::new(values);
        assert_eq!(s.p50(), 50.0);
        assert_eq!(s.p95(), 95.0);
        assert_eq!(s.p99(), 99.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
    }

    #[test]
    fn sorted_samples_small_and_empty_sets() {
        let empty = SortedSamples::new(vec![]);
        assert_eq!(empty.p50(), 0.0);
        assert_eq!(empty.p99(), 0.0);
        assert!(empty.is_empty());
        let one = SortedSamples::new(vec![7.5]);
        assert_eq!(one.p50(), 7.5);
        assert_eq!(one.p95(), 7.5);
        assert_eq!(one.p99(), 7.5);
        let five = SortedSamples::new(vec![30.0, 10.0, 50.0, 20.0, 40.0]);
        assert_eq!(five.p50(), 30.0);
        assert_eq!(five.p95(), 50.0);
        assert_eq!(five.p99(), 50.0);
    }

    #[test]
    fn histogram_percentiles_stay_within_the_relative_error_bound() {
        let mut h = Histogram::new(0.01);
        let exact = SortedSamples::new((1..=100).map(f64::from).collect());
        for v in 1..=100 {
            h.record(f64::from(v));
        }
        assert_eq!(h.count(), 100);
        for q in [0.0, 10.0, 50.0, 95.0, 99.0, 100.0] {
            let e = exact.percentile(q);
            let a = h.percentile(q);
            assert!(
                (a - e).abs() <= 0.01 * e,
                "p{q}: {a} vs exact {e} exceeds 1% relative error"
            );
        }
    }

    #[test]
    fn histogram_zero_and_empty_cases() {
        let empty = Histogram::default();
        assert!(empty.is_empty());
        assert_eq!(empty.p95(), 0.0);
        let mut h = Histogram::default();
        h.record(0.0);
        h.record(-3.0);
        h.record(10.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.p50(), 0.0, "two of three samples sit in the zero bucket");
        assert!((h.p99() - 10.0).abs() <= 0.1);
    }

    #[test]
    #[should_panic(expected = "identical accuracy")]
    fn histogram_merge_rejects_mismatched_accuracy() {
        let mut a = Histogram::new(0.01);
        let b = Histogram::new(0.02);
        a.absorb(&b);
    }

    #[test]
    fn histogram_cumulative_buckets_are_monotone() {
        let mut h = Histogram::default();
        for v in [0.0, 1.0, 1.0, 5.0, 80.0] {
            h.record(v);
        }
        let buckets: Vec<(f64, u64)> = h.cumulative_buckets().collect();
        assert_eq!(buckets.last().map(|&(_, n)| n), Some(5));
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0, "upper bounds ascend");
            assert!(w[0].1 <= w[1].1, "cumulative counts are monotone");
        }
    }

    use proptest::prelude::*;

    /// Adversarial positive sample streams: up to 4 shards × 50 samples
    /// spanning nine orders of magnitude (sub-ms jitter to multi-minute
    /// stalls), which is where naive linear bucketing falls over. (The
    /// offline proptest shim generates fixed-size vectors, so shard count
    /// and per-shard lengths are drawn separately and applied by
    /// truncation.)
    fn shard_streams() -> impl Strategy<Value = Vec<Vec<f64>>> {
        (
            collection::vec(collection::vec(1e-3..1e6, 50), 4),
            1usize..5,
            collection::vec(0usize..51, 4),
        )
            .prop_map(|(shards, count, lens)| {
                shards
                    .into_iter()
                    .zip(lens)
                    .take(count)
                    .map(|(mut shard, len)| {
                        shard.truncate(len);
                        shard
                    })
                    .collect()
            })
    }

    proptest! {
        #[test]
        fn histogram_merge_is_bit_identical_to_the_concatenated_stream(
            shards in shard_streams(),
        ) {
            // K-way merge == one histogram over the concatenated stream,
            // compared with `==` (bucket maps, counts, everything).
            let mut merged = Histogram::default();
            let mut concatenated = Histogram::default();
            for shard in &shards {
                let mut part = Histogram::default();
                for &v in shard {
                    part.record(v);
                    concatenated.record(v);
                }
                merged.absorb(&part);
            }
            prop_assert_eq!(&merged, &concatenated);
            // And merge order does not matter: fold in reverse.
            let mut reversed = Histogram::default();
            for shard in shards.iter().rev() {
                let mut part = Histogram::default();
                for &v in shard {
                    part.record(v);
                }
                reversed.absorb(&part);
            }
            prop_assert_eq!(&reversed, &concatenated);
        }

        #[test]
        fn histogram_quantiles_track_sorted_samples_within_accuracy(
            shards in shard_streams(),
            q in 0.0..100.0f64,
        ) {
            let samples: Vec<f64> = shards.into_iter().flatten().collect();
            if !samples.is_empty() {
                let mut h = Histogram::new(0.01);
                for &v in &samples {
                    h.record(v);
                }
                let exact = SortedSamples::new(samples).percentile(q);
                let approx = h.percentile(q);
                // 1% bound plus a hair of slack for float rounding at exact
                // bucket boundaries (ceil(ln v / ln γ) can tip either way).
                prop_assert!(
                    (approx - exact).abs() <= 0.0101 * exact + 1e-9,
                    "p{}: {} vs exact {}", q, approx, exact
                );
            }
        }
    }
}
