//! Per-frame records and run summaries for scheme evaluations.

use qvr_energy::{BusyTimes, EnergyBreakdown};
use std::fmt;

/// Everything recorded about one simulated frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameRecord {
    /// Frame index.
    pub frame_id: u64,
    /// Fovea eccentricity used (degrees); `None` for non-foveated schemes.
    pub e1_deg: Option<f64>,
    /// Local GPU rendering latency, ms.
    pub t_local_ms: f64,
    /// Remote chain latency (render/transmit/decode critical part), ms.
    pub t_remote_ms: f64,
    /// Motion-to-photon latency of this frame, ms.
    pub mtp_ms: f64,
    /// Interval between this frame's display and the previous one's, ms.
    pub frame_interval_ms: f64,
    /// Bytes transmitted over the downlink for this frame.
    pub tx_bytes: f64,
    /// Fraction by which rendered resolution was reduced vs native, `[0,1]`.
    pub resolution_reduction: f64,
    /// Whether a prefetch misprediction forced a blocking re-fetch
    /// (static collaborative scheme only).
    pub misprediction: bool,
}

impl FrameRecord {
    /// Instantaneous achievable FPS from the pipeline's two rate limiters
    /// (the paper's `FPS = min(1/T_GPU, 1/T_network)`).
    #[must_use]
    pub fn instantaneous_fps(&self) -> f64 {
        let limiter = self.t_local_ms.max(self.t_remote_ms).max(1e-3);
        1_000.0 / limiter
    }

    /// The local/remote balance ratio `T_remote / T_local` (Fig. 14a).
    #[must_use]
    pub fn latency_ratio(&self) -> f64 {
        self.t_remote_ms / self.t_local_ms.max(1e-3)
    }
}

/// The outcome of one scheme × app × condition run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Scheme label.
    pub scheme: String,
    /// App label.
    pub app: String,
    /// Per-frame records.
    pub frames: Vec<FrameRecord>,
    /// Total simulated wall-clock, ms.
    pub makespan_ms: f64,
    /// Per-resource busy times (for energy).
    pub busy: BusyTimes,
    /// Per-component energy over the run.
    pub energy: EnergyBreakdown,
}

impl RunSummary {
    /// Number of frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the run recorded no frames.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Mean motion-to-photon latency, ms.
    #[must_use]
    pub fn mean_mtp_ms(&self) -> f64 {
        mean(self.frames.iter().map(|f| f.mtp_ms))
    }

    /// Steady-state frame rate: frames displayed per second of makespan.
    #[must_use]
    pub fn fps(&self) -> f64 {
        if self.makespan_ms <= 0.0 {
            0.0
        } else {
            self.frames.len() as f64 * 1_000.0 / self.makespan_ms
        }
    }

    /// Mean downlink bytes per frame.
    #[must_use]
    pub fn mean_tx_bytes(&self) -> f64 {
        mean(self.frames.iter().map(|f| f.tx_bytes))
    }

    /// Mean resolution reduction.
    #[must_use]
    pub fn mean_resolution_reduction(&self) -> f64 {
        mean(self.frames.iter().map(|f| f.resolution_reduction))
    }

    /// Mean eccentricity over frames that have one, after skipping the
    /// first `warmup` frames (Table 4 averages steady state only).
    #[must_use]
    pub fn mean_e1_deg(&self, warmup: usize) -> Option<f64> {
        let vals: Vec<f64> = self
            .frames
            .iter()
            .skip(warmup)
            .filter_map(|f| f.e1_deg)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Fraction of frames whose instantaneous FPS meets a target.
    #[must_use]
    pub fn fraction_meeting_fps(&self, target_fps: f64, warmup: usize) -> f64 {
        let total = self.frames.len().saturating_sub(warmup);
        if total == 0 {
            return 0.0;
        }
        let ok = self
            .frames
            .iter()
            .skip(warmup)
            .filter(|f| f.instantaneous_fps() >= target_fps)
            .count();
        ok as f64 / total as f64
    }

    /// Whether the run sustains a target frame rate in steady state
    /// (Table 4's underline criterion, inverted).
    #[must_use]
    pub fn meets_target_fps(&self, target_fps: f64, warmup: usize) -> bool {
        self.fraction_meeting_fps(target_fps, warmup) >= 0.9
    }

    /// Misprediction rate (static collaborative runs).
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.frames.is_empty() {
            0.0
        } else {
            self.frames.iter().filter(|f| f.misprediction).count() as f64 / self.frames.len() as f64
        }
    }
}

/// A latency sample set sorted **once** at construction, serving any number
/// of nearest-rank percentile queries without re-sorting per call (the
/// fleet aggregator asks for p50/p95/p99 of the same vector; admission
/// control asks again per probe).
#[derive(Debug, Clone, PartialEq)]
pub struct SortedSamples {
    sorted: Vec<f64>,
}

impl SortedSamples {
    /// Sorts the samples (total order, so NaNs cannot poison comparisons).
    #[must_use]
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.sort_by(f64::total_cmp);
        SortedSamples { sorted: samples }
    }

    /// Nearest-rank percentile, `q` in `[0, 100]`; 0.0 for an empty set.
    #[must_use]
    pub fn percentile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let rank = (q / 100.0 * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Median (nearest-rank p50).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in iter {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

impl fmt::Display for RunSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {} frames, MTP {:.1} ms, {:.0} FPS, {:.0} KB/frame",
            self.scheme,
            self.app,
            self.frames.len(),
            self.mean_mtp_ms(),
            self.fps(),
            self.mean_tx_bytes() / 1024.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t_local: f64, t_remote: f64, mtp: f64) -> FrameRecord {
        FrameRecord {
            frame_id: 0,
            e1_deg: Some(20.0),
            t_local_ms: t_local,
            t_remote_ms: t_remote,
            mtp_ms: mtp,
            frame_interval_ms: 11.0,
            tx_bytes: 100_000.0,
            resolution_reduction: 0.4,
            misprediction: false,
        }
    }

    fn summary(frames: Vec<FrameRecord>, makespan: f64) -> RunSummary {
        RunSummary {
            scheme: "test".into(),
            app: "app".into(),
            frames,
            makespan_ms: makespan,
            busy: BusyTimes::default(),
            energy: EnergyBreakdown::default(),
        }
    }

    #[test]
    fn instantaneous_fps_uses_slowest_limiter() {
        let r = record(5.0, 10.0, 20.0);
        assert!((r.instantaneous_fps() - 100.0).abs() < 1e-9);
        assert!((r.latency_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fps_from_makespan() {
        let s = summary(vec![record(5.0, 5.0, 15.0); 90], 1_000.0);
        assert!((s.fps() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn mean_mtp() {
        let s = summary(vec![record(1.0, 1.0, 10.0), record(1.0, 1.0, 20.0)], 100.0);
        assert!((s.mean_mtp_ms() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = summary(vec![], 0.0);
        assert_eq!(s.fps(), 0.0);
        assert_eq!(s.mean_mtp_ms(), 0.0);
        assert!(s.mean_e1_deg(0).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn warmup_skipped_in_mean_e1() {
        let mut frames = vec![record(1.0, 1.0, 10.0); 10];
        for f in frames.iter_mut().take(5) {
            f.e1_deg = Some(5.0);
        }
        let s = summary(frames, 100.0);
        assert_eq!(s.mean_e1_deg(5), Some(20.0));
    }

    #[test]
    fn target_fps_criterion() {
        // 10 ms limiter = 100 FPS instantaneous: meets 90, misses 120.
        let s = summary(vec![record(10.0, 8.0, 20.0); 50], 500.0);
        assert!(s.meets_target_fps(90.0, 5));
        assert!(!s.meets_target_fps(120.0, 5));
    }

    #[test]
    fn misprediction_rate_counts() {
        let mut frames = vec![record(1.0, 1.0, 10.0); 4];
        frames[1].misprediction = true;
        let s = summary(frames, 100.0);
        assert!((s.misprediction_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_scheme() {
        let s = summary(vec![record(1.0, 1.0, 10.0)], 11.0);
        assert!(s.to_string().contains("test"));
    }

    #[test]
    fn sorted_samples_percentiles_on_known_inputs() {
        // p50/p95/p99 of a fixed 1..=100 vector under nearest-rank, fed in
        // shuffled order to prove the single up-front sort does its job.
        let mut values: Vec<f64> = (1..=100).map(f64::from).collect();
        values.reverse();
        values.swap(3, 77);
        let s = SortedSamples::new(values);
        assert_eq!(s.p50(), 50.0);
        assert_eq!(s.p95(), 95.0);
        assert_eq!(s.p99(), 99.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
    }

    #[test]
    fn sorted_samples_small_and_empty_sets() {
        let empty = SortedSamples::new(vec![]);
        assert_eq!(empty.p50(), 0.0);
        assert_eq!(empty.p99(), 0.0);
        assert!(empty.is_empty());
        let one = SortedSamples::new(vec![7.5]);
        assert_eq!(one.p50(), 7.5);
        assert_eq!(one.p95(), 7.5);
        assert_eq!(one.p99(), 7.5);
        let five = SortedSamples::new(vec![30.0, 10.0, 50.0, 20.0, 40.0]);
        assert_eq!(five.p50(), 30.0);
        assert_eq!(five.p95(), 50.0);
        assert_eq!(five.p99(), 50.0);
    }
}
