//! Multi-tenant fleets: N collaborative-VR sessions contending for one
//! remote multi-GPU server and one wireless link.
//!
//! This is the regime the paper is actually pitched at — "future mobile
//! collaborative VR" with many headsets behind one server — and the regime
//! where the LIWC/UCA co-design earns its keep: as the shared link's
//! per-session share shrinks and the server pool saturates, each session's
//! controller independently grows its fovea to absorb the loss.
//!
//! A [`Fleet`] steps its sessions round-robin (one frame per session per
//! round) against a shared [`qvr_sim::SharedEngine`], a shared
//! [`ServerPool`] of per-frame GPU units, and (by default) one shared
//! [`qvr_net::SharedChannel`] bandwidth budget. Independent fleets (across
//! seeds or configs) run in parallel threads via [`Fleet::run_many`].
//!
//! # Tenancy semantics
//!
//! A [`FleetConfig`] with one session, a 1-unit server and a private
//! channel is the **dedicated** (classic single-user) setup: the whole MCM
//! array gangs up on each frame (analytic acceleration) and recorded chain
//! latencies are contention-free nominal costs. Everything else is
//! **multi-tenant**: each frame renders on one least-loaded GPU unit at
//! single-GPU speed, and recorded latencies include queueing behind other
//! tenants. [`crate::schemes::SchemeKind::run`] delegates to a dedicated
//! 1-session fleet, reproducing the original single-user numbers exactly.

use crate::clock::{FleetClock, SteppingPolicy};
use crate::metrics::{RunSummary, SortedSamples};
use crate::sched::ServerPolicy;
use crate::schemes::{SchemeKind, ServerPool, SystemConfig};
use crate::session::Session;
use crate::telemetry::FrameEvent;
use crate::telemetry::{client_energy_mj, SinkSet, TelemetryConfig, TelemetrySink};
use qvr_energy::FleetEnergy;
use qvr_net::{FairnessPolicy, LinkShare, NetworkChannel, SharedChannel};
use qvr_scene::AppProfile;
use qvr_sim::SharedEngine;
use std::fmt;

/// One tenant's slot in a fleet: which scheme and which app it runs, and
/// the share of the shared link it registers with.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The design point this user runs.
    pub scheme: SchemeKind,
    /// The app this user plays.
    pub profile: AppProfile,
    /// The tenant's claim on the shared link (weight, rate cap, MCS
    /// efficiency) — consumed by the fleet's [`FairnessPolicy`]; the unit
    /// default is invisible under equal-share.
    pub share: LinkShare,
}

impl SessionSpec {
    /// A spec with the default unit link share.
    #[must_use]
    pub fn new(scheme: SchemeKind, profile: AppProfile) -> Self {
        SessionSpec {
            scheme,
            profile,
            share: LinkShare::default(),
        }
    }

    /// Returns a copy with an explicit link share.
    #[must_use]
    pub fn with_share(mut self, share: LinkShare) -> Self {
        self.share = share;
        self
    }
}

/// Full description of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The system every session runs on (Table 2 defaults).
    pub system: SystemConfig,
    /// The tenants, in session-index order.
    pub sessions: Vec<SessionSpec>,
    /// Frames each session simulates.
    pub frames: usize,
    /// Fleet seed; per-session seeds derive from it (session 0 keeps it).
    pub seed: u64,
    /// Remote GPU (and encoder) units in the shared server pool.
    pub server_units: usize,
    /// Whether all sessions draw from one shared channel budget
    /// (occupancy = session count). When `false` every session gets a
    /// private channel at full preset bandwidth.
    pub shared_network: bool,
    /// Concurrent full-rate streams the shared link serves (MU-MIMO/OFDMA
    /// capacity): per-transfer rates degrade only once the session count
    /// exceeds this. Ignored when `shared_network` is `false`.
    pub link_streams: usize,
    /// How the shared link arbitrates its budget between streaming tenants.
    /// [`FairnessPolicy::EqualShare`] (the default) with unit shares is
    /// bit-identical to the pre-policy engine. Ignored when
    /// `shared_network` is `false`.
    pub fairness: FairnessPolicy,
    /// How the shared server pool places tenants' remote chains on GPU
    /// units, by tenant class ([`SchemeKind::tenant_class`]).
    /// [`ServerPolicy::LeastLoaded`] (the default) is bit-pinned by the
    /// fig_fleet goldens; ignored in dedicated single-tenant mode.
    pub server_policy: ServerPolicy,
    /// How sessions advance through simulated time.
    /// [`SteppingPolicy::RoundRobin`] (the default) is bit-pinned by the
    /// fig_fleet goldens; [`SteppingPolicy::VirtualTime`] steps the
    /// globally-earliest session next, which keeps time-skewed tenants
    /// synchronized (DESIGN.md §8) and is required for churn.
    pub stepping: SteppingPolicy,
    /// Windowed task retirement: completed engine history older than this
    /// many ms behind the slowest unfinished session is dropped, so every
    /// resource holds O(window) live state instead of the full task
    /// history. `None` (the default) keeps everything. The window must
    /// exceed the longest dependency horizon a stepper keeps (render-ahead
    /// pacing × frame interval); lookups into retired history panic.
    pub retire_window_ms: Option<f64>,
    /// Which built-in telemetry sinks stream this fleet's frame events
    /// (default-on; see [`crate::telemetry`]). Sinks observe the event
    /// stream and never perturb the schedule, so the fig_fleet goldens stay
    /// bit-identical with every default sink enabled.
    pub telemetry: TelemetryConfig,
}

impl FleetConfig {
    /// A homogeneous fleet: `n` users all running `scheme` on `profile`,
    /// sharing the system's full server array (`remote.count()` units) and
    /// one wireless link provisioned with as many concurrent full-rate
    /// streams as the server has GPUs (a collaborative-VR AP sized to its
    /// server — sharing starts to bite exactly when the pool does).
    #[must_use]
    pub fn uniform(
        system: SystemConfig,
        scheme: SchemeKind,
        profile: AppProfile,
        n: usize,
        frames: usize,
        seed: u64,
    ) -> Self {
        let server_units = system.remote.count() as usize;
        FleetConfig {
            system,
            sessions: (0..n)
                .map(|_| SessionSpec::new(scheme, profile.clone()))
                .collect(),
            frames,
            seed,
            server_units,
            shared_network: true,
            link_streams: server_units,
            fairness: FairnessPolicy::EqualShare,
            server_policy: ServerPolicy::default(),
            stepping: SteppingPolicy::RoundRobin,
            retire_window_ms: None,
            telemetry: TelemetryConfig::default(),
        }
    }

    /// Returns a copy with every session's per-tenant rate controller
    /// configured (see [`SystemConfig::with_rate_control`]); pass
    /// `RateControlConfig::on()` for the content-true byte path.
    #[must_use]
    pub fn with_rate_control(mut self, rate_control: qvr_codec::RateControlConfig) -> Self {
        self.system = self.system.with_rate_control(rate_control);
        self
    }

    /// Whether this config degenerates to the classic dedicated single-user
    /// setup (see the module docs' tenancy semantics).
    #[must_use]
    pub fn is_dedicated(&self) -> bool {
        self.sessions.len() == 1 && self.server_units <= 1 && !self.shared_network
    }
}

/// Derives session `idx`'s seed from the fleet seed (identity for 0, so a
/// dedicated 1-session fleet reproduces the classic single-run streams).
/// Churn fleets reuse it with the session's arrival ordinal as `idx`.
pub(crate) fn session_seed(seed: u64, idx: usize) -> u64 {
    seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A running fleet of sessions on shared resources.
#[derive(Debug)]
pub struct Fleet {
    engine: SharedEngine,
    server: ServerPool,
    sessions: Vec<Session>,
    frames: usize,
    rounds_done: usize,
    shared_network: bool,
    /// Classic dedicated single-user setup: telemetry still streams, but
    /// the summary keeps the engine-makespan span semantics (see finish).
    dedicated: bool,
    stepping: SteppingPolicy,
    /// The virtual-time event queue ([`SteppingPolicy::VirtualTime`] only).
    clock: FleetClock,
    retire_window_ms: Option<f64>,
    /// The telemetry fan-out every frame event streams through.
    sinks: SinkSet,
    /// Reusable buffer for one round's frame events (round-robin batched
    /// fan-out) — cleared and refilled each round, never reallocated in
    /// steady state.
    event_buf: Vec<FrameEvent>,
}

impl Fleet {
    /// Builds the fleet: shared engine, server pools, channels, and one
    /// session per spec.
    ///
    /// # Panics
    ///
    /// Panics if the config has no sessions, zero frames, or zero server
    /// units.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        assert!(
            !config.sessions.is_empty(),
            "a fleet needs at least one session"
        );
        assert!(config.frames > 0, "a fleet needs at least one frame");
        assert!(
            config.server_units > 0,
            "the server pool needs at least one unit"
        );
        if config.is_dedicated() {
            let spec = &config.sessions[0];
            let mut session = Session::private(
                spec.scheme,
                &config.system,
                spec.profile.clone(),
                config.seed,
            );
            session.reserve_frames(config.frames);
            let server = session.server();
            return Fleet {
                engine: session.engine(),
                server,
                sessions: vec![session],
                frames: config.frames,
                rounds_done: 0,
                shared_network: false,
                dedicated: true,
                stepping: config.stepping,
                clock: Self::primed_clock(config.stepping, 1),
                retire_window_ms: config.retire_window_ms,
                sinks: Self::sinks_for(&config, server.units()),
                event_buf: Vec::with_capacity(1),
            };
        }
        config.server_policy.validate(config.server_units);
        let engine = SharedEngine::new();
        let server = ServerPool::on(&engine, config.server_units);
        let sinks = Self::sinks_for(&config, config.server_units);
        let load = sinks.load();
        let shared_channel = if config.shared_network {
            let ch = SharedChannel::new(NetworkChannel::new(config.system.network, config.seed));
            ch.set_policy(config.fairness);
            ch.set_concurrent_streams(config.link_streams.max(1));
            Some(ch)
        } else {
            None
        };
        let sessions: Vec<Session> = config
            .sessions
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let seed = session_seed(config.seed, i);
                // Only tenants that actually move frame data over the link
                // register as members (and so contend for it) — a LocalOnly
                // neighbour must not debit the bandwidth share of the
                // streaming sessions. Membership drives the occupancy the
                // fairness policy divides by. Non-streaming tenants get a
                // *private* channel: handing them a clone of the shared
                // handle would let any future code path that touches the
                // link mutate the shared channel's RNG/ACK state without
                // being a member, silently coupling tenants.
                let channel = match &shared_channel {
                    Some(ch) if spec.scheme.uses_network() => ch.join(spec.share),
                    _ => SharedChannel::new(NetworkChannel::new(config.system.network, seed)),
                };
                let directive = config.server_policy.directive(
                    spec.scheme.tenant_class(),
                    config.server_units,
                    i,
                    &load,
                );
                let mut session = Session::in_fleet(
                    spec.scheme,
                    &config.system,
                    spec.profile.clone(),
                    seed,
                    engine.clone(),
                    channel,
                    server,
                    i,
                    directive,
                );
                session.reserve_frames(config.frames);
                session
            })
            .collect();
        let n = sessions.len();
        Fleet {
            engine,
            server,
            sessions,
            frames: config.frames,
            rounds_done: 0,
            shared_network: config.shared_network,
            dedicated: false,
            stepping: config.stepping,
            clock: Self::primed_clock(config.stepping, n),
            retire_window_ms: config.retire_window_ms,
            sinks,
            event_buf: Vec::with_capacity(n),
        }
    }

    /// The default-on sink fan-out a fleet streams its frame events
    /// through. Multi-tenant fleets run the aggregate stream (it *is* the
    /// summary); the dedicated single-user degenerate skips it — its
    /// summary keeps the post-hoc path (engine-makespan span semantics),
    /// so streaming aggregates there would be paid for and thrown away.
    fn sinks_for(config: &FleetConfig, units: usize) -> SinkSet {
        SinkSet::from_config(
            &config.telemetry,
            &config.system,
            units,
            !config.is_dedicated(),
        )
    }

    /// A clock with every slot runnable at virtual time 0 (so the first
    /// pops come out in session-index order); empty under round-robin.
    fn primed_clock(stepping: SteppingPolicy, n: usize) -> FleetClock {
        let mut clock = FleetClock::new();
        if stepping == SteppingPolicy::VirtualTime {
            for slot in 0..n {
                clock.schedule(slot, 0.0);
            }
        }
        clock
    }

    /// Attaches a custom telemetry sink: it receives every frame event the
    /// fleet emits from this point on (tests and tooling; the built-in
    /// sinks are configured via [`FleetConfig::telemetry`]).
    pub fn attach_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.sinks.attach(sink);
    }

    /// The measured server-load EWMA of one session slot, ms/frame (`None`
    /// before its first frame) — the signal
    /// [`ServerPolicy::MeasuredLoad`] places on.
    #[must_use]
    pub fn load_ewma(&self, slot: usize) -> Option<f64> {
        self.sinks.load.ewma(slot)
    }

    /// Number of sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the fleet has no sessions (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The sessions, in index order.
    #[must_use]
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Steps every session one frame, round-robin in session-index order
    /// (the deterministic arbitration order on shared resources).
    ///
    /// # Panics
    ///
    /// Panics under [`SteppingPolicy::VirtualTime`] — virtual-time fleets
    /// advance one session at a time via [`Fleet::step_next`].
    pub fn step_round(&mut self) {
        assert_eq!(
            self.stepping,
            SteppingPolicy::RoundRobin,
            "step_round is round-robin only; virtual-time fleets use step_next"
        );
        // Collect the whole round into the reusable buffer, then fan it
        // out once: the sink set is traversed per round, not per event,
        // and event order (session-index order) is unchanged.
        self.event_buf.clear();
        for session in &mut self.sessions {
            self.event_buf.push(session.step());
        }
        self.sinks.emit_batch(&self.event_buf);
        self.rounds_done += 1;
        self.advance_frontier();
    }

    /// Steps the session with the globally-earliest virtual clock
    /// (`last_display_end`, ties to the lowest session index) one frame,
    /// and returns its index — or `None` once every session has simulated
    /// its frame budget.
    ///
    /// # Panics
    ///
    /// Panics under [`SteppingPolicy::RoundRobin`] — use
    /// [`Fleet::step_round`] there.
    pub fn step_next(&mut self) -> Option<usize> {
        assert_eq!(
            self.stepping,
            SteppingPolicy::VirtualTime,
            "step_next is virtual-time only; round-robin fleets use step_round"
        );
        let (slot, _) = self.clock.pop()?;
        let session = &mut self.sessions[slot];
        let event = session.step();
        self.sinks.emit(&event);
        if session.frames_stepped() < self.frames {
            let at = session.last_display_end();
            self.clock.schedule(slot, at);
        }
        self.advance_frontier();
        Some(slot)
    }

    /// Propagates the fleet's virtual-time frontier — the slowest
    /// *unfinished* session's clock — to the consumers that key on it:
    /// windowed task retirement (drop history older than `frontier −
    /// window`) and the streaming stats sink (close buckets no future
    /// sample can reach). No-op for both once everyone has finished
    /// (finish flushes the sink).
    fn advance_frontier(&mut self) {
        if self.retire_window_ms.is_none()
            && self.sinks.windowed.is_none()
            && self.sinks.health.is_none()
        {
            return;
        }
        let frontier = match self.stepping {
            // The clock's head is exactly the earliest unfinished session.
            SteppingPolicy::VirtualTime => self.clock.peek().map(|(_, t)| t),
            SteppingPolicy::RoundRobin => {
                let unfinished = self
                    .sessions
                    .iter()
                    .filter(|s| s.frames_stepped() < self.frames);
                let min = unfinished
                    .map(Session::last_display_end)
                    .fold(f64::INFINITY, f64::min);
                min.is_finite().then_some(min)
            }
        };
        let Some(frontier) = frontier else {
            return;
        };
        if let Some(window) = self.retire_window_ms {
            if frontier > window {
                self.engine.retire_before(frontier - window);
            }
        }
        self.sinks.close_windows_before(frontier);
    }

    /// Rounds stepped so far (round-robin mode).
    #[must_use]
    pub fn rounds_done(&self) -> usize {
        self.rounds_done
    }

    /// The stepping policy in force.
    #[must_use]
    pub fn stepping(&self) -> SteppingPolicy {
        self.stepping
    }

    /// A handle to the engine all sessions submit into (for retention
    /// inspection in bounded-memory runs).
    #[must_use]
    pub fn shared_engine(&self) -> SharedEngine {
        self.engine.clone()
    }

    /// Steps all remaining rounds and finalises. The summary's aggregates
    /// are the product of the built-in telemetry sinks: percentiles and FPS
    /// statistics stream out of the [`crate::telemetry::AggregateSink`] (bit-identical to the
    /// post-hoc re-walk, as `tests/telemetry.rs` pins), fleet energy out of
    /// the [`crate::telemetry::EnergyMeter`], and the windowed timeline out of the
    /// [`crate::telemetry::WindowedStatsSink`]. The degenerate dedicated single-user fleet
    /// keeps the classic post-hoc path — its per-session span is the
    /// engine makespan, which no event stream observes.
    #[must_use]
    pub fn finish(mut self) -> FleetSummary {
        match self.stepping {
            SteppingPolicy::RoundRobin => {
                while self.rounds_done < self.frames {
                    self.step_round();
                }
            }
            SteppingPolicy::VirtualTime => while self.step_next().is_some() {},
        }
        let server_utilization = self.server.utilization(&self.engine);
        let makespan_ms = self.engine.makespan();
        let server_units = self.server.units();
        let summaries: Vec<RunSummary> = self.sessions.into_iter().map(Session::finish).collect();
        let energy = self.sinks.energy_finalize(
            makespan_ms,
            client_energy_mj(summaries.iter().map(|s| &s.energy)),
        );
        let (windows, _) = self.sinks.windowed_finish();
        let mut summary = if self.dedicated {
            FleetSummary::aggregate(
                summaries,
                makespan_ms,
                server_utilization,
                server_units,
                self.shared_network,
            )
        } else {
            let aggregate = self.sinks.aggregate.as_ref().expect("fleets always stream");
            let (mtp_p50_ms, mtp_p95_ms, mtp_p99_ms) = aggregate.mtp_percentiles();
            let (fps_floor, mean_fps) = aggregate.fps_stats();
            FleetSummary {
                sessions: summaries,
                makespan_ms,
                mtp_p50_ms,
                mtp_p95_ms,
                mtp_p99_ms,
                fps_floor,
                mean_fps,
                server_utilization,
                server_units,
                shared_network: self.shared_network,
                energy: FleetEnergy::default(),
                windows: Vec::new(),
                exposition: None,
                incidents: Vec::new(),
                trace: None,
                peak_live_tasks: 0,
            }
        };
        summary.energy = energy;
        summary.windows = windows;
        summary.exposition = self.sinks.metrics_exposition();
        summary.incidents = self.sinks.health_finish();
        summary.trace = self.sinks.trace.take();
        summary.peak_live_tasks = self.engine.max_live_intervals();
        summary
    }

    /// Builds, runs, and finalises one fleet.
    #[must_use]
    pub fn run(config: FleetConfig) -> FleetSummary {
        Fleet::new(config).finish()
    }

    /// Steps all remaining rounds and finalises into the bundle a shard
    /// cell ships across its worker-thread boundary (see [`crate::shard`]):
    /// raw sink states (aggregate, deferred windowed, finalised energy, a
    /// load-EWMA snapshot) plus scalar schedule facts — never the
    /// per-session frame histories, which die with the cell.
    ///
    /// # Panics
    ///
    /// Panics on a dedicated single-user fleet (cells are multi-tenant by
    /// construction — the degenerate mode has no aggregate stream).
    #[must_use]
    pub(crate) fn finish_cell(mut self, cell: usize) -> crate::shard::CellSummary {
        assert!(!self.dedicated, "shard cells are multi-tenant fleets");
        match self.stepping {
            SteppingPolicy::RoundRobin => {
                while self.rounds_done < self.frames {
                    self.step_round();
                }
            }
            SteppingPolicy::VirtualTime => while self.step_next().is_some() {},
        }
        let makespan_ms = self.engine.makespan();
        let server_units = self.server.units();
        let server_busy_ms = self.engine.pool_busy_ms(self.server.rgpu());
        let peak_live_tasks = self.engine.max_live_intervals();
        let sessions = self.sessions.len();
        // Sessions finalise only to surface their energy breakdowns; their
        // frame histories are dropped on this side of the seam.
        let summaries: Vec<RunSummary> = self.sessions.drain(..).map(Session::finish).collect();
        let energy = self.sinks.energy_finalize(
            makespan_ms,
            client_energy_mj(summaries.iter().map(|s| &s.energy)),
        );
        let aggregate = self.sinks.aggregate.take().expect("fleets always stream");
        crate::shard::CellSummary {
            cell,
            sessions,
            frames: aggregate.frames(),
            makespan_ms,
            server_units,
            server_busy_ms,
            aggregate,
            windowed: self.sinks.windowed.take(),
            energy,
            load: self.sinks.load.snapshot(),
            peak_live_tasks,
            metrics: self.sinks.metrics.take(),
            incidents: self.sinks.health_finish(),
        }
    }

    /// Runs independent fleets in parallel (intended for sweeps across
    /// seeds, session counts, or networks), preserving input order. Work
    /// is fed to at most `available_parallelism` worker threads via
    /// [`qvr_sim::parallel_map`], so a hundred-config sweep doesn't spawn
    /// a hundred concurrent simulations.
    #[must_use]
    pub fn run_many(configs: Vec<FleetConfig>) -> Vec<FleetSummary> {
        qvr_sim::parallel_map(&configs, |config| Fleet::run(config.clone()))
    }

    /// The classic single-user run as a degenerate fleet: one session,
    /// dedicated server, private channel.
    #[must_use]
    pub(crate) fn solo(
        scheme: SchemeKind,
        config: &SystemConfig,
        profile: AppProfile,
        frames: usize,
        seed: u64,
    ) -> RunSummary {
        let fleet = FleetConfig {
            system: *config,
            sessions: vec![SessionSpec::new(scheme, profile)],
            frames,
            seed,
            server_units: 1,
            shared_network: false,
            link_streams: 1,
            fairness: FairnessPolicy::EqualShare,
            server_policy: ServerPolicy::default(),
            stepping: SteppingPolicy::RoundRobin,
            retire_window_ms: None,
            telemetry: TelemetryConfig::default(),
        };
        Fleet::run(fleet)
            .sessions
            .into_iter()
            .next()
            .expect("one session")
    }
}

/// Fleet-level aggregates over all sessions' frames, plus the per-session
/// summaries they were computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Per-session summaries, in session-index order.
    pub sessions: Vec<RunSummary>,
    /// Wall-clock of the whole fleet schedule, ms.
    pub makespan_ms: f64,
    /// Median motion-to-photon latency across all sessions' frames, ms.
    pub mtp_p50_ms: f64,
    /// 95th-percentile MTP across all sessions' frames, ms.
    pub mtp_p95_ms: f64,
    /// 99th-percentile MTP across all sessions' frames, ms.
    pub mtp_p99_ms: f64,
    /// The slowest session's frame rate, frames/s (the fairness floor).
    pub fps_floor: f64,
    /// Mean session frame rate, frames/s.
    pub mean_fps: f64,
    /// Remote-GPU pool utilisation over the makespan, `[0, 1]`.
    pub server_utilization: f64,
    /// Units in the server pool.
    pub server_units: usize,
    /// Whether sessions shared one channel budget.
    pub shared_network: bool,
    /// Fleet-level energy (server pool + access point + all headsets),
    /// streamed by the telemetry [`crate::telemetry::EnergyMeter`];
    /// identity-zero when the meter is disabled. Re-aggregations carry the
    /// source run's infrastructure share and re-sum the headset share from
    /// the surviving sessions ([`FleetSummary::from_sessions`] /
    /// [`FleetSummary::without_session`]), so a re-derived summary reports
    /// real energy, not zeros.
    pub energy: FleetEnergy,
    /// The streaming windowed-p95 MTP timeline `(start_ms, frames, p95)`,
    /// when [`TelemetryConfig::window_ms`] was configured; empty otherwise.
    pub windows: Vec<(f64, usize, f64)>,
    /// Prometheus-style text exposition of the per-class metric families,
    /// when [`TelemetryConfig::metrics`] was enabled; `None` otherwise.
    pub exposition: Option<String>,
    /// The deterministic SLO incident timeline, when
    /// [`TelemetryConfig::health`] rules were configured; empty otherwise.
    pub incidents: Vec<crate::obs::Incident>,
    /// The span-trace recording, when [`TelemetryConfig::trace`] was
    /// configured; `None` otherwise. Render it with
    /// [`crate::obs::TraceSink::chrome_trace_json`].
    pub trace: Option<crate::obs::TraceSink>,
    /// Peak live task intervals the engine retained at any point — the
    /// schedule-state footprint the perf harness gauges (equals total
    /// submitted tasks when windowed retirement is off; 0 on post-hoc
    /// re-aggregations, which have no engine).
    pub peak_live_tasks: usize,
}

impl FleetSummary {
    fn aggregate(
        sessions: Vec<RunSummary>,
        makespan_ms: f64,
        server_utilization: f64,
        server_units: usize,
        shared_network: bool,
    ) -> Self {
        // One sort serves all three percentile queries.
        let mtps = SortedSamples::new(
            sessions
                .iter()
                .flat_map(|s| s.frames.iter().map(|f| f.mtp_ms))
                .collect(),
        );
        // Sessions that recorded no frames (possible for a churn join that
        // leaves immediately) carry no FPS signal: their `fps()` is a
        // 0-over-span division, which would drag the floor to a meaningless
        // 0 and dilute the mean, so they are excluded from the rate stats.
        let fps: Vec<f64> = sessions
            .iter()
            .filter(|s| !s.frames.is_empty())
            .map(RunSummary::fps)
            .collect();
        let fps_floor = fps.iter().copied().fold(f64::INFINITY, f64::min);
        let mean_fps = if fps.is_empty() {
            0.0
        } else {
            fps.iter().sum::<f64>() / fps.len() as f64
        };
        FleetSummary {
            mtp_p50_ms: mtps.p50(),
            mtp_p95_ms: mtps.p95(),
            mtp_p99_ms: mtps.p99(),
            fps_floor: if fps_floor.is_finite() {
                fps_floor
            } else {
                0.0
            },
            mean_fps,
            sessions,
            makespan_ms,
            server_utilization,
            server_units,
            shared_network,
            energy: FleetEnergy::default(),
            windows: Vec::new(),
            exposition: None,
            incidents: Vec::new(),
            trace: None,
            peak_live_tasks: 0,
        }
    }

    /// Number of sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the fleet recorded no sessions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Re-aggregates a summary from per-session summaries plus carried-over
    /// schedule-level fields (percentiles, FPS floor, and mean FPS are
    /// recomputed exactly from the sessions' frames). The building block of
    /// admission control's incremental probing.
    ///
    /// `energy` carries the probed run's *infrastructure* energy (server
    /// pool + access point — schedule-level, like makespan); its headset
    /// share is recomputed from `sessions`' own breakdowns, so the result
    /// never silently reports zero (or a stale roster's) client energy.
    /// Pass [`FleetEnergy::default`] when the source run had no meter.
    #[must_use]
    pub fn from_sessions(
        sessions: Vec<RunSummary>,
        makespan_ms: f64,
        server_utilization: f64,
        server_units: usize,
        shared_network: bool,
        energy: FleetEnergy,
    ) -> Self {
        let mut summary = FleetSummary::aggregate(
            sessions,
            makespan_ms,
            server_utilization,
            server_units,
            shared_network,
        );
        summary.energy = FleetEnergy {
            client_mj: client_energy_mj(summary.sessions.iter().map(|s| &s.energy)),
            ..energy
        };
        summary
    }

    /// Re-aggregates this summary with session `idx` dropped — the
    /// incremental-probe shortcut admission control uses when exactly one
    /// session leaves: percentiles, FPS floor, and mean FPS recompute
    /// exactly from the surviving sessions' frames, while makespan, server
    /// utilization, and capacity fields carry over from the probed run
    /// (they describe the schedule that was actually simulated).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn without_session(&self, idx: usize) -> FleetSummary {
        assert!(idx < self.sessions.len(), "unknown session {idx}");
        let sessions: Vec<RunSummary> = self
            .sessions
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, s)| s.clone())
            .collect();
        let mut summary = FleetSummary::aggregate(
            sessions,
            self.makespan_ms,
            self.server_utilization,
            self.server_units,
            self.shared_network,
        );
        // Schedule-level telemetry products carry over like makespan: they
        // describe the run that was actually simulated. The headset share
        // is per-session, though — re-sum it over the survivors so the
        // leaver's client energy doesn't linger in the total.
        summary.energy = FleetEnergy {
            client_mj: client_energy_mj(summary.sessions.iter().map(|s| &s.energy)),
            ..self.energy
        };
        summary.windows = self.windows.clone();
        summary.exposition = self.exposition.clone();
        summary.incidents = self.incidents.clone();
        summary.trace = self.trace.clone();
        summary.peak_live_tasks = self.peak_live_tasks;
        summary
    }

    /// p95 motion-to-photon latency over the masked subset of sessions
    /// (`mask[i]` keeps session `i`) — how a class-aware sweep reads one
    /// tenant class's tail out of a mixed fleet. 0 when the subset has no
    /// frames.
    ///
    /// # Panics
    ///
    /// Panics if the mask length doesn't match the session count.
    #[must_use]
    pub fn mtp_p95_over(&self, mask: &[bool]) -> f64 {
        assert_eq!(mask.len(), self.sessions.len(), "mask/session mismatch");
        let samples: Vec<f64> = self
            .sessions
            .iter()
            .zip(mask)
            .filter(|(_, keep)| **keep)
            .flat_map(|(s, _)| s.frames.iter().map(|f| f.mtp_ms))
            .collect();
        if samples.is_empty() {
            return 0.0;
        }
        SortedSamples::new(samples).p95()
    }

    /// The slowest frame rate over the masked subset of sessions
    /// (zero-frame sessions excluded, as in the fleet-wide floor). 0 when
    /// the subset has no frames.
    ///
    /// # Panics
    ///
    /// Panics if the mask length doesn't match the session count.
    #[must_use]
    pub fn fps_floor_over(&self, mask: &[bool]) -> f64 {
        assert_eq!(mask.len(), self.sessions.len(), "mask/session mismatch");
        let floor = self
            .sessions
            .iter()
            .zip(mask)
            .filter(|(s, keep)| **keep && !s.frames.is_empty())
            .map(|(s, _)| s.fps())
            .fold(f64::INFINITY, f64::min);
        if floor.is_finite() {
            floor
        } else {
            0.0
        }
    }

    /// Mean downlink bytes per frame across all sessions.
    #[must_use]
    pub fn mean_tx_bytes(&self) -> f64 {
        if self.sessions.is_empty() {
            return 0.0;
        }
        self.sessions
            .iter()
            .map(RunSummary::mean_tx_bytes)
            .sum::<f64>()
            / self.sessions.len() as f64
    }
}

impl fmt::Display for FleetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sessions on {} server units{}: MTP p50/p95/p99 {:.1}/{:.1}/{:.1} ms, \
             FPS floor {:.0}, server util {:.0}%",
            self.sessions.len(),
            self.server_units,
            if self.shared_network {
                " + shared link"
            } else {
                ""
            },
            self.mtp_p50_ms,
            self.mtp_p95_ms,
            self.mtp_p99_ms,
            self.fps_floor,
            self.server_utilization * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvr_scene::Benchmark;

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    #[test]
    fn local_only_neighbours_do_not_debit_the_link() {
        // Shared-channel occupancy counts only tenants that stream: a Q-VR
        // session surrounded by 7 LocalOnly users (who never touch the
        // downlink or the server) must behave exactly as it would alone.
        let mixed = |n_local: usize| {
            let mut sessions = vec![SessionSpec::new(SchemeKind::Qvr, Benchmark::Hl2H.profile())];
            sessions.extend(
                (0..n_local)
                    .map(|_| SessionSpec::new(SchemeKind::LocalOnly, Benchmark::Doom3L.profile())),
            );
            Fleet::run(FleetConfig {
                system: cfg(),
                sessions,
                frames: 20,
                seed: 9,
                server_units: 8,
                shared_network: true,
                link_streams: 1,
                fairness: FairnessPolicy::EqualShare,
                server_policy: ServerPolicy::default(),
                stepping: SteppingPolicy::RoundRobin,
                retire_window_ms: None,
                telemetry: TelemetryConfig::default(),
            })
        };
        let alone = mixed(0);
        let crowded = mixed(7);
        assert_eq!(
            alone.sessions[0].frames, crowded.sessions[0].frames,
            "idle neighbours must not change the streaming session's frames"
        );
    }

    #[test]
    fn local_only_neighbours_hold_private_channels() {
        // Regression: `Fleet::new` used to hand non-streaming tenants a
        // clone of the *shared* channel handle, so any code path touching
        // the neighbour's link would mutate the shared RNG/ACK state
        // without being a member. The neighbour must get a private channel:
        // hammering it leaves the shared channel's occupancy, transfer
        // counter, and RNG stream (and therefore the streaming session's
        // frames) untouched.
        let config = FleetConfig {
            system: cfg(),
            sessions: vec![
                SessionSpec::new(SchemeKind::Qvr, Benchmark::Hl2H.profile()),
                SessionSpec::new(SchemeKind::LocalOnly, Benchmark::Doom3L.profile()),
            ],
            frames: 12,
            seed: 5,
            server_units: 4,
            shared_network: true,
            link_streams: 2,
            fairness: FairnessPolicy::EqualShare,
            server_policy: ServerPolicy::default(),
            stepping: SteppingPolicy::RoundRobin,
            retire_window_ms: None,
            telemetry: TelemetryConfig::default(),
        };
        let run = |poke: bool| {
            let mut fleet = Fleet::new(config.clone());
            let streaming = fleet.sessions()[0].channel_handle();
            let local = fleet.sessions()[1].channel_handle();
            assert_eq!(
                local.members(),
                0,
                "a non-streaming tenant must hold a private channel"
            );
            assert_eq!(streaming.members(), 1, "only the streamer joined");
            assert_eq!(streaming.occupancy(), 1);
            let transfers_before = streaming.transfers();
            for _ in 0..12 {
                fleet.step_round();
                if poke {
                    // A future code path touching the neighbour's link.
                    let _ = local.download_ms(512.0 * 1024.0);
                }
            }
            assert!(streaming.transfers() > transfers_before);
            (streaming.transfers(), fleet.finish())
        };
        let (quiet_transfers, quiet) = run(false);
        let (poked_transfers, poked) = run(true);
        assert_eq!(
            quiet_transfers, poked_transfers,
            "poking the private neighbour channel must not reach the shared one"
        );
        assert_eq!(
            quiet.sessions[0].frames, poked.sessions[0].frames,
            "the streaming session's RNG stream must be unaffected"
        );
    }

    #[test]
    fn zero_frame_sessions_do_not_poison_fps_aggregates() {
        // A churn join that leaves immediately can finish with a positive
        // residency span and zero recorded frames; the floor/mean must skip
        // it instead of collapsing to 0 (or NaN).
        let normal = SchemeKind::LocalOnly.run(&cfg(), Benchmark::Doom3L.profile(), 5, 3);
        let mut empty = normal.clone();
        empty.frames.clear();
        empty.makespan_ms = 50.0;
        let s = FleetSummary::from_sessions(
            vec![normal.clone(), empty.clone()],
            100.0,
            0.5,
            8,
            true,
            FleetEnergy::default(),
        );
        assert_eq!(s.fps_floor, normal.fps());
        assert_eq!(s.mean_fps, normal.fps());
        assert!(s.fps_floor.is_finite() && s.mean_fps.is_finite());
        // An all-empty fleet reports zero rates, never NaN.
        let s2 =
            FleetSummary::from_sessions(vec![empty], 100.0, 0.5, 8, true, FleetEnergy::default());
        assert_eq!(s2.fps_floor, 0.0);
        assert_eq!(s2.mean_fps, 0.0);
    }

    #[test]
    fn subset_metrics_select_by_mask() {
        let s = Fleet::run(FleetConfig::uniform(
            cfg(),
            SchemeKind::Qvr,
            Benchmark::Hl2H.profile(),
            3,
            10,
            7,
        ));
        let all = vec![true; 3];
        assert_eq!(s.mtp_p95_over(&all), s.mtp_p95_ms);
        assert_eq!(s.fps_floor_over(&all), s.fps_floor);
        let one = vec![false, true, false];
        assert_eq!(s.fps_floor_over(&one), s.sessions[1].fps());
        assert_eq!(s.mtp_p95_over(&[false, false, false]), 0.0);
        assert_eq!(s.fps_floor_over(&[false, false, false]), 0.0);
    }

    #[test]
    #[should_panic(expected = "mask/session mismatch")]
    fn subset_mask_length_must_match() {
        let s = Fleet::run(FleetConfig::uniform(
            cfg(),
            SchemeKind::Qvr,
            Benchmark::Grid.profile(),
            2,
            5,
            1,
        ));
        let _ = s.mtp_p95_over(&[true]);
    }

    #[test]
    fn solo_fleet_is_dedicated() {
        let f = FleetConfig {
            system: cfg(),
            sessions: vec![SessionSpec::new(
                SchemeKind::Qvr,
                Benchmark::Doom3H.profile(),
            )],
            frames: 10,
            seed: 1,
            server_units: 1,
            shared_network: false,
            link_streams: 1,
            fairness: FairnessPolicy::EqualShare,
            server_policy: ServerPolicy::default(),
            stepping: SteppingPolicy::RoundRobin,
            retire_window_ms: None,
            telemetry: TelemetryConfig::default(),
        };
        assert!(f.is_dedicated());
        let uniform = FleetConfig::uniform(
            cfg(),
            SchemeKind::Qvr,
            Benchmark::Doom3H.profile(),
            1,
            10,
            1,
        );
        assert!(
            !uniform.is_dedicated(),
            "a 1-session fleet on the full pool is multi-tenant"
        );
    }

    #[test]
    fn fleet_runs_every_session_to_completion() {
        let summary = Fleet::run(FleetConfig::uniform(
            cfg(),
            SchemeKind::Qvr,
            Benchmark::Hl2H.profile(),
            4,
            30,
            7,
        ));
        assert_eq!(summary.len(), 4);
        for s in &summary.sessions {
            assert_eq!(s.len(), 30);
            assert!(s.mean_mtp_ms() > 0.0);
            assert!(s.fps() > 0.0);
        }
        assert!(summary.mtp_p50_ms <= summary.mtp_p95_ms);
        assert!(summary.mtp_p95_ms <= summary.mtp_p99_ms);
        assert!(summary.fps_floor <= summary.mean_fps + 1e-9);
        assert!(summary.server_utilization > 0.0);
        assert!(summary.makespan_ms > 0.0);
        assert!(summary.to_string().contains("4 sessions"));
    }

    #[test]
    fn fleets_are_deterministic() {
        let make =
            || FleetConfig::uniform(cfg(), SchemeKind::Qvr, Benchmark::Grid.profile(), 6, 25, 11);
        let a = Fleet::run(make());
        let b = Fleet::run(make());
        assert_eq!(a, b);
    }

    #[test]
    fn sessions_diverge_across_seeds() {
        let summary = Fleet::run(FleetConfig::uniform(
            cfg(),
            SchemeKind::Qvr,
            Benchmark::Hl2H.profile(),
            2,
            20,
            3,
        ));
        // Different per-session seeds → different motion traces → different
        // per-frame latencies.
        assert_ne!(summary.sessions[0].frames, summary.sessions[1].frames);
    }

    #[test]
    fn heterogeneous_fleets_interleave() {
        let summary = Fleet::run(FleetConfig {
            system: cfg(),
            sessions: vec![
                SessionSpec::new(SchemeKind::Qvr, Benchmark::Grid.profile()),
                SessionSpec::new(SchemeKind::Ffr, Benchmark::Doom3L.profile()),
                SessionSpec::new(SchemeKind::RemoteOnly, Benchmark::Wolf.profile()),
            ],
            frames: 20,
            seed: 5,
            server_units: 4,
            shared_network: true,
            link_streams: 1,
            fairness: FairnessPolicy::EqualShare,
            server_policy: ServerPolicy::default(),
            stepping: SteppingPolicy::RoundRobin,
            retire_window_ms: None,
            telemetry: TelemetryConfig::default(),
        });
        assert_eq!(summary.len(), 3);
        assert_eq!(summary.sessions[0].scheme, "Q-VR");
        assert_eq!(summary.sessions[1].scheme, "FFR");
        assert_eq!(summary.sessions[2].scheme, "Remote");
    }

    #[test]
    fn shared_link_contention_hurts_oversubscribed_fleets() {
        let run_n = |n: usize| {
            Fleet::run(FleetConfig::uniform(
                cfg(),
                SchemeKind::Qvr,
                Benchmark::Hl2H.profile(),
                n,
                40,
                13,
            ))
        };
        let small = run_n(2);
        let big = run_n(16);
        assert!(
            big.mtp_p95_ms > small.mtp_p95_ms,
            "16 tenants must see worse tail latency than 2: {:.1} vs {:.1} ms",
            big.mtp_p95_ms,
            small.mtp_p95_ms
        );
    }

    #[test]
    fn run_many_matches_sequential_runs() {
        let configs: Vec<FleetConfig> = (0..3)
            .map(|i| {
                FleetConfig::uniform(
                    cfg(),
                    SchemeKind::Qvr,
                    Benchmark::Doom3H.profile(),
                    2,
                    15,
                    100 + i,
                )
            })
            .collect();
        let parallel = Fleet::run_many(configs.clone());
        let sequential: Vec<FleetSummary> = configs.into_iter().map(Fleet::run).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    #[should_panic(expected = "at least one session")]
    fn empty_fleet_rejected() {
        let _ = Fleet::new(FleetConfig {
            system: cfg(),
            sessions: vec![],
            frames: 1,
            seed: 0,
            server_units: 1,
            shared_network: true,
            link_streams: 1,
            fairness: FairnessPolicy::EqualShare,
            server_policy: ServerPolicy::default(),
            stepping: SteppingPolicy::RoundRobin,
            retire_window_ms: None,
            telemetry: TelemetryConfig::default(),
        });
    }

    #[test]
    #[should_panic(expected = "round-robin only")]
    fn step_round_rejected_under_virtual_time() {
        let mut config =
            FleetConfig::uniform(cfg(), SchemeKind::Qvr, Benchmark::Grid.profile(), 2, 5, 1);
        config.stepping = SteppingPolicy::VirtualTime;
        Fleet::new(config).step_round();
    }

    #[test]
    #[should_panic(expected = "virtual-time only")]
    fn step_next_rejected_under_round_robin() {
        let config =
            FleetConfig::uniform(cfg(), SchemeKind::Qvr, Benchmark::Grid.profile(), 2, 5, 1);
        let _ = Fleet::new(config).step_next();
    }

    #[test]
    fn virtual_time_first_steps_follow_slot_order() {
        // All clocks start at 0, so the tie-break hands out the first
        // round in session-index order — the same deterministic
        // arbitration round-robin uses.
        let mut config =
            FleetConfig::uniform(cfg(), SchemeKind::Qvr, Benchmark::Grid.profile(), 3, 2, 1);
        config.stepping = SteppingPolicy::VirtualTime;
        let mut fleet = Fleet::new(config);
        assert_eq!(fleet.stepping(), SteppingPolicy::VirtualTime);
        let first: Vec<usize> = (0..3).filter_map(|_| fleet.step_next()).collect();
        assert_eq!(first, vec![0, 1, 2]);
        while fleet.step_next().is_some() {}
        for s in fleet.sessions() {
            assert_eq!(s.frames_stepped(), 2);
        }
    }

    #[test]
    fn summary_without_session_drops_exactly_one() {
        let s = Fleet::run(FleetConfig::uniform(
            cfg(),
            SchemeKind::Qvr,
            Benchmark::Hl2H.profile(),
            3,
            10,
            7,
        ));
        let without = s.without_session(1);
        assert_eq!(without.len(), 2);
        assert_eq!(without.sessions[0].frames, s.sessions[0].frames);
        assert_eq!(without.sessions[1].frames, s.sessions[2].frames);
        assert_eq!(without.makespan_ms, s.makespan_ms);
        assert_eq!(without.server_units, s.server_units);
    }

    #[test]
    fn weighted_fleet_tilts_latency_toward_heavy_tenants() {
        // Two non-adaptive RemoteOnly tenants (fixed bytes per frame, so no
        // controller feedback masks the MAC) on one saturated stream. Going
        // from 1:1 to 4:1 weights must speed up the heavy tenant's remote
        // chain and slow down the light one's, session-by-session against
        // its own 1:1 run (same seed, same motion trace). Short run: with
        // strongly unequal shares the tenants' per-session timelines skew
        // apart, and after ~10 rounds the slow tenant's far-future pool
        // frontiers start queueing the fast one (see DESIGN.md §7 on the
        // round-robin time-skew artifact), which would mask the link tilt.
        let run = |w0: f64| {
            Fleet::run(FleetConfig {
                system: cfg(),
                sessions: vec![
                    SessionSpec::new(SchemeKind::RemoteOnly, Benchmark::Hl2H.profile())
                        .with_share(LinkShare::weighted(w0)),
                    SessionSpec::new(SchemeKind::RemoteOnly, Benchmark::Hl2H.profile()),
                ],
                frames: 8,
                seed: 17,
                server_units: 8,
                shared_network: true,
                link_streams: 1,
                fairness: FairnessPolicy::Weighted,
                server_policy: ServerPolicy::default(),
                stepping: SteppingPolicy::RoundRobin,
                retire_window_ms: None,
                telemetry: TelemetryConfig::default(),
            })
        };
        let rem = |s: &FleetSummary, i: usize| {
            s.sessions[i]
                .frames
                .iter()
                .map(|f| f.t_remote_ms)
                .sum::<f64>()
                / s.sessions[i].frames.len() as f64
        };
        let tilted = run(4.0);
        let flat = run(1.0);
        assert!(
            rem(&tilted, 0) < rem(&flat, 0) * 0.9,
            "4x weight must speed the heavy tenant up: {:.1} vs {:.1} ms",
            rem(&tilted, 0),
            rem(&flat, 0)
        );
        assert!(
            rem(&tilted, 1) > rem(&flat, 1) * 1.1,
            "the light tenant pays for the heavy one: {:.1} vs {:.1} ms",
            rem(&tilted, 1),
            rem(&flat, 1)
        );
    }

    #[test]
    fn capped_tenant_sheds_load_via_liwc() {
        // A hard 20 Mbps cap starves the downlink; that tenant's LIWC must
        // pull work on-device (bigger fovea, fewer bytes) vs an uncapped
        // twin in the same fleet position.
        let run = |share: LinkShare| {
            Fleet::run(FleetConfig {
                system: cfg(),
                sessions: vec![
                    SessionSpec::new(SchemeKind::Qvr, Benchmark::Hl2H.profile()).with_share(share),
                    SessionSpec::new(SchemeKind::Qvr, Benchmark::Hl2H.profile()),
                ],
                frames: 40,
                seed: 19,
                server_units: 2,
                shared_network: true,
                link_streams: 2,
                fairness: FairnessPolicy::Weighted,
                server_policy: ServerPolicy::default(),
                stepping: SteppingPolicy::RoundRobin,
                retire_window_ms: None,
                telemetry: TelemetryConfig::default(),
            })
        };
        let capped = run(LinkShare::default().with_cap_mbps(20.0));
        let free = run(LinkShare::default());
        assert!(
            capped.sessions[0].mean_tx_bytes() < free.sessions[0].mean_tx_bytes() * 0.9,
            "capped tenant must ship fewer bytes: {:.0} vs {:.0}",
            capped.sessions[0].mean_tx_bytes(),
            free.sessions[0].mean_tx_bytes()
        );
        let e1_capped = capped.sessions[0].mean_e1_deg(20).unwrap();
        let e1_free = free.sessions[0].mean_e1_deg(20).unwrap();
        assert!(
            e1_capped > e1_free,
            "capped tenant's fovea must grow: {e1_capped:.1}° vs {e1_free:.1}°"
        );
    }

    #[test]
    fn prereserved_frame_storage_never_reallocates() {
        // `Fleet::new` pre-reserves each rig's per-frame `records` /
        // `display_ends` for the configured run length, so a full run must
        // not grow either buffer past its initial capacity (no per-frame
        // reallocation on the hot path).
        let frames = 40;
        let config = FleetConfig::uniform(
            cfg(),
            SchemeKind::Qvr,
            Benchmark::Hl2H.profile(),
            4,
            frames,
            42,
        );
        let mut fleet = Fleet::new(config);
        let before: Vec<(usize, usize)> = fleet
            .sessions()
            .iter()
            .map(|s| s.frame_capacity())
            .collect();
        for (records, ends) in &before {
            assert!(*records >= frames, "records capacity {records} < {frames}");
            assert!(*ends >= frames, "display_ends capacity {ends} < {frames}");
        }
        for _ in 0..frames {
            fleet.step_round();
        }
        let after: Vec<(usize, usize)> = fleet
            .sessions()
            .iter()
            .map(|s| s.frame_capacity())
            .collect();
        assert_eq!(before, after, "per-frame buffers reallocated mid-run");
    }

    #[test]
    fn prereservation_keeps_windowed_retirement_exact() {
        // Pre-reservation touches only client-side frame buffers; windowed
        // retirement must still drop exactly the engine-history prefix and
        // leave every output bit unchanged versus an unwindowed run.
        let mut plain =
            FleetConfig::uniform(cfg(), SchemeKind::Qvr, Benchmark::Hl2H.profile(), 4, 40, 7);
        let mut windowed = plain.clone();
        windowed.retire_window_ms = Some(300.0);
        plain.retire_window_ms = None;
        let keep = Fleet::new(plain);
        let drop = Fleet::new(windowed);
        let keep_engine = keep.shared_engine();
        let drop_engine = drop.shared_engine();
        let a = keep.finish();
        let mut b = drop.finish();
        // The schedule-state gauge measures the retained engine footprint
        // — the one field retirement is supposed to shrink.
        assert!(b.peak_live_tasks < a.peak_live_tasks);
        b.peak_live_tasks = a.peak_live_tasks;
        assert_eq!(a, b, "retirement output drifted under pre-reservation");
        let retired = drop_engine.retired_tasks();
        assert!(retired > 0, "history must actually retire");
        // The drop is an exact prefix of the task-id space: live + retired
        // still accounts for every task, and re-retiring at an older cutoff
        // is a no-op.
        assert_eq!(
            drop_engine.live_tasks() + retired,
            keep_engine.live_tasks(),
            "retirement must drop a prefix, not rewrite history"
        );
        assert_eq!(drop_engine.retire_before(0.0), 0);
        assert_eq!(drop_engine.retired_tasks(), retired);
    }
}
