//! The Lightweight Interaction-aware Workload Controller (paper Sec. 4.1).
//!
//! LIWC picks each frame's fovea eccentricity `e1` so that local and remote
//! rendering latencies balance. It is built from the four components the
//! paper describes:
//!
//! 1. a **motion codec** quantising the frame-over-frame motion change into
//!    10 bits (6 bits of head-DoF change flags + 4 bits of fovea movement);
//! 2. a **mapping table** — 2¹⁵ half-precision entries indexed by (motion
//!    code, eccentricity bucket) holding the learned *latency gradient*
//!    (how fast the local/remote latency gap closes per degree of `e1`);
//! 3. a **latency predictor** implementing Eq. (2):
//!    `T_local = #triangles × %fovea / P(GPUₘ)` and
//!    `T_remote = datasize(M+O) / throughput`, fed by *intermediate
//!    hardware data* — the triangle count visible at render setup and the
//!    ACK-observed network throughput — so prediction happens before the
//!    frame finishes rendering;
//! 4. a **runtime updater** applying the reward rule
//!    `gradient = (1−α)·gradient′ + α·Δlatency` after each frame.
//!
//! The eccentricity action space is the paper's integer delta tags
//! `Δe1 ∈ [−5°, +5°]`.
//!
//! [`SoftwareController`] is the evaluation's pure-software alternative
//! (Fig. 12's "SW" line): it can only react to *measured* latencies from
//! completed frames, one frame later, with no hardware observability.

use crate::f16::F16;
use qvr_hvs::LayerPartition;
use qvr_scene::MotionDelta;
use std::collections::VecDeque;
use std::fmt;

/// Quantises motion deltas into the 10-bit code of Sec. 4.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionCodec {
    /// Rotation change (per axis) considered significant, degrees.
    pub rotation_threshold_deg: f64,
    /// Translation change (per axis) considered significant, metres.
    pub translation_threshold_m: f64,
    /// Gaze movement considered non-still, NDC units.
    pub gaze_still_threshold: f64,
    /// Gaze movement considered large, NDC units.
    pub gaze_large_threshold: f64,
}

impl MotionCodec {
    /// Number of distinct motion codes (10 bits).
    pub const CODES: usize = 1 << 10;

    /// Encodes a delta into a 10-bit motion code.
    ///
    /// Bits 9..4: per-DoF significance flags (yaw, pitch, roll, x, y, z).
    /// Bits 3..0: fovea-movement nibble — 15 = still, otherwise
    /// `large·8 + octant`.
    #[must_use]
    pub fn encode(&self, delta: &MotionDelta) -> u16 {
        let mut dof_bits = 0u16;
        for (i, &d) in delta.dof.iter().enumerate() {
            let threshold = if i < 3 {
                self.rotation_threshold_deg
            } else {
                self.translation_threshold_m
            };
            if d.abs() > threshold {
                dof_bits |= 1 << i;
            }
        }
        let mag = delta.gaze_magnitude();
        let nibble = if mag < self.gaze_still_threshold {
            15
        } else {
            let angle = delta.gaze.1.atan2(delta.gaze.0);
            let octant =
                ((angle + std::f64::consts::PI) / (std::f64::consts::TAU / 8.0)) as u16 % 8;
            let large = u16::from(mag >= self.gaze_large_threshold);
            large * 8 + octant
        };
        (dof_bits << 4) | nibble
    }
}

impl Default for MotionCodec {
    fn default() -> Self {
        MotionCodec {
            rotation_threshold_deg: 0.5,
            translation_threshold_m: 0.005,
            gaze_still_threshold: 0.02,
            gaze_large_threshold: 0.12,
        }
    }
}

/// The 2¹⁵-entry f16 gradient table (64 KB SRAM in hardware).
#[derive(Debug, Clone, PartialEq)]
pub struct MappingTable {
    entries: Vec<F16>,
    bucket_count: usize,
}

impl MappingTable {
    /// Eccentricity buckets (5 bits).
    pub const BUCKETS: usize = 32;

    /// Creates a table with every entry initialised to `initial_gradient`
    /// (ms per degree; negative — growing `e1` closes a positive
    /// remote-minus-local gap).
    #[must_use]
    pub fn new(initial_gradient: f64) -> Self {
        MappingTable {
            entries: vec![
                F16::from_f32(initial_gradient as f32);
                MotionCodec::CODES * Self::BUCKETS
            ],
            bucket_count: Self::BUCKETS,
        }
    }

    /// Total entries (2¹⁵).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Bucket for an eccentricity in `[MIN_E1, MAX_E1]`.
    #[must_use]
    pub fn bucket(&self, e1_deg: f64) -> usize {
        let span = LayerPartition::MAX_E1 - LayerPartition::MIN_E1;
        let t = ((e1_deg - LayerPartition::MIN_E1) / span).clamp(0.0, 1.0);
        ((t * self.bucket_count as f64) as usize).min(self.bucket_count - 1)
    }

    fn index(&self, motion_code: u16, e1_deg: f64) -> usize {
        (motion_code as usize % MotionCodec::CODES) * self.bucket_count + self.bucket(e1_deg)
    }

    /// Reads the gradient for a state (f16 precision).
    #[must_use]
    pub fn gradient(&self, motion_code: u16, e1_deg: f64) -> f64 {
        f64::from(self.entries[self.index(motion_code, e1_deg)].to_f32())
    }

    /// Writes a gradient (stored through an f16 round-trip).
    pub fn set_gradient(&mut self, motion_code: u16, e1_deg: f64, gradient: f64) {
        let idx = self.index(motion_code, e1_deg);
        self.entries[idx] = F16::from_f32(gradient as f32);
    }
}

/// Eq. (2) latency predictor with online parameter refinement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPredictor {
    /// `P(GPUₘ)`: local GPU throughput, triangles per ms (for the current
    /// fovea share of the scene).
    gpu_triangles_per_ms: f64,
    /// EMA factor for parameter refreshes.
    alpha: f64,
    /// Fixed non-rendering local overhead included in predictions, ms.
    local_overhead_ms: f64,
    /// Learned fixed remote-chain overhead (server render + codec pipeline
    /// fill) on top of the pure network term, ms. The runtime updater
    /// "updates the latency parameter" (Sec. 4.1) — this is that parameter.
    remote_overhead_ms: f64,
}

impl LatencyPredictor {
    /// Creates a predictor with an initial GPU-throughput estimate.
    #[must_use]
    pub fn new(initial_triangles_per_ms: f64, alpha: f64, local_overhead_ms: f64) -> Self {
        LatencyPredictor {
            gpu_triangles_per_ms: initial_triangles_per_ms.max(1.0),
            alpha: alpha.clamp(0.0, 1.0),
            local_overhead_ms: local_overhead_ms.max(0.0),
            remote_overhead_ms: 0.0,
        }
    }

    /// The current `P(GPUₘ)` estimate.
    #[must_use]
    pub fn gpu_triangles_per_ms(&self) -> f64 {
        self.gpu_triangles_per_ms
    }

    /// Eq. (2): `T_local = #triangles × %fovea / P`.
    #[must_use]
    pub fn predict_local_ms(&self, scene_triangles: u64, fovea_fraction: f64) -> f64 {
        self.local_overhead_ms
            + scene_triangles as f64 * fovea_fraction.clamp(0.0, 1.0) / self.gpu_triangles_per_ms
    }

    /// Eq. (2): `T_remote = datasize(M+O) / throughput` (+ base latency and
    /// the learned fixed chain overhead).
    #[must_use]
    pub fn predict_remote_ms(&self, periphery_bytes: f64, observed_mbps: f64, base_ms: f64) -> f64 {
        base_ms
            + self.remote_overhead_ms
            + periphery_bytes.max(0.0) * 8.0 / (observed_mbps.max(1.0) * 1_000.0)
    }

    /// Refines `P(GPUₘ)` from a measured local rendering time.
    pub fn observe_local(&mut self, scene_triangles: u64, fovea_fraction: f64, measured_ms: f64) {
        let rendering_ms = (measured_ms - self.local_overhead_ms).max(0.05);
        let implied = scene_triangles as f64 * fovea_fraction.clamp(0.0, 1.0) / rendering_ms;
        if implied.is_finite() && implied > 0.0 {
            self.gpu_triangles_per_ms =
                (1.0 - self.alpha) * self.gpu_triangles_per_ms + self.alpha * implied;
        }
    }

    /// Refines the fixed remote overhead from a measured remote-chain time.
    pub fn observe_remote(
        &mut self,
        periphery_bytes: f64,
        observed_mbps: f64,
        base_ms: f64,
        measured_ms: f64,
    ) {
        let network_part =
            base_ms + periphery_bytes.max(0.0) * 8.0 / (observed_mbps.max(1.0) * 1_000.0);
        let implied = (measured_ms - network_part).max(0.0);
        if implied.is_finite() {
            self.remote_overhead_ms =
                (1.0 - self.alpha) * self.remote_overhead_ms + self.alpha * implied;
        }
    }
}

/// One LIWC decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiwcDecision {
    /// The chosen eccentricity for this frame, degrees.
    pub e1_deg: f64,
    /// The applied delta, degrees (integer in `[-5, 5]`).
    pub delta_e_deg: f64,
    /// Predicted local rendering latency, ms.
    pub predicted_local_ms: f64,
    /// Predicted remote (network-dominated) latency, ms.
    pub predicted_remote_ms: f64,
}

/// The LIWC controller.
#[derive(Debug, Clone)]
pub struct Liwc {
    codec: MotionCodec,
    table: MappingTable,
    predictor: LatencyPredictor,
    /// Reward smoothing factor α of the runtime updater.
    reward_alpha: f64,
    e1_deg: f64,
    /// State of the previous decision, for the table update.
    last: Option<(u16, f64, f64)>, // (motion code, e1 at decision, delta_e)
    prev_measured_gap: Option<f64>,
}

impl Liwc {
    /// Largest per-frame eccentricity change, degrees (the integer delta
    /// tags of Sec. 4.1).
    pub const MAX_DELTA_DEG: f64 = 5.0;

    /// Creates a controller starting at `initial_e1` degrees.
    #[must_use]
    pub fn new(
        initial_e1: f64,
        initial_gradient: f64,
        reward_alpha: f64,
        predictor: LatencyPredictor,
    ) -> Self {
        Liwc {
            codec: MotionCodec::default(),
            table: MappingTable::new(initial_gradient),
            predictor,
            reward_alpha: reward_alpha.clamp(0.0, 1.0),
            e1_deg: initial_e1.clamp(LayerPartition::MIN_E1, LayerPartition::MAX_E1),
            last: None,
            prev_measured_gap: None,
        }
    }

    /// The current eccentricity, degrees.
    #[must_use]
    pub fn e1_deg(&self) -> f64 {
        self.e1_deg
    }

    /// Read-only access to the predictor.
    #[must_use]
    pub fn predictor(&self) -> &LatencyPredictor {
        &self.predictor
    }

    /// Read-only access to the mapping table.
    #[must_use]
    pub fn table(&self) -> &MappingTable {
        &self.table
    }

    /// Selects the eccentricity for the upcoming frame.
    ///
    /// * `delta` — motion change feeding the motion codec;
    /// * `scene_triangles` — triangle count observed at render setup;
    /// * `fovea_fraction_at` — `%fovea` as a function of `e1` (scene
    ///   complexity field around the current gaze);
    /// * `periphery_bytes_at` — estimated periphery data volume as a
    ///   function of `e1`;
    /// * `observed_mbps`, `net_base_ms` — ACK-monitor network state.
    pub fn select(
        &mut self,
        delta: &MotionDelta,
        scene_triangles: u64,
        mut fovea_fraction_at: impl FnMut(f64) -> f64,
        mut periphery_bytes_at: impl FnMut(f64) -> f64,
        observed_mbps: f64,
        net_base_ms: f64,
    ) -> LiwcDecision {
        let code = self.codec.encode(delta);
        let gradient = self.table.gradient(code, self.e1_deg);

        let t_local = self
            .predictor
            .predict_local_ms(scene_triangles, fovea_fraction_at(self.e1_deg));
        let t_remote = self.predictor.predict_remote_ms(
            periphery_bytes_at(self.e1_deg),
            observed_mbps,
            net_base_ms,
        );
        let gap = t_remote - t_local;

        // Close the gap along the learned gradient: gap + g·Δe ≈ 0.
        let raw = if gradient.abs() < 1e-3 {
            // Uninformative gradient: probe in the direction that should
            // help (positive gap ⇒ grow the fovea).
            gap.signum()
        } else {
            -gap / gradient
        };
        let delta_e = raw.clamp(-Self::MAX_DELTA_DEG, Self::MAX_DELTA_DEG).round();

        let decision_e1 = self.e1_deg;
        self.e1_deg = (self.e1_deg + delta_e).clamp(LayerPartition::MIN_E1, LayerPartition::MAX_E1);
        self.last = Some((code, decision_e1, self.e1_deg - decision_e1));

        LiwcDecision {
            e1_deg: self.e1_deg,
            delta_e_deg: self.e1_deg - decision_e1,
            predicted_local_ms: t_local,
            predicted_remote_ms: t_remote,
        }
    }

    /// Runtime updater: feeds back the measured latencies of the frame that
    /// used the last decision, together with the hardware-observable remote
    /// context (bytes shipped, ACK throughput, base latency) so the remote
    /// latency parameter can be refined.
    #[allow(clippy::too_many_arguments)]
    pub fn observe(
        &mut self,
        scene_triangles: u64,
        fovea_fraction: f64,
        measured_local_ms: f64,
        measured_remote_ms: f64,
        periphery_bytes: f64,
        observed_mbps: f64,
        net_base_ms: f64,
    ) {
        self.predictor
            .observe_local(scene_triangles, fovea_fraction, measured_local_ms);
        self.predictor.observe_remote(
            periphery_bytes,
            observed_mbps,
            net_base_ms,
            measured_remote_ms,
        );
        let gap = measured_remote_ms - measured_local_ms;
        if let (Some((code, e1_at, delta_e)), Some(prev_gap)) = (self.last, self.prev_measured_gap)
        {
            if delta_e.abs() >= 1.0 {
                let measured_gradient = (gap - prev_gap) / delta_e;
                if measured_gradient.is_finite() {
                    let old = self.table.gradient(code, e1_at);
                    // The paper's reward: g = (1-α)·g' + α·Δlatency. Keep the
                    // gradient in the "growing e1 closes positive gaps"
                    // regime to avoid sign flapping from noise.
                    let updated = (1.0 - self.reward_alpha) * old
                        + self.reward_alpha * measured_gradient.clamp(-50.0, -0.01);
                    self.table.set_gradient(code, e1_at, updated);
                }
            }
        }
        self.prev_measured_gap = Some(gap);
    }
}

impl fmt::Display for Liwc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LIWC @ e1={:.1}°, P(GPU)={:.0} tri/ms",
            self.e1_deg,
            self.predictor.gpu_triangles_per_ms()
        )
    }
}

/// The evaluation's pure-software controller (Fig. 12 "SW").
///
/// Selects the eccentricity from the *measured* latencies of completed
/// frames, delivered one frame late (software must wait for rendering to
/// finish and read back counters — Fig. 4-Ⓑ), using a fixed proportional
/// gain instead of a learned gradient.
#[derive(Debug, Clone)]
pub struct SoftwareController {
    e1_deg: f64,
    gain_deg_per_ms: f64,
    /// Measurement pipeline: front = oldest. Decisions read measurements
    /// that are `lag` frames old.
    pending: VecDeque<(f64, f64)>,
    lag: usize,
}

impl SoftwareController {
    /// Creates a controller starting at `initial_e1`, reacting with
    /// `gain_deg_per_ms` degrees per millisecond of latency gap, reading
    /// measurements `lag` frames late (≥ 1).
    #[must_use]
    pub fn new(initial_e1: f64, gain_deg_per_ms: f64, lag: usize) -> Self {
        SoftwareController {
            e1_deg: initial_e1.clamp(LayerPartition::MIN_E1, LayerPartition::MAX_E1),
            gain_deg_per_ms: gain_deg_per_ms.max(0.0),
            pending: VecDeque::new(),
            lag: lag.max(1),
        }
    }

    /// The current eccentricity, degrees.
    #[must_use]
    pub fn e1_deg(&self) -> f64 {
        self.e1_deg
    }

    /// Records a completed frame's measured latencies.
    pub fn observe(&mut self, measured_local_ms: f64, measured_remote_ms: f64) {
        self.pending
            .push_back((measured_local_ms, measured_remote_ms));
    }

    /// Selects the eccentricity for the next frame.
    pub fn select(&mut self) -> f64 {
        if self.pending.len() > self.lag {
            while self.pending.len() > self.lag + 1 {
                self.pending.pop_front();
            }
            if let Some(&(local, remote)) = self.pending.front() {
                let gap = remote - local;
                let delta = (self.gain_deg_per_ms * gap)
                    .clamp(-Liwc::MAX_DELTA_DEG, Liwc::MAX_DELTA_DEG)
                    .round();
                self.e1_deg =
                    (self.e1_deg + delta).clamp(LayerPartition::MIN_E1, LayerPartition::MAX_E1);
                self.pending.pop_front();
            }
        }
        self.e1_deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn still_delta() -> MotionDelta {
        MotionDelta::default()
    }

    fn moving_delta() -> MotionDelta {
        MotionDelta {
            dof: [2.0, 0.1, 0.0, 0.01, 0.0, 0.0],
            gaze: (0.2, -0.1),
            interaction: 0.1,
        }
    }

    #[test]
    fn motion_code_is_10_bits() {
        let codec = MotionCodec::default();
        for delta in [still_delta(), moving_delta()] {
            let code = codec.encode(&delta);
            assert!(usize::from(code) < MotionCodec::CODES);
        }
    }

    #[test]
    fn still_and_moving_have_distinct_codes() {
        let codec = MotionCodec::default();
        assert_ne!(codec.encode(&still_delta()), codec.encode(&moving_delta()));
    }

    #[test]
    fn dof_flags_reflect_axes() {
        let codec = MotionCodec::default();
        let yaw_only = MotionDelta {
            dof: [3.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            ..Default::default()
        };
        let code = codec.encode(&yaw_only);
        assert_eq!(code >> 4, 0b000001);
        let z_only = MotionDelta {
            dof: [0.0, 0.0, 0.0, 0.0, 0.0, 0.02],
            ..Default::default()
        };
        assert_eq!(codec.encode(&z_only) >> 4, 0b100000);
    }

    #[test]
    fn gaze_octants_differ() {
        let codec = MotionCodec::default();
        let right = MotionDelta {
            gaze: (0.2, 0.0),
            ..Default::default()
        };
        let up = MotionDelta {
            gaze: (0.0, 0.2),
            ..Default::default()
        };
        assert_ne!(codec.encode(&right) & 0xF, codec.encode(&up) & 0xF);
    }

    #[test]
    fn table_depth_matches_sec43() {
        let t = MappingTable::new(-0.5);
        assert_eq!(t.depth(), 1 << 15, "2^15 entries = 64 KB of f16");
    }

    #[test]
    fn table_buckets_span_range() {
        let t = MappingTable::new(-0.5);
        assert_eq!(t.bucket(LayerPartition::MIN_E1), 0);
        assert_eq!(t.bucket(LayerPartition::MAX_E1), MappingTable::BUCKETS - 1);
        assert!(t.bucket(45.0) > 0 && t.bucket(45.0) < MappingTable::BUCKETS - 1);
    }

    #[test]
    fn table_readback_is_f16_quantised() {
        let mut t = MappingTable::new(0.0);
        t.set_gradient(7, 20.0, -0.123456789);
        let g = t.gradient(7, 20.0);
        assert!(
            (g - (-0.123456789)).abs() < 1e-3,
            "f16 keeps ~3 digits: {g}"
        );
        assert_ne!(g, -0.123456789, "storage must quantise");
    }

    #[test]
    fn predictor_eq2_shape() {
        let p = LatencyPredictor::new(100_000.0, 0.2, 0.5);
        let t1 = p.predict_local_ms(1_000_000, 0.1);
        let t2 = p.predict_local_ms(1_000_000, 0.2);
        assert!(t2 > t1, "more fovea share costs more");
        assert!(
            (t1 - (0.5 + 1.0)).abs() < 1e-9,
            "1M tris x 10% / 100k tri/ms = 1 ms"
        );
        let r = p.predict_remote_ms(250_000.0, 200.0, 2.0);
        assert!(
            (r - (2.0 + 10.0)).abs() < 1e-9,
            "250 KB at 200 Mbps = 10 ms"
        );
    }

    #[test]
    fn predictor_learns_gpu_performance() {
        let mut p = LatencyPredictor::new(50_000.0, 0.5, 0.0);
        // Real hardware is twice as fast as the initial estimate.
        for _ in 0..50 {
            p.observe_local(1_000_000, 0.1, 1.0); // implies 100k tri/ms
        }
        let learned = p.gpu_triangles_per_ms();
        assert!((learned - 100_000.0).abs() < 5_000.0, "learned {learned}");
    }

    #[test]
    fn liwc_grows_fovea_when_network_is_slow() {
        let predictor = LatencyPredictor::new(100_000.0, 0.2, 0.5);
        let mut liwc = Liwc::new(5.0, -1.0, 0.3, predictor);
        // Remote side far slower than local: e1 must grow monotonically.
        let mut last_e1 = liwc.e1_deg();
        for _ in 0..10 {
            let d = liwc.select(
                &still_delta(),
                1_000_000,
                |e1| (e1 / 90.0).min(1.0) * 0.5,
                |e1| 600_000.0 * (1.0 - e1 / 120.0),
                100.0,
                2.0,
            );
            assert!(
                d.e1_deg >= last_e1,
                "e1 must not shrink while remote dominates"
            );
            last_e1 = d.e1_deg;
        }
        assert!(
            last_e1 > 30.0,
            "after 10 frames of +5°, e1 is large: {last_e1}"
        );
    }

    #[test]
    fn liwc_shrinks_fovea_when_local_is_slow() {
        let predictor = LatencyPredictor::new(20_000.0, 0.2, 0.5);
        let mut liwc = Liwc::new(60.0, -1.0, 0.3, predictor);
        for _ in 0..10 {
            liwc.select(
                &still_delta(),
                2_000_000,
                |e1| (e1 / 90.0).min(1.0),
                |_| 50_000.0,
                500.0,
                1.5,
            );
        }
        assert!(liwc.e1_deg() < 30.0, "e1 must shrink: {}", liwc.e1_deg());
    }

    #[test]
    fn liwc_delta_bounded_by_tags() {
        let predictor = LatencyPredictor::new(100_000.0, 0.2, 0.5);
        let mut liwc = Liwc::new(45.0, -0.1, 0.3, predictor);
        let d = liwc.select(
            &moving_delta(),
            5_000_000,
            |_| 1.0,
            |_| 5_000_000.0,
            10.0,
            2.0,
        );
        assert!(d.delta_e_deg.abs() <= Liwc::MAX_DELTA_DEG + 1e-9);
    }

    #[test]
    fn liwc_updates_gradient_from_measurements() {
        let predictor = LatencyPredictor::new(100_000.0, 0.2, 0.5);
        let mut liwc = Liwc::new(20.0, -0.5, 0.5, predictor);
        let code = MotionCodec::default().encode(&still_delta());
        // Two frames: the gap shrinks by 4 ms after the second +5° move, so
        // the measured gradient is -0.8 ms/deg.
        liwc.select(
            &still_delta(),
            1_000_000,
            |_| 0.2,
            |_| 300_000.0,
            200.0,
            2.0,
        );
        liwc.observe(1_000_000, 0.2, 5.0, 13.0, 300_000.0, 200.0, 2.0); // gap 8, seeds prev_gap
        liwc.select(
            &still_delta(),
            1_000_000,
            |_| 0.2,
            |_| 300_000.0,
            200.0,
            2.0,
        );
        liwc.observe(1_000_000, 0.2, 7.0, 11.0, 300_000.0, 200.0, 2.0); // gap 4

        // The second decision was taken from the post-first-move state
        // (e1 = 25°), so the update lands on that state's entry: the value
        // moves off the -0.5 initialisation toward -0.8.
        let after = liwc.table().gradient(code, 25.0);
        assert_ne!(after, -0.5, "observed gradient must update the table");
        assert!(
            after < -0.5,
            "update moves toward the measured -0.8: {after}"
        );
    }

    #[test]
    fn liwc_convergence_on_synthetic_equilibrium() {
        // Local cost rises with e1, remote falls; equilibrium near 30°.
        let predictor = LatencyPredictor::new(100_000.0, 0.3, 0.5);
        let mut liwc = Liwc::new(5.0, -1.0, 0.3, predictor);
        let local_at = |e1: f64| 0.5 + 1_500_000.0 * (e1 / 90.0).powi(2) / 100_000.0;
        let remote_at = |e1: f64| 2.0 + 16.0 * (1.0 - e1 / 60.0).max(0.1);
        let mut e1_hist = Vec::new();
        for _ in 0..120 {
            let d = liwc.select(
                &still_delta(),
                1_500_000,
                |e1| (e1 / 90.0).powi(2),
                |e1| (remote_at(e1) - 2.0) * 200.0 * 1_000.0 / 8.0,
                200.0,
                2.0,
            );
            liwc.observe(
                1_500_000,
                (d.e1_deg / 90.0).powi(2),
                local_at(d.e1_deg),
                remote_at(d.e1_deg),
                (remote_at(d.e1_deg) - 2.0) * 200.0 * 1_000.0 / 8.0,
                200.0,
                2.0,
            );
            e1_hist.push(d.e1_deg);
        }
        // Steady state: the last 40 frames hover near the crossing point.
        let tail = &e1_hist[80..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        let crossing = (5..90)
            .map(f64::from)
            .min_by(|a, b| {
                (local_at(*a) - remote_at(*a))
                    .abs()
                    .total_cmp(&(local_at(*b) - remote_at(*b)).abs())
            })
            .unwrap();
        assert!(
            (mean - crossing).abs() < 8.0,
            "converged mean {mean:.1}° vs true balance {crossing:.1}°"
        );
    }

    #[test]
    fn software_controller_lags_and_tracks() {
        let mut sw = SoftwareController::new(5.0, 0.5, 2);
        // Constant positive gap: e1 should eventually grow, but not before
        // the lag drains.
        let e_first = sw.select();
        assert_eq!(e_first, 5.0, "no measurements yet");
        for _ in 0..20 {
            sw.observe(3.0, 13.0);
            sw.select();
        }
        assert!(
            sw.e1_deg() > 20.0,
            "software controller must track: {}",
            sw.e1_deg()
        );
    }

    #[test]
    fn software_controller_respects_delta_cap() {
        let mut sw = SoftwareController::new(5.0, 10.0, 1);
        sw.observe(0.0, 100.0);
        sw.observe(0.0, 100.0);
        let before = sw.e1_deg();
        sw.select();
        assert!(sw.e1_deg() - before <= Liwc::MAX_DELTA_DEG + 1e-9);
    }

    #[test]
    fn liwc_display() {
        let liwc = Liwc::new(10.0, -0.5, 0.3, LatencyPredictor::new(1e5, 0.2, 0.5));
        assert!(liwc.to_string().contains("e1=10.0"));
    }
}
