//! The software-layer foveation framework (paper Sec. 3.2, Fig. 7).
//!
//! Q-VR's software layer splits the VR graphics into a local client (the
//! "Fovea" channel) and a remote server (the "Periphery" channels with VRS
//! rates), connected by parallel per-layer streams and composed by a
//! "Display" channel. [`RenderGraph`] mirrors Fig. 7's node/pipe/window/
//! channel configuration; [`FoveationPlan`] is the per-frame resolved plan
//! (eccentricities, VRS-quantised layer scales, per-layer pixel and byte
//! volumes) that both the scheme pipelines and the benchmarks consume.

use qvr_codec::{EntropyModel, SizeModel};
use qvr_hvs::{DisplayGeometry, GazePoint, LayerKind, LayerPartition, MarModel};
use std::fmt;

/// Hardware variable-rate-shading rates available on the server renderer
/// (the "VRS Graphics" of Fig. 7), expressed as linear resolution scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VrsRate {
    /// 1×1: native shading.
    Full,
    /// 1×2 / 2×1: ~0.71 linear scale.
    Half,
    /// 2×2: 0.5 linear scale.
    Quarter,
    /// 2×4 / 4×2: ~0.35 linear scale.
    Eighth,
    /// 4×4: 0.25 linear scale.
    Sixteenth,
}

impl VrsRate {
    /// All rates, finest first.
    #[must_use]
    pub fn all() -> [VrsRate; 5] {
        [
            VrsRate::Full,
            VrsRate::Half,
            VrsRate::Quarter,
            VrsRate::Eighth,
            VrsRate::Sixteenth,
        ]
    }

    /// The linear resolution scale of this rate.
    #[must_use]
    pub fn linear_scale(&self) -> f64 {
        match self {
            VrsRate::Full => 1.0,
            VrsRate::Half => std::f64::consts::FRAC_1_SQRT_2,
            VrsRate::Quarter => 0.5,
            VrsRate::Eighth => 0.354,
            VrsRate::Sixteenth => 0.25,
        }
    }

    /// The coarsest hardware rate whose scale still satisfies (is at least)
    /// the MAR-derived target scale.
    #[must_use]
    pub fn quantize(target_scale: f64) -> VrsRate {
        let mut chosen = VrsRate::Full;
        for rate in VrsRate::all() {
            if rate.linear_scale() + 1e-12 >= target_scale {
                chosen = rate;
            } else {
                break;
            }
        }
        chosen
    }
}

impl fmt::Display for VrsRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VrsRate::Full => "1x1",
            VrsRate::Half => "1x2",
            VrsRate::Quarter => "2x2",
            VrsRate::Eighth => "2x4",
            VrsRate::Sixteenth => "4x4",
        };
        f.write_str(s)
    }
}

/// One rendering channel of the Fig. 7 graph.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerChannel {
    /// Channel name (`"fovea"`, `"mid"`, `"out"`).
    pub name: &'static str,
    /// The layer it renders.
    pub layer: LayerKind,
    /// Whether it executes on the local GPU or the remote server.
    pub local: bool,
    /// The VRS rate it shades at.
    pub rate: VrsRate,
    /// Viewport eccentricity bound, degrees (the layer's outer extent).
    pub extent_deg: f64,
}

impl fmt::Display for LayerChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "channel {{ name \"{}\" {} {} viewport ≤{:.1}° }}",
            self.name,
            if self.local { "local" } else { "remote" },
            self.rate,
            self.extent_deg
        )
    }
}

/// The client/server channel configuration exchanged at setup time.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderGraph {
    channels: Vec<LayerChannel>,
}

impl RenderGraph {
    /// Builds the Fig. 7 graph for a resolved plan.
    #[must_use]
    pub fn for_plan(plan: &FoveationPlan) -> Self {
        RenderGraph {
            channels: vec![
                LayerChannel {
                    name: "fovea",
                    layer: LayerKind::Fovea,
                    local: true,
                    rate: VrsRate::Full,
                    extent_deg: plan.e1_deg,
                },
                LayerChannel {
                    name: "mid",
                    layer: LayerKind::Middle,
                    local: false,
                    rate: plan.middle_rate,
                    extent_deg: plan.e2_deg,
                },
                LayerChannel {
                    name: "out",
                    layer: LayerKind::Outer,
                    local: false,
                    rate: plan.outer_rate,
                    extent_deg: plan.max_extent_deg,
                },
            ],
        }
    }

    /// The channels, fovea first.
    #[must_use]
    pub fn channels(&self) -> &[LayerChannel] {
        &self.channels
    }

    /// The channels rendered remotely.
    pub fn remote_channels(&self) -> impl Iterator<Item = &LayerChannel> {
        self.channels.iter().filter(|c| !c.local)
    }
}

impl fmt::Display for RenderGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.channels {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

/// The per-frame resolved foveation plan.
///
/// Produced by [`FoveationPlan::resolve`] from an eccentricity choice, a
/// display, a MAR model, and the gaze point; consumed by the scheme
/// pipelines (workload + byte volumes) and by the benchmarks (Fig. 6's
/// relative frame size, Fig. 13's reductions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoveationPlan {
    /// Fovea eccentricity `e1`, degrees.
    pub e1_deg: f64,
    /// Middle eccentricity `*e2` (Eq. 1 optimal), degrees.
    pub e2_deg: f64,
    /// Largest on-screen eccentricity, degrees.
    pub max_extent_deg: f64,
    /// VRS rate of the middle layer.
    pub middle_rate: VrsRate,
    /// VRS rate of the outer layer.
    pub outer_rate: VrsRate,
    /// Fraction of the panel covered by the local fovea disc.
    pub fovea_area_fraction: f64,
    /// Native pixels of the middle-layer region (rect minus fovea), one eye.
    pub middle_region_px: f64,
    /// Native pixels of the outer-layer region (full panel), one eye.
    pub outer_region_px: f64,
    /// Rendered pixels, one eye (fovea native + periphery at VRS scales).
    pub rendered_px: f64,
    /// Area-weighted mean linear resolution scale across the frame.
    pub mean_linear_scale: f64,
}

impl FoveationPlan {
    /// Resolves a plan for eccentricity `e1` on a display under a MAR model.
    ///
    /// The middle eccentricity follows Eq. (1); MAR scales are quantised to
    /// hardware VRS rates (never coarser than the MAR bound allows, i.e.
    /// always at least the MAR scale).
    #[must_use]
    pub fn resolve(
        e1_deg: f64,
        display: &DisplayGeometry,
        mar: &MarModel,
        gaze: GazePoint,
    ) -> Self {
        let e1 = e1_deg.clamp(LayerPartition::MIN_E1, LayerPartition::MAX_E1);
        let part =
            LayerPartition::with_optimal_middle(e1, display, mar).expect("clamped e1 is valid");
        let budget = part.layer_budget(display, mar, gaze);
        let native = display.pixels_per_eye() as f64;

        let mid_scale_mar = part.layer_scale(LayerKind::Middle, display, mar);
        let out_scale_mar = part.layer_scale(LayerKind::Outer, display, mar);
        let middle_rate = VrsRate::quantize(mid_scale_mar);
        let outer_rate = VrsRate::quantize(out_scale_mar);

        let fovea_area = display.fovea_area_fraction(e1, gaze);
        // Region extents in native pixels. Q-VR's server transmits only
        // what the client does not render locally: the middle rectangle
        // minus the fovea disc, and the remainder of the panel beyond the
        // middle rectangle (this is what makes transmitted data collapse
        // when light apps push e1 toward 90°, e.g. Doom3-L's 96 %).
        let middle_region_px = if mid_scale_mar > 0.0 {
            budget.middle_px / (mid_scale_mar * mid_scale_mar)
        } else {
            0.0
        };
        let outer_region_px = (native - middle_region_px - fovea_area * native).max(0.0);

        let rendered_px = budget.fovea_px
            + middle_region_px * middle_rate.linear_scale().powi(2)
            + outer_region_px * outer_rate.linear_scale().powi(2);

        // Area-weighted linear scale: fovea at 1, middle annulus at its
        // rate, remaining outer area at its rate.
        let mid_area = (middle_region_px / native).clamp(0.0, 1.0 - fovea_area);
        let outer_area = (outer_region_px / native).clamp(0.0, 1.0 - fovea_area - mid_area);
        let mean_linear_scale = fovea_area
            + mid_area * middle_rate.linear_scale()
            + outer_area * outer_rate.linear_scale();

        FoveationPlan {
            e1_deg: e1,
            e2_deg: part.middle_eccentricity(),
            max_extent_deg: display.max_eccentricity().0,
            middle_rate,
            outer_rate,
            fovea_area_fraction: fovea_area,
            middle_region_px,
            outer_region_px,
            rendered_px,
            mean_linear_scale: mean_linear_scale.clamp(0.0, 1.0),
        }
    }

    /// Compressed bytes for the periphery streams of **one eye** under a
    /// size model, with `periphery_quality` scaling the encoder quality of
    /// the remote streams (the Eq. 1 "*Periphery Quality" knob; `1.0` =
    /// fovea-grade quality).
    #[must_use]
    pub fn periphery_bytes(
        &self,
        size_model: &SizeModel,
        content_detail: f64,
        periphery_quality: f64,
    ) -> f64 {
        let q = periphery_quality.clamp(0.05, 1.0);
        let mid = size_model.frame_bytes(
            self.middle_region_px.round() as u64,
            content_detail,
            self.middle_rate.linear_scale(),
        );
        let out = size_model.frame_bytes(
            self.outer_region_px.round() as u64,
            content_detail,
            self.outer_rate.linear_scale(),
        );
        (mid + out) * q
    }

    /// Entropy-modeled compressed bytes for the periphery streams of **one
    /// eye** at an explicit codec `quality` (the rate controller's knob).
    ///
    /// Unlike [`FoveationPlan::periphery_bytes`], this path is content-,
    /// motion-, and foveation-true: each layer's bytes come from a
    /// [`qvr_codec::EntropyModel`] synthesized from the scene's detail and
    /// head motion and the layer's eccentricity (HVS attenuation), with the
    /// VRS downscale concentrating the surviving detail. Allocation-free.
    #[must_use]
    pub fn periphery_entropy_bytes(&self, content_detail: f64, motion: f64, quality: f64) -> f64 {
        let mid = EntropyModel::vrs_layer(
            self.middle_region_px,
            content_detail,
            motion,
            self.middle_rate.linear_scale(),
            self.e1_deg,
        );
        let out = EntropyModel::vrs_layer(
            self.outer_region_px,
            content_detail,
            motion,
            self.outer_rate.linear_scale(),
            self.e2_deg,
        );
        mid.frame_bytes(quality) + out.frame_bytes(quality)
    }

    /// Resolution reduction relative to native rendering (the Fig. 13
    /// "resolution reduction": one minus the area-weighted linear scale).
    #[must_use]
    pub fn resolution_reduction(&self) -> f64 {
        (1.0 - self.mean_linear_scale).clamp(0.0, 1.0)
    }
}

impl fmt::Display for FoveationPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "e1={:.1}°, e2={:.1}°, mid {} out {}, {:.0}% res reduction",
            self.e1_deg,
            self.e2_deg,
            self.middle_rate,
            self.outer_rate,
            self.resolution_reduction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DisplayGeometry, MarModel) {
        (DisplayGeometry::vive_pro_class(), MarModel::default())
    }

    #[test]
    fn vrs_quantize_never_coarser_than_target() {
        for target in [1.0, 0.9, 0.71, 0.6, 0.5, 0.4, 0.3, 0.25, 0.1, 0.01] {
            let rate = VrsRate::quantize(target);
            assert!(
                rate.linear_scale() + 1e-12 >= target.min(0.25),
                "target {target} got {rate}"
            );
            // And it is the coarsest such rate: the next-coarser rate (if
            // any) must violate the target.
            let all = VrsRate::all();
            if let Some(pos) = all.iter().position(|r| *r == rate) {
                if pos + 1 < all.len() {
                    assert!(
                        all[pos + 1].linear_scale() < target,
                        "target {target}: {rate} not coarsest"
                    );
                }
            }
        }
    }

    #[test]
    fn vrs_floor_is_4x4() {
        assert_eq!(VrsRate::quantize(0.001), VrsRate::Sixteenth);
    }

    #[test]
    fn plan_scales_coarsen_outward() {
        let (d, m) = setup();
        let plan = FoveationPlan::resolve(15.0, &d, &m, GazePoint::center());
        assert!(plan.middle_rate.linear_scale() >= plan.outer_rate.linear_scale());
        assert!(plan.e2_deg >= plan.e1_deg);
    }

    #[test]
    fn bigger_fovea_means_less_periphery_bytes() {
        let (d, m) = setup();
        let sm = SizeModel::default();
        let small = FoveationPlan::resolve(10.0, &d, &m, GazePoint::center());
        let large = FoveationPlan::resolve(45.0, &d, &m, GazePoint::center());
        assert!(large.periphery_bytes(&sm, 0.5, 1.0) < small.periphery_bytes(&sm, 0.5, 1.0));
    }

    #[test]
    fn periphery_quality_scales_bytes() {
        let (d, m) = setup();
        let sm = SizeModel::default();
        let plan = FoveationPlan::resolve(15.0, &d, &m, GazePoint::center());
        let full = plan.periphery_bytes(&sm, 0.5, 1.0);
        let half = plan.periphery_bytes(&sm, 0.5, 0.5);
        assert!((half / full - 0.5).abs() < 1e-9);
    }

    #[test]
    fn resolution_reduction_sensible_bounds() {
        let (d, m) = setup();
        for e1 in [5.0, 15.0, 30.0, 60.0, 90.0] {
            let plan = FoveationPlan::resolve(e1, &d, &m, GazePoint::center());
            let r = plan.resolution_reduction();
            assert!((0.0..1.0).contains(&r), "e1={e1}: reduction {r}");
        }
        // Small fovea: most of the frame is coarse.
        let small = FoveationPlan::resolve(5.0, &d, &m, GazePoint::center());
        assert!(small.resolution_reduction() > 0.4);
        // Huge fovea: almost everything native.
        let big = FoveationPlan::resolve(90.0, &d, &m, GazePoint::center());
        assert!(big.resolution_reduction() < 0.25);
    }

    #[test]
    fn rendered_pixels_below_native() {
        let (d, m) = setup();
        let plan = FoveationPlan::resolve(20.0, &d, &m, GazePoint::center());
        assert!(plan.rendered_px < d.pixels_per_eye() as f64 * 1.1);
        assert!(plan.rendered_px > 0.0);
    }

    #[test]
    fn render_graph_matches_fig7_shape() {
        let (d, m) = setup();
        let plan = FoveationPlan::resolve(15.0, &d, &m, GazePoint::center());
        let graph = RenderGraph::for_plan(&plan);
        assert_eq!(graph.channels().len(), 3);
        assert!(graph.channels()[0].local);
        assert_eq!(graph.remote_channels().count(), 2);
        let text = graph.to_string();
        assert!(text.contains("fovea"));
        assert!(text.contains("mid"));
        assert!(text.contains("out"));
    }

    #[test]
    fn plan_clamps_eccentricity() {
        let (d, m) = setup();
        let plan = FoveationPlan::resolve(2.0, &d, &m, GazePoint::center());
        assert_eq!(plan.e1_deg, LayerPartition::MIN_E1);
        let plan = FoveationPlan::resolve(500.0, &d, &m, GazePoint::center());
        assert_eq!(plan.e1_deg, LayerPartition::MAX_E1);
    }

    #[test]
    fn vrs_display_labels() {
        assert_eq!(VrsRate::Quarter.to_string(), "2x2");
        assert_eq!(VrsRate::Sixteenth.to_string(), "4x4");
    }
}
