//! Push-based observability: per-frame events streamed through the stack.
//!
//! Until PR 5, every fleet-level number was bolted on after the fact:
//! [`crate::fleet::FleetSummary`] re-walked per-session frame histories,
//! churn kept an O(run) in-memory sample series, and server policies could
//! act only on a tenant's scheme *class*, never its measured load. The
//! multi-user VR system surveys both single out live per-session telemetry
//! and energy as first-class concerns for multi-party deployments — and the
//! cross-fleet sharding step on the ROADMAP needs a seam that aggregates
//! *streams*, not retained histories.
//!
//! This module is that seam. A [`FrameEvent`] is emitted by every
//! [`crate::session::Session`] at display end — one event per simulated
//! frame, carrying the session slot, frame index, virtual-time span,
//! motion-to-photon latency, transmitted bytes, per-stage server busy time,
//! the GPU unit the frame's remote chain landed on, and the tenant class. A
//! [`TelemetrySink`] consumes events online; a [`SinkSet`] fans each event
//! out to the built-in sinks (default-on, configured by
//! [`TelemetryConfig`] on `FleetConfig`/`ChurnConfig`) plus any custom
//! sinks attached for tests or tooling:
//!
//! * [`AggregateSink`] — streams the aggregates `FleetSummary` used to
//!   re-derive post hoc (MTP percentile samples, per-slot FPS spans).
//!   Bit-identical to the post-hoc path by construction
//!   (`tests/telemetry.rs` pins this on the fig_fleet golden configs).
//! * [`WindowedStatsSink`] — streaming half-open-bucket p95 timeline,
//!   replacing `ChurnSummary`'s per-run sample series at O(window) live
//!   memory (closed buckets collapse to `(start, frames, p95)`).
//! * [`EnergyMeter`] — closes the fleet energy loop: per-stage server busy
//!   ms × [`qvr_energy::ServerPowerModel`], link activity ×
//!   [`qvr_energy::ApPowerModel`], summed headset energy; reported as
//!   [`qvr_energy::FleetEnergy`] on `FleetSummary`/`ChurnSummary`. Because
//!   it meters the *stream*, the result is independent of windowed task
//!   retirement by construction.
//! * [`LoadTracker`] — EWMA of each tenant's measured server ms/frame,
//!   queryable mid-run by [`crate::sched::ServerPolicy::MeasuredLoad`]
//!   placement (closing the measured-load loop left open in PR 4).
//!
//! Sinks observe and never steer (except [`LoadTracker`], whose readings a
//! fleet may *explicitly* route back into placement via `MeasuredLoad`):
//! with the default policy the event stream is derived purely from state
//! the simulation already computed, so enabling every default sink leaves
//! schedules, RNG draws, and the fig_fleet goldens bit-identical.

use crate::metrics::SortedSamples;
use crate::sched::TenantClass;
use qvr_energy::{ApPowerModel, EnergyBreakdown, FleetEnergy, ServerPowerModel};
use qvr_net::NetworkPreset;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One pipeline stage's `(start, end)` span in virtual time, ms. The empty
/// span is `(0, 0)` — a stage the frame never exercised (e.g. the remote
/// stages of a local-only scheme) reads as empty rather than absent, which
/// keeps [`FrameEvent`] `Copy` and the hot path allocation-free.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageSpan {
    /// Earliest virtual time any task of this stage started, ms.
    pub start_ms: f64,
    /// Latest virtual time any task of this stage ended, ms.
    pub end_ms: f64,
}

impl StageSpan {
    /// Whether the stage recorded no (non-degenerate) work this frame.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end_ms <= self.start_ms
    }

    /// The span's extent, ms (0 when empty).
    #[must_use]
    pub fn duration_ms(&self) -> f64 {
        (self.end_ms - self.start_ms).max(0.0)
    }

    /// Widens the span to cover `[start_ms, end_ms]`; an empty span adopts
    /// the interval outright. The rig calls this once per submitted task,
    /// right after submission (task times are final at submission, and
    /// eager capture is what keeps span attribution exact once old tasks
    /// retire out of the engine's history window).
    pub fn widen(&mut self, start_ms: f64, end_ms: f64) {
        if self.is_empty() {
            self.start_ms = start_ms;
            self.end_ms = end_ms;
        } else {
            self.start_ms = self.start_ms.min(start_ms);
            self.end_ms = self.end_ms.max(end_ms);
        }
    }
}

/// Per-stage span breakdown of one frame — where the frame's wall time
/// actually went, in virtual time. Chunked pipelines (DESIGN.md §4) submit
/// k tasks per stage; each stage's span covers the union `[first start,
/// last end]`, so overlap between consecutive stages is *visible* (that is
/// the point: the §7 coupling artifacts show up as one tenant's network
/// span stretching while its render span does not).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FrameSpans {
    /// Pose/input upload on the shared uplink.
    pub upload: StageSpan,
    /// Server GPU render tasks.
    pub render: StageSpan,
    /// Server hardware-encode tasks.
    pub encode: StageSpan,
    /// Downlink transfer tasks.
    pub network: StageSpan,
    /// Client decode tasks.
    pub decode: StageSpan,
    /// Display scanout.
    pub display: StageSpan,
}

/// Everything the stack reports about one displayed frame, emitted by
/// [`crate::session::Session::step`] at display end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameEvent {
    /// The session's fleet slot (0 for a private single-tenant session;
    /// churn fleets recycle departed tenants' slots).
    pub session: usize,
    /// Per-session frame index, 0-based.
    pub frame: u64,
    /// Virtual time this frame's span opens: the previous frame's display
    /// end, or the session's origin (its join gate) for the first frame.
    pub span_start_ms: f64,
    /// Virtual time the frame's display scanout ends — the session's clock
    /// after this frame.
    pub end_ms: f64,
    /// Motion-to-photon latency of the frame, ms.
    pub mtp_ms: f64,
    /// Downlink bytes the frame shipped.
    pub tx_bytes: f64,
    /// Codec quality the tenant's rate controller chose for the frame;
    /// `None` when rate control is off or the scheme never transmits.
    pub quality: Option<f64>,
    /// Server GPU render time this frame submitted, ms (0 for local-only
    /// work; includes prefetch chains submitted on this frame's behalf).
    pub server_render_ms: f64,
    /// Server hardware-encoder time this frame submitted, ms.
    pub server_encode_ms: f64,
    /// Wireless link activity this frame submitted (uplink + downlink), ms.
    pub radio_ms: f64,
    /// Server GPU unit the frame's (last) remote chain landed on; `None`
    /// when the frame never touched the server.
    pub unit: Option<usize>,
    /// The emitting tenant's scheduling class.
    pub class: TenantClass,
    /// Per-stage span breakdown (render / encode / network / decode /
    /// display / upload start+end in virtual time). Captured eagerly by
    /// the rig's attribution hooks; always populated — the *sinks* that
    /// consume it (tracing) are what the configuration gates.
    pub spans: FrameSpans,
}

/// An online consumer of [`FrameEvent`]s.
pub trait TelemetrySink: std::fmt::Debug {
    /// Observes one displayed frame. Events arrive in fleet step order;
    /// within one session they are ordered by frame index, across sessions
    /// ordering follows the stepping policy.
    fn on_frame(&mut self, event: &FrameEvent);

    /// Observes a batch of frames in stream order — semantically identical
    /// to calling [`TelemetrySink::on_frame`] on each event in order (the
    /// default does exactly that). Fleets deliver one round per batch so
    /// the fan-out traverses the sink set once per step instead of once
    /// per event; sinks may override to exploit the batching.
    fn on_batch(&mut self, events: &[FrameEvent]) {
        for event in events {
            self.on_frame(event);
        }
    }
}

/// Which built-in sinks a fleet runs, threaded through
/// `FleetConfig::telemetry` / `ChurnConfig::telemetry`. Default-on: the
/// aggregate, energy, and load sinks always stream (they are cheap and
/// observational); the windowed-stats sink activates when a bucket width is
/// configured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Bucket width for the streaming windowed-p95 sink, ms; `None` (the
    /// default) disables it. A churn fleet with a width set streams its
    /// MTP timeline instead of retaining the O(run) sample series.
    pub window_ms: Option<f64>,
    /// Whether the energy meter runs (default `true`).
    pub energy: bool,
    /// Defer window closing: the windowed sink ignores the fleet's closing
    /// frontier and keeps every bucket open (raw samples retained) until
    /// finalisation. This is how a shard *cell* runs — an un-collapsed
    /// sink state is exactly mergeable across cells
    /// ([`WindowedStatsSink::absorb`]), while a collapsed bucket has lost
    /// the samples a bit-exact merge needs. Default `false` (streaming
    /// closes keep live memory O(window)).
    pub defer_window_close: bool,
    /// Span tracing: `Some` attaches a [`crate::obs::TraceSink`] recording
    /// the sampled sessions' per-frame stage spans for Chrome-trace export.
    /// Default `None` — tracing off adds zero work and zero allocations to
    /// the frame loop (spans ride the event either way).
    pub trace: Option<crate::obs::TraceConfig>,
    /// Mergeable metrics: `true` attaches a [`crate::obs::MetricsSink`]
    /// maintaining per-class MTP/tx/stage-busy histograms and counters at
    /// the default 1% accuracy, exposable as Prometheus-style text. Default
    /// `false` (the exact `SortedSamples` aggregate path stays the
    /// percentile source either way).
    pub metrics: bool,
    /// Health monitoring: `Some` attaches a [`crate::obs::HealthMonitor`]
    /// evaluating these SLO rules over sliding histogram windows and
    /// emitting a deterministic incident timeline. Default `None`.
    pub health: Option<crate::obs::HealthRules>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            window_ms: None,
            energy: true,
            defer_window_close: false,
            trace: None,
            metrics: false,
            health: None,
        }
    }
}

impl TelemetryConfig {
    /// Returns a copy with the windowed-stats sink enabled at this width.
    #[must_use]
    pub fn with_window_ms(mut self, window_ms: f64) -> Self {
        self.window_ms = Some(window_ms);
        self
    }

    /// Returns a copy whose windowed sink defers all bucket closing to
    /// finalisation (the mergeable shard-cell mode; see
    /// [`TelemetryConfig::defer_window_close`]).
    #[must_use]
    pub fn with_deferred_windows(mut self) -> Self {
        self.defer_window_close = true;
        self
    }

    /// Returns a copy with span tracing enabled under this sampling
    /// configuration.
    #[must_use]
    pub fn with_trace(mut self, trace: crate::obs::TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Returns a copy with the mergeable metrics sink enabled.
    #[must_use]
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Returns a copy with the health monitor enabled under these rules.
    #[must_use]
    pub fn with_health(mut self, rules: crate::obs::HealthRules) -> Self {
        self.health = Some(rules);
        self
    }
}

/// Per-slot accumulators behind [`AggregateSink`]'s FPS statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct SlotSpan {
    frames: usize,
    first_start_ms: f64,
    last_end_ms: f64,
}

/// Streams the aggregates [`crate::fleet::FleetSummary`] used to re-derive
/// post hoc: every frame's MTP (for the percentile queries) and per-slot
/// `(frame count, span)` (for the FPS floor and mean). The arithmetic at
/// finalisation mirrors the post-hoc path operation for operation, so the
/// resulting summary is bit-identical (pinned by `tests/telemetry.rs` on
/// the fig_fleet golden configs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AggregateSink {
    mtp_samples: Vec<f64>,
    slots: Vec<SlotSpan>,
}

impl AggregateSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        AggregateSink::default()
    }

    /// Events observed so far (== frames displayed fleet-wide).
    #[must_use]
    pub fn frames(&self) -> usize {
        self.mtp_samples.len()
    }

    /// Slot entries tracked so far (== highest session slot seen + 1).
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Folds another sink's state into this one — the cross-cell merge of
    /// the sharding seam. `other`'s slots are re-based at `self.slots()`
    /// (cells tile the shard's slot-id space, so distinct cells can never
    /// collide on a slot), and its MTP samples are appended in stream
    /// order. Merging K cells' sinks in ascending cell order is
    /// bit-identical to one sink consuming the concatenated event stream:
    /// the percentile queries sort, so sample order never matters, and the
    /// FPS statistics walk slots in the same tiled order either way.
    pub fn absorb(&mut self, other: &AggregateSink) {
        self.mtp_samples.extend_from_slice(&other.mtp_samples);
        self.slots.extend_from_slice(&other.slots);
    }

    /// `(p50, p95, p99)` MTP over every streamed frame.
    #[must_use]
    pub fn mtp_percentiles(&self) -> (f64, f64, f64) {
        let sorted = SortedSamples::new(self.mtp_samples.clone());
        (sorted.p50(), sorted.p95(), sorted.p99())
    }

    /// `(fps_floor, mean_fps)` over slots that displayed at least one
    /// frame, computed exactly as the post-hoc aggregation does (same
    /// operations in the same order, so the bits match).
    #[must_use]
    pub fn fps_stats(&self) -> (f64, f64) {
        let fps: Vec<f64> = self
            .slots
            .iter()
            .filter(|s| s.frames > 0)
            .map(|s| {
                let span = s.last_end_ms - s.first_start_ms;
                if span <= 0.0 {
                    0.0
                } else {
                    s.frames as f64 * 1_000.0 / span
                }
            })
            .collect();
        let floor = fps.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = if fps.is_empty() {
            0.0
        } else {
            fps.iter().sum::<f64>() / fps.len() as f64
        };
        (if floor.is_finite() { floor } else { 0.0 }, mean)
    }
}

impl TelemetrySink for AggregateSink {
    fn on_frame(&mut self, event: &FrameEvent) {
        self.mtp_samples.push(event.mtp_ms);
        if event.session >= self.slots.len() {
            self.slots.resize(event.session + 1, SlotSpan::default());
        }
        let slot = &mut self.slots[event.session];
        if slot.frames == 0 {
            slot.first_start_ms = event.span_start_ms;
        }
        slot.frames += 1;
        slot.last_end_ms = event.end_ms;
    }
}

/// Streaming windowed-p95 timeline over half-open virtual-time buckets
/// `[k·w, (k+1)·w)` — the same bucket convention as
/// [`crate::churn::ChurnSummary::windowed_p95`], but with bounded live
/// memory: raw samples are held only for *open* buckets, and a bucket
/// closes to a `(start_ms, frames, p95)` triple once the caller's
/// [`WindowedStatsSink::close_before`] frontier guarantees no earlier
/// sample can still arrive. Fleets drive the frontier from their virtual
/// clock (the same quantity windowed task retirement keys on).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedStatsSink {
    window_ms: f64,
    /// Open buckets by index, raw samples.
    open: BTreeMap<usize, Vec<f64>>,
    /// Closed buckets in index order: `(start_ms, frames, p95_ms)`.
    closed: Vec<(f64, usize, f64)>,
    /// First bucket index not yet closed.
    close_frontier: usize,
    open_samples: usize,
    peak_open_samples: usize,
    /// Deferred mode: [`WindowedStatsSink::close_before`] is a no-op, so
    /// every bucket stays open (raw samples retained) until finish — the
    /// mergeable shard-cell mode (see [`WindowedStatsSink::absorb`]).
    defer: bool,
}

impl WindowedStatsSink {
    /// A sink with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `window_ms` is not positive-finite.
    #[must_use]
    pub fn new(window_ms: f64) -> Self {
        assert!(
            window_ms.is_finite() && window_ms > 0.0,
            "window must be positive"
        );
        WindowedStatsSink {
            window_ms,
            open: BTreeMap::new(),
            closed: Vec::new(),
            close_frontier: 0,
            open_samples: 0,
            peak_open_samples: 0,
            defer: false,
        }
    }

    /// A sink that defers all bucket closing to finalisation, keeping raw
    /// samples for every bucket — the state a shard cell ships, because an
    /// un-collapsed sink merges exactly ([`WindowedStatsSink::absorb`])
    /// while a closed bucket's samples are gone. Live memory is O(run)
    /// rather than O(window); the timeline [`WindowedStatsSink::finish`]
    /// produces is bit-identical to the streaming-close mode (same
    /// per-bucket samples in the same order, collapsed by the same
    /// arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if `window_ms` is not positive-finite.
    #[must_use]
    pub fn deferred(window_ms: f64) -> Self {
        let mut sink = WindowedStatsSink::new(window_ms);
        sink.defer = true;
        sink
    }

    /// Whether this sink defers all closing to finalisation.
    #[must_use]
    pub fn is_deferred(&self) -> bool {
        self.defer
    }

    /// Whether no bucket has collapsed yet (nothing closed, frontier still
    /// at zero) — the precondition for an exact merge.
    #[must_use]
    pub fn is_uncollapsed(&self) -> bool {
        self.close_frontier == 0 && self.closed.is_empty()
    }

    /// The bucket width, ms.
    #[must_use]
    pub fn window_ms(&self) -> f64 {
        self.window_ms
    }

    /// Folds another sink's open buckets into this one, index-wise: bucket
    /// `k`'s samples are `self`'s then `other`'s, in each source's stream
    /// order. Cells share one virtual-time origin, so equal bucket indices
    /// mean the same time window, and merging K cells in ascending cell
    /// order is bit-identical to one sink consuming the concatenated event
    /// stream (per-bucket p95 sorts its samples, so cross-cell interleaving
    /// never matters).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ, or if either sink has already
    /// collapsed a bucket (closing is lossy — the raw samples an exact
    /// merge needs are gone; build cells with
    /// [`TelemetryConfig::defer_window_close`] /
    /// [`WindowedStatsSink::deferred`]).
    pub fn absorb(&mut self, other: &WindowedStatsSink) {
        assert!(
            self.window_ms == other.window_ms,
            "windowed merge requires equal bucket widths: {} vs {} ms",
            self.window_ms,
            other.window_ms
        );
        assert!(
            self.is_uncollapsed() && other.is_uncollapsed(),
            "windowed merge requires un-collapsed sinks: a closed bucket \
             has lost the raw samples an exact merge needs"
        );
        for (&b, samples) in &other.open {
            self.open.entry(b).or_default().extend_from_slice(samples);
        }
        self.open_samples += other.open_samples;
        self.peak_open_samples = self.peak_open_samples.max(self.open_samples);
    }

    /// Collapses one bucket's raw samples into its closed
    /// `(start, frames, p95)` triple, if the bucket holds any.
    fn close_bucket(&mut self, b: usize) {
        if let Some(samples) = self.open.remove(&b) {
            self.open_samples -= samples.len();
            self.closed.push((
                b as f64 * self.window_ms,
                samples.len(),
                SortedSamples::new(samples).p95(),
            ));
        }
    }

    /// Closes every bucket that ends at or before `t_ms` (callers pass a
    /// frontier no future sample can precede — a fleet's minimum virtual
    /// clock). Closed buckets collapse to their `(start, frames, p95)`
    /// triple; empty buckets are skipped, as in the post-hoc series.
    /// No-op in deferred mode (shard cells stay mergeable until finish).
    pub fn close_before(&mut self, t_ms: f64) {
        if self.defer {
            return;
        }
        // A frontier below t=0 (e.g. `min_clock - window` at startup) means
        // no bucket can close yet; clamp before indexing.
        let first_open = qvr_sim::checked::floor_index((t_ms / self.window_ms).max(0.0));
        while self.close_frontier < first_open {
            self.close_bucket(self.close_frontier);
            self.close_frontier += 1;
            // Nothing below the smallest open bucket can close non-empty;
            // jump ahead so quiet stretches don't iterate bucket by bucket.
            if self.open.is_empty() {
                self.close_frontier = first_open;
            } else if let Some((&lo, _)) = self.open.iter().next() {
                self.close_frontier = self.close_frontier.max(lo.min(first_open));
            }
        }
    }

    /// Closes everything and returns the full timeline, in bucket order.
    #[must_use]
    pub fn finish(mut self) -> Vec<(f64, usize, f64)> {
        while let Some((&b, _)) = self.open.iter().next() {
            self.close_bucket(b);
        }
        self.closed
    }

    /// Closed buckets so far, in bucket order.
    #[must_use]
    pub fn windows(&self) -> &[(f64, usize, f64)] {
        &self.closed
    }

    /// Largest number of raw samples held live at any point — the
    /// O(window) memory claim a bounded-memory run asserts.
    #[must_use]
    pub fn peak_open_samples(&self) -> usize {
        self.peak_open_samples
    }
}

impl TelemetrySink for WindowedStatsSink {
    fn on_frame(&mut self, event: &FrameEvent) {
        let mut b = qvr_sim::checked::floor_index(event.end_ms / self.window_ms);
        if b < self.close_frontier {
            // A sample arrived below the closing frontier: the caller's
            // frontier promise was broken. Deterministic simulations never
            // do this (debug builds assert); degrade gracefully by filing
            // into the earliest still-open bucket.
            debug_assert!(
                false,
                "sample at {:.3} ms arrived below the closed frontier {:.3} ms",
                event.end_ms,
                self.close_frontier as f64 * self.window_ms
            );
            b = self.close_frontier;
        }
        self.open.entry(b).or_default().push(event.mtp_ms);
        self.open_samples += 1;
        self.peak_open_samples = self.peak_open_samples.max(self.open_samples);
    }
}

/// Closes the fleet-level energy loop from the event stream: per-stage
/// server busy × [`ServerPowerModel`], link activity × [`ApPowerModel`],
/// plus every session's own mobile-side energy at finalisation. Metering
/// the stream (instead of re-walking task history) makes the result
/// independent of windowed retirement by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyMeter {
    server: ServerPowerModel,
    ap: ApPowerModel,
    preset: NetworkPreset,
    units: usize,
    /// Per-slot attributed busy, ms (render, encode, radio). Radio is
    /// accumulated per slot too — not in one running scalar — so that
    /// merging K cells' meters (slot-tiled, in cell order) finalises
    /// bit-identically to one meter consuming the concatenated stream:
    /// every per-slot sum sees exactly its own slot's addends in stream
    /// order, and the finalisation total folds the slots in the same tiled
    /// order either way. A single running scalar would associate the
    /// additions differently across the two paths.
    per_slot: Vec<(f64, f64, f64)>,
}

impl EnergyMeter {
    /// A meter over a `units`-wide server pool on one network preset.
    #[must_use]
    pub fn new(
        server: ServerPowerModel,
        ap: ApPowerModel,
        preset: NetworkPreset,
        units: usize,
    ) -> Self {
        EnergyMeter {
            server,
            ap,
            preset,
            units,
            per_slot: Vec::new(),
        }
    }

    /// Folds another meter's per-slot attribution into this one, re-based
    /// at `self.slots()` (cells tile the slot-id space). The power models,
    /// preset, and pool width must match — a merged meter describes one
    /// homogeneous shard, and [`EnergyMeter::finalize`] on the merged
    /// state is then bit-identical to metering the concatenated stream.
    ///
    /// # Panics
    ///
    /// Panics if the meters' power models, network preset, or pool widths
    /// differ.
    pub fn absorb(&mut self, other: &EnergyMeter) {
        assert!(
            self.server == other.server
                && self.ap == other.ap
                && self.preset == other.preset
                && self.units == other.units,
            "energy-meter merge requires identical power models and pools"
        );
        self.per_slot.extend_from_slice(&other.per_slot);
    }

    /// Server energy attributed to one slot so far, mJ (render + encode
    /// active energy; the idle floor belongs to the fleet, not a tenant).
    ///
    /// Attribution is per-*slot* over the slot's whole lifetime: in a
    /// closed fleet that is exactly one tenant, but a churn fleet recycles
    /// departed tenants' slots, so there this sums every tenant that ever
    /// occupied the slot (resetting on reuse would drop the departed
    /// tenant's share from the fleet totals, which must stay exact).
    #[must_use]
    pub fn slot_server_mj(&self, slot: usize) -> f64 {
        self.per_slot.get(slot).map_or(0.0, |(r, e, _)| {
            self.server.gpu_active_w * r + self.server.enc_active_w * e
        })
    }

    /// Slots that have attributed any server time.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.per_slot.len()
    }

    /// Finalises the meter over a fleet span: `client_mj` is the summed
    /// mobile-side energy of every session (the caller folds it in because
    /// sessions finalise outside the event stream).
    #[must_use]
    pub fn finalize(&self, span_ms: f64, client_mj: f64) -> FleetEnergy {
        // Totals from the per-slot sums in slot order, so per-tenant
        // attribution is additive: Σ slot_server_mj == render + encode.
        let render_ms: f64 = self.per_slot.iter().map(|(r, _, _)| *r).sum();
        let encode_ms: f64 = self.per_slot.iter().map(|(_, e, _)| *e).sum();
        let radio_ms: f64 = self.per_slot.iter().map(|(_, _, w)| *w).sum();
        let (server_render_mj, server_encode_mj, server_idle_mj) = self
            .server
            .pool_energy_mj(self.units, span_ms, render_ms, encode_ms);
        FleetEnergy {
            server_render_mj,
            server_encode_mj,
            server_idle_mj,
            ap_radio_mj: self.ap.energy_mj(self.preset, span_ms, radio_ms),
            client_mj,
        }
    }
}

impl TelemetrySink for EnergyMeter {
    fn on_frame(&mut self, event: &FrameEvent) {
        if event.session >= self.per_slot.len() {
            self.per_slot.resize(event.session + 1, (0.0, 0.0, 0.0));
        }
        let (r, e, w) = &mut self.per_slot[event.session];
        *r += event.server_render_ms;
        *e += event.server_encode_ms;
        *w += event.radio_ms;
    }
}

/// Shared EWMA of each tenant's *measured* server ms/frame — the signal
/// [`crate::sched::ServerPolicy::MeasuredLoad`] places on instead of the
/// scheme class. A cloneable handle: the fleet's sink set updates it after
/// every frame, and every session's rig reads it at chain submission, so
/// placement reacts to load within one frame of measuring it.
#[derive(Debug, Clone, Default)]
pub struct LoadTracker {
    state: Rc<RefCell<Vec<Option<f64>>>>,
    /// Slot-id namespace offset: every slot this handle observes, reads,
    /// or resets lands at `base + slot` in the shared state. Shard cells
    /// get disjoint namespaces ([`LoadTracker::namespaced`]) so one cell's
    /// slot-recycling reset can never clear — and a spilled joiner can
    /// never inherit — another cell's EWMA under the same fleet-local
    /// slot id.
    base: usize,
}

/// EWMA smoothing for measured per-tenant server load (≈ the last ~8
/// frames dominate — fast enough to catch a scene transition, slow enough
/// not to flap on one heavy frame).
pub const LOAD_EWMA_ALPHA: f64 = 0.25;

impl LoadTracker {
    /// A tracker with no observations.
    #[must_use]
    pub fn new() -> Self {
        LoadTracker::default()
    }

    /// A handle onto the same shared state whose slot ids are offset by a
    /// further `base` — a disjoint namespace for one shard cell. Handing
    /// cell `c` a view based at its capacity prefix-sum gives every cell
    /// fleet-local slot ids (0..capacity) while the underlying state keys
    /// on globally-unique `(cell × slot)` positions, so a churn recycle's
    /// [`LoadTracker::reset`] in one cell cannot leak a stale EWMA into a
    /// join spilled to another.
    #[must_use]
    pub fn namespaced(&self, base: usize) -> LoadTracker {
        LoadTracker {
            state: Rc::clone(&self.state),
            base: self.base + base,
        }
    }

    /// This handle's namespace offset into the shared state.
    #[must_use]
    pub fn base(&self) -> usize {
        self.base
    }

    /// The raw EWMA state from this handle's namespace onward — what a
    /// shard cell ships across the thread boundary (the tracker itself is
    /// single-threaded shared state) for merge-time inspection.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Option<f64>> {
        let state = self.state.borrow();
        state
            .get(self.base..)
            .map(<[_]>::to_vec)
            .unwrap_or_default()
    }

    /// Folds one frame's measured server time into a slot's EWMA.
    pub fn observe(&self, slot: usize, server_ms: f64) {
        let slot = self.base + slot;
        let mut state = self.state.borrow_mut();
        if slot >= state.len() {
            state.resize(slot + 1, None);
        }
        state[slot] = Some(match state[slot] {
            Some(prev) => prev + LOAD_EWMA_ALPHA * (server_ms - prev),
            None => server_ms,
        });
    }

    /// The slot's current EWMA server ms/frame; `None` before any
    /// observation (a fresh tenant is presumed light until measured).
    #[must_use]
    pub fn ewma(&self, slot: usize) -> Option<f64> {
        self.state.borrow().get(self.base + slot).copied().flatten()
    }

    /// Clears a slot's history (churn fleets recycle slots; a joiner must
    /// not inherit its predecessor's load profile).
    pub fn reset(&self, slot: usize) {
        let slot = self.base + slot;
        let mut state = self.state.borrow_mut();
        if slot < state.len() {
            state[slot] = None;
        }
    }
}

impl PartialEq for LoadTracker {
    /// Identity equality: two handles are equal iff they share state *and*
    /// view it through the same slot namespace (two cells' views of one
    /// shard tracker are deliberately unequal — they address disjoint
    /// slots).
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.state, &other.state) && self.base == other.base
    }
}

impl TelemetrySink for LoadTracker {
    fn on_frame(&mut self, event: &FrameEvent) {
        self.observe(
            event.session,
            event.server_render_ms + event.server_encode_ms,
        );
    }
}

/// The fan-out a fleet drives: every built-in sink the configuration
/// enabled, plus any custom sinks attached for tests or tooling.
#[derive(Debug, Default)]
pub struct SinkSet {
    /// The aggregate stream (fleets always run it; churn has its own
    /// summary shape and leaves it off).
    pub(crate) aggregate: Option<AggregateSink>,
    /// The streaming windowed-p95 timeline, when configured.
    pub(crate) windowed: Option<WindowedStatsSink>,
    /// The energy meter, unless disabled.
    pub(crate) energy: Option<EnergyMeter>,
    /// The measured-load EWMA (always on: placement may read it).
    pub(crate) load: LoadTracker,
    /// Span tracing over the sampled sessions, when configured.
    pub(crate) trace: Option<crate::obs::TraceSink>,
    /// The mergeable per-class histogram metrics, when configured.
    pub(crate) metrics: Option<crate::obs::MetricsSink>,
    /// The streaming SLO health monitor, when configured.
    pub(crate) health: Option<crate::obs::HealthMonitor>,
    custom: Vec<Box<dyn TelemetrySink>>,
}

impl SinkSet {
    /// An empty set with only the load tracker live.
    #[must_use]
    pub fn new() -> Self {
        SinkSet::default()
    }

    /// Builds the fan-out a [`TelemetryConfig`] describes — the one wiring
    /// point fleets *and* churn share, so a new built-in sink cannot land
    /// in one and silently miss the other: the energy meter (unless
    /// disabled), the windowed sink (when a width is set), the load
    /// tracker (always), and — when `aggregate` is requested (closed
    /// fleets, whose `FleetSummary` is the stream's product; dedicated
    /// single-user fleets and churn keep their own summary paths) — the
    /// aggregate sink.
    #[must_use]
    pub fn from_config(
        telemetry: &TelemetryConfig,
        system: &crate::schemes::SystemConfig,
        units: usize,
        aggregate: bool,
    ) -> Self {
        let mut sinks = SinkSet::new();
        if aggregate {
            sinks.aggregate = Some(AggregateSink::new());
        }
        if telemetry.energy {
            sinks.energy = Some(EnergyMeter::new(
                system.server_power,
                system.ap_power,
                system.network,
                units,
            ));
        }
        sinks.windowed = telemetry.window_ms.map(if telemetry.defer_window_close {
            WindowedStatsSink::deferred
        } else {
            WindowedStatsSink::new
        });
        sinks.trace = telemetry.trace.map(crate::obs::TraceSink::new);
        if telemetry.metrics {
            sinks.metrics = Some(crate::obs::MetricsSink::new());
        }
        sinks.health = telemetry
            .health
            .map(|rules| crate::obs::HealthMonitor::new(rules, system.server_power, units));
        sinks
    }

    /// Fans one event out to every sink.
    pub fn emit(&mut self, event: &FrameEvent) {
        self.emit_batch(std::slice::from_ref(event));
    }

    /// Fans a batch of events (one fleet round) out to every sink: each
    /// sink sees the whole batch in stream order via
    /// [`TelemetrySink::on_batch`], so per-step fan-out walks the sink set
    /// once instead of once per event. Event order — and therefore every
    /// sink's result — is identical to emitting one by one.
    pub fn emit_batch(&mut self, events: &[FrameEvent]) {
        if events.is_empty() {
            return;
        }
        if let Some(s) = &mut self.aggregate {
            s.on_batch(events);
        }
        if let Some(s) = &mut self.windowed {
            s.on_batch(events);
        }
        if let Some(s) = &mut self.energy {
            s.on_batch(events);
        }
        self.load.on_batch(events);
        if let Some(s) = &mut self.trace {
            s.on_batch(events);
        }
        if let Some(s) = &mut self.metrics {
            s.on_batch(events);
        }
        if let Some(s) = &mut self.health {
            s.on_batch(events);
        }
        for s in &mut self.custom {
            s.on_batch(events);
        }
    }

    /// Attaches a custom sink (receives every event from now on).
    pub fn attach(&mut self, sink: Box<dyn TelemetrySink>) {
        self.custom.push(sink);
    }

    /// Advances the windowed sink's and the health monitor's closing
    /// frontiers, if either is running (both evaluate time buckets no
    /// future sample can precede).
    pub fn close_windows_before(&mut self, t_ms: f64) {
        if let Some(w) = &mut self.windowed {
            w.close_before(t_ms);
        }
        if let Some(h) = &mut self.health {
            h.close_before(t_ms);
        }
    }

    /// A handle to the measured-load tracker.
    #[must_use]
    pub fn load(&self) -> LoadTracker {
        self.load.clone()
    }

    /// Finalises the energy meter (identity-zero when disabled).
    #[must_use]
    pub fn energy_finalize(&self, span_ms: f64, client_mj: f64) -> FleetEnergy {
        self.energy
            .as_ref()
            .map(|m| m.finalize(span_ms, client_mj))
            .unwrap_or_default()
    }

    /// Finishes the windowed sink and returns its timeline plus peak live
    /// sample count (`(vec![], 0)` when it never ran).
    #[must_use]
    pub fn windowed_finish(&mut self) -> (Vec<(f64, usize, f64)>, usize) {
        match self.windowed.take() {
            Some(w) => {
                let peak = w.peak_open_samples();
                (w.finish(), peak)
            }
            None => (Vec::new(), 0),
        }
    }

    /// The metrics sink's Prometheus-style text exposition (`None` when
    /// metrics are off).
    #[must_use]
    pub fn metrics_exposition(&self) -> Option<String> {
        self.metrics
            .as_ref()
            .map(crate::obs::MetricsSink::exposition)
    }

    /// Finishes the health monitor and returns its incident timeline
    /// (empty when no monitor ran).
    #[must_use]
    pub fn health_finish(&mut self) -> Vec<crate::obs::Incident> {
        self.health
            .take()
            .map(crate::obs::HealthMonitor::finish)
            .unwrap_or_default()
    }

    /// Whether the health monitor currently holds an open critical-severity
    /// incident — the churn fleet's optional degrade trigger reads this at
    /// join time. `false` when no monitor runs.
    #[must_use]
    pub fn health_open_critical(&self) -> bool {
        self.health
            .as_ref()
            .is_some_and(crate::obs::HealthMonitor::has_open_critical)
    }
}

/// Sums a set of per-session energy breakdowns, mJ (in roster order — the
/// deterministic `client_mj` input to [`EnergyMeter::finalize`]).
#[must_use]
pub fn client_energy_mj<'a>(breakdowns: impl IntoIterator<Item = &'a EnergyBreakdown>) -> f64 {
    breakdowns.into_iter().map(EnergyBreakdown::total_mj).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(session: usize, frame: u64, start: f64, end: f64, mtp: f64) -> FrameEvent {
        FrameEvent {
            session,
            frame,
            span_start_ms: start,
            end_ms: end,
            mtp_ms: mtp,
            tx_bytes: 1_000.0,
            quality: None,
            server_render_ms: 2.0,
            server_encode_ms: 0.5,
            radio_ms: 1.5,
            unit: Some(0),
            class: TenantClass::Adaptive,
            spans: FrameSpans::default(),
        }
    }

    #[test]
    fn aggregate_sink_streams_percentiles_and_fps() {
        let mut sink = AggregateSink::new();
        for i in 0..10u32 {
            let t = f64::from(i) * 10.0;
            sink.on_frame(&ev(0, u64::from(i), t, t + 10.0, f64::from(i + 1)));
        }
        assert_eq!(sink.frames(), 10);
        let (p50, p95, p99) = sink.mtp_percentiles();
        assert_eq!(p50, 5.0);
        assert_eq!(p95, 10.0);
        assert_eq!(p99, 10.0);
        let (floor, mean) = sink.fps_stats();
        // 10 frames over exactly 100 ms.
        assert!((floor - 100.0).abs() < 1e-9);
        assert_eq!(floor, mean);
    }

    #[test]
    fn aggregate_sink_fps_skips_empty_slots() {
        let mut sink = AggregateSink::new();
        sink.on_frame(&ev(2, 0, 0.0, 20.0, 5.0)); // slots 0 and 1 stay empty
        let (floor, mean) = sink.fps_stats();
        assert!((floor - 50.0).abs() < 1e-9);
        assert_eq!(floor, mean);
        let empty = AggregateSink::new();
        assert_eq!(empty.fps_stats(), (0.0, 0.0));
        assert_eq!(empty.mtp_percentiles(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn windowed_sink_matches_the_bucket_convention() {
        // Mirror of the ChurnSummary::windowed_p95 boundary test: buckets
        // are uniformly half-open, boundary samples go *up*.
        let mut w = WindowedStatsSink::new(100.0);
        for (t, mtp) in [
            (0.0, 10.0),
            (99.9, 11.0),
            (100.0, 20.0),
            (300.0, 30.0),
            (310.0, 31.0),
        ] {
            w.on_frame(&ev(0, 0, t - 1.0, t, mtp));
        }
        let windows = w.finish();
        let starts: Vec<f64> = windows.iter().map(|(s, _, _)| *s).collect();
        assert_eq!(starts, vec![0.0, 100.0, 300.0]);
        let counts: Vec<usize> = windows.iter().map(|(_, n, _)| *n).collect();
        assert_eq!(counts, vec![2, 1, 2]);
        assert_eq!(windows[1].2, 20.0);
    }

    #[test]
    fn windowed_sink_closing_bounds_live_memory() {
        let mut w = WindowedStatsSink::new(50.0);
        for i in 0..1_000u32 {
            let t = f64::from(i) * 1.0;
            w.on_frame(&ev(0, u64::from(i), t, t, 12.0));
            // The frontier trails the stream by one bucket's worth.
            w.close_before(t - 50.0);
        }
        assert!(
            w.peak_open_samples() <= 110,
            "live samples must stay O(window): {}",
            w.peak_open_samples()
        );
        let windows = w.finish();
        let total: usize = windows.iter().map(|(_, n, _)| *n).sum();
        assert_eq!(total, 1_000, "closing must not lose samples");
        for pair in windows.windows(2) {
            assert!(pair[0].0 < pair[1].0, "timeline stays in bucket order");
        }
    }

    #[test]
    fn energy_meter_attributes_per_slot_and_adds_up() {
        let meter_cfg = (
            ServerPowerModel::default(),
            ApPowerModel::default(),
            NetworkPreset::WiFi,
        );
        let mut m = EnergyMeter::new(meter_cfg.0, meter_cfg.1, meter_cfg.2, 4);
        for i in 0..6u64 {
            let slot = (i % 2) as usize;
            m.on_frame(&ev(slot, i, 0.0, 10.0, 15.0));
        }
        let e = m.finalize(100.0, 500.0);
        assert!(e.server_render_mj > 0.0);
        assert!(e.server_idle_mj > 0.0);
        assert!(e.ap_radio_mj > 0.0);
        assert_eq!(e.client_mj, 500.0);
        let attributed: f64 = (0..m.slots()).map(|s| m.slot_server_mj(s)).sum();
        let active = e.server_render_mj + e.server_encode_mj;
        assert!(
            (attributed - active).abs() <= 1e-9 * active.max(1.0),
            "per-slot attribution must be additive: {attributed} vs {active}"
        );
    }

    #[test]
    fn load_tracker_ewma_converges_and_resets() {
        let t = LoadTracker::new();
        assert_eq!(t.ewma(3), None);
        t.observe(3, 10.0);
        assert_eq!(t.ewma(3), Some(10.0), "first observation seeds the EWMA");
        for _ in 0..40 {
            t.observe(3, 2.0);
        }
        let settled = t.ewma(3).unwrap();
        assert!(
            (settled - 2.0).abs() < 0.01,
            "EWMA must converge to the steady load: {settled}"
        );
        // Handles share state; reset clears one slot only.
        let clone = t.clone();
        assert_eq!(clone.ewma(3), t.ewma(3));
        assert_eq!(clone, t);
        t.observe(1, 5.0);
        t.reset(3);
        assert_eq!(t.ewma(3), None);
        assert_eq!(t.ewma(1), Some(5.0));
    }

    /// An event with explicit per-stage busy attribution (the energy-law
    /// inputs), `span_start` trailing `end` by 5 ms.
    fn evx(slot: usize, end: f64, mtp: f64, render: f64, encode: f64, radio: f64) -> FrameEvent {
        FrameEvent {
            session: slot,
            frame: 0,
            span_start_ms: end - 5.0,
            end_ms: end,
            mtp_ms: mtp,
            tx_bytes: 500.0,
            quality: None,
            server_render_ms: render,
            server_encode_ms: encode,
            radio_ms: radio,
            unit: Some(0),
            class: TenantClass::Adaptive,
            spans: FrameSpans::default(),
        }
    }

    /// Per-cell event streams drawn from a proptest strategy tuple.
    type CellStreams = Vec<Vec<(usize, f64, f64, f64, f64, f64)>>;

    fn cell_events(cells: &CellStreams, k: usize) -> Vec<Vec<FrameEvent>> {
        cells
            .iter()
            .take(k)
            .map(|evs| {
                evs.iter()
                    .map(|&(slot, end, mtp, r, e, w)| evx(slot, end, mtp, r, e, w))
                    .collect()
            })
            .collect()
    }

    /// The concatenated stream one un-sharded fleet would see: cell after
    /// cell in ascending cell order, slots re-based by each preceding
    /// cell's tile width (max slot seen + 1), matching `absorb`.
    fn concatenated(cells: &[Vec<FrameEvent>]) -> Vec<FrameEvent> {
        let mut out = Vec::new();
        let mut base = 0;
        for events in cells {
            let width = events.iter().map(|e| e.session + 1).max().unwrap_or(0);
            for e in events {
                let mut e = *e;
                e.session += base;
                out.push(e);
            }
            base += width;
        }
        out
    }

    use proptest::prelude::*;

    /// The strategy behind every merge law: up to 4 cells, 17 events each,
    /// slots in 0..4, times in [5, 1000) ms, varied busy attribution.
    fn cells_strategy() -> impl Strategy<Value = CellStreams> {
        collection::vec(
            collection::vec(
                (
                    0usize..4,
                    5.0f64..1_000.0,
                    0.1f64..80.0,
                    0.0f64..6.0,
                    0.0f64..2.0,
                    0.0f64..4.0,
                ),
                17,
            ),
            4,
        )
    }

    proptest! {
        #[test]
        fn aggregate_merge_is_bit_identical_to_the_concatenated_stream(
            raw in cells_strategy(),
            k in 1usize..5,
        ) {
            let cells = cell_events(&raw, k);
            let mut merged = AggregateSink::new();
            let mut per_cell = Vec::new();
            for events in &cells {
                let mut sink = AggregateSink::new();
                sink.on_batch(events);
                merged.absorb(&sink);
                per_cell.push(sink);
            }
            let mut whole = AggregateSink::new();
            whole.on_batch(&concatenated(&cells));
            prop_assert_eq!(&merged, &whole);
            prop_assert_eq!(merged.mtp_percentiles(), whole.mtp_percentiles());
            prop_assert_eq!(merged.fps_stats(), whole.fps_stats());
            // Percentile queries sort, so *any* merge order yields the
            // same percentiles bitwise (FPS layout legitimately differs —
            // ShardSummary canonicalises by folding in cell-id order).
            let mut reversed = AggregateSink::new();
            for sink in per_cell.iter().rev() {
                reversed.absorb(sink);
            }
            prop_assert_eq!(reversed.mtp_percentiles(), whole.mtp_percentiles());
        }

        #[test]
        fn energy_merge_is_bit_identical_to_the_concatenated_stream(
            raw in cells_strategy(),
            k in 1usize..5,
        ) {
            let cells = cell_events(&raw, k);
            let fresh = || {
                EnergyMeter::new(
                    ServerPowerModel::default(),
                    ApPowerModel::default(),
                    NetworkPreset::WiFi,
                    4,
                )
            };
            let mut merged = fresh();
            for events in &cells {
                let mut meter = fresh();
                meter.on_batch(events);
                merged.absorb(&meter);
            }
            let mut whole = fresh();
            whole.on_batch(&concatenated(&cells));
            prop_assert_eq!(&merged, &whole);
            prop_assert_eq!(merged.finalize(1_000.0, 123.0), whole.finalize(1_000.0, 123.0));
        }

        #[test]
        fn windowed_merge_is_bit_identical_to_the_concatenated_stream(
            raw in cells_strategy(),
            k in 1usize..5,
        ) {
            let cells = cell_events(&raw, k);
            let mut merged = WindowedStatsSink::deferred(100.0);
            for events in &cells {
                let mut sink = WindowedStatsSink::deferred(100.0);
                sink.on_batch(events);
                merged.absorb(&sink);
            }
            let mut whole = WindowedStatsSink::deferred(100.0);
            whole.on_batch(&concatenated(&cells));
            prop_assert_eq!(&merged, &whole);
            prop_assert_eq!(merged.finish(), whole.finish());
        }

        #[test]
        fn deferred_windows_finish_bit_identically_to_streaming_closes(
            raw in cells_strategy(),
        ) {
            // One time-ordered stream, consumed twice: once with the
            // frontier trailing the stream (streaming closes, O(window)
            // live memory), once fully deferred. The final timelines must
            // match bitwise — deferral changes *when* buckets collapse,
            // never what they collapse to.
            let mut events = cell_events(&raw, 1).remove(0);
            events.sort_by(|a, b| a.end_ms.total_cmp(&b.end_ms));
            let mut streaming = WindowedStatsSink::new(100.0);
            let mut deferred = WindowedStatsSink::deferred(100.0);
            for e in &events {
                streaming.on_frame(e);
                streaming.close_before(e.end_ms - 150.0);
                deferred.on_frame(e);
                deferred.close_before(e.end_ms - 150.0); // no-op
            }
            prop_assert!(deferred.is_uncollapsed());
            prop_assert_eq!(streaming.finish(), deferred.finish());
        }
    }

    #[test]
    #[should_panic(expected = "un-collapsed sinks")]
    fn windowed_merge_rejects_collapsed_sinks() {
        // A sink that has closed a bucket no longer holds the raw samples
        // an exact merge needs; absorbing it must fail loudly instead of
        // silently losing them (the frontier-sensitivity bug class).
        let mut closed = WindowedStatsSink::new(50.0);
        closed.on_frame(&ev(0, 0, 10.0, 20.0, 5.0));
        closed.close_before(200.0);
        let mut merged = WindowedStatsSink::deferred(50.0);
        merged.absorb(&closed);
    }

    #[test]
    #[should_panic(expected = "equal bucket widths")]
    fn windowed_merge_rejects_mismatched_widths() {
        let mut a = WindowedStatsSink::deferred(50.0);
        let b = WindowedStatsSink::deferred(100.0);
        a.absorb(&b);
    }

    #[test]
    #[should_panic(expected = "identical power models")]
    fn energy_merge_rejects_mismatched_pools() {
        let mk = |units| {
            EnergyMeter::new(
                ServerPowerModel::default(),
                ApPowerModel::default(),
                NetworkPreset::WiFi,
                units,
            )
        };
        let mut a = mk(4);
        a.absorb(&mk(8));
    }

    #[test]
    fn load_tracker_namespaces_are_disjoint() {
        // The shard slot-id namespace: two cells' views of one tracker
        // address disjoint state, so cell 1's recycle-reset of slot 0
        // cannot clear (and a spilled joiner cannot inherit) cell 0's
        // slot 0.
        let shard = LoadTracker::new();
        let cell0 = shard.namespaced(0);
        let cell1 = shard.namespaced(16);
        assert_eq!(cell1.base(), 16);
        assert_eq!(cell1.namespaced(4).base(), 20, "namespaces compose");
        cell0.observe(0, 8.0);
        cell1.observe(0, 3.0);
        assert_eq!(cell0.ewma(0), Some(8.0));
        assert_eq!(cell1.ewma(0), Some(3.0));
        assert_eq!(shard.ewma(0), Some(8.0));
        assert_eq!(shard.ewma(16), Some(3.0));
        cell1.reset(0);
        assert_eq!(cell1.ewma(0), None, "reset clears the cell's own slot");
        assert_eq!(cell0.ewma(0), Some(8.0), "…but never a sibling cell's");
        // Equality demands the same namespace, not just shared state.
        assert_ne!(cell0.clone(), cell1);
        assert_eq!(cell0, shard.namespaced(0));
        // Snapshots are namespace-relative.
        assert_eq!(cell1.snapshot(), vec![None]);
        assert_eq!(cell0.snapshot().first(), Some(&Some(8.0)));
    }

    #[test]
    fn sink_set_fans_out_to_custom_sinks() {
        #[derive(Debug, Default)]
        struct Counter(usize);
        impl TelemetrySink for Counter {
            fn on_frame(&mut self, _: &FrameEvent) {
                self.0 += 1;
            }
        }
        let mut set = SinkSet::new();
        set.aggregate = Some(AggregateSink::new());
        set.attach(Box::<Counter>::default());
        for i in 0..5 {
            set.emit(&ev(0, i, 0.0, 10.0, 12.0));
        }
        assert_eq!(set.aggregate.as_ref().unwrap().frames(), 5);
        assert!(set.load().ewma(0).is_some());
        assert_eq!(set.energy_finalize(10.0, 0.0), FleetEnergy::default());
        assert_eq!(set.windowed_finish(), (Vec::new(), 0));
    }
}
