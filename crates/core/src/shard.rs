//! Sharded fleet cells: the ≥100k-session regime.
//!
//! A single [`crate::fleet::Fleet`] is one arbitration domain — every
//! session contends for one engine, one server pool, one link, stepped on
//! one thread. The surveys in PAPERS.md are blunt that deployed
//! collaborative VR is *many rooms*, not one: a metro-scale service runs
//! thousands of independent server+AP cells. This module models exactly
//! that topology. A [`Shard`] routes a roster of [`SessionSpec`]s across
//! `cells` independent cells (each a full `Fleet` — or, driven manually, a
//! [`crate::churn::ChurnFleet`] — with its own [`qvr_sim::SharedEngine`]
//! pools and link), runs the cells on a bounded worker pool
//! ([`qvr_sim::parallel_map_with`]), and merges the results into one
//! [`ShardSummary`] with fleet-identical aggregates.
//!
//! # The telemetry seam is the only wire
//!
//! Cells communicate *nothing* while running and ship only the PR 5
//! telemetry seam's sink states at the end ([`CellSummary`]): the
//! [`AggregateSink`] (merged by slot tiling), the finalised
//! [`qvr_energy::FleetEnergy`] (summed component-wise), the *deferred*
//! [`WindowedStatsSink`] (merged bucket-index-wise), and a load-EWMA
//! snapshot. Never per-session frame histories — those die inside the
//! cell, so shard-level live state is O(cells × window) engine tasks plus
//! O(total frames) scalar samples, not O(sessions × frames) frame records.
//!
//! # Merge laws (DESIGN.md §12)
//!
//! Each sink's `absorb` is proven (property tests in
//! [`crate::telemetry`]) bit-identical to one sink consuming the cells'
//! concatenated event streams, and [`ShardSummary::merge`] folds cells in
//! ascending cell-id order, so the summary is independent of both the
//! worker count and the order cells finish. On one cell the whole pipeline
//! degenerates to a single fleet: `tests/shard.rs` pins the 1-cell
//! [`ShardSummary`] bit-identical to [`Fleet::run`] on the same roster.
//!
//! # Cross-cell admission (spill)
//!
//! Routing is load-aware and deterministic. Without admission, a join
//! lands on the least-loaded cell (occupancy, then cell id). With a
//! per-cell [`crate::admission::AdmissionController`], cells are tried in
//! ascending (occupancy, last-probe utilisation, cell id) order for *full*
//! admission first ([`crate::admission::AdmissionController::offer_protected`]);
//! a join every cell declines falls back to one degraded offer at the
//! least-loaded cell. A placement anywhere but the first-choice cell
//! counts as *spilled*. Each cell's [`crate::telemetry::LoadTracker`]
//! occupies its own slot-id namespace ([`LoadTracker::namespaced`]), so a
//! spilled joiner can never inherit a stale EWMA from another cell's
//! recycled slot.

use crate::admission::{AdmissionController, AdmissionDecision, AdmissionPolicy};
use crate::fleet::{Fleet, FleetConfig, FleetSummary, SessionSpec};
use crate::obs::{Incident, MetricsSink};
use crate::telemetry::{AggregateSink, LoadTracker, WindowedStatsSink};
use qvr_energy::FleetEnergy;
use std::fmt;

/// Derives cell `c`'s fleet seed from the shard seed — identity for cell 0
/// (so a 1-cell shard reproduces the single-fleet streams bit-for-bit), a
/// distinct multiplier from [`crate::fleet`]'s per-session derivation so
/// cell and session streams decorrelate.
#[must_use]
pub fn cell_seed(seed: u64, cell: usize) -> u64 {
    seed ^ (cell as u64).wrapping_mul(0xA24B_AED4_963E_E407)
}

/// Full description of one sharded run.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// The per-cell fleet template: system, frames, per-cell server units,
    /// link provisioning, fairness, server policy, stepping, retirement
    /// window, telemetry. `template.sessions` is ignored (the shard routes
    /// [`ShardConfig::roster`]); `template.seed` is the shard seed each
    /// cell's seed derives from ([`cell_seed`]); windowed telemetry is
    /// forced into deferred mode per cell (the mergeable form).
    pub template: FleetConfig,
    /// Number of independent cells.
    pub cells: usize,
    /// Session slots per cell (occupancy-routing capacity).
    pub cell_capacity: usize,
    /// The joins to route, in arrival order.
    pub roster: Vec<SessionSpec>,
    /// Worker threads the cells fan out on; `None` uses
    /// `available_parallelism`. The merged summary is bit-identical for
    /// every choice (pinned by `tests/shard.rs`).
    pub workers: Option<usize>,
    /// Per-cell admission control; `None` admits on raw occupancy.
    pub admission: Option<AdmissionPolicy>,
}

impl ShardConfig {
    /// A shard of `cells` cells, `cell_capacity` slots each, routing
    /// `roster` with the given per-cell template.
    ///
    /// # Panics
    ///
    /// Panics if `cells` or `cell_capacity` is zero, or if the template
    /// degenerates to the dedicated single-user mode (cells are
    /// multi-tenant fleets).
    #[must_use]
    pub fn new(
        template: FleetConfig,
        cells: usize,
        cell_capacity: usize,
        roster: Vec<SessionSpec>,
    ) -> Self {
        assert!(cells > 0, "a shard needs at least one cell");
        assert!(cell_capacity > 0, "cells need at least one slot");
        assert!(
            template.shared_network || template.server_units > 1,
            "shard cells are multi-tenant fleets; the dedicated single-user \
             template shape has no aggregate stream to merge"
        );
        ShardConfig {
            template,
            cells,
            cell_capacity,
            roster,
            workers: None,
            admission: None,
        }
    }

    /// Returns a copy with an explicit worker-thread count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Returns a copy with per-cell admission control.
    #[must_use]
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = Some(policy);
        self
    }
}

/// What the deterministic router decided, before any cell runs.
#[derive(Debug, Clone)]
struct Routing {
    /// Per-cell placed specs, in placement order.
    placements: Vec<Vec<SessionSpec>>,
    /// Joins placed anywhere but their first-choice cell.
    spilled: usize,
    /// Joins no cell would take.
    rejected: usize,
    /// Joins placed on a degraded share.
    degraded: usize,
    /// Admission probe fleets simulated.
    probes_run: usize,
}

/// Routes the roster across cells: least-loaded first, spilling on
/// rejection or degradation (module docs give the resolution order).
/// Single-threaded and deterministic — the router is the shard's only
/// cross-cell coupling, so keeping it off the worker pool is what makes
/// the whole run worker-count-independent.
fn route(config: &ShardConfig) -> Routing {
    let mut controllers: Vec<AdmissionController> = match &config.admission {
        Some(policy) => (0..config.cells)
            .map(|c| {
                AdmissionController::with_capacity(
                    config.template.system,
                    config.template.fairness,
                    policy.clone(),
                    cell_seed(config.template.seed, c),
                    config.template.server_units,
                    config.template.link_streams,
                )
                .with_server_policy(config.template.server_policy)
            })
            .collect(),
        None => Vec::new(),
    };
    let mut placements: Vec<Vec<SessionSpec>> = vec![Vec::new(); config.cells];
    let mut routing = Routing {
        placements: Vec::new(),
        spilled: 0,
        rejected: 0,
        degraded: 0,
        probes_run: 0,
    };
    for spec in &config.roster {
        if controllers.is_empty() {
            // Occupancy-only routing: the least-loaded open cell (lowest
            // id on ties) takes the join. A linear min-scan, not a sort —
            // this path must stay cheap at thousands of cells.
            let mut best: Option<usize> = None;
            for (c, placed) in placements.iter().enumerate() {
                if placed.len() >= config.cell_capacity {
                    continue;
                }
                if best.is_none_or(|b| placed.len() < placements[b].len()) {
                    best = Some(c);
                }
            }
            match best {
                Some(c) => placements[c].push(spec.clone()),
                None => routing.rejected += 1, // every cell is full
            }
            continue;
        }
        // Candidate cells in spill-resolution order: occupancy, then the
        // cell's last accepted probe's measured utilisation, then cell id.
        let mut order: Vec<usize> = (0..config.cells)
            .filter(|&c| placements[c].len() < config.cell_capacity)
            .collect();
        let probe_util = |c: usize| -> f64 {
            controllers
                .get(c)
                .and_then(AdmissionController::accepted_summary)
                .map_or(0.0, |s| s.server_utilization)
        };
        order.sort_by(|&a, &b| {
            placements[a]
                .len()
                .cmp(&placements[b].len())
                .then(probe_util(a).total_cmp(&probe_util(b)))
                .then(a.cmp(&b))
        });
        let Some(&first_choice) = order.first() else {
            routing.rejected += 1; // every cell is full
            continue;
        };
        // Pass 1: full (protected) admission at the best cell that holds
        // the SLO.
        let mut placed = None;
        for &c in &order {
            if controllers[c].offer_protected(spec.clone()) == AdmissionDecision::Admitted {
                placed = Some(c);
                break;
            }
        }
        // Pass 2: nobody takes it at full share — one degraded offer at
        // the least-loaded cell.
        if placed.is_none() {
            match controllers[first_choice].offer(spec.clone()) {
                AdmissionDecision::Rejected => {
                    routing.rejected += 1;
                    continue;
                }
                AdmissionDecision::Degraded => routing.degraded += 1,
                AdmissionDecision::Admitted => {}
            }
            placed = Some(first_choice);
        }
        let cell = placed.expect("placed above");
        if cell != first_choice {
            routing.spilled += 1;
        }
        // The controller joined the (possibly degraded) spec to its
        // roster; mirror its share into the placement.
        let joined = controllers[cell]
            .admitted()
            .last()
            .expect("offer joined the roster")
            .clone();
        placements[cell].push(joined);
    }
    routing.probes_run = controllers
        .iter()
        .map(AdmissionController::probes_run)
        .sum();
    routing.placements = placements;
    routing
}

/// The bundle one cell ships across its worker-thread boundary: sink
/// states plus scalar schedule facts. Everything here is `Send` (the
/// single-threaded [`LoadTracker`] is snapshotted), and nothing retains a
/// per-session frame history.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// The cell's id (its position in the shard's cell-id order).
    pub cell: usize,
    /// Sessions the cell ran.
    pub sessions: usize,
    /// Frames the cell displayed.
    pub frames: usize,
    /// The cell's schedule makespan, ms.
    pub makespan_ms: f64,
    /// GPU units in the cell's server pool.
    pub server_units: usize,
    /// Busy time summed over the cell's GPU pool, ms (with
    /// `makespan_ms × server_units` as capacity, utilisations merge
    /// exactly: the shard divides once, after summing).
    pub server_busy_ms: f64,
    /// The cell's aggregate stream (MTP samples + per-slot FPS spans).
    pub aggregate: AggregateSink,
    /// The cell's windowed-p95 sink, un-collapsed (deferred mode), when
    /// windows were configured.
    pub windowed: Option<WindowedStatsSink>,
    /// The cell's finalised energy (its own span × its own pool).
    pub energy: FleetEnergy,
    /// The cell's load-EWMA snapshot, fleet-local slot order.
    pub load: Vec<Option<f64>>,
    /// Peak live engine intervals — the cell's O(window) memory witness.
    pub peak_live_tasks: usize,
    /// The cell's per-class metrics sink (un-rendered, the mergeable
    /// form), when [`crate::telemetry::TelemetryConfig::metrics`] was
    /// enabled. Span traces deliberately do *not* ship across the seam —
    /// tracing is a per-fleet debugging tool, not an O(1)-per-frame sink.
    pub metrics: Option<MetricsSink>,
    /// The cell's SLO incident timeline, cell-local (no cell stamp); the
    /// shard merge stamps each incident with this cell's id.
    pub incidents: Vec<Incident>,
}

/// Fleet-identical aggregates over every cell, plus the shard-level
/// routing and memory facts. Produced by [`Shard::run`] or directly by
/// [`ShardSummary::merge`] over manually-driven cells (e.g. churn cells
/// via [`crate::churn::ChurnFleet::finish_cell`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// Cells that actually ran (empty cells ship nothing).
    pub cells: usize,
    /// Sessions across all cells.
    pub sessions: usize,
    /// Frames displayed across all cells.
    pub frames: usize,
    /// Slowest cell's makespan, ms (cells run concurrently in deployment).
    pub makespan_ms: f64,
    /// Median MTP across every cell's frames, ms.
    pub mtp_p50_ms: f64,
    /// 95th-percentile MTP across every cell's frames, ms.
    pub mtp_p95_ms: f64,
    /// 99th-percentile MTP across every cell's frames, ms.
    pub mtp_p99_ms: f64,
    /// The slowest session's frame rate anywhere in the shard, frames/s.
    pub fps_floor: f64,
    /// Mean session frame rate across the shard, frames/s.
    pub mean_fps: f64,
    /// GPU utilisation over the summed pool: Σ busy / Σ capacity.
    pub server_utilization: f64,
    /// GPU units summed over all cells.
    pub server_units: usize,
    /// Component-wise energy sum over cells, in cell-id order.
    pub energy: FleetEnergy,
    /// The merged windowed-p95 timeline `(start_ms, frames, p95)` (cells
    /// share one virtual-time origin, so buckets merge index-wise).
    pub windows: Vec<(f64, usize, f64)>,
    /// Raw samples held by the merged windowed sink at finalisation.
    pub peak_open_samples: usize,
    /// Σ of per-cell peak live engine intervals — the O(cells × window)
    /// bound the CI bounded-memory job asserts.
    pub peak_live_tasks: usize,
    /// Joins placed anywhere but their first-choice cell.
    pub spilled: usize,
    /// Joins no cell accepted.
    pub rejected: usize,
    /// Joins admitted on a degraded share.
    pub degraded: usize,
    /// Admission probe fleets simulated by the router.
    pub probes_run: usize,
    /// The shard-wide Prometheus-style exposition: every cell's metrics
    /// sink folded bucket-wise in cell-id order, then rendered once.
    /// `None` when no cell shipped metrics. On one cell this is bitwise
    /// the fleet's own exposition (the merge laws' 1-cell degeneracy).
    pub exposition: Option<String>,
    /// Every cell's incidents in cell-id order, each stamped with its
    /// originating cell ([`Incident::cell`]).
    pub incidents: Vec<Incident>,
    /// Per-cell session counts, cell-id order (ran cells only).
    pub cell_sessions: Vec<usize>,
    /// Per-cell load-EWMA snapshots, cell-id order.
    cell_load: Vec<Vec<Option<f64>>>,
}

impl ShardSummary {
    /// Merges per-cell bundles into fleet-identical aggregates. Cells are
    /// first sorted by cell id, so the result is independent of the order
    /// they are supplied (or finished) in; each sink merges by its proven
    /// law (slot tiling, component sum, bucket-index union), and
    /// utilisation divides once over the summed pool.
    ///
    /// # Panics
    ///
    /// Panics if two bundles claim the same cell id, or if windowed sinks
    /// are present but collapsed / of mismatched widths
    /// ([`WindowedStatsSink::absorb`]).
    #[must_use]
    pub fn merge(mut cells: Vec<CellSummary>) -> ShardSummary {
        cells.sort_by_key(|c| c.cell);
        for pair in cells.windows(2) {
            assert!(
                pair[0].cell != pair[1].cell,
                "duplicate cell id {} in merge",
                pair[0].cell
            );
        }
        let mut aggregate = AggregateSink::new();
        let mut windowed: Option<WindowedStatsSink> = None;
        let mut metrics: Option<MetricsSink> = None;
        let mut incidents: Vec<Incident> = Vec::new();
        let mut energy = FleetEnergy::default();
        let mut sessions = 0;
        let mut frames = 0;
        let mut makespan_ms: f64 = 0.0;
        let mut busy_ms = 0.0;
        let mut capacity_ms = 0.0;
        let mut server_units = 0;
        let mut peak_live_tasks = 0;
        let mut cell_sessions = Vec::with_capacity(cells.len());
        let mut cell_load = Vec::with_capacity(cells.len());
        for cell in &cells {
            aggregate.absorb(&cell.aggregate);
            if let Some(w) = &cell.windowed {
                match &mut windowed {
                    None => windowed = Some(w.clone()),
                    Some(merged) => merged.absorb(w),
                }
            }
            if let Some(m) = &cell.metrics {
                match &mut metrics {
                    None => metrics = Some(m.clone()),
                    Some(merged) => merged.absorb(m),
                }
            }
            incidents.extend(cell.incidents.iter().cloned().map(|mut inc| {
                inc.cell = Some(cell.cell);
                inc
            }));
            // qvr-lint: allow(D4): fixed cell-id-sorted fold, audited in DESIGN §12
            energy += cell.energy;
            sessions += cell.sessions;
            frames += cell.frames;
            makespan_ms = makespan_ms.max(cell.makespan_ms);
            // qvr-lint: allow(D4): cell-id-sorted fold, divided once by capacity_ms
            busy_ms += cell.server_busy_ms;
            // qvr-lint: allow(D4): cell-id-sorted fold, consumed once for utilisation
            capacity_ms += cell.makespan_ms * cell.server_units as f64;
            server_units += cell.server_units;
            peak_live_tasks += cell.peak_live_tasks;
            cell_sessions.push(cell.sessions);
            cell_load.push(cell.load.clone());
        }
        let (mtp_p50_ms, mtp_p95_ms, mtp_p99_ms) = aggregate.mtp_percentiles();
        let (fps_floor, mean_fps) = aggregate.fps_stats();
        let (windows, peak_open_samples) = match windowed {
            Some(w) => (w.clone().finish(), w.peak_open_samples()),
            None => (Vec::new(), 0),
        };
        ShardSummary {
            cells: cells.len(),
            sessions,
            frames,
            makespan_ms,
            mtp_p50_ms,
            mtp_p95_ms,
            mtp_p99_ms,
            fps_floor,
            mean_fps,
            server_utilization: if capacity_ms > 0.0 {
                (busy_ms / capacity_ms).clamp(0.0, 1.0)
            } else {
                0.0
            },
            server_units,
            energy,
            windows,
            peak_open_samples,
            peak_live_tasks,
            exposition: metrics.map(|m| m.exposition()),
            incidents,
            spilled: 0,
            rejected: 0,
            degraded: 0,
            probes_run: 0,
            cell_sessions,
            cell_load,
        }
    }

    /// Whether this shard's aggregates are bit-identical to a single
    /// fleet's — the 1-cell degeneracy check (percentiles, FPS statistics,
    /// utilisation, makespan, energy, and the windowed timeline all
    /// compare with `==`, no tolerance).
    #[must_use]
    pub fn matches_fleet(&self, fleet: &FleetSummary) -> bool {
        self.mtp_p50_ms == fleet.mtp_p50_ms
            && self.mtp_p95_ms == fleet.mtp_p95_ms
            && self.mtp_p99_ms == fleet.mtp_p99_ms
            && self.fps_floor == fleet.fps_floor
            && self.mean_fps == fleet.mean_fps
            && self.server_utilization == fleet.server_utilization
            && self.makespan_ms == fleet.makespan_ms
            && self.server_units == fleet.server_units
            && self.energy == fleet.energy
            && self.windows == fleet.windows
            && self.exposition == fleet.exposition
    }

    /// One cell's load-EWMA snapshot (cell-id order over the cells that
    /// ran).
    #[must_use]
    pub fn cell_load(&self, idx: usize) -> &[Option<f64>] {
        &self.cell_load[idx]
    }

    /// A shard-wide measured-load view: every cell's snapshot replayed
    /// into one [`LoadTracker`] through disjoint slot namespaces
    /// ([`LoadTracker::namespaced`], bases = prefix sums of the snapshot
    /// widths) — the structure a cross-cell placement policy would read,
    /// and the regression pin for the stale-EWMA recycling bug (a slot id
    /// can never alias across cells).
    #[must_use]
    pub fn merged_load(&self) -> LoadTracker {
        let tracker = LoadTracker::new();
        let mut base = 0;
        for snapshot in &self.cell_load {
            let view = tracker.namespaced(base);
            for (slot, ewma) in snapshot.iter().enumerate() {
                if let Some(ms) = ewma {
                    // A first observation seeds the EWMA with exactly the
                    // observed value, so replay reproduces the cell's
                    // state bit-for-bit.
                    view.observe(slot, *ms);
                }
            }
            base += snapshot.len();
        }
        tracker
    }
}

impl fmt::Display for ShardSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sessions over {} cells ({} GPU units): MTP p50/p95/p99 \
             {:.1}/{:.1}/{:.1} ms, FPS floor {:.0}, util {:.0}%, \
             {} spilled, {} degraded, {} rejected",
            self.sessions,
            self.cells,
            self.server_units,
            self.mtp_p50_ms,
            self.mtp_p95_ms,
            self.mtp_p99_ms,
            self.fps_floor,
            self.server_utilization * 100.0,
            self.spilled,
            self.degraded,
            self.rejected,
        )
    }
}

/// The sharded-run entry point.
#[derive(Debug)]
pub struct Shard;

impl Shard {
    /// Routes, runs, and merges one sharded sweep: the deterministic
    /// router places every join (module docs give the spill order), each
    /// non-empty cell runs as an independent [`Fleet`] on the bounded
    /// worker pool, and the cells' sink states fold into one
    /// [`ShardSummary`]. Bit-deterministic for a fixed config regardless
    /// of worker count.
    #[must_use]
    pub fn run(config: ShardConfig) -> ShardSummary {
        let routing = route(&config);
        let cell_configs: Vec<(usize, FleetConfig)> = routing
            .placements
            .iter()
            .enumerate()
            .filter(|(_, specs)| !specs.is_empty())
            .map(|(cell, specs)| {
                let mut fleet = config.template.clone();
                fleet.sessions = specs.clone();
                fleet.seed = cell_seed(config.template.seed, cell);
                if fleet.telemetry.window_ms.is_some() {
                    fleet.telemetry = fleet.telemetry.with_deferred_windows();
                }
                (cell, fleet)
            })
            .collect();
        let workers = config
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |w| w.get()));
        let cells = qvr_sim::parallel_map_with(workers, &cell_configs, |(cell, fleet)| {
            Fleet::new(fleet.clone()).finish_cell(*cell)
        });
        let mut summary = ShardSummary::merge(cells);
        summary.spilled = routing.spilled;
        summary.rejected = routing.rejected;
        summary.degraded = routing.degraded;
        summary.probes_run = routing.probes_run;
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{SchemeKind, SystemConfig};
    use qvr_scene::Benchmark;

    fn template(frames: usize, seed: u64) -> FleetConfig {
        let mut t = FleetConfig::uniform(
            SystemConfig::default(),
            SchemeKind::Qvr,
            Benchmark::Hl2H.profile(),
            1, // ignored: the shard routes its own roster
            frames,
            seed,
        );
        t.server_units = 4;
        t.link_streams = 2;
        t
    }

    fn roster(n: usize) -> Vec<SessionSpec> {
        (0..n)
            .map(|i| {
                let bench = [Benchmark::Hl2H, Benchmark::Doom3L, Benchmark::Wolf][i % 3];
                SessionSpec::new(SchemeKind::Qvr, bench.profile())
            })
            .collect()
    }

    #[test]
    fn cell_seed_is_identity_for_cell_zero_and_distinct_after() {
        assert_eq!(cell_seed(42, 0), 42);
        let seeds: Vec<u64> = (0..16).map(|c| cell_seed(42, c)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "cell seeds must not collide");
    }

    #[test]
    fn occupancy_routing_balances_and_rejects_overflow() {
        let config = ShardConfig::new(template(4, 7), 3, 2, roster(7));
        let routing = route(&config);
        let occupancy: Vec<usize> = routing.placements.iter().map(Vec::len).collect();
        assert_eq!(occupancy, vec![2, 2, 2], "least-loaded fills evenly");
        assert_eq!(routing.rejected, 1, "the 7th join finds every cell full");
        assert_eq!(routing.probes_run, 0);
        assert_eq!(routing.spilled, 0, "occupancy routing never spills");
    }

    #[test]
    fn shard_summary_aggregates_across_cells() {
        let mut config = ShardConfig::new(template(6, 11), 4, 4, roster(12));
        config.template.telemetry = config.template.telemetry.with_window_ms(200.0);
        let s = Shard::run(config);
        assert_eq!(s.sessions, 12);
        assert_eq!(s.cells, 4);
        assert_eq!(s.cell_sessions, vec![3, 3, 3, 3]);
        assert_eq!(s.frames, 12 * 6);
        assert_eq!(s.server_units, 16);
        assert!(s.mtp_p50_ms <= s.mtp_p95_ms && s.mtp_p95_ms <= s.mtp_p99_ms);
        assert!(s.fps_floor > 0.0 && s.fps_floor <= s.mean_fps + 1e-9);
        assert!(s.server_utilization > 0.0 && s.server_utilization <= 1.0);
        assert!(s.energy.total_mj() > 0.0);
        assert!(!s.windows.is_empty());
        let frames_in_windows: usize = s.windows.iter().map(|(_, n, _)| *n).sum();
        assert_eq!(frames_in_windows, s.frames, "windows must not lose frames");
        assert!(s.peak_live_tasks > 0);
        assert!(s.to_string().contains("12 sessions over 4 cells"));
    }

    #[test]
    fn merge_is_independent_of_cell_arrival_order() {
        let config = ShardConfig::new(template(5, 3), 3, 4, roster(9));
        let routing = route(&config);
        let mut cells: Vec<CellSummary> = routing
            .placements
            .iter()
            .enumerate()
            .map(|(c, specs)| {
                let mut fleet = config.template.clone();
                fleet.sessions = specs.clone();
                fleet.seed = cell_seed(config.template.seed, c);
                Fleet::new(fleet).finish_cell(c)
            })
            .collect();
        let forward = ShardSummary::merge(cells.clone());
        cells.reverse();
        let reversed = ShardSummary::merge(cells);
        assert_eq!(forward, reversed);
    }

    #[test]
    #[should_panic(expected = "duplicate cell id")]
    fn merge_rejects_duplicate_cell_ids() {
        let mut fleet = template(3, 1);
        fleet.sessions = roster(2);
        let cell = Fleet::new(fleet).finish_cell(5);
        let _ = ShardSummary::merge(vec![cell.clone(), cell]);
    }

    #[test]
    fn merged_load_namespaces_cells_disjointly() {
        let s = Shard::run(ShardConfig::new(template(4, 9), 2, 4, roster(8)));
        let merged = s.merged_load();
        // Cell 0 slot 0 and cell 1 slot 0 land on different merged slots
        // with each cell's own measured value.
        assert_eq!(merged.ewma(0), s.cell_load(0)[0]);
        let base = s.cell_load(0).len();
        assert_eq!(merged.ewma(base), s.cell_load(1)[0]);
        assert!(merged.ewma(0).is_some() && merged.ewma(base).is_some());
    }
}
