//! SLO-driven fleet admission control.
//!
//! PR 1's fleets accept any N tenants and let the tail degrade; a real
//! collaborative-VR operator instead gates joins so the sessions already
//! paying for an experience keep getting it. An [`AdmissionController`]
//! holds the accepted roster and decides each join by *probing*: it runs a
//! short deterministic fleet (the accepted sessions plus the candidate,
//! same seed every time) and checks the resulting [`FleetSummary`]
//! aggregates — p95 motion-to-photon latency, the FPS fairness floor, and
//! server-pool utilization — against an [`AdmissionPolicy`] SLO.
//!
//! Admitted tenants come in two classes. **Protected** tenants are the SLO
//! constituency: every future probe must keep their p95/FPS inside the
//! policy. **Best-effort** tenants (the product of degraded admission)
//! ride along at a reduced [`LinkShare`] with no personal SLO claim —
//! without that exemption a cell-edge (slow-MCS) candidate could never be
//! degraded in, because its own frames would veto every probe.
//!
//! Three outcomes per offer, in order:
//!
//! 1. **Admit** — with the candidate at its requested share, the protected
//!    class *plus the candidate* meets the SLO; the candidate joins
//!    protected.
//! 2. **Degrade** — the full-share probe fails, but with the candidate at
//!    the policy's degraded share the protected class stays inside the
//!    SLO; the candidate joins best-effort. Against an *empty* protected
//!    class the check falls back to the full fleet-wide SLO (with nobody
//!    to protect, best-effort entry would otherwise be vacuously true,
//!    impossible SLOs included).
//! 3. **Reject** — neither probe passes; the roster is unchanged.
//!
//! Everything is deterministic: the same offer sequence against the same
//! controller configuration yields the same decision sequence, and the
//! decision rule is pointwise monotone in the SLO — against an identical
//! roster, a policy that [`AdmissionPolicy::tightens`] another can only
//! demote its decisions (Admit → Degrade/Reject, Degrade → Reject), never
//! promote them.

use crate::fleet::{Fleet, FleetConfig, FleetSummary, SessionSpec};
use crate::metrics::{RunSummary, SortedSamples};
use crate::schemes::SystemConfig;
use qvr_net::{FairnessPolicy, LinkShare};
use std::fmt;

/// The SLO an [`AdmissionController`] defends, plus how it probes.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionPolicy {
    /// Highest tolerable p95 motion-to-photon latency over the SLO
    /// constituency, ms.
    pub mtp_p95_slo_ms: f64,
    /// Lowest tolerable per-session frame rate (the fairness floor) over
    /// the SLO constituency, FPS.
    pub min_fps_floor: f64,
    /// Highest tolerable server-pool utilization, `[0, 1]` (always
    /// fleet-wide: the shared pool doesn't care which class burned it).
    pub max_server_utilization: f64,
    /// Frames each admission probe simulates. More frames cost more but
    /// see deeper into tail behaviour.
    pub probe_frames: usize,
    /// The reduced share offered when a full-share probe fails; `None`
    /// disables degraded admission (reject-only control). Only the weight
    /// and cap apply — the candidate's `mcs_efficiency` is a physical
    /// property of its radio, which no admission policy can change, so it
    /// is preserved from the candidate's requested share.
    pub degraded: Option<LinkShare>,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            mtp_p95_slo_ms: 45.0,
            min_fps_floor: 60.0,
            max_server_utilization: 0.95,
            probe_frames: 24,
            degraded: Some(LinkShare::weighted(0.5)),
        }
    }
}

impl AdmissionPolicy {
    /// Returns a copy with a different p95 MTP SLO.
    #[must_use]
    pub fn with_mtp_p95_slo_ms(mut self, slo: f64) -> Self {
        self.mtp_p95_slo_ms = slo;
        self
    }

    /// Returns a copy with a different FPS floor SLO.
    #[must_use]
    pub fn with_min_fps_floor(mut self, fps: f64) -> Self {
        self.min_fps_floor = fps;
        self
    }

    /// Returns a copy without degraded admission (reject-only).
    #[must_use]
    pub fn reject_only(mut self) -> Self {
        self.degraded = None;
        self
    }

    /// Whether a probed fleet meets every SLO dimension fleet-wide.
    #[must_use]
    pub fn accepts(&self, summary: &FleetSummary) -> bool {
        summary.mtp_p95_ms <= self.mtp_p95_slo_ms
            && summary.fps_floor >= self.min_fps_floor
            && summary.server_utilization <= self.max_server_utilization
    }

    /// Whether a probe keeps the masked subset of its sessions (the SLO
    /// constituency for this decision) inside the SLO. Pool utilization is
    /// always fleet-wide. Falls back to the fleet-wide
    /// [`AdmissionPolicy::accepts`] when the mask selects nobody.
    #[must_use]
    pub fn accepts_constituency(&self, summary: &FleetSummary, constituency: &[bool]) -> bool {
        let members: Vec<&RunSummary> = summary
            .sessions
            .iter()
            .zip(constituency)
            .filter_map(|(s, keep)| keep.then_some(s))
            .collect();
        if members.is_empty() {
            return self.accepts(summary);
        }
        let (p95, fps_floor) = constituency_metrics(&members);
        p95 <= self.mtp_p95_slo_ms
            && fps_floor >= self.min_fps_floor
            && summary.server_utilization <= self.max_server_utilization
    }

    /// Whether `self` is at least as strict as `other` in every dimension
    /// (the premise of the admission monotonicity property).
    #[must_use]
    pub fn tightens(&self, other: &AdmissionPolicy) -> bool {
        self.mtp_p95_slo_ms <= other.mtp_p95_slo_ms
            && self.min_fps_floor >= other.min_fps_floor
            && self.max_server_utilization <= other.max_server_utilization
    }
}

/// p95 MTP and FPS floor over a set of per-session summaries.
fn constituency_metrics(members: &[&RunSummary]) -> (f64, f64) {
    let mtps = SortedSamples::new(
        members
            .iter()
            .flat_map(|s| s.frames.iter().map(|f| f.mtp_ms))
            .collect(),
    );
    let fps_floor = members
        .iter()
        .map(|s| s.fps())
        .fold(f64::INFINITY, f64::min);
    (mtps.p95(), fps_floor)
}

/// The controller's verdict on one offered session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdmissionDecision {
    /// Joined the protected class at its requested share.
    Admitted,
    /// Joined best-effort at the policy's degraded share.
    Degraded,
    /// Refused; the roster is unchanged.
    Rejected,
}

impl AdmissionDecision {
    /// Whether the session joined the fleet (at any share).
    #[must_use]
    pub fn joined(&self) -> bool {
        !matches!(self, AdmissionDecision::Rejected)
    }
}

impl fmt::Display for AdmissionDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AdmissionDecision::Admitted => "admitted",
            AdmissionDecision::Degraded => "degraded",
            AdmissionDecision::Rejected => "rejected",
        })
    }
}

/// Gate for joining sessions: probes each candidate against the SLO and
/// keeps the accepted roster (protected + best-effort classes).
#[derive(Debug, Clone)]
pub struct AdmissionController {
    system: SystemConfig,
    fairness: FairnessPolicy,
    server_units: usize,
    link_streams: usize,
    seed: u64,
    policy: AdmissionPolicy,
    accepted: Vec<SessionSpec>,
    /// `protected[i]` — whether `accepted[i]` belongs to the SLO
    /// constituency (joined via Admit rather than Degrade).
    protected: Vec<bool>,
    decisions: Vec<AdmissionDecision>,
    /// The probe summary of the current accepted roster (the running
    /// aggregates the operator watches), updated on every join.
    last_accepted_probe: Option<FleetSummary>,
}

impl AdmissionController {
    /// A controller over the system's full server array and a link
    /// provisioned like [`FleetConfig::uniform`] (one full-rate stream per
    /// server GPU).
    #[must_use]
    pub fn new(
        system: SystemConfig,
        fairness: FairnessPolicy,
        policy: AdmissionPolicy,
        seed: u64,
    ) -> Self {
        let units = system.remote.count() as usize;
        Self::with_capacity(system, fairness, policy, seed, units, units)
    }

    /// A controller with explicit server-pool and link-stream capacities.
    ///
    /// # Panics
    ///
    /// Panics if `server_units`, `link_streams`, or the policy's
    /// `probe_frames` is zero.
    #[must_use]
    pub fn with_capacity(
        system: SystemConfig,
        fairness: FairnessPolicy,
        policy: AdmissionPolicy,
        seed: u64,
        server_units: usize,
        link_streams: usize,
    ) -> Self {
        assert!(server_units > 0, "the server pool needs at least one unit");
        assert!(link_streams > 0, "the link needs at least one stream");
        assert!(policy.probe_frames > 0, "probes need at least one frame");
        AdmissionController {
            system,
            fairness,
            server_units,
            link_streams,
            seed,
            policy,
            accepted: Vec::new(),
            protected: Vec::new(),
            decisions: Vec::new(),
            last_accepted_probe: None,
        }
    }

    /// The fleet config the controller would run right now with `frames`
    /// per session; `None` while the roster is empty.
    #[must_use]
    pub fn fleet_config(&self, frames: usize) -> Option<FleetConfig> {
        if self.accepted.is_empty() {
            return None;
        }
        Some(FleetConfig {
            system: self.system,
            sessions: self.accepted.clone(),
            frames,
            seed: self.seed,
            server_units: self.server_units,
            shared_network: true,
            link_streams: self.link_streams,
            fairness: self.fairness,
        })
    }

    /// Probes the accepted roster plus `candidate` for `probe_frames`.
    fn probe(&self, candidate: SessionSpec) -> FleetSummary {
        let mut sessions = self.accepted.clone();
        sessions.push(candidate);
        Fleet::run(FleetConfig {
            system: self.system,
            sessions,
            frames: self.policy.probe_frames,
            seed: self.seed,
            server_units: self.server_units,
            shared_network: true,
            link_streams: self.link_streams,
            fairness: self.fairness,
        })
    }

    /// Offers one session: probes, decides, and (on admit/degrade) joins
    /// it to the roster.
    pub fn offer(&mut self, spec: SessionSpec) -> AdmissionDecision {
        // Full-share probe: the constituency is the protected class plus
        // the candidate itself (it is applying for protection).
        let mut constituency = self.protected.clone();
        constituency.push(true);
        let full = self.probe(spec.clone());
        let decision = if self.policy.accepts_constituency(&full, &constituency) {
            self.accepted.push(spec);
            self.protected.push(true);
            self.last_accepted_probe = Some(full);
            AdmissionDecision::Admitted
        } else if let Some(degraded_share) = self.policy.degraded {
            // Degraded probe: the candidate rides best-effort, so the
            // constituency is the existing protected class alone.
            let mut constituency = self.protected.clone();
            constituency.push(false);
            // Degrade the policy knobs (weight, cap) but keep the station's
            // physical MCS efficiency.
            let degraded_spec = spec.clone().with_share(LinkShare {
                mcs_efficiency: spec.share.mcs_efficiency,
                ..degraded_share
            });
            let degraded = self.probe(degraded_spec.clone());
            if self.policy.accepts_constituency(&degraded, &constituency) {
                self.accepted.push(degraded_spec);
                self.protected.push(false);
                self.last_accepted_probe = Some(degraded);
                AdmissionDecision::Degraded
            } else {
                AdmissionDecision::Rejected
            }
        } else {
            AdmissionDecision::Rejected
        };
        self.decisions.push(decision);
        decision
    }

    /// Offers a sequence of sessions in order; returns one decision each.
    pub fn offer_all(
        &mut self,
        specs: impl IntoIterator<Item = SessionSpec>,
    ) -> Vec<AdmissionDecision> {
        specs.into_iter().map(|s| self.offer(s)).collect()
    }

    /// The accepted roster, in admission order (degraded members carry
    /// their degraded share).
    #[must_use]
    pub fn admitted(&self) -> &[SessionSpec] {
        &self.accepted
    }

    /// Which accepted roster members are protected (vs best-effort), in
    /// admission order.
    #[must_use]
    pub fn protected(&self) -> &[bool] {
        &self.protected
    }

    /// Every decision so far, in offer order.
    #[must_use]
    pub fn decisions(&self) -> &[AdmissionDecision] {
        &self.decisions
    }

    /// Sessions offered so far.
    #[must_use]
    pub fn offered(&self) -> usize {
        self.decisions.len()
    }

    /// Count of a given decision so far.
    #[must_use]
    pub fn count(&self, decision: AdmissionDecision) -> usize {
        self.decisions.iter().filter(|d| **d == decision).count()
    }

    /// The probe summary of the current accepted roster (the running
    /// aggregates admission is controlled on); `None` while empty.
    #[must_use]
    pub fn accepted_summary(&self) -> Option<&FleetSummary> {
        self.last_accepted_probe.as_ref()
    }

    /// p95 MTP and FPS floor over the protected class in the latest
    /// accepted probe — the quantities the SLO actually constrains.
    /// `None` while the roster holds no protected members.
    #[must_use]
    pub fn protected_metrics(&self) -> Option<(f64, f64)> {
        let probe = self.last_accepted_probe.as_ref()?;
        let members: Vec<&RunSummary> = probe
            .sessions
            .iter()
            .zip(&self.protected)
            .filter_map(|(s, keep)| keep.then_some(s))
            .collect();
        if members.is_empty() {
            return None;
        }
        Some(constituency_metrics(&members))
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }
}

impl fmt::Display for AdmissionController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} offered / {} admitted / {} degraded / {} rejected under p95 ≤ {:.0} ms, \
             FPS ≥ {:.0}, util ≤ {:.0}% ({} link)",
            self.offered(),
            self.count(AdmissionDecision::Admitted),
            self.count(AdmissionDecision::Degraded),
            self.count(AdmissionDecision::Rejected),
            self.policy.mtp_p95_slo_ms,
            self.policy.min_fps_floor,
            self.policy.max_server_utilization * 100.0,
            self.fairness,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::SchemeKind;
    use qvr_scene::Benchmark;

    fn spec() -> SessionSpec {
        SessionSpec::new(SchemeKind::Qvr, Benchmark::Hl2H.profile())
    }

    fn policy(slo_ms: f64) -> AdmissionPolicy {
        let mut p = AdmissionPolicy::default()
            .with_mtp_p95_slo_ms(slo_ms)
            .with_min_fps_floor(40.0);
        // Small probes keep the debug-mode unit tests quick; the
        // integration suite and fig_admission exercise realistic sizes.
        p.probe_frames = 8;
        p
    }

    #[test]
    fn first_session_admits_under_a_sane_slo() {
        let mut c = AdmissionController::new(
            SystemConfig::default(),
            FairnessPolicy::EqualShare,
            policy(40.0),
            42,
        );
        assert_eq!(c.offer(spec()), AdmissionDecision::Admitted);
        assert_eq!(c.admitted().len(), 1);
        assert_eq!(c.protected(), &[true]);
        assert_eq!(c.offered(), 1);
        let probe = c.accepted_summary().expect("roster probed");
        assert!(probe.mtp_p95_ms <= 40.0);
        let (p95, floor) = c.protected_metrics().expect("protected class exists");
        assert!(p95 <= 40.0);
        assert!(floor >= 40.0);
        assert!(c.fleet_config(10).is_some());
    }

    #[test]
    fn impossible_slo_rejects_everyone() {
        let mut c = AdmissionController::new(
            SystemConfig::default(),
            FairnessPolicy::Weighted,
            policy(1.0),
            42,
        );
        for _ in 0..3 {
            assert_eq!(c.offer(spec()), AdmissionDecision::Rejected);
        }
        assert!(c.admitted().is_empty());
        assert!(c.accepted_summary().is_none());
        assert!(c.protected_metrics().is_none());
        assert!(c.fleet_config(10).is_none());
        assert_eq!(c.count(AdmissionDecision::Rejected), 3);
        assert!(c.to_string().contains("3 rejected"));
    }

    #[test]
    fn degraded_tenants_join_best_effort_without_breaking_the_protected_slo() {
        // A cell-edge candidate (half-rate MCS) under airtime fairness: its
        // own latency is poor, so full admission fails once the cell has
        // tenants to protect — but best-effort entry must succeed while the
        // protected class stays inside the SLO.
        let mut p = policy(25.0);
        p.degraded = Some(LinkShare::weighted(0.25));
        let mut c = AdmissionController::new(
            SystemConfig::default(),
            FairnessPolicy::Airtime,
            p.clone(),
            42,
        );
        // Fill the protected class with full-rate tenants first.
        for _ in 0..3 {
            c.offer(spec());
        }
        let protected_before = c.count(AdmissionDecision::Admitted);
        assert!(protected_before > 0, "full-rate tenants must admit");
        // Now offer cell-edge stations until one degrades or everything
        // rejects; none may break the protected class.
        let edge = || spec().with_share(LinkShare::default().with_mcs_efficiency(0.5));
        for _ in 0..4 {
            c.offer(edge());
        }
        let (p95, _) = c.protected_metrics().expect("protected class exists");
        assert!(
            p95 <= p.mtp_p95_slo_ms,
            "protected p95 {:.1} ms must hold the {:.1} ms SLO",
            p95,
            p.mtp_p95_slo_ms
        );
        // Best-effort members never enter the protected mask; they carry
        // the policy's degraded weight but keep their own physical MCS.
        for (i, protected) in c.protected().iter().enumerate() {
            let share = c.admitted()[i].share;
            let degraded = share.weight == p.degraded.unwrap().weight;
            assert_eq!(*protected, !degraded);
            if degraded {
                assert_eq!(
                    share.mcs_efficiency, 0.5,
                    "degrade must preserve the station's physical MCS"
                );
            }
        }
        assert!(
            c.count(AdmissionDecision::Degraded) > 0,
            "at least one cell-edge station must come in best-effort"
        );
    }

    #[test]
    fn rejection_leaves_the_roster_untouched() {
        let mut tight = AdmissionController::new(
            SystemConfig::default(),
            FairnessPolicy::EqualShare,
            policy(40.0).reject_only(),
            42,
        );
        // Admit as many as the SLO allows, then verify the roster stops
        // growing while decisions keep accruing.
        let decisions = tight.offer_all((0..12).map(|_| spec()));
        let joined = decisions.iter().filter(|d| d.joined()).count();
        assert_eq!(tight.admitted().len(), joined);
        assert_eq!(tight.offered(), 12);
        if let Some(probe) = tight.accepted_summary() {
            assert!(tight.policy().accepts(probe), "roster must meet the SLO");
        }
    }

    #[test]
    fn tightens_orders_policies() {
        let loose = policy(50.0);
        let tight = policy(30.0);
        assert!(tight.tightens(&loose));
        assert!(!loose.tightens(&tight));
        assert!(tight.tightens(&tight.clone()));
    }

    #[test]
    fn decision_display_labels() {
        assert_eq!(AdmissionDecision::Admitted.to_string(), "admitted");
        assert_eq!(AdmissionDecision::Degraded.to_string(), "degraded");
        assert_eq!(AdmissionDecision::Rejected.to_string(), "rejected");
        assert!(AdmissionDecision::Admitted.joined());
        assert!(AdmissionDecision::Degraded.joined());
        assert!(!AdmissionDecision::Rejected.joined());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_probe_frames_rejected() {
        let p = AdmissionPolicy {
            probe_frames: 0,
            ..AdmissionPolicy::default()
        };
        let _ = AdmissionController::new(SystemConfig::default(), FairnessPolicy::EqualShare, p, 1);
    }
}
