//! SLO-driven fleet admission control.
//!
//! PR 1's fleets accept any N tenants and let the tail degrade; a real
//! collaborative-VR operator instead gates joins so the sessions already
//! paying for an experience keep getting it. An [`AdmissionController`]
//! holds the accepted roster and decides each join by *probing*: it runs a
//! short deterministic fleet (the accepted sessions plus the candidate,
//! same seed every time) and checks the resulting [`FleetSummary`]
//! aggregates — p95 motion-to-photon latency, the FPS fairness floor, and
//! server-pool utilization — against an [`AdmissionPolicy`] SLO.
//!
//! Admitted tenants come in two classes. **Protected** tenants are the SLO
//! constituency: every future probe must keep their p95/FPS inside the
//! policy. **Best-effort** tenants (the product of degraded admission)
//! ride along at a reduced [`LinkShare`] with no personal SLO claim —
//! without that exemption a cell-edge (slow-MCS) candidate could never be
//! degraded in, because its own frames would veto every probe.
//!
//! Three outcomes per offer, in order:
//!
//! 1. **Admit** — with the candidate at its requested share, the protected
//!    class *plus the candidate* meets the SLO; the candidate joins
//!    protected.
//! 2. **Degrade** — the full-share probe fails, but with the candidate at
//!    the policy's degraded share the protected class stays inside the
//!    SLO; the candidate joins best-effort. Against an *empty* protected
//!    class the check falls back to the full fleet-wide SLO (with nobody
//!    to protect, best-effort entry would otherwise be vacuously true,
//!    impossible SLOs included).
//! 3. **Reject** — neither probe passes; the roster is unchanged.
//!
//! Everything is deterministic: the same offer sequence against the same
//! controller configuration yields the same decision sequence, and the
//! decision rule is pointwise monotone in the SLO — against an identical
//! roster, a policy that [`AdmissionPolicy::tightens`] another can only
//! demote its decisions (Admit → Degrade/Reject, Degrade → Reject), never
//! promote them.

use crate::clock::SteppingPolicy;
use crate::fleet::{Fleet, FleetConfig, FleetSummary, SessionSpec};
use crate::metrics::{RunSummary, SortedSamples};
use crate::sched::ServerPolicy;
use crate::schemes::SystemConfig;
use crate::telemetry::TelemetryConfig;
use qvr_net::{FairnessPolicy, LinkShare};
use std::fmt;

/// The SLO an [`AdmissionController`] defends, plus how it probes.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionPolicy {
    /// Highest tolerable p95 motion-to-photon latency over the SLO
    /// constituency, ms.
    pub mtp_p95_slo_ms: f64,
    /// Lowest tolerable per-session frame rate (the fairness floor) over
    /// the SLO constituency, FPS.
    pub min_fps_floor: f64,
    /// Highest tolerable server-pool utilization, `[0, 1]` (always
    /// fleet-wide: the shared pool doesn't care which class burned it).
    pub max_server_utilization: f64,
    /// Frames each admission probe simulates. More frames cost more but
    /// see deeper into tail behaviour.
    pub probe_frames: usize,
    /// The reduced share offered when a full-share probe fails; `None`
    /// disables degraded admission (reject-only control). Only the weight
    /// and cap apply — the candidate's `mcs_efficiency` is a physical
    /// property of its radio, which no admission policy can change, so it
    /// is preserved from the candidate's requested share.
    pub degraded: Option<LinkShare>,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            mtp_p95_slo_ms: 45.0,
            min_fps_floor: 60.0,
            max_server_utilization: 0.95,
            probe_frames: 24,
            degraded: Some(LinkShare::weighted(0.5)),
        }
    }
}

impl AdmissionPolicy {
    /// Returns a copy with a different p95 MTP SLO.
    #[must_use]
    pub fn with_mtp_p95_slo_ms(mut self, slo: f64) -> Self {
        self.mtp_p95_slo_ms = slo;
        self
    }

    /// Returns a copy with a different FPS floor SLO.
    #[must_use]
    pub fn with_min_fps_floor(mut self, fps: f64) -> Self {
        self.min_fps_floor = fps;
        self
    }

    /// Returns a copy without degraded admission (reject-only).
    #[must_use]
    pub fn reject_only(mut self) -> Self {
        self.degraded = None;
        self
    }

    /// Whether a probed fleet meets every SLO dimension fleet-wide.
    #[must_use]
    pub fn accepts(&self, summary: &FleetSummary) -> bool {
        summary.mtp_p95_ms <= self.mtp_p95_slo_ms
            && summary.fps_floor >= self.min_fps_floor
            && summary.server_utilization <= self.max_server_utilization
    }

    /// Whether a probe keeps the masked subset of its sessions (the SLO
    /// constituency for this decision) inside the SLO. Pool utilization is
    /// always fleet-wide. Falls back to the fleet-wide
    /// [`AdmissionPolicy::accepts`] when the mask selects nobody.
    #[must_use]
    pub fn accepts_constituency(&self, summary: &FleetSummary, constituency: &[bool]) -> bool {
        let members: Vec<&RunSummary> = summary
            .sessions
            .iter()
            .zip(constituency)
            .filter_map(|(s, keep)| keep.then_some(s))
            .collect();
        if members.is_empty() {
            return self.accepts(summary);
        }
        let (p95, fps_floor) = constituency_metrics(&members);
        p95 <= self.mtp_p95_slo_ms
            && fps_floor >= self.min_fps_floor
            && summary.server_utilization <= self.max_server_utilization
    }

    /// Whether `self` is at least as strict as `other` in every dimension
    /// (the premise of the admission monotonicity property).
    #[must_use]
    pub fn tightens(&self, other: &AdmissionPolicy) -> bool {
        self.mtp_p95_slo_ms <= other.mtp_p95_slo_ms
            && self.min_fps_floor >= other.min_fps_floor
            && self.max_server_utilization <= other.max_server_utilization
    }
}

/// p95 MTP and FPS floor over a set of per-session summaries.
fn constituency_metrics(members: &[&RunSummary]) -> (f64, f64) {
    let mtps = SortedSamples::new(
        members
            .iter()
            .flat_map(|s| s.frames.iter().map(|f| f.mtp_ms))
            .collect(),
    );
    let fps_floor = members
        .iter()
        .map(|s| s.fps())
        .fold(f64::INFINITY, f64::min);
    (mtps.p95(), fps_floor)
}

/// The controller's verdict on one offered session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdmissionDecision {
    /// Joined the protected class at its requested share.
    Admitted,
    /// Joined best-effort at the policy's degraded share.
    Degraded,
    /// Refused; the roster is unchanged.
    Rejected,
}

impl AdmissionDecision {
    /// Whether the session joined the fleet (at any share).
    #[must_use]
    pub fn joined(&self) -> bool {
        !matches!(self, AdmissionDecision::Rejected)
    }
}

impl fmt::Display for AdmissionDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AdmissionDecision::Admitted => "admitted",
            AdmissionDecision::Degraded => "degraded",
            AdmissionDecision::Rejected => "rejected",
        })
    }
}

/// Gate for joining sessions: probes each candidate against the SLO and
/// keeps the accepted roster (protected + best-effort classes).
#[derive(Debug, Clone)]
pub struct AdmissionController {
    system: SystemConfig,
    fairness: FairnessPolicy,
    server_policy: ServerPolicy,
    server_units: usize,
    link_streams: usize,
    seed: u64,
    policy: AdmissionPolicy,
    accepted: Vec<SessionSpec>,
    /// `protected[i]` — whether `accepted[i]` belongs to the SLO
    /// constituency (joined via Admit rather than Degrade).
    protected: Vec<bool>,
    /// The share `accepted[i]` originally asked for (degraded members
    /// carry a reduced share in `accepted`; reclaim-driven upgrades restore
    /// this one).
    requested: Vec<LinkShare>,
    decisions: Vec<AdmissionDecision>,
    /// The probe summary of the current accepted roster (the running
    /// aggregates the operator watches), updated on every join and leave.
    last_accepted_probe: Option<FleetSummary>,
    /// Probe fleets actually simulated (the cost incremental probing
    /// avoids re-paying on single-session roster changes).
    probes_run: usize,
}

impl AdmissionController {
    /// A controller over the system's full server array and a link
    /// provisioned like [`FleetConfig::uniform`] (one full-rate stream per
    /// server GPU).
    #[must_use]
    pub fn new(
        system: SystemConfig,
        fairness: FairnessPolicy,
        policy: AdmissionPolicy,
        seed: u64,
    ) -> Self {
        let units = system.remote.count() as usize;
        Self::with_capacity(system, fairness, policy, seed, units, units)
    }

    /// A controller with explicit server-pool and link-stream capacities.
    ///
    /// # Panics
    ///
    /// Panics if `server_units`, `link_streams`, or the policy's
    /// `probe_frames` is zero.
    #[must_use]
    pub fn with_capacity(
        system: SystemConfig,
        fairness: FairnessPolicy,
        policy: AdmissionPolicy,
        seed: u64,
        server_units: usize,
        link_streams: usize,
    ) -> Self {
        assert!(server_units > 0, "the server pool needs at least one unit");
        assert!(link_streams > 0, "the link needs at least one stream");
        assert!(policy.probe_frames > 0, "probes need at least one frame");
        AdmissionController {
            system,
            fairness,
            server_policy: ServerPolicy::default(),
            server_units,
            link_streams,
            seed,
            policy,
            accepted: Vec::new(),
            protected: Vec::new(),
            requested: Vec::new(),
            decisions: Vec::new(),
            last_accepted_probe: None,
            probes_run: 0,
        }
    }

    /// The one config shape every controller fleet uses (roster views,
    /// candidate probes, upgrade probes) — only the session list varies,
    /// so a future `FleetConfig` field change lands here once.
    fn config_for(&self, sessions: Vec<SessionSpec>, frames: usize) -> FleetConfig {
        FleetConfig {
            system: self.system,
            sessions,
            frames,
            seed: self.seed,
            server_units: self.server_units,
            shared_network: true,
            link_streams: self.link_streams,
            fairness: self.fairness,
            server_policy: self.server_policy,
            stepping: SteppingPolicy::RoundRobin,
            retire_window_ms: None,
            telemetry: TelemetryConfig::default(),
        }
    }

    /// Returns a copy probing under a server scheduling policy (so
    /// admission decisions reflect the placement the fleet actually runs).
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid for the controller's server pool.
    #[must_use]
    pub fn with_server_policy(mut self, policy: ServerPolicy) -> Self {
        policy.validate(self.server_units);
        self.server_policy = policy;
        self
    }

    /// The fleet config the controller would run right now with `frames`
    /// per session; `None` while the roster is empty.
    #[must_use]
    pub fn fleet_config(&self, frames: usize) -> Option<FleetConfig> {
        if self.accepted.is_empty() {
            return None;
        }
        Some(self.config_for(self.accepted.clone(), frames))
    }

    /// Probes the accepted roster plus `candidate` for `probe_frames`.
    fn probe(&mut self, candidate: SessionSpec) -> FleetSummary {
        let mut sessions = self.accepted.clone();
        sessions.push(candidate);
        self.probes_run += 1;
        Fleet::run(self.config_for(sessions, self.policy.probe_frames))
    }

    /// Offers one session: probes, decides, and (on admit/degrade) joins
    /// it to the roster.
    ///
    /// Probing is already incremental on the join side: the candidate
    /// probe *is* the new roster's fleet, so a join never re-runs a
    /// roster-only probe on top of it ([`AdmissionController::release`]
    /// gives leaves the same property).
    pub fn offer(&mut self, spec: SessionSpec) -> AdmissionDecision {
        let requested_share = spec.share;
        // Full-share probe: the constituency is the protected class plus
        // the candidate itself (it is applying for protection).
        let mut constituency = self.protected.clone();
        constituency.push(true);
        let full = self.probe(spec.clone());
        let decision = if self.policy.accepts_constituency(&full, &constituency) {
            self.accepted.push(spec);
            self.protected.push(true);
            self.requested.push(requested_share);
            self.last_accepted_probe = Some(full);
            AdmissionDecision::Admitted
        } else if let Some(degraded_share) = self.policy.degraded {
            // Degraded probe: the candidate rides best-effort, so the
            // constituency is the existing protected class alone.
            let mut constituency = self.protected.clone();
            constituency.push(false);
            // Degrade the policy knobs (weight, cap) but keep the station's
            // physical MCS efficiency.
            let degraded_spec = spec.clone().with_share(LinkShare {
                mcs_efficiency: spec.share.mcs_efficiency,
                ..degraded_share
            });
            let degraded = self.probe(degraded_spec.clone());
            if self.policy.accepts_constituency(&degraded, &constituency) {
                self.accepted.push(degraded_spec);
                self.protected.push(false);
                self.requested.push(requested_share);
                self.last_accepted_probe = Some(degraded);
                AdmissionDecision::Degraded
            } else {
                AdmissionDecision::Rejected
            }
        } else {
            AdmissionDecision::Rejected
        };
        self.decisions.push(decision);
        decision
    }

    /// Offers one session for full (protected) admission *only*: probes
    /// exactly as [`AdmissionController::offer`] but never falls back to a
    /// degraded share — the candidate joins iff the full-share probe holds
    /// the SLO, and a decline leaves the roster untouched. The shard
    /// router's first pass uses this so a join that would only ride
    /// best-effort here can first try a less-loaded cell (DESIGN.md §12's
    /// spill-resolution order).
    pub fn offer_protected(&mut self, spec: SessionSpec) -> AdmissionDecision {
        let requested_share = spec.share;
        let mut constituency = self.protected.clone();
        constituency.push(true);
        let full = self.probe(spec.clone());
        let decision = if self.policy.accepts_constituency(&full, &constituency) {
            self.accepted.push(spec);
            self.protected.push(true);
            self.requested.push(requested_share);
            self.last_accepted_probe = Some(full);
            AdmissionDecision::Admitted
        } else {
            AdmissionDecision::Rejected
        };
        self.decisions.push(decision);
        decision
    }

    /// Handles a *leaving* session: removes roster member `idx`, reclaims
    /// its resources, and tries to spend them on upgrading best-effort
    /// tenants back to their originally-requested (protected) shares.
    ///
    /// The departure itself is probed **incrementally**: since exactly one
    /// session left, the new roster's aggregates are re-derived from the
    /// cached probe with that session's frames dropped
    /// ([`FleetSummary::without_session`]) instead of re-simulating the
    /// whole roster — [`AdmissionController::probes_run`] stays flat when
    /// there is nothing to upgrade. Each *upgrade attempt* is a real probe
    /// (the candidate's share actually changes): best-effort members are
    /// tried in admission order, greedily keeping every upgrade whose probe
    /// holds the SLO over the protected class plus the upgradee.
    ///
    /// Returns the roster indices (post-removal) that were upgraded.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a roster index.
    pub fn release(&mut self, idx: usize) -> Vec<usize> {
        assert!(idx < self.accepted.len(), "unknown roster member {idx}");
        self.accepted.remove(idx);
        self.protected.remove(idx);
        self.requested.remove(idx);
        // Incremental probe update: drop the leaver's frames from the
        // cached probe rather than re-running the surviving roster.
        self.last_accepted_probe = match self.last_accepted_probe.take() {
            Some(probe) if probe.len() == self.accepted.len() + 1 => {
                if self.accepted.is_empty() {
                    None
                } else {
                    Some(probe.without_session(idx))
                }
            }
            other => other,
        };
        // Reclaim: offer the freed headroom to best-effort tenants, in
        // admission order, restoring their originally-requested shares.
        let mut upgraded = Vec::new();
        for i in 0..self.accepted.len() {
            if self.protected[i] {
                continue;
            }
            let candidate = self.accepted[i].clone().with_share(self.requested[i]);
            // Probe the roster with member `i` at its requested share: the
            // roster minus the upgradee, plus the upgraded candidate last —
            // the same shape `offer` probes, so the SLO mask lines up.
            let mut sessions: Vec<SessionSpec> = self.accepted.clone();
            sessions.remove(i);
            let mut constituency: Vec<bool> = self
                .protected
                .iter()
                .enumerate()
                .filter_map(|(j, p)| (j != i).then_some(*p))
                .collect();
            sessions.push(candidate.clone());
            constituency.push(true);
            self.probes_run += 1;
            let probe = Fleet::run(self.config_for(sessions, self.policy.probe_frames));
            if self.policy.accepts_constituency(&probe, &constituency) {
                self.accepted[i] = candidate;
                self.protected[i] = true;
                upgraded.push(i);
                // The upgrade probe reordered the roster (upgradee last);
                // keep the cached aggregates but at the canonical order.
                let mut sessions = probe.sessions.clone();
                let upgradee = sessions.pop().expect("upgradee probed last");
                sessions.insert(i, upgradee);
                self.last_accepted_probe = Some(FleetSummary::from_sessions(
                    sessions,
                    probe.makespan_ms,
                    probe.server_utilization,
                    probe.server_units,
                    probe.shared_network,
                    // Carry the probed run's infrastructure energy; the
                    // reorder above only permutes sessions, so the re-summed
                    // client share (and thus the total) matches the probe's.
                    probe.energy,
                ));
            }
        }
        upgraded
    }

    /// Probe fleets simulated so far (joins, degrades, and upgrade
    /// attempts; incremental leave updates don't add to it).
    #[must_use]
    pub fn probes_run(&self) -> usize {
        self.probes_run
    }

    /// Offers a sequence of sessions in order; returns one decision each.
    pub fn offer_all(
        &mut self,
        specs: impl IntoIterator<Item = SessionSpec>,
    ) -> Vec<AdmissionDecision> {
        specs.into_iter().map(|s| self.offer(s)).collect()
    }

    /// The accepted roster, in admission order (degraded members carry
    /// their degraded share).
    #[must_use]
    pub fn admitted(&self) -> &[SessionSpec] {
        &self.accepted
    }

    /// Which accepted roster members are protected (vs best-effort), in
    /// admission order.
    #[must_use]
    pub fn protected(&self) -> &[bool] {
        &self.protected
    }

    /// The share each roster member originally requested (what a
    /// reclaim-driven upgrade restores), in admission order.
    #[must_use]
    pub fn requested(&self) -> &[LinkShare] {
        &self.requested
    }

    /// Every decision so far, in offer order.
    #[must_use]
    pub fn decisions(&self) -> &[AdmissionDecision] {
        &self.decisions
    }

    /// Sessions offered so far.
    #[must_use]
    pub fn offered(&self) -> usize {
        self.decisions.len()
    }

    /// Count of a given decision so far.
    #[must_use]
    pub fn count(&self, decision: AdmissionDecision) -> usize {
        self.decisions.iter().filter(|d| **d == decision).count()
    }

    /// The probe summary of the current accepted roster (the running
    /// aggregates admission is controlled on); `None` while empty.
    #[must_use]
    pub fn accepted_summary(&self) -> Option<&FleetSummary> {
        self.last_accepted_probe.as_ref()
    }

    /// p95 MTP and FPS floor over the protected class in the latest
    /// accepted probe — the quantities the SLO actually constrains.
    /// `None` while the roster holds no protected members.
    #[must_use]
    pub fn protected_metrics(&self) -> Option<(f64, f64)> {
        let probe = self.last_accepted_probe.as_ref()?;
        let members: Vec<&RunSummary> = probe
            .sessions
            .iter()
            .zip(&self.protected)
            .filter_map(|(s, keep)| keep.then_some(s))
            .collect();
        if members.is_empty() {
            return None;
        }
        Some(constituency_metrics(&members))
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }
}

impl fmt::Display for AdmissionController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} offered / {} admitted / {} degraded / {} rejected under p95 ≤ {:.0} ms, \
             FPS ≥ {:.0}, util ≤ {:.0}% ({} link)",
            self.offered(),
            self.count(AdmissionDecision::Admitted),
            self.count(AdmissionDecision::Degraded),
            self.count(AdmissionDecision::Rejected),
            self.policy.mtp_p95_slo_ms,
            self.policy.min_fps_floor,
            self.policy.max_server_utilization * 100.0,
            self.fairness,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::SchemeKind;
    use qvr_scene::Benchmark;

    fn spec() -> SessionSpec {
        SessionSpec::new(SchemeKind::Qvr, Benchmark::Hl2H.profile())
    }

    fn policy(slo_ms: f64) -> AdmissionPolicy {
        let mut p = AdmissionPolicy::default()
            .with_mtp_p95_slo_ms(slo_ms)
            .with_min_fps_floor(40.0);
        // Small probes keep the debug-mode unit tests quick; the
        // integration suite and fig_admission exercise realistic sizes.
        p.probe_frames = 8;
        p
    }

    #[test]
    fn first_session_admits_under_a_sane_slo() {
        let mut c = AdmissionController::new(
            SystemConfig::default(),
            FairnessPolicy::EqualShare,
            policy(40.0),
            42,
        );
        assert_eq!(c.offer(spec()), AdmissionDecision::Admitted);
        assert_eq!(c.admitted().len(), 1);
        assert_eq!(c.protected(), &[true]);
        assert_eq!(c.offered(), 1);
        let probe = c.accepted_summary().expect("roster probed");
        assert!(probe.mtp_p95_ms <= 40.0);
        let (p95, floor) = c.protected_metrics().expect("protected class exists");
        assert!(p95 <= 40.0);
        assert!(floor >= 40.0);
        assert!(c.fleet_config(10).is_some());
    }

    #[test]
    fn impossible_slo_rejects_everyone() {
        let mut c = AdmissionController::new(
            SystemConfig::default(),
            FairnessPolicy::Weighted,
            policy(1.0),
            42,
        );
        for _ in 0..3 {
            assert_eq!(c.offer(spec()), AdmissionDecision::Rejected);
        }
        assert!(c.admitted().is_empty());
        assert!(c.accepted_summary().is_none());
        assert!(c.protected_metrics().is_none());
        assert!(c.fleet_config(10).is_none());
        assert_eq!(c.count(AdmissionDecision::Rejected), 3);
        assert!(c.to_string().contains("3 rejected"));
    }

    #[test]
    fn degraded_tenants_join_best_effort_without_breaking_the_protected_slo() {
        // A cell-edge candidate (half-rate MCS) under airtime fairness: its
        // own latency is poor, so full admission fails once the cell has
        // tenants to protect — but best-effort entry must succeed while the
        // protected class stays inside the SLO.
        let mut p = policy(25.0);
        p.degraded = Some(LinkShare::weighted(0.25));
        let mut c = AdmissionController::new(
            SystemConfig::default(),
            FairnessPolicy::Airtime,
            p.clone(),
            42,
        );
        // Fill the protected class with full-rate tenants first.
        for _ in 0..3 {
            c.offer(spec());
        }
        let protected_before = c.count(AdmissionDecision::Admitted);
        assert!(protected_before > 0, "full-rate tenants must admit");
        // Now offer cell-edge stations until one degrades or everything
        // rejects; none may break the protected class.
        let edge = || spec().with_share(LinkShare::default().with_mcs_efficiency(0.5));
        for _ in 0..4 {
            c.offer(edge());
        }
        let (p95, _) = c.protected_metrics().expect("protected class exists");
        assert!(
            p95 <= p.mtp_p95_slo_ms,
            "protected p95 {:.1} ms must hold the {:.1} ms SLO",
            p95,
            p.mtp_p95_slo_ms
        );
        // Best-effort members never enter the protected mask; they carry
        // the policy's degraded weight but keep their own physical MCS.
        for (i, protected) in c.protected().iter().enumerate() {
            let share = c.admitted()[i].share;
            let degraded = share.weight == p.degraded.unwrap().weight;
            assert_eq!(*protected, !degraded);
            if degraded {
                assert_eq!(
                    share.mcs_efficiency, 0.5,
                    "degrade must preserve the station's physical MCS"
                );
            }
        }
        assert!(
            c.count(AdmissionDecision::Degraded) > 0,
            "at least one cell-edge station must come in best-effort"
        );
    }

    #[test]
    fn rejection_leaves_the_roster_untouched() {
        let mut tight = AdmissionController::new(
            SystemConfig::default(),
            FairnessPolicy::EqualShare,
            policy(40.0).reject_only(),
            42,
        );
        // Admit as many as the SLO allows, then verify the roster stops
        // growing while decisions keep accruing.
        let decisions = tight.offer_all((0..12).map(|_| spec()));
        let joined = decisions.iter().filter(|d| d.joined()).count();
        assert_eq!(tight.admitted().len(), joined);
        assert_eq!(tight.offered(), 12);
        if let Some(probe) = tight.accepted_summary() {
            assert!(tight.policy().accepts(probe), "roster must meet the SLO");
        }
    }

    #[test]
    fn release_reuses_the_cached_probe_when_nothing_can_upgrade() {
        // Incremental probing: with no best-effort members, removing one
        // session must cost zero probe fleets — the cached roster probe is
        // re-aggregated with the leaver's frames dropped.
        let mut c = AdmissionController::new(
            SystemConfig::default(),
            FairnessPolicy::EqualShare,
            policy(40.0),
            42,
        );
        c.offer(spec());
        c.offer(spec());
        let probes_before = c.probes_run();
        let before = c.accepted_summary().expect("probed").clone();
        let upgraded = c.release(0);
        assert!(upgraded.is_empty());
        assert_eq!(
            c.probes_run(),
            probes_before,
            "a single leave must not re-run the roster probe"
        );
        assert_eq!(c.admitted().len(), 1);
        assert_eq!(c.protected(), &[true]);
        let after = c.accepted_summary().expect("still cached");
        assert_eq!(after.len(), 1, "the leaver's frames are gone");
        assert_eq!(
            after.sessions[0].frames, before.sessions[1].frames,
            "the survivor's frames carry over from the cached probe"
        );
        // Draining the roster clears the cache.
        let _ = c.release(0);
        assert!(c.admitted().is_empty());
        assert!(c.accepted_summary().is_none());
    }

    #[test]
    fn release_upgrades_best_effort_tenants_with_reclaimed_headroom() {
        // Load-driven degradation (unlike an MCS handicap, load can be
        // reclaimed): non-adaptive RemoteOnly tenants on a 2-stream
        // weighted link admit until the link saturates, the third comes in
        // best-effort at a quarter weight, and further offers reject. When
        // a protected member then leaves, the reclaim pass must upgrade the
        // degraded tenant back to its requested (unit) share — at the cost
        // of exactly one upgrade probe on top of the incremental leave.
        let heavy = || SessionSpec::new(SchemeKind::RemoteOnly, Benchmark::Hl2H.profile());
        let mut p = AdmissionPolicy::default()
            .with_mtp_p95_slo_ms(100.0)
            .with_min_fps_floor(10.0);
        p.probe_frames = 8;
        p.degraded = Some(LinkShare::weighted(0.25));
        let mut c = AdmissionController::with_capacity(
            SystemConfig::default(),
            FairnessPolicy::Weighted,
            p,
            42,
            8,
            2,
        );
        let decisions = c.offer_all((0..4).map(|_| heavy()));
        assert_eq!(
            decisions,
            vec![
                AdmissionDecision::Admitted,
                AdmissionDecision::Admitted,
                AdmissionDecision::Degraded,
                AdmissionDecision::Rejected,
            ]
        );
        let best_effort = c.protected().iter().position(|p| !*p).expect("degraded in");
        assert_eq!(c.admitted()[best_effort].share.weight, 0.25);
        let probes_before = c.probes_run();
        let upgraded = c.release(0);
        assert_eq!(upgraded, vec![1], "the freed headroom upgrades the tenant");
        assert_eq!(
            c.probes_run(),
            probes_before + 1,
            "one upgrade probe, no roster re-probe"
        );
        assert_eq!(c.protected(), &[true, true]);
        assert_eq!(
            c.admitted()[1].share,
            c.requested()[1],
            "upgrade restores the originally-requested share"
        );
        // The refreshed cache still holds the SLO over the protected class.
        let (p95, _) = c.protected_metrics().expect("protected class exists");
        assert!(p95 <= c.policy().mtp_p95_slo_ms);
    }

    #[test]
    #[should_panic(expected = "unknown roster member")]
    fn release_of_unknown_member_rejected() {
        let mut c = AdmissionController::new(
            SystemConfig::default(),
            FairnessPolicy::EqualShare,
            policy(40.0),
            1,
        );
        let _ = c.release(0);
    }

    #[test]
    fn tightens_orders_policies() {
        let loose = policy(50.0);
        let tight = policy(30.0);
        assert!(tight.tightens(&loose));
        assert!(!loose.tightens(&tight));
        assert!(tight.tightens(&tight.clone()));
    }

    #[test]
    fn decision_display_labels() {
        assert_eq!(AdmissionDecision::Admitted.to_string(), "admitted");
        assert_eq!(AdmissionDecision::Degraded.to_string(), "degraded");
        assert_eq!(AdmissionDecision::Rejected.to_string(), "rejected");
        assert!(AdmissionDecision::Admitted.joined());
        assert!(AdmissionDecision::Degraded.joined());
        assert!(!AdmissionDecision::Rejected.joined());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_probe_frames_rejected() {
        let p = AdmissionPolicy {
            probe_frames: 0,
            ..AdmissionPolicy::default()
        };
        let _ = AdmissionController::new(SystemConfig::default(), FairnessPolicy::EqualShare, p, 1);
    }
}
