//! The Unified Composition and ATW unit (paper Sec. 4.2).
//!
//! The baseline pipeline composes the foveation layers (anti-aliasing
//! across layer seams), writes the composite to memory, then ATW re-samples
//! it through lens distortion + reprojection — two filtering passes, both on
//! the GPU. Eq. (4) observes that both passes are linear filters, so they
//! commute: warping first and sampling the layer stack directly needs only
//! **one** (trilinear) sampling pass, touches memory once, and can run on a
//! small dedicated unit off the GPU.
//!
//! This module provides both halves of that claim:
//!
//! * a **functional model** ([`Uca::compose_then_atw`] vs [`Uca::unified`])
//!   operating on real framebuffers, with tile classification (border tiles
//!   need the trilinear path, non-overlapping tiles plain bilinear) and
//!   previous-frame reconstruction for dropped frames — tests verify the
//!   two paths agree;
//! * a **timing model** ([`UcaTiming`]) built on the Sec. 4.3 figures
//!   (532 cycles per 32×32 tile, 2 units at 500 MHz), split so schedulers
//!   can start the non-overlapping portion before local rendering finishes
//!   (the pipeline-reorder advantage of Fig. 10).

use qvr_energy::overhead::UcaOverhead;
use qvr_gpu::{Framebuffer, Rgba};
use std::fmt;

/// ATW warp parameters: a reprojection shift plus barrel lens distortion.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WarpParams {
    /// Horizontal reprojection, NDC units (head yaw between render & scan).
    pub dx_ndc: f32,
    /// Vertical reprojection, NDC units.
    pub dy_ndc: f32,
    /// First barrel distortion coefficient.
    pub k1: f32,
    /// Second barrel distortion coefficient.
    pub k2: f32,
}

impl WarpParams {
    /// A typical HMD lens profile with no reprojection.
    #[must_use]
    pub fn lens_only() -> Self {
        WarpParams {
            dx_ndc: 0.0,
            dy_ndc: 0.0,
            k1: 0.12,
            k2: 0.03,
        }
    }

    /// Maps an output pixel (NDC, `[-1, 1]`) to its source coordinate.
    #[must_use]
    pub fn source_ndc(&self, x: f32, y: f32) -> (f32, f32) {
        let r2 = x * x + y * y;
        let distort = 1.0 + self.k1 * r2 + self.k2 * r2 * r2;
        (x * distort + self.dx_ndc, y * distort + self.dy_ndc)
    }
}

/// A rendered foveated frame: three layers awaiting composition.
///
/// The fovea layer is native resolution over a disc; the middle layer is a
/// subsampled square of half-width `middle_radius_px` around the same
/// centre; the outer layer is a subsampled full-frame plane.
#[derive(Debug, Clone)]
pub struct FoveatedFrame {
    width: u32,
    height: u32,
    center_px: (f32, f32),
    fovea: Framebuffer,
    fovea_radius_px: f32,
    middle: Framebuffer,
    middle_radius_px: f32,
    outer: Framebuffer,
}

/// Width of the seam blend band, output pixels (the MSAA-style edge
/// anti-aliasing of Sec. 3.2).
const BLEND_BAND_PX: f32 = 4.0;

impl FoveatedFrame {
    /// Assembles a frame from its layers.
    ///
    /// # Panics
    ///
    /// Panics if the fovea buffer is not the output size, or radii are
    /// non-positive.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        width: u32,
        height: u32,
        center_px: (f32, f32),
        fovea: Framebuffer,
        fovea_radius_px: f32,
        middle: Framebuffer,
        middle_radius_px: f32,
        outer: Framebuffer,
    ) -> Self {
        assert_eq!(
            (fovea.width(), fovea.height()),
            (width, height),
            "fovea layer must be native resolution"
        );
        assert!(
            fovea_radius_px > 0.0 && middle_radius_px >= fovea_radius_px,
            "radii must be positive and ordered"
        );
        FoveatedFrame {
            width,
            height,
            center_px,
            fovea,
            fovea_radius_px,
            middle,
            middle_radius_px,
            outer,
        }
    }

    /// Output width, pixels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Output height, pixels.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Samples the composed image at output-space pixel coordinates,
    /// cross-fading between layers inside the blend band (the trilinear
    /// filter of Eq. 4: a bilinear fetch in each of two layers plus a blend).
    #[must_use]
    pub fn sample(&self, x: f32, y: f32) -> Rgba {
        let dx = x - self.center_px.0;
        let dy = y - self.center_px.1;
        let dist = (dx * dx + dy * dy).sqrt();

        // Fovea region with blend into the middle layer.
        if dist < self.fovea_radius_px + BLEND_BAND_PX {
            let fovea_px = self.fovea.sample_bilinear(x, y);
            if dist <= self.fovea_radius_px - BLEND_BAND_PX {
                return fovea_px;
            }
            let t = ((dist - (self.fovea_radius_px - BLEND_BAND_PX)) / (2.0 * BLEND_BAND_PX))
                .clamp(0.0, 1.0);
            return fovea_px.lerp(self.sample_middle_or_outer(x, y), t);
        }
        self.sample_middle_or_outer(x, y)
    }

    fn sample_middle_or_outer(&self, x: f32, y: f32) -> Rgba {
        let dx = x - self.center_px.0;
        let dy = y - self.center_px.1;
        // The middle layer covers a square (Chebyshev) region.
        let cheb = dx.abs().max(dy.abs());
        if cheb < self.middle_radius_px + BLEND_BAND_PX {
            let mid = self.sample_middle(x, y);
            if cheb <= self.middle_radius_px - BLEND_BAND_PX {
                return mid;
            }
            let t = ((cheb - (self.middle_radius_px - BLEND_BAND_PX)) / (2.0 * BLEND_BAND_PX))
                .clamp(0.0, 1.0);
            return mid.lerp(self.sample_outer(x, y), t);
        }
        self.sample_outer(x, y)
    }

    fn sample_middle(&self, x: f32, y: f32) -> Rgba {
        // Map the output-space middle square onto the middle buffer.
        let half = self.middle_radius_px;
        let u = (x - (self.center_px.0 - half)) / (2.0 * half);
        let v = (y - (self.center_px.1 - half)) / (2.0 * half);
        self.middle.sample_bilinear(
            u * (self.middle.width().saturating_sub(1)) as f32,
            v * (self.middle.height().saturating_sub(1)) as f32,
        )
    }

    fn sample_outer(&self, x: f32, y: f32) -> Rgba {
        let u = x / (self.width.saturating_sub(1)) as f32;
        let v = y / (self.height.saturating_sub(1)) as f32;
        self.outer.sample_bilinear(
            u * (self.outer.width().saturating_sub(1)) as f32,
            v * (self.outer.height().saturating_sub(1)) as f32,
        )
    }

    /// Whether an output pixel lies in a layer-boundary band (needs the
    /// trilinear path).
    #[must_use]
    pub fn is_border(&self, x: f32, y: f32) -> bool {
        let dx = x - self.center_px.0;
        let dy = y - self.center_px.1;
        let dist = (dx * dx + dy * dy).sqrt();
        let cheb = dx.abs().max(dy.abs());
        (dist - self.fovea_radius_px).abs() <= BLEND_BAND_PX
            || (cheb - self.middle_radius_px).abs() <= BLEND_BAND_PX
    }

    /// Classifies `tile_px`-sized tiles: returns `(border_tiles,
    /// total_tiles)`.
    #[must_use]
    pub fn classify_tiles(&self, tile_px: u32) -> (u64, u64) {
        let tile_px = tile_px.max(1);
        let tx = self.width.div_ceil(tile_px);
        let ty = self.height.div_ceil(tile_px);
        let mut border = 0u64;
        for j in 0..ty {
            for i in 0..tx {
                // A tile is border if any probe on a 3×3 grid inside it
                // lies in a seam band. With 32-px tiles and an 8-px blend
                // band this catches every seam crossing in practice.
                let x0 = (i * tile_px) as f32;
                let y0 = (j * tile_px) as f32;
                let x1 = ((i + 1) * tile_px - 1).min(self.width - 1) as f32;
                let y1 = ((j + 1) * tile_px - 1).min(self.height - 1) as f32;
                let mut hit = false;
                'probe: for py in 0..3 {
                    for px in 0..3 {
                        let x = x0 + (x1 - x0) * px as f32 / 2.0;
                        let y = y0 + (y1 - y0) * py as f32 / 2.0;
                        if self.is_border(x, y) {
                            hit = true;
                            break 'probe;
                        }
                    }
                }
                if hit {
                    border += 1;
                }
            }
        }
        (border, u64::from(tx) * u64::from(ty))
    }
}

/// The UCA unit: functional paths + timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uca {
    timing: UcaTiming,
}

impl Uca {
    /// Creates a unit with the published timing figures.
    #[must_use]
    pub fn new(timing: UcaTiming) -> Self {
        Uca { timing }
    }

    /// The timing model.
    #[must_use]
    pub fn timing(&self) -> &UcaTiming {
        &self.timing
    }

    /// Baseline sequential path: composition (with seam anti-aliasing) into
    /// a full-resolution buffer, then ATW resampling — two filter passes.
    #[must_use]
    pub fn compose_then_atw(frame: &FoveatedFrame, warp: &WarpParams) -> Framebuffer {
        let (w, h) = (frame.width(), frame.height());
        let mut composite = Framebuffer::new(w, h, Rgba::TRANSPARENT);
        for y in 0..h {
            for x in 0..w {
                composite.set_pixel(x, y, frame.sample(x as f32, y as f32));
            }
        }
        let mut out = Framebuffer::new(w, h, Rgba::TRANSPARENT);
        for y in 0..h {
            for x in 0..w {
                let (sx, sy) = Self::warp_px(frame, warp, x, y);
                out.set_pixel(x, y, composite.sample_bilinear(sx, sy));
            }
        }
        out
    }

    /// UCA's unified path: one pass, sampling the layer stack directly at
    /// the warped coordinate (Eq. 4's reordered trilinear filter).
    #[must_use]
    pub fn unified(frame: &FoveatedFrame, warp: &WarpParams) -> Framebuffer {
        let (w, h) = (frame.width(), frame.height());
        let mut out = Framebuffer::new(w, h, Rgba::TRANSPARENT);
        for y in 0..h {
            for x in 0..w {
                let (sx, sy) = Self::warp_px(frame, warp, x, y);
                out.set_pixel(x, y, frame.sample(sx, sy));
            }
        }
        out
    }

    /// Reconstructs a dropped frame by reprojecting the previous output
    /// (classic ATW fill-in, which UCA also provides).
    #[must_use]
    pub fn reproject_previous(previous: &Framebuffer, warp: &WarpParams) -> Framebuffer {
        let (w, h) = (previous.width(), previous.height());
        let mut out = Framebuffer::new(w, h, Rgba::TRANSPARENT);
        for y in 0..h {
            for x in 0..w {
                let ndc_x = 2.0 * (x as f32 + 0.5) / w as f32 - 1.0;
                let ndc_y = 2.0 * (y as f32 + 0.5) / h as f32 - 1.0;
                let (sx, sy) = warp.source_ndc(ndc_x, ndc_y);
                let px = (sx + 1.0) * 0.5 * w as f32 - 0.5;
                let py = (sy + 1.0) * 0.5 * h as f32 - 0.5;
                out.set_pixel(x, y, previous.sample_bilinear(px, py));
            }
        }
        out
    }

    fn warp_px(frame: &FoveatedFrame, warp: &WarpParams, x: u32, y: u32) -> (f32, f32) {
        let w = frame.width() as f32;
        let h = frame.height() as f32;
        let ndc_x = 2.0 * (x as f32 + 0.5) / w - 1.0;
        let ndc_y = 2.0 * (y as f32 + 0.5) / h - 1.0;
        let (sx, sy) = warp.source_ndc(ndc_x, ndc_y);
        ((sx + 1.0) * 0.5 * w - 0.5, (sy + 1.0) * 0.5 * h - 0.5)
    }
}

impl Default for Uca {
    fn default() -> Self {
        Uca::new(UcaTiming::default())
    }
}

impl fmt::Display for Uca {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UCA ({})", self.timing.overhead)
    }
}

/// Timing model for the UCA pass over one stereo frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UcaTiming {
    /// Published per-tile figures (532 cycles / 32×32 tile, 2 units).
    pub overhead: UcaOverhead,
    /// Relative cost of a bilinear (non-overlapping) tile vs a trilinear
    /// border tile.
    pub bilinear_cost_fraction: f64,
}

impl UcaTiming {
    /// Time to process a stereo frame where `border_fraction` of tiles need
    /// the trilinear path, ms.
    #[must_use]
    pub fn stereo_pass_ms(&self, width: u32, height: u32, border_fraction: f64) -> f64 {
        let b = border_fraction.clamp(0.0, 1.0);
        let tiles = self.overhead.tiles_per_stereo_frame(width, height) as f64;
        let cycles_border = f64::from(self.overhead.cycles_per_tile);
        let cycles_plain = cycles_border * self.bilinear_cost_fraction;
        let total_cycles = tiles * (b * cycles_border + (1.0 - b) * cycles_plain);
        total_cycles / (f64::from(self.overhead.units) * self.overhead.frequency_mhz * 1_000.0)
    }

    /// Splits the pass into the part that only needs the decoded periphery
    /// (can start before local rendering finishes) and the part that also
    /// needs the fovea layer, ms.
    ///
    /// Border tiles and fovea-interior tiles wait for the local render;
    /// everything else streams early. `fovea_area_fraction` is the fovea
    /// disc's share of the frame.
    #[must_use]
    pub fn split_ms(
        &self,
        width: u32,
        height: u32,
        border_fraction: f64,
        fovea_area_fraction: f64,
    ) -> (f64, f64) {
        let total = self.stereo_pass_ms(width, height, border_fraction);
        let late_share = (border_fraction + fovea_area_fraction).clamp(0.0, 1.0);
        (total * (1.0 - late_share), total * late_share)
    }
}

impl Default for UcaTiming {
    fn default() -> Self {
        UcaTiming {
            overhead: UcaOverhead::published(),
            bilinear_cost_fraction: 0.64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvr_gpu::Texture;

    /// Builds a small foveated frame with distinct layer content.
    fn test_frame(size: u32) -> FoveatedFrame {
        let mut fovea = Framebuffer::new(size, size, Rgba::TRANSPARENT);
        let tex = Texture::value_noise(size, 3, 0.2);
        for y in 0..size {
            for x in 0..size {
                let v = tex.fetch(i64::from(x), i64::from(y)).r();
                fovea.set_pixel(x, y, Rgba::new(v, v * 0.5 + 0.3, 0.2, 1.0));
            }
        }
        let msize = size / 2;
        let mut middle = Framebuffer::new(msize, msize, Rgba::TRANSPARENT);
        for y in 0..msize {
            for x in 0..msize {
                let v = (x + y) as f32 / (2.0 * msize as f32);
                middle.set_pixel(x, y, Rgba::new(0.2, v, 0.6, 1.0));
            }
        }
        let osize = size / 4;
        let mut outer = Framebuffer::new(osize, osize, Rgba::TRANSPARENT);
        for y in 0..osize {
            for x in 0..osize {
                let v = y as f32 / osize as f32;
                outer.set_pixel(x, y, Rgba::new(0.7, 0.2, v, 1.0));
            }
        }
        FoveatedFrame::new(
            size,
            size,
            (size as f32 / 2.0, size as f32 / 2.0),
            fovea,
            size as f32 / 6.0,
            middle,
            size as f32 / 3.0,
            outer,
        )
    }

    #[test]
    fn unified_equals_sequential_under_identity_warp() {
        let frame = test_frame(64);
        let warp = WarpParams::default();
        let seq = Uca::compose_then_atw(&frame, &warp);
        let uni = Uca::unified(&frame, &warp);
        // Identity warp: bilinear at integer coordinates is exact, so the
        // two paths agree to floating-point noise.
        assert!(
            seq.mean_abs_diff(&uni) < 1e-6,
            "diff {}",
            seq.mean_abs_diff(&uni)
        );
    }

    #[test]
    fn unified_close_to_sequential_under_real_warp() {
        // Eq. (4): the single trilinear pass replaces composition + ATW.
        // Under a non-trivial warp the sequential path filters twice, so
        // tiny differences are expected — but must stay imperceptible.
        let frame = test_frame(64);
        let warp = WarpParams {
            dx_ndc: 0.03,
            dy_ndc: -0.02,
            ..WarpParams::lens_only()
        };
        let seq = Uca::compose_then_atw(&frame, &warp);
        let uni = Uca::unified(&frame, &warp);
        let diff = seq.mean_abs_diff(&uni);
        assert!(diff < 0.02, "mean abs diff {diff}");
        assert!(uni.psnr(&seq) > 30.0, "psnr {}", uni.psnr(&seq));
    }

    #[test]
    fn fovea_interior_uses_fovea_layer() {
        let frame = test_frame(64);
        let c = frame.sample(32.0, 32.0);
        let direct = frame.fovea.sample_bilinear(32.0, 32.0);
        assert_eq!(c, direct);
    }

    #[test]
    fn far_periphery_uses_outer_layer() {
        let frame = test_frame(64);
        // A corner pixel lies outside the middle square.
        let c = frame.sample(1.0, 1.0);
        let outer_direct = frame.sample_outer(1.0, 1.0);
        assert_eq!(c, outer_direct);
    }

    #[test]
    fn border_classification_finds_both_seams() {
        let frame = test_frame(64);
        // On the fovea circle.
        assert!(frame.is_border(32.0 + 64.0 / 6.0, 32.0));
        // On the middle square edge.
        assert!(frame.is_border(32.0 + 64.0 / 3.0, 32.0));
        // Deep interior / far corner are not borders.
        assert!(!frame.is_border(32.0, 32.0));
        assert!(!frame.is_border(1.0, 1.0));
    }

    #[test]
    fn tile_classification_counts_are_plausible() {
        let frame = test_frame(128);
        let (border, total) = frame.classify_tiles(16);
        assert_eq!(total, 64);
        assert!(border > 4, "seams must cross several tiles, got {border}");
        assert!(border < total, "not every tile is a seam tile");
    }

    #[test]
    fn reprojection_shifts_content() {
        let mut prev = Framebuffer::new(32, 32, Rgba::BLACK);
        prev.set_pixel(16, 16, Rgba::WHITE);
        // Shift a quarter of the frame to the left: content moves right.
        let warp = WarpParams {
            dx_ndc: -0.5,
            ..WarpParams::default()
        };
        let out = Uca::reproject_previous(&prev, &warp);
        // The bright pixel should now be near x = 24.
        let mut best = (0, 0.0f32);
        for x in 0..32 {
            let l = out.pixel(x, 16).luma();
            if l > best.1 {
                best = (x, l);
            }
        }
        assert!(
            (22..=26).contains(&best.0),
            "content at x={} luma={}",
            best.0,
            best.1
        );
    }

    #[test]
    fn timing_matches_published_bounds() {
        let t = UcaTiming::default();
        // All-border frame = the Sec. 4.3 worst case.
        let worst = t.stereo_pass_ms(1920, 2160, 1.0);
        let published = UcaOverhead::published().stereo_frame_ms(1920, 2160);
        assert!((worst - published).abs() < 1e-9);
        // Typical frames are cheaper.
        let typical = t.stereo_pass_ms(1920, 2160, 0.2);
        assert!(typical < worst);
        assert!(typical > 0.5 * worst, "bilinear tiles still cost");
    }

    #[test]
    fn split_conserves_total() {
        let t = UcaTiming::default();
        let total = t.stereo_pass_ms(1920, 2160, 0.3);
        let (early, late) = t.split_ms(1920, 2160, 0.3, 0.2);
        assert!((early + late - total).abs() < 1e-9);
        assert!(early > 0.0 && late > 0.0);
    }

    #[test]
    #[should_panic(expected = "native resolution")]
    fn wrong_fovea_size_rejected() {
        let fovea = Framebuffer::new(16, 16, Rgba::BLACK);
        let mid = Framebuffer::new(8, 8, Rgba::BLACK);
        let out = Framebuffer::new(8, 8, Rgba::BLACK);
        let _ = FoveatedFrame::new(32, 32, (16.0, 16.0), fovea, 5.0, mid, 10.0, out);
    }
}
