//! Dynamic fleets: sessions that join and leave mid-run.
//!
//! The collaborative end-state Q-VR is pitched at is not a fixed cast of
//! headsets — multi-party VR surveys consistently find churn (participants
//! arriving late, dropping out, reconnecting) to be the norm. A
//! [`ChurnFleet`] runs an open system on the same shared substrate as
//! [`crate::fleet::Fleet`]: one engine, one server pool, one wireless
//! link — but membership follows a deterministic [`ChurnTrace`] of
//! join/leave events pinned to *virtual* time, which is why churn requires
//! [`crate::clock::SteppingPolicy::VirtualTime`] semantics (a join at 800 ms only means
//! something when the fleet has a coherent global frontier at 800 ms).
//!
//! The pieces:
//!
//! * **Traces** — explicit scripts ([`ChurnTrace::script`]) or seeded
//!   Poisson arrivals with exponential holding times
//!   ([`ChurnTrace::poisson`]); both are pure data, so a churn run is a
//!   deterministic function of `(config, trace, seed)`.
//! * **Admission-gated joins** — with an [`AdmissionPolicy`] configured,
//!   every join (the initial roster included) routes through an
//!   [`AdmissionController`] probe and can be admitted protected, degraded
//!   to best-effort, or rejected.
//! * **Reclaim on leave** — a leaver releases its [`qvr_net::LinkShare`]
//!   (the survivors' allocations renormalize) and the controller's
//!   [`AdmissionController::release`] spends the freed headroom upgrading
//!   best-effort tenants back to their requested shares.
//! * **Warm-started joiners** — a session joining a converged fleet starts
//!   its LIWC at the live tenants' mean operating eccentricity instead of
//!   the cold 5°, skipping the cold-start imbalance the crowd already
//!   paid for.
//! * **Windowed retirement** — long-running open systems retire completed
//!   engine history ([`qvr_sim::Engine::retire_before`]) so per-resource
//!   live state stays O(window) while tenants come and go.

use crate::admission::{AdmissionController, AdmissionDecision, AdmissionPolicy};
use crate::clock::FleetClock;
use crate::fleet::{session_seed, SessionSpec};
use crate::metrics::{RunSummary, SortedSamples};
use crate::sched::ServerPolicy;
use crate::schemes::{ServerPool, SystemConfig};
use crate::session::Session;
use crate::telemetry::{
    client_energy_mj, AggregateSink, LoadTracker, SinkSet, TelemetryConfig, TelemetrySink,
};
use qvr_energy::FleetEnergy;
use qvr_net::{FairnessPolicy, LinkShare, NetworkChannel, SharedChannel};
use qvr_sim::SharedEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;

/// What happens to fleet membership at one instant of virtual time.
#[derive(Debug, Clone)]
pub enum ChurnEventKind {
    /// A session arrives and (subject to admission) joins the fleet.
    /// (Boxed: a spec carries a whole app profile, and traces hold many
    /// more leave events than a spec is large.)
    Join(Box<SessionSpec>),
    /// The session with this arrival **ordinal** departs. Ordinals number
    /// every join in application order: the initial roster takes
    /// `0..initial.len()`, trace joins continue from there. Leaves aimed
    /// at rejected or already-departed ordinals are counted and ignored.
    Leave(usize),
}

/// One membership change, pinned to virtual time.
#[derive(Debug, Clone)]
pub struct ChurnEvent {
    /// Virtual time the event fires, ms.
    pub at_ms: f64,
    /// Join or leave.
    pub kind: ChurnEventKind,
}

impl ChurnEvent {
    /// A join event.
    #[must_use]
    pub fn join(at_ms: f64, spec: SessionSpec) -> Self {
        ChurnEvent {
            at_ms,
            kind: ChurnEventKind::Join(Box::new(spec)),
        }
    }

    /// A leave event for an arrival ordinal.
    #[must_use]
    pub fn leave(at_ms: f64, ordinal: usize) -> Self {
        ChurnEvent {
            at_ms,
            kind: ChurnEventKind::Leave(ordinal),
        }
    }
}

/// A deterministic sequence of join/leave events, sorted by time (stable,
/// so same-instant events keep their authored order).
#[derive(Debug, Clone, Default)]
pub struct ChurnTrace {
    events: Vec<ChurnEvent>,
}

impl ChurnTrace {
    /// An explicit script of events (sorted by time on construction;
    /// same-instant events keep their authored order).
    ///
    /// # Panics
    ///
    /// Panics if any event time is negative or non-finite.
    #[must_use]
    pub fn script(mut events: Vec<ChurnEvent>) -> Self {
        assert!(
            events.iter().all(|e| e.at_ms.is_finite() && e.at_ms >= 0.0),
            "churn event times must be finite and non-negative"
        );
        events.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms));
        ChurnTrace { events }
    }

    /// A seeded open-system trace: Poisson arrivals at `arrivals_per_s`
    /// with exponentially-distributed holding times of mean `mean_hold_ms`,
    /// generated until `horizon_ms`. `spec_of(k)` supplies the k-th
    /// arrival's spec (k counts from 0 within this trace);
    /// `first_ordinal` is the arrival ordinal the trace's first join will
    /// get at application time (the initial roster size), so generated
    /// leaves target their own joins.
    ///
    /// # Panics
    ///
    /// Panics if the rate, mean hold, or horizon is not positive-finite.
    #[must_use]
    pub fn poisson(
        seed: u64,
        arrivals_per_s: f64,
        mean_hold_ms: f64,
        horizon_ms: f64,
        first_ordinal: usize,
        mut spec_of: impl FnMut(usize) -> SessionSpec,
    ) -> Self {
        assert!(
            arrivals_per_s.is_finite() && arrivals_per_s > 0.0,
            "arrival rate must be positive"
        );
        assert!(
            mean_hold_ms.is_finite() && mean_hold_ms > 0.0,
            "mean holding time must be positive"
        );
        assert!(
            horizon_ms.is_finite() && horizon_ms > 0.0,
            "horizon must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let exp = |mean: f64, rng: &mut StdRng| -> f64 {
            let u: f64 = rng.gen_range(1e-12..1.0);
            -mean * u.ln()
        };
        let mean_interarrival_ms = 1_000.0 / arrivals_per_s;
        let mut events = Vec::new();
        let mut t = 0.0;
        let mut k = 0usize;
        loop {
            t += exp(mean_interarrival_ms, &mut rng);
            if t >= horizon_ms {
                break;
            }
            events.push(ChurnEvent::join(t, spec_of(k)));
            let hold = exp(mean_hold_ms, &mut rng);
            if t + hold < horizon_ms {
                events.push(ChurnEvent::leave(t + hold, first_ordinal + k));
            }
            k += 1;
        }
        ChurnTrace::script(events)
    }

    /// The events, in time order.
    #[must_use]
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Full description of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// The system every session runs on.
    pub system: SystemConfig,
    /// Sessions present from virtual time 0 (they route through admission
    /// like any other join when a policy is configured).
    pub initial: Vec<SessionSpec>,
    /// The membership trace.
    pub trace: ChurnTrace,
    /// Virtual time the run ends, ms: sessions stop stepping once their
    /// clock reaches it and pending events beyond it never fire.
    pub horizon_ms: f64,
    /// Fleet seed; per-session seeds derive from arrival ordinals.
    pub seed: u64,
    /// Remote GPU (and encoder) units in the shared server pool.
    pub server_units: usize,
    /// Concurrent full-rate streams on the shared link.
    pub link_streams: usize,
    /// How the shared link arbitrates its budget.
    pub fairness: FairnessPolicy,
    /// How the shared server pool places tenants' remote chains, by
    /// tenant class (see [`crate::sched::ServerPolicy`]).
    pub server_policy: ServerPolicy,
    /// SLO gate for joins (and upgrade engine for leaves); `None` admits
    /// everyone at their requested share.
    pub admission: Option<AdmissionPolicy>,
    /// Windowed engine-history retirement (see
    /// [`crate::fleet::FleetConfig::retire_window_ms`]).
    pub retire_window_ms: Option<f64>,
    /// Whether joiners warm-start their LIWC at the live fleet's mean
    /// operating eccentricity instead of the cold default.
    pub warm_start: bool,
    /// Whether an *open critical* SLO incident (see
    /// [`TelemetryConfig::with_health`]) forces joiners in on a degraded
    /// link share — the health monitor acting as a lightweight
    /// load-shedding trigger when no admission gate is configured. With an
    /// [`AdmissionPolicy`] the controller's probe governs and this flag is
    /// ignored (the monitor only observes).
    pub health_degrade: bool,
    /// Which built-in telemetry sinks stream this run's frame events
    /// (default-on). With [`TelemetryConfig::window_ms`] set, the MTP
    /// timeline streams through a [`crate::telemetry::WindowedStatsSink`] at O(window) live
    /// memory and [`ChurnSummary::samples`] stays empty — the scalable
    /// replacement for the per-run series.
    pub telemetry: TelemetryConfig,
}

impl ChurnConfig {
    /// A config over the system's full server array and a link provisioned
    /// like [`crate::fleet::FleetConfig::uniform`], equal-share, no
    /// admission gate, warm starts on, no retirement.
    #[must_use]
    pub fn new(
        system: SystemConfig,
        initial: Vec<SessionSpec>,
        trace: ChurnTrace,
        horizon_ms: f64,
        seed: u64,
    ) -> Self {
        let units = system.remote.count() as usize;
        ChurnConfig {
            system,
            initial,
            trace,
            horizon_ms,
            seed,
            server_units: units,
            link_streams: units,
            fairness: FairnessPolicy::EqualShare,
            server_policy: ServerPolicy::default(),
            admission: None,
            retire_window_ms: None,
            warm_start: true,
            health_degrade: false,
            telemetry: TelemetryConfig::default(),
        }
    }

    /// Returns a copy that streams its MTP timeline through a
    /// [`crate::telemetry::WindowedStatsSink`] at this bucket width instead of retaining the
    /// O(run) sample series.
    #[must_use]
    pub fn with_stats_window_ms(mut self, window_ms: f64) -> Self {
        self.telemetry = self.telemetry.with_window_ms(window_ms);
        self
    }

    /// Returns a copy with a server scheduling policy.
    #[must_use]
    pub fn with_server_policy(mut self, policy: ServerPolicy) -> Self {
        self.server_policy = policy;
        self
    }

    /// Returns a copy with an admission gate.
    #[must_use]
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = Some(policy);
        self
    }

    /// Returns a copy with a different fairness policy.
    #[must_use]
    pub fn with_fairness(mut self, fairness: FairnessPolicy) -> Self {
        self.fairness = fairness;
        self
    }

    /// Returns a copy with windowed engine-history retirement.
    #[must_use]
    pub fn with_retire_window_ms(mut self, window_ms: f64) -> Self {
        self.retire_window_ms = Some(window_ms);
        self
    }

    /// Returns a copy with every tenant's per-tenant rate controller
    /// configured (see [`SystemConfig::with_rate_control`]). A joiner
    /// recycling a departed tenant's slot always builds a fresh controller
    /// at the configured initial quality — rate state never leaks across
    /// occupancies.
    #[must_use]
    pub fn with_rate_control(mut self, rate_control: qvr_codec::RateControlConfig) -> Self {
        self.system = self.system.with_rate_control(rate_control);
        self
    }

    /// Returns a copy with warm starts disabled (joiners cold-start their
    /// controllers at the configured `initial_e1_deg`).
    #[must_use]
    pub fn cold_start(mut self) -> Self {
        self.warm_start = false;
        self
    }

    /// Returns a copy where an open critical health incident degrades
    /// joiners' link shares (see [`ChurnConfig::health_degrade`]); only
    /// meaningful together with [`TelemetryConfig::with_health`] rules.
    #[must_use]
    pub fn with_health_degrade(mut self) -> Self {
        self.health_degrade = true;
        self
    }
}

/// One tenant's lifecycle record in a churn run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRecord {
    /// Arrival ordinal (the id leave events target).
    pub ordinal: usize,
    /// Virtual time the session joined, ms.
    pub joined_ms: f64,
    /// Virtual time the session left, ms (the horizon for survivors).
    pub left_ms: f64,
    /// The admission verdict that let it in ([`AdmissionDecision::Admitted`]
    /// for everyone when no gate is configured).
    pub decision: AdmissionDecision,
    /// Whether a reclaim-driven upgrade later promoted it to protected.
    pub upgraded: bool,
    /// The session's run summary over its residency.
    pub summary: RunSummary,
}

impl TenantRecord {
    /// Frame rate over the tenant's *residency* (join to departure) rather
    /// than the whole run's makespan — the fair FPS for a late joiner.
    #[must_use]
    pub fn resident_fps(&self) -> f64 {
        let span = (self.left_ms - self.joined_ms).max(1e-9);
        self.summary.len() as f64 * 1_000.0 / span
    }
}

/// Aggregates of one churn run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSummary {
    /// Every tenant that ever joined, in departure order (survivors last,
    /// in arrival-ordinal order).
    pub tenants: Vec<TenantRecord>,
    /// `(display_end_ms, mtp_ms)` for every frame displayed, in step order
    /// (the raw series behind [`ChurnSummary::windowed_p95`]). **Empty**
    /// when the run streamed its timeline instead
    /// ([`ChurnConfig::with_stats_window_ms`]) — read
    /// [`ChurnSummary::windows`] there.
    pub samples: Vec<(f64, f64)>,
    /// The streamed windowed-p95 timeline `(start_ms, frames, p95_ms)`
    /// when stats streaming was configured; empty otherwise. Same bucket
    /// convention (and bit-identical values) as
    /// [`ChurnSummary::windowed_p95`] over the retained series.
    pub windows: Vec<(f64, usize, f64)>,
    /// Largest raw-sample count the streaming stats sink ever held live
    /// (0 when streaming was off) — the O(window) memory bound the
    /// bounded-memory CI job asserts.
    pub peak_open_samples: usize,
    /// The deterministic SLO incident timeline, when
    /// [`TelemetryConfig::with_health`] rules were configured; empty
    /// otherwise.
    pub incidents: Vec<crate::obs::Incident>,
    /// Fleet-level energy over the run (server pool + AP + every tenant's
    /// headset), streamed by the telemetry [`crate::telemetry::EnergyMeter`].
    pub energy: FleetEnergy,
    /// `(at_ms, live_count_after)` at every membership change.
    pub occupancy: Vec<(f64, usize)>,
    /// Join offers that were rejected at admission.
    pub rejected: usize,
    /// Join offers that came in degraded (best-effort).
    pub degraded: usize,
    /// Best-effort tenants upgraded to protected by leave-time reclaim.
    pub upgrades: usize,
    /// Leave events that fired but found no live tenant (aimed at a
    /// rejected ordinal, or a double-leave). Events beyond the horizon
    /// never fire and are not counted.
    pub dropped_leaves: usize,
    /// The run horizon, ms.
    pub horizon_ms: f64,
    /// Largest live-interval count any engine resource held (the
    /// bounded-memory claim when retirement is on).
    pub peak_live_per_resource: usize,
    /// Total tasks the engine retired over the run.
    pub retired_tasks: usize,
    /// Total tasks submitted over the run.
    pub total_tasks: usize,
}

impl ChurnSummary {
    /// Tenants that ever joined.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether nobody ever joined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Peak concurrent live sessions.
    #[must_use]
    pub fn peak_live(&self) -> usize {
        self.occupancy.iter().map(|(_, n)| *n).max().unwrap_or(0)
    }

    /// p95 motion-to-photon latency per fixed window of virtual time:
    /// `(window_start_ms, frames, p95_ms)` for each window with at least
    /// one displayed frame. This is the series that shows tails spiking at
    /// join bursts and recovering after reclaim.
    ///
    /// Buckets are uniformly **half-open**: bucket `k` covers
    /// `[k·window, (k+1)·window)`, so a sample at an interior boundary
    /// `k·window` belongs to bucket `k`, and a sample at or past
    /// `horizon_ms` (a final frame can overshoot the horizon) gets the
    /// bucket its time actually falls in — an earlier version clamped it
    /// *down* into the last pre-horizon bucket, treating the horizon
    /// boundary differently from every interior one.
    ///
    /// # Panics
    ///
    /// Panics if `window_ms` is not positive-finite.
    #[must_use]
    pub fn windowed_p95(&self, window_ms: f64) -> Vec<(f64, usize, f64)> {
        assert!(
            window_ms.is_finite() && window_ms > 0.0,
            "window must be positive"
        );
        let buckets = qvr_sim::checked::ceil_index(self.horizon_ms / window_ms).max(1);
        let mut per: Vec<Vec<f64>> = vec![Vec::new(); buckets];
        for (t, mtp) in &self.samples {
            let b = qvr_sim::checked::floor_index(t / window_ms);
            if b >= per.len() {
                per.resize(b + 1, Vec::new());
            }
            per[b].push(*mtp);
        }
        per.into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(b, v)| {
                let n = v.len();
                (b as f64 * window_ms, n, SortedSamples::new(v).p95())
            })
            .collect()
    }

    /// Live session count at a virtual time (0 before the first join).
    #[must_use]
    pub fn live_at(&self, t_ms: f64) -> usize {
        self.occupancy
            .iter()
            .take_while(|(at, _)| *at <= t_ms)
            .last()
            .map_or(0, |(_, n)| *n)
    }
}

impl fmt::Display for ChurnSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tenants over {:.0} ms (peak {} live): {} rejected, {} degraded, \
             {} upgraded, {} frames",
            self.tenants.len(),
            self.horizon_ms,
            self.peak_live(),
            self.rejected,
            self.degraded,
            self.upgrades,
            self.samples.len(),
        )
    }
}

/// One live tenant.
#[derive(Debug)]
struct Tenant {
    session: Session,
    /// The engine/clock slot this tenant occupies (recycled from departed
    /// tenants so per-session resources are O(peak concurrency)).
    slot: usize,
    joined_ms: f64,
    decision: AdmissionDecision,
    upgraded: bool,
}

/// An open fleet: the same shared substrate as [`crate::fleet::Fleet`],
/// with virtual-time stepping and a membership trace.
#[derive(Debug)]
pub struct ChurnFleet {
    system: SystemConfig,
    seed: u64,
    horizon_ms: f64,
    server_policy: ServerPolicy,
    retire_window_ms: Option<f64>,
    warm_start: bool,
    health_degrade: bool,
    engine: SharedEngine,
    server: ServerPool,
    link: SharedChannel,
    clock: FleetClock,
    /// Indexed by arrival ordinal; `None` once departed (or never
    /// admitted). Boxed so a long-running open system pays one pointer —
    /// not a whole tenant's footprint — per historical arrival.
    live: Vec<Option<Box<Tenant>>>,
    /// Departed members' link handles, reused (via
    /// [`SharedChannel::rejoin`]) by later joiners so the channel's member
    /// table stays O(peak concurrency) instead of O(total arrivals).
    free_links: Vec<SharedChannel>,
    /// Slot → current occupant's ordinal. Slots name per-session engine
    /// resources (`CPU#slot`, …) and key the clock; departed tenants'
    /// slots are recycled so the engine's resource table — like the link's
    /// member table — stays O(peak concurrency). Per-tenant accounting
    /// survives reuse because each rig baselines its resources' busy time
    /// at build ([`crate::schemes::Rig`]).
    slots: Vec<Option<usize>>,
    /// Recyclable slots of departed tenants (LIFO, deterministic).
    free_slots: Vec<usize>,
    /// Current live tenant count (maintained so membership queries don't
    /// rescan the full arrival history).
    live_now: usize,
    /// Roster order of the admission controller ↔ live ordinals (kept in
    /// lock-step with the controller's `accepted` list).
    roster_ordinals: Vec<usize>,
    controller: Option<AdmissionController>,
    pending: VecDeque<ChurnEvent>,
    /// The telemetry fan-out every frame event streams through.
    sinks: SinkSet,
    /// The measured-load handle placement directives read
    /// (`sinks.load()`, kept here so joins can reset recycled slots).
    load: LoadTracker,
    /// Whether the MTP timeline streams through the windowed sink (the
    /// sample series then stays empty).
    stream_stats: bool,
    // --- outputs under construction ---
    finished: Vec<TenantRecord>,
    samples: Vec<(f64, f64)>,
    occupancy: Vec<(f64, usize)>,
    rejected: usize,
    degraded: usize,
    upgrades: usize,
    dropped_leaves: usize,
    peak_live_per_resource: usize,
    /// The retirement frontier of the last `retire_before` call (batches
    /// retirement so it doesn't scan resources every step).
    last_retire_ms: f64,
}

impl ChurnFleet {
    /// Builds the open fleet; membership starts empty and the initial
    /// roster joins as events at virtual time 0.
    ///
    /// # Panics
    ///
    /// Panics if the horizon is not positive-finite or a capacity is zero.
    #[must_use]
    pub fn new(config: ChurnConfig) -> Self {
        assert!(
            config.horizon_ms.is_finite() && config.horizon_ms > 0.0,
            "a churn run needs a positive horizon"
        );
        assert!(
            config.server_units > 0,
            "the server pool needs at least one unit"
        );
        assert!(
            config.link_streams > 0,
            "the link needs at least one stream"
        );
        config.server_policy.validate(config.server_units);
        let engine = SharedEngine::new();
        let server = ServerPool::on(&engine, config.server_units);
        let link = SharedChannel::new(NetworkChannel::new(config.system.network, config.seed));
        link.set_policy(config.fairness);
        link.set_concurrent_streams(config.link_streams);
        let controller = config.admission.map(|policy| {
            AdmissionController::with_capacity(
                config.system,
                config.fairness,
                policy,
                config.seed,
                config.server_units,
                config.link_streams,
            )
            .with_server_policy(config.server_policy)
        });
        let mut pending: VecDeque<ChurnEvent> = config
            .initial
            .into_iter()
            .map(|spec| ChurnEvent::join(0.0, spec))
            .collect();
        pending.extend(config.trace.events.iter().cloned());
        let sinks = SinkSet::from_config(
            &config.telemetry,
            &config.system,
            config.server_units,
            false, // churn has its own summary shape; no aggregate stream
        );
        let load = sinks.load();
        let stream_stats = config.telemetry.window_ms.is_some();
        ChurnFleet {
            system: config.system,
            seed: config.seed,
            horizon_ms: config.horizon_ms,
            server_policy: config.server_policy,
            retire_window_ms: config.retire_window_ms,
            warm_start: config.warm_start,
            health_degrade: config.health_degrade,
            engine,
            server,
            link,
            clock: FleetClock::new(),
            live: Vec::new(),
            free_links: Vec::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            live_now: 0,
            roster_ordinals: Vec::new(),
            controller,
            pending,
            sinks,
            load,
            stream_stats,
            finished: Vec::new(),
            samples: Vec::new(),
            occupancy: Vec::new(),
            rejected: 0,
            degraded: 0,
            upgrades: 0,
            dropped_leaves: 0,
            peak_live_per_resource: 0,
            last_retire_ms: 0.0,
        }
    }

    /// Live session count.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live_now
    }

    /// The globally-earliest unfinished session's virtual time, if any.
    #[must_use]
    pub fn frontier_ms(&mut self) -> Option<f64> {
        self.clock.peek().map(|(_, t)| t)
    }

    /// A handle to the engine (for retention inspection).
    #[must_use]
    pub fn shared_engine(&self) -> SharedEngine {
        self.engine.clone()
    }

    /// Advances the run by one unit of work — either the next due
    /// membership event or one frame of the earliest session — and returns
    /// whether anything remains to do.
    pub fn tick(&mut self) -> bool {
        let frontier = self.clock.peek();
        let due = match (self.pending.front(), frontier) {
            // Events fire once the global frontier passes them (or
            // immediately while nobody is live to advance the frontier).
            (Some(e), None) => e.at_ms < self.horizon_ms,
            (Some(e), Some((_, tf))) => e.at_ms <= tf && e.at_ms < self.horizon_ms,
            (None, _) => false,
        };
        if due {
            let event = self.pending.pop_front().expect("checked above");
            self.apply(event);
            return true;
        }
        let Some((slot, at)) = frontier else {
            // Nobody live: events at/after the horizon can never fire —
            // discard them (they are not "dropped leaves": those are
            // leaves that *fired* and found no live tenant).
            return if self.pending.pop_front().is_some() {
                !self.pending.is_empty()
            } else {
                false
            };
        };
        if at >= self.horizon_ms {
            // Every live session has simulated up to the horizon.
            return false;
        }
        self.clock.pop();
        let ordinal = self.slots[slot].expect("scheduled slots are occupied");
        let tenant = self.live[ordinal]
            .as_mut()
            .expect("occupied slots map to live tenants");
        let event = tenant.session.step();
        self.sinks.emit(&event);
        let t = event.end_ms;
        if !self.stream_stats {
            self.samples.push((t, event.mtp_ms));
        }
        if t < self.horizon_ms {
            self.clock.schedule(slot, t);
        }
        if let Some(window) = self.retire_window_ms {
            if let Some((_, f)) = self.clock.peek() {
                // Retire in batches of a quarter-window: per-resource live
                // state only grows between retirements, so sampling the
                // peak just before each retire (plus once at finish) sees
                // every maximum — no per-step O(resources) scan needed.
                if f - window > self.last_retire_ms + 0.25 * window {
                    self.peak_live_per_resource = self
                        .peak_live_per_resource
                        .max(self.engine.max_live_intervals());
                    self.last_retire_ms = f - window;
                    self.engine.retire_before(self.last_retire_ms);
                }
            }
        }
        if self.stream_stats || self.sinks.health.is_some() {
            // Close streamed stat buckets (and health windows) no future
            // sample can reach: a future frame ends after its session's
            // clock (≥ the heap frontier), and a future *joiner*'s first
            // frame ends after its join event's time — so the safe frontier
            // is the earlier of the clock head and the next pending
            // membership event.
            let frontier = self.clock.peek().map(|(_, f)| f);
            let pending_at = self.pending.front().map(|e| e.at_ms);
            let safe = match (frontier, pending_at) {
                (Some(f), Some(p)) => Some(f.min(p)),
                (Some(f), None) => Some(f),
                (None, p) => p,
            };
            if let Some(t) = safe {
                self.sinks.close_windows_before(t);
            }
        }
        true
    }

    /// Attaches a custom telemetry sink (receives every frame event from
    /// now on).
    pub fn attach_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.sinks.attach(sink);
    }

    /// Applies one membership event.
    fn apply(&mut self, event: ChurnEvent) {
        match event.kind {
            ChurnEventKind::Join(spec) => self.join(event.at_ms, *spec),
            ChurnEventKind::Leave(ordinal) => self.leave(event.at_ms, ordinal),
        }
    }

    /// The live fleet's mean operating eccentricity (the warm-start seed).
    /// Iterates occupied slots — O(peak concurrency), not total arrivals.
    fn warm_e1(&self) -> Option<f64> {
        let es: Vec<f64> = self
            .slots
            .iter()
            .flatten()
            .filter_map(|ordinal| self.live[*ordinal].as_ref())
            .filter_map(|t| t.session.last_e1_deg())
            .collect();
        (!es.is_empty()).then(|| es.iter().sum::<f64>() / es.len() as f64)
    }

    fn join(&mut self, at_ms: f64, spec: SessionSpec) {
        let ordinal = self.live.len();
        // Admission gate: the probe decides the class and the share.
        let (decision, spec) = match &mut self.controller {
            Some(c) => {
                let decision = c.offer(spec);
                if decision == AdmissionDecision::Rejected {
                    self.rejected += 1;
                    self.live.push(None);
                    return;
                }
                if decision == AdmissionDecision::Degraded {
                    self.degraded += 1;
                }
                self.roster_ordinals.push(ordinal);
                (decision, c.admitted().last().expect("just joined").clone())
            }
            None => {
                // Health-driven load shedding: with no admission gate, an
                // open critical SLO incident forces the joiner in on a
                // quarter link share (it still joins — the monitor can
                // only degrade, never reject).
                if self.health_degrade && self.sinks.health_open_critical() {
                    self.degraded += 1;
                    (
                        AdmissionDecision::Degraded,
                        spec.with_share(LinkShare::weighted(0.25)),
                    )
                } else {
                    (AdmissionDecision::Admitted, spec)
                }
            }
        };
        let seed = session_seed(self.seed, ordinal);
        let channel = if spec.scheme.uses_network() {
            // Reuse a departed member's slot when one is free, so the
            // channel's member table is bounded by peak concurrency even
            // when the run churns through arbitrarily many arrivals.
            match self.free_links.pop() {
                Some(handle) => {
                    handle.rejoin(spec.share);
                    handle
                }
                None => self.link.join(spec.share),
            }
        } else {
            // Non-streaming tenants get a private channel — a clone of the
            // shared handle would let future link touches mutate the
            // shared RNG/ACK state without membership (see `Fleet::new`).
            SharedChannel::new(NetworkChannel::new(self.system.network, seed))
        };
        // Warm start: begin at the crowd's operating point instead of the
        // cold default (only meaningful for adaptive-controller schemes).
        let mut system = self.system;
        if self.warm_start {
            if let Some(e1) = self.warm_e1() {
                system.initial_e1_deg = e1;
            }
        }
        // Recycle a departed tenant's engine/clock slot when one is free
        // (the rig baselines the reused resources' busy time, and the join
        // gate pins their frontiers to the join instant).
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s] = Some(ordinal);
                s
            }
            None => {
                self.slots.push(Some(ordinal));
                self.slots.len() - 1
            }
        };
        // A recycled slot must not inherit its predecessor's measured-load
        // profile: the joiner starts unmeasured (presumed light).
        self.load.reset(slot);
        let directive = self.server_policy.directive(
            spec.scheme.tenant_class(),
            self.server.units(),
            slot,
            &self.load,
        );
        let mut session = Session::in_fleet(
            spec.scheme,
            &system,
            spec.profile.clone(),
            seed,
            self.engine.clone(),
            channel,
            self.server,
            slot,
            directive,
        );
        session.gate_at(at_ms);
        self.live.push(Some(Box::new(Tenant {
            session,
            slot,
            joined_ms: at_ms,
            decision,
            upgraded: false,
        })));
        self.live_now += 1;
        self.clock.schedule(slot, at_ms);
        self.occupancy.push((at_ms, self.live_count()));
    }

    fn leave(&mut self, at_ms: f64, ordinal: usize) {
        let Some(tenant) = self
            .live
            .get_mut(ordinal)
            .and_then(std::option::Option::take)
        else {
            self.dropped_leaves += 1;
            return;
        };
        self.live_now -= 1;
        self.clock.remove(tenant.slot);
        self.slots[tenant.slot] = None;
        self.free_slots.push(tenant.slot);
        let handle = tenant.session.channel_handle();
        tenant.session.release_link();
        if handle.member().is_some() {
            // Bank the vacated member slot for the next joiner.
            self.free_links.push(handle);
        }
        // The leaver may have simulated slightly past the event time
        // before the global frontier caught up and fired the leave; its
        // residency closes at its actual last display so resident_fps and
        // the sample timeline stay consistent with the recorded frames.
        let left_ms = at_ms.max(tenant.session.last_display_end());
        self.finished.push(TenantRecord {
            ordinal,
            joined_ms: tenant.joined_ms,
            left_ms,
            decision: tenant.decision,
            upgraded: tenant.upgraded,
            summary: tenant.session.finish(),
        });
        self.occupancy.push((at_ms, self.live_count()));
        // Reclaim: release through the admission controller and apply any
        // best-effort upgrades it wins back to the live sessions.
        if let Some(controller) = &mut self.controller {
            let roster_idx = self
                .roster_ordinals
                .iter()
                .position(|o| *o == ordinal)
                .expect("admitted tenants are on the roster");
            self.roster_ordinals.remove(roster_idx);
            for i in controller.release(roster_idx) {
                let o = self.roster_ordinals[i];
                let share = controller.admitted()[i].share;
                if let Some(t) = &mut self.live[o] {
                    t.session.set_link_share(share);
                    t.upgraded = true;
                    self.upgrades += 1;
                }
            }
        }
    }

    /// Runs the remaining work and finalises.
    #[must_use]
    pub fn finish(mut self) -> ChurnSummary {
        while self.tick() {}
        let total_tasks = self.engine.task_count();
        let retired_tasks = self.engine.retired_tasks();
        let peak = self
            .peak_live_per_resource
            .max(self.engine.max_live_intervals());
        let mut tenants = self.finished;
        // Survivors retire at the horizon (or their final display, if the
        // last frame overshot it), in arrival-ordinal order.
        for (ordinal, entry) in self.live.into_iter().enumerate() {
            if let Some(tenant) = entry {
                tenant.session.release_link();
                tenants.push(TenantRecord {
                    ordinal,
                    joined_ms: tenant.joined_ms,
                    left_ms: self.horizon_ms.max(tenant.session.last_display_end()),
                    decision: tenant.decision,
                    upgraded: tenant.upgraded,
                    summary: tenant.session.finish(),
                });
            }
        }
        let energy = self.sinks.energy_finalize(
            self.engine.makespan(),
            client_energy_mj(tenants.iter().map(|t| &t.summary.energy)),
        );
        let (windows, peak_open_samples) = self.sinks.windowed_finish();
        let incidents = self.sinks.health_finish();
        ChurnSummary {
            tenants,
            samples: self.samples,
            windows,
            peak_open_samples,
            incidents,
            energy,
            occupancy: self.occupancy,
            rejected: self.rejected,
            degraded: self.degraded,
            upgrades: self.upgrades,
            dropped_leaves: self.dropped_leaves,
            horizon_ms: self.horizon_ms,
            peak_live_per_resource: peak,
            retired_tasks,
            total_tasks,
        }
    }

    /// Builds, runs, and finalises one churn fleet.
    #[must_use]
    pub fn run(config: ChurnConfig) -> ChurnSummary {
        ChurnFleet::new(config).finish()
    }

    /// Switches the aggregate stream on, so this churn fleet can finalise
    /// into the same sink-state bundle a fleet cell ships
    /// ([`ChurnFleet::finish_cell`]). Must be called before any frame has
    /// been stepped — a late-enabled sink would have missed events and the
    /// cross-cell merge would silently under-count.
    ///
    /// # Panics
    ///
    /// Panics if any frame event has already streamed.
    pub fn enable_cell_sinks(&mut self) {
        assert!(
            self.samples.is_empty() && self.engine.task_count() == 0,
            "cell sinks must be enabled before the first frame"
        );
        self.sinks.aggregate = Some(AggregateSink::new());
    }

    /// Runs the remaining work and finalises into the shard-cell bundle
    /// (see [`crate::shard`] and [`crate::fleet::Fleet::finish_cell`]):
    /// sink states plus scalar schedule facts, never retained frame
    /// histories. Requires [`ChurnFleet::enable_cell_sinks`] at
    /// construction time; configure deferred windows
    /// ([`TelemetryConfig::with_deferred_windows`]) if the windowed
    /// timeline should survive the merge.
    ///
    /// # Panics
    ///
    /// Panics if the aggregate stream was never enabled.
    #[must_use]
    pub fn finish_cell(mut self, cell: usize) -> crate::shard::CellSummary {
        while self.tick() {}
        let makespan_ms = self.engine.makespan();
        let server_units = self.server.units();
        let server_busy_ms = self.engine.pool_busy_ms(self.server.rgpu());
        let peak_live_tasks = self
            .peak_live_per_resource
            .max(self.engine.max_live_intervals());
        // Tenant energies in the same order `finish` records them
        // (departed in leave order, then survivors by arrival ordinal), so
        // the client sum is bit-identical to the ChurnSummary path. The
        // finalised summaries themselves — the frame histories — are
        // dropped on this side of the seam.
        let mut energies: Vec<qvr_energy::EnergyBreakdown> =
            self.finished.iter().map(|t| t.summary.energy).collect();
        for tenant in std::mem::take(&mut self.live).into_iter().flatten() {
            tenant.session.release_link();
            energies.push(tenant.session.finish().energy);
        }
        let sessions = energies.len();
        let energy = self
            .sinks
            .energy_finalize(makespan_ms, client_energy_mj(energies.iter()));
        let aggregate = self
            .sinks
            .aggregate
            .take()
            .expect("churn cells stream aggregates (ChurnFleet::enable_cell_sinks)");
        crate::shard::CellSummary {
            cell,
            sessions,
            frames: aggregate.frames(),
            makespan_ms,
            server_units,
            server_busy_ms,
            aggregate,
            windowed: self.sinks.windowed.take(),
            energy,
            load: self.sinks.load.snapshot(),
            peak_live_tasks,
            metrics: self.sinks.metrics.take(),
            incidents: self.sinks.health_finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::SchemeKind;
    use qvr_scene::Benchmark;

    fn spec() -> SessionSpec {
        SessionSpec::new(SchemeKind::Qvr, Benchmark::Hl2H.profile())
    }

    #[test]
    fn scripted_join_and_leave_shape_the_roster() {
        let trace = ChurnTrace::script(vec![
            ChurnEvent::join(120.0, spec()),
            ChurnEvent::leave(260.0, 0),
        ]);
        let s = ChurnFleet::run(ChurnConfig::new(
            SystemConfig::default(),
            vec![spec(), spec()],
            trace,
            500.0,
            7,
        ));
        assert_eq!(s.len(), 3, "two initial + one joiner");
        assert_eq!(s.peak_live(), 3);
        assert_eq!(s.live_at(0.0), 2);
        assert_eq!(s.live_at(200.0), 3);
        assert_eq!(s.live_at(400.0), 2);
        // The departed tenant is ordinal 0; it left at 260 ms plus at most
        // the slight overshoot of its final frame past the event time.
        let departed = &s.tenants[0];
        assert_eq!(departed.ordinal, 0);
        assert!(departed.left_ms >= 260.0);
        assert!(departed.left_ms < 320.0, "left at {:.1}", departed.left_ms);
        assert!(!departed.summary.is_empty());
        assert!(departed.resident_fps() > 0.0);
        // Survivors ran to (at least) the horizon.
        for t in &s.tenants[1..] {
            assert!(t.left_ms >= 500.0);
        }
        assert!(s.to_string().contains("3 tenants"));
    }

    #[test]
    fn joiners_start_at_their_join_time() {
        let trace = ChurnTrace::script(vec![ChurnEvent::join(300.0, spec())]);
        let s = ChurnFleet::run(ChurnConfig::new(
            SystemConfig::default(),
            vec![spec()],
            trace,
            600.0,
            9,
        ));
        let joiner = s.tenants.iter().find(|t| t.ordinal == 1).expect("joined");
        assert!((joiner.joined_ms - 300.0).abs() < 1e-9);
        // Every sample this tenant produced lies after its join: its first
        // display cannot precede the join gate.
        let first_frame_ms = joiner.summary.makespan_ms;
        assert!(
            first_frame_ms >= 300.0,
            "joiner's clock must start at its join time, got {first_frame_ms:.1}"
        );
    }

    #[test]
    fn churn_runs_are_deterministic() {
        let make = || {
            let trace = ChurnTrace::poisson(5, 4.0, 400.0, 1_000.0, 2, |_| spec());
            ChurnConfig::new(
                SystemConfig::default(),
                vec![spec(), spec()],
                trace,
                1_000.0,
                11,
            )
        };
        let a = ChurnFleet::run(make());
        let b = ChurnFleet::run(make());
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn poisson_traces_are_deterministic_and_ordered() {
        let t1 = ChurnTrace::poisson(3, 10.0, 300.0, 2_000.0, 0, |_| spec());
        let t2 = ChurnTrace::poisson(3, 10.0, 300.0, 2_000.0, 0, |_| spec());
        assert_eq!(t1.len(), t2.len());
        assert!(!t1.is_empty());
        for (a, b) in t1.events().iter().zip(t2.events()) {
            assert_eq!(a.at_ms, b.at_ms);
        }
        for w in t1.events().windows(2) {
            assert!(w[0].at_ms <= w[1].at_ms, "events must be time-sorted");
        }
        let different = ChurnTrace::poisson(4, 10.0, 300.0, 2_000.0, 0, |_| spec());
        assert!(
            t1.events()
                .iter()
                .zip(different.events())
                .any(|(a, b)| a.at_ms != b.at_ms),
            "different seeds must give different traces"
        );
    }

    #[test]
    fn departed_slots_are_recycled_by_later_joiners() {
        // Open-system boundedness: churning K tenants through 2 concurrent
        // seats must not grow the engine's resource table (or the link's
        // member table) beyond peak concurrency — joiners recycle departed
        // tenants' slots.
        let mut events = Vec::new();
        for k in 0..6 {
            let t = 150.0 + 100.0 * f64::from(k);
            events.push(ChurnEvent::leave(t, k as usize));
            events.push(ChurnEvent::join(t + 5.0, spec()));
        }
        let fleet = ChurnFleet::new(ChurnConfig::new(
            SystemConfig::default(),
            vec![spec(), spec()],
            ChurnTrace::script(events),
            900.0,
            31,
        ));
        let engine = fleet.shared_engine();
        let summary = fleet.finish();
        assert_eq!(summary.len(), 8, "2 initial + 6 churned joiners");
        assert_eq!(summary.peak_live(), 2, "never more than 2 concurrent");
        // 7 per-session resources × 2 slots, plus the shared server pools
        // (8 RGPU + 8 SENC with default units) — NOT 7 × 8 sessions.
        let per_session = 7 * 2;
        let shared = engine.resource_count() - per_session;
        assert!(
            shared <= 16,
            "resource table must stay O(peak): {} total, {} non-session",
            engine.resource_count(),
            shared
        );
        // Departed tenants' energy stays per-tenant despite slot reuse:
        // every tenant ran ~the same residency, so no summary's radio
        // energy may dwarf another's (it would if busy times accumulated
        // across slot generations).
        let radios: Vec<f64> = summary
            .tenants
            .iter()
            .map(|t| t.summary.busy.radio_ms)
            .collect();
        let max = radios.iter().copied().fold(0.0f64, f64::max);
        let min = radios.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            max < 6.0 * min.max(1e-9),
            "slot reuse must not leak busy time across tenants: {radios:?}"
        );
    }

    #[test]
    fn windowed_p95_buckets_are_uniformly_half_open() {
        // Interval convention: bucket k covers [k·w, (k+1)·w). A sample at
        // an interior boundary k·w lands in bucket k, and a sample at
        // exactly the horizon (or past it — final frames can overshoot)
        // lands in the bucket its time falls in, never clamped down.
        let summary = ChurnSummary {
            tenants: Vec::new(),
            samples: vec![
                (0.0, 10.0),   // bucket 0 start
                (99.9, 11.0),  // bucket 0 interior
                (100.0, 20.0), // interior boundary → bucket 1, not 0
                (300.0, 30.0), // exactly the horizon → bucket 3, not 2
                (310.0, 31.0), // overshoot past the horizon → bucket 3
            ],
            windows: Vec::new(),
            peak_open_samples: 0,
            incidents: Vec::new(),
            energy: FleetEnergy::default(),
            occupancy: Vec::new(),
            rejected: 0,
            degraded: 0,
            upgrades: 0,
            dropped_leaves: 0,
            horizon_ms: 300.0,
            peak_live_per_resource: 0,
            retired_tasks: 0,
            total_tasks: 0,
        };
        let windows = summary.windowed_p95(100.0);
        let starts: Vec<f64> = windows.iter().map(|(s, _, _)| *s).collect();
        assert_eq!(starts, vec![0.0, 100.0, 300.0], "bucket 2 is empty");
        let counts: Vec<usize> = windows.iter().map(|(_, n, _)| *n).collect();
        assert_eq!(counts, vec![2, 1, 2]);
        let (_, _, p95_boundary) = windows[1];
        assert_eq!(
            p95_boundary, 20.0,
            "the interior-boundary sample belongs to its own bucket"
        );
    }

    #[test]
    fn streamed_windows_match_the_retained_series_bit_for_bit() {
        // The WindowedStatsSink replaces the O(run) sample series: the same
        // churn run with streaming on must produce exactly the timeline the
        // retained series derives post hoc, while holding no sample vector
        // and only O(window) live stats memory.
        let window_ms = 120.0;
        let make = || {
            let trace = ChurnTrace::script(vec![
                ChurnEvent::join(150.0, spec()),
                ChurnEvent::leave(420.0, 0),
                ChurnEvent::join(500.0, spec()),
            ]);
            ChurnConfig::new(
                SystemConfig::default(),
                vec![spec(), spec()],
                trace,
                900.0,
                19,
            )
        };
        let retained = ChurnFleet::run(make());
        let streamed = ChurnFleet::run(make().with_stats_window_ms(window_ms));
        assert!(streamed.samples.is_empty(), "streaming retains no series");
        assert!(!retained.samples.is_empty());
        let post_hoc = retained.windowed_p95(window_ms);
        assert_eq!(
            streamed.windows, post_hoc,
            "streamed timeline must match the post-hoc derivation exactly"
        );
        assert!(streamed.peak_open_samples > 0);
        assert!(
            streamed.peak_open_samples < retained.samples.len(),
            "live stats memory must undercut the retained series: {} vs {}",
            streamed.peak_open_samples,
            retained.samples.len()
        );
        // Everything else about the run is unaffected by how stats stream.
        assert_eq!(streamed.tenants, retained.tenants);
        assert_eq!(streamed.occupancy, retained.occupancy);
        assert_eq!(streamed.energy, retained.energy);
    }

    #[test]
    fn churn_energy_covers_servers_ap_and_clients() {
        let s = ChurnFleet::run(ChurnConfig::new(
            SystemConfig::default(),
            vec![spec(), spec()],
            ChurnTrace::default(),
            500.0,
            3,
        ));
        assert!(s.energy.server_render_mj > 0.0);
        assert!(s.energy.ap_radio_mj > 0.0);
        let client: f64 = s.tenants.iter().map(|t| t.summary.energy.total_mj()).sum();
        assert_eq!(s.energy.client_mj, client);
        assert!(s.energy.total_mj() > s.energy.client_mj);
    }

    #[test]
    fn leave_on_a_rejected_or_gone_ordinal_is_counted_not_fatal() {
        let trace = ChurnTrace::script(vec![
            ChurnEvent::leave(50.0, 0),
            ChurnEvent::leave(100.0, 0),
            ChurnEvent::leave(150.0, 7),
        ]);
        let s = ChurnFleet::run(ChurnConfig::new(
            SystemConfig::default(),
            vec![spec()],
            trace,
            400.0,
            13,
        ));
        assert_eq!(s.dropped_leaves, 2, "double-leave and unknown ordinal");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn warm_started_joiners_skip_the_cold_start() {
        // A joiner into a converged fleet: warm-started LIWC must begin
        // near the crowd's operating eccentricity, so its first frames are
        // far less imbalanced than a cold joiner's.
        let run = |warm: bool| {
            let trace = ChurnTrace::script(vec![ChurnEvent::join(700.0, spec())]);
            let mut config = ChurnConfig::new(
                SystemConfig::default(),
                vec![spec(), spec()],
                trace,
                1_200.0,
                17,
            );
            if !warm {
                config = config.cold_start();
            }
            ChurnFleet::run(config)
        };
        let warm = run(true);
        let cold = run(false);
        let first_e1 = |s: &ChurnSummary| {
            s.tenants
                .iter()
                .find(|t| t.ordinal == 2)
                .and_then(|t| t.summary.frames.first().and_then(|f| f.e1_deg))
                .expect("joiner's first frame has an eccentricity")
        };
        let (we1, ce1) = (first_e1(&warm), first_e1(&cold));
        // (The very first select already refines off the start point, so
        // compare the two starts rather than pinning the cold value.)
        assert!(
            we1 > ce1 + 2.0,
            "warm joiner must start near the converged fovea: {we1:.1}° vs cold {ce1:.1}°"
        );
    }
}
