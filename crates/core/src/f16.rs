//! IEEE 754 half-precision storage for the LIWC mapping table.
//!
//! Sec. 4.3: "We use a 16 bit half-precision floating-point number to
//! represent the latency gradient offset." Storing gradients through a real
//! f16 round-trip keeps the quantisation behaviour of the hardware table in
//! the model.

use std::fmt;

/// A value stored in IEEE 754 binary16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);

    /// Encodes an `f32` to binary16 (round-to-nearest-even on the mantissa,
    /// clamping to ±infinity on overflow).
    #[must_use]
    pub fn from_f32(v: f32) -> Self {
        let bits = v.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mantissa = bits & 0x7F_FFFF;

        if exp == 0xFF {
            // Inf / NaN.
            let payload: u16 = if mantissa != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | payload);
        }
        // Re-bias from 127 to 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            return F16(sign | 0x7C00); // overflow to infinity
        }
        if unbiased >= -14 {
            // Normal half.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let half_man = (mantissa >> 13) as u16;
            // Round to nearest (ties away, adequate for table storage).
            let round = ((mantissa >> 12) & 1) as u16;
            return F16((sign | half_exp | half_man).wrapping_add(round));
        }
        if unbiased >= -24 {
            // Subnormal half: value = man_half × 2⁻²⁴, so
            // man_half = 1.m × 2^(unbiased+24) = (implicit-one mantissa) >> (−1 − unbiased).
            let shift = (-1 - unbiased) as u32;
            let man = (mantissa | 0x80_0000) >> shift;
            return F16(sign | man as u16);
        }
        F16(sign) // underflow to zero
    }

    /// Decodes to `f32`.
    #[must_use]
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 & 0x8000) << 16;
        let exp = u32::from(self.0 >> 10) & 0x1F;
        let man = u32::from(self.0) & 0x3FF;
        let bits = match (exp, man) {
            (0, 0) => sign,
            (0, m) => {
                // Subnormal: value = m × 2⁻²⁴ = 1.f × 2^(p−24) where p is
                // the MSB position of the 10-bit field.
                let p = 31 - m.leading_zeros();
                let exp32 = 127 + p - 24;
                let man32 = (m ^ (1 << p)) << (23 - p);
                sign | (exp32 << 23) | man32
            }
            (0x1F, 0) => sign | 0x7F80_0000,
            (0x1F, m) => sign | 0x7F80_0000 | (m << 13),
            (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
        };
        f32::from_bits(bits)
    }

    /// The raw storage bits.
    #[must_use]
    pub fn bits(self) -> u16 {
        self.0
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_sign() {
        assert_eq!(F16::from_f32(0.0).to_f32(), 0.0);
        assert_eq!(F16::from_f32(-0.0).bits(), 0x8000);
        assert_eq!(F16::ZERO.to_f32(), 0.0);
    }

    #[test]
    fn exact_small_values_roundtrip() {
        for v in [1.0f32, -1.0, 0.5, 2.0, -3.5, 0.25, 1024.0] {
            assert_eq!(F16::from_f32(v).to_f32(), v, "{v}");
        }
    }

    #[test]
    fn precision_within_half_ulp() {
        // Gradients live in roughly [-10, 10] ms/deg; binary16 has ~3
        // decimal digits there.
        for i in 0..1000 {
            let v = -10.0 + 0.02 * i as f32;
            let q = F16::from_f32(v).to_f32();
            assert!((q - v).abs() <= 0.01_f32.max(v.abs() * 0.001), "{v} -> {q}");
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32(1e9).to_f32().is_infinite());
        assert!(F16::from_f32(-1e9).to_f32().is_infinite());
        assert!(
            F16::from_f32(65504.0).to_f32().is_finite(),
            "max half is finite"
        );
    }

    #[test]
    fn underflow_flushes_to_zero() {
        assert_eq!(F16::from_f32(1e-12).to_f32(), 0.0);
    }

    #[test]
    fn subnormals_roundtrip_approximately() {
        let v = 3.0e-5f32; // subnormal in half precision
        let q = F16::from_f32(v).to_f32();
        assert!((q - v).abs() / v < 0.05, "{v} -> {q}");
    }

    #[test]
    fn nan_stays_nan() {
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn quantisation_is_idempotent() {
        for v in [0.123f32, -7.77, 42.42, 1e-3] {
            let once = F16::from_f32(v).to_f32();
            let twice = F16::from_f32(once).to_f32();
            assert_eq!(once, twice, "{v}");
        }
    }
}
