//! Q-VR: software–hardware co-designed collaborative mobile VR rendering.
//!
//! This crate is the paper's primary contribution (Xie et al., ASPLOS
//! 2021), built on the substrate crates of this workspace:
//!
//! * [`liwc`] — the **Lightweight Interaction-aware Workload Controller**
//!   (Sec. 4.1): a Q-learning-flavoured accelerator that picks the per-frame
//!   fovea eccentricity `e1` from quantised motion deltas and a 2¹⁵-entry
//!   f16 gradient table, using *intermediate hardware data* (triangle count
//!   at setup, ACK-observed network throughput) so the decision lands before
//!   rendering completes.
//! * [`uca`] — the **Unified Composition and ATW** unit (Sec. 4.2): the
//!   algebraic fusion of foveated composition and asynchronous timewarp into
//!   one trilinear filtering pass (Eq. 4), implemented both functionally
//!   (on real framebuffers, with the equivalence property tested) and as a
//!   timing/contention model.
//! * [`foveation`] — the software framework of Fig. 7: layer channels,
//!   VRS-quantised layer rates, periphery quality, and the render-graph
//!   configuration the client and server exchange.
//! * [`schemes`] — per-frame pipeline steppers for every design point the
//!   evaluation compares: local-only, remote-only, static collaborative,
//!   FFR, DFR, software-only Q-VR, and full Q-VR.
//! * [`session`] — first-class sessions: one user, one app, one scheme,
//!   steppable frame by frame on private or shared resources.
//! * [`fleet`] — the multi-tenant session engine: N sessions round-robin on
//!   one shared server pool and one shared wireless channel, with
//!   fleet-level tail-latency/FPS/utilisation aggregates and pluggable
//!   link-fairness policies (equal-share / weighted / airtime).
//! * [`admission`] — SLO admission control: probe-based accept / degrade /
//!   reject of joining sessions against p95-MTP, FPS-floor, and
//!   pool-utilization targets.
//! * [`sched`] — server-side GPU scheduling policies for heterogeneous
//!   fleets: class-aware unit placement (least-loaded / quota-partition /
//!   adaptive-priority) isolating adaptive tenants from noisy
//!   non-adaptive neighbours, plus measured-load placement driven by the
//!   telemetry stream.
//! * [`telemetry`] — the push observability API: per-frame [`FrameEvent`]s
//!   emitted at display end and fanned out to pluggable
//!   [`telemetry::TelemetrySink`]s (streaming aggregates, windowed
//!   percentiles, fleet energy, measured load).
//! * [`metrics`] — per-frame records and run summaries (latency breakdowns,
//!   FPS, transmitted bytes, energy), plus the mergeable log-linear
//!   [`metrics::Histogram`] behind the monitoring paths.
//! * [`obs`] — observability over the telemetry seam: sampled span tracing
//!   with Chrome-trace export, per-class mergeable histogram metrics with
//!   a Prometheus-style exposition, and a streaming SLO health monitor
//!   emitting deterministic incident timelines.
//!
//! # Example
//!
//! ```
//! use qvr_core::schemes::{SchemeKind, SystemConfig};
//! use qvr_scene::Benchmark;
//!
//! let config = SystemConfig::default();
//! let summary = SchemeKind::Qvr.run(&config, Benchmark::Doom3H.profile(), 60, 42);
//! assert!(summary.mean_mtp_ms() > 0.0);
//! assert!(summary.fps() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod churn;
pub mod clock;
pub mod f16;
pub mod fleet;
pub mod foveation;
pub mod liwc;
pub mod metrics;
pub mod obs;
pub mod sched;
pub mod schemes;
pub mod session;
pub mod shard;
pub mod telemetry;
pub mod uca;

pub use admission::{AdmissionController, AdmissionDecision, AdmissionPolicy};
pub use churn::{ChurnConfig, ChurnEvent, ChurnFleet, ChurnSummary, ChurnTrace};
pub use clock::{FleetClock, SteppingPolicy};
pub use f16::F16;
pub use fleet::{Fleet, FleetConfig, FleetSummary, SessionSpec};
pub use foveation::{FoveationPlan, LayerChannel, RenderGraph, VrsRate};
pub use liwc::Liwc;
pub use metrics::{FrameRecord, Histogram, RunSummary};
pub use obs::{
    HealthMonitor, HealthRuleKind, HealthRules, Incident, MetricsSink, Severity, TraceConfig,
    TraceSink,
};
pub use sched::{ServerPolicy, TenantClass};
pub use schemes::{SchemeKind, SystemConfig};
pub use session::Session;
pub use shard::{cell_seed, CellSummary, Shard, ShardConfig, ShardSummary};
pub use telemetry::{
    AggregateSink, EnergyMeter, FrameEvent, FrameSpans, LoadTracker, SinkSet, StageSpan,
    TelemetryConfig, TelemetrySink, WindowedStatsSink,
};
pub use uca::Uca;
